// Synthetic automata collection — the offline stand-in for the public
// Ondrik benchmark (1084 big NFAs from system modeling and formal
// verification) used by the paper's Tab. 2 and Sect. 4.5 experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "automata/nfa.hpp"
#include "util/prng.hpp"

namespace rispar {

struct CollectionConfig {
  /// Number of automata. The paper's collection has 1084; the default keeps
  /// the Table-2 driver fast while preserving the distribution shape.
  int count = 250;
  std::uint64_t seed = 20250114;  ///< arXiv v3 date of the paper, for fun
  /// Log-uniform state-count range (the Ondrik machines average ~2490
  /// states; we default smaller so the full pipeline — determinize,
  /// minimize, RI-DFA, interface reduction — runs per automaton in ms).
  std::int32_t min_states = 16;
  std::int32_t max_states = 220;
  std::int32_t min_symbols = 2;
  std::int32_t max_symbols = 8;
  /// Machines whose RI-DFA would exceed this multiple of the NFA size are
  /// rejected and regenerated, like a corpus curated to determinize within
  /// memory. The paper's collection shows RI-DFA ≈ 2.5× and DFA ≈ 0.55×
  /// the NFA state total, i.e. far from the exponential worst case.
  double max_blowup = 8.0;
};

/// Deterministically generates the i-th automaton of the collection (so
/// drivers can stream it without holding every NFA in memory).
Nfa collection_nfa(const CollectionConfig& config, int index);

/// Convenience: the whole collection.
std::vector<Nfa> make_collection(const CollectionConfig& config);

}  // namespace rispar
