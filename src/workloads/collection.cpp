#include "workloads/collection.hpp"

#include <algorithm>
#include <cmath>

#include "automata/random_nfa.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/ridfa.hpp"

namespace rispar {

namespace {

// "Succinct" machine: a mostly-deterministic random backbone over symbols
// [2, k) unioned (behind a fresh initial state) with a counting gadget
// Σ_G* a Σ_G^j over the reserved symbols {0, 1}. The backbone determinizes
// to about its own size while the gadget needs ~2^(j+1) DFA states, so by
// picking j ≈ log2(backbone) the whole machine lands in the paper's
// typical band |NFA| / |min DFA| ≈ 0.4 … 0.9 — genuinely succinct
// nondeterminism with a *bounded* (not exponential-in-n) blow-up.
Nfa succinct_nfa(Prng& prng, std::int32_t num_states, std::int32_t num_symbols) {
  const std::int32_t k = std::max<std::int32_t>(num_symbols, 3);

  // Gadget size: j such that 2^(j+1) is within a small factor of the
  // backbone size, jittered to spread the ratio band.
  const std::int32_t backbone_states = std::max<std::int32_t>(num_states * 2 / 3, 4);
  std::int32_t j = 2;
  while ((1 << (j + 2)) < backbone_states) ++j;
  j += static_cast<std::int32_t>(prng.pick_index(3)) - 1;  // jitter -1..+1
  j = std::clamp<std::int32_t>(j, 2, 10);

  Nfa nfa = Nfa::with_identity_alphabet(k);
  const State start = nfa.add_state();
  nfa.set_initial(start);

  // --- counting gadget over symbols {0,1}: (0|1)* 0 (0|1){j} ------------
  const State loop = nfa.add_state();
  nfa.add_edge(start, 0, loop);
  nfa.add_edge(start, 1, loop);
  nfa.add_edge(loop, 0, loop);
  nfa.add_edge(loop, 1, loop);
  State chain = nfa.add_state();
  nfa.add_edge(loop, 0, chain);  // the nondeterministic guess
  nfa.add_edge(start, 0, chain);
  for (std::int32_t step = 0; step < j; ++step) {
    const State next = nfa.add_state(step + 1 == j);
    nfa.add_edge(chain, 0, next);
    nfa.add_edge(chain, 1, next);
    chain = next;
  }

  // --- mostly-deterministic backbone over symbols [2, k) ----------------
  const std::int32_t base = nfa.num_states();
  const std::int32_t want = std::max<std::int32_t>(num_states - base, 3);
  for (std::int32_t s = 0; s < want; ++s)
    nfa.add_state(prng.next_bool(0.15) || s + 1 == want);
  auto backbone_state = [&](std::int32_t i) { return base + i; };
  nfa.add_edge(start, 2, backbone_state(0));
  // Reachability trail, then sparse extra edges; one target per
  // (state, symbol) keeps the backbone deterministic.
  for (std::int32_t s = 1; s < want; ++s) {
    const auto from = backbone_state(static_cast<std::int32_t>(prng.pick_index(
        static_cast<std::size_t>(s))));
    const auto symbol = static_cast<Symbol>(2 + prng.pick_index(
        static_cast<std::size_t>(k - 2)));
    nfa.add_edge(from, symbol, backbone_state(s));
  }
  const auto extra = static_cast<std::size_t>(want / 2);
  for (std::size_t e = 0; e < extra; ++e) {
    const auto from = backbone_state(static_cast<std::int32_t>(
        prng.pick_index(static_cast<std::size_t>(want))));
    const auto to = backbone_state(static_cast<std::int32_t>(
        prng.pick_index(static_cast<std::size_t>(want))));
    const auto symbol = static_cast<Symbol>(2 + prng.pick_index(
        static_cast<std::size_t>(k - 2)));
    if (nfa.edges(from, symbol).empty()) nfa.add_edge(from, symbol, to);
  }
  return nfa;
}

}  // namespace

Nfa collection_nfa(const CollectionConfig& config, int index) {
  // Per-automaton stream: independent of `count` and of generation order.
  Prng prng(config.seed ^
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)));

  // Reject-and-retry until the incremental powerset fits the blow-up
  // budget — a curated collection (like the paper's, whose DFA totals are
  // *smaller* than the NFA totals) never determinizes explosively.
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Log-uniform sizes: the collection mixes small protocol automata with
    // large model-checking ones.
    const double log_lo = std::log(static_cast<double>(config.min_states));
    const double log_hi = std::log(static_cast<double>(config.max_states));
    const auto num_states = static_cast<std::int32_t>(
        std::lround(std::exp(log_lo + (log_hi - log_lo) * prng.next_double())));
    const auto num_symbols = static_cast<std::int32_t>(
        config.min_symbols + prng.pick_index(static_cast<std::size_t>(
                                 config.max_symbols - config.min_symbols + 1)));

    const bool want_succinct = prng.next_bool(0.96);  // paper: 96.4% have NFA < DFA
    Nfa nfa = [&] {
      if (want_succinct) return succinct_nfa(prng, num_states, num_symbols);
      // A bloated minority (the paper's 3.6% with NFA larger than DFA).
      RandomNfaConfig bloated;
      bloated.num_states = num_states;
      bloated.num_symbols = num_symbols;
      bloated.density = 1.15 + 0.4 * prng.next_double();
      bloated.nondeterminism = 0.1 + 0.2 * prng.next_double();
      bloated.final_fraction = 0.08 + 0.25 * prng.next_double();
      bloated.locality = 0.15 + 0.25 * prng.next_double();
      return random_nfa(prng, bloated);
    }();

    const auto budget = static_cast<std::int32_t>(
        config.max_blowup * static_cast<double>(nfa.num_states())) + 64;
    if (!try_build_ridfa(nfa, budget).has_value()) continue;

    // Curate to the published corpus profile: a succinct draw must actually
    // be succinct (NFA smaller than its minimal DFA, the paper's dominant
    // band 0.5–1.0), a bloated draw the opposite.
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    const double ratio = static_cast<double>(nfa.num_states()) /
                         static_cast<double>(std::max(min_dfa.num_states(), 1));
    if (want_succinct ? (ratio >= 0.45 && ratio < 0.98) : (ratio >= 1.0 && ratio < 1.45))
      return nfa;
  }
  // Extremely unlikely: fall back to a tiny tame machine.
  RandomNfaConfig fallback;
  fallback.num_states = config.min_states;
  fallback.num_symbols = config.min_symbols;
  fallback.density = 1.1;
  fallback.nondeterminism = 0.05;
  return random_nfa(prng, fallback);
}

std::vector<Nfa> make_collection(const CollectionConfig& config) {
  std::vector<Nfa> collection;
  collection.reserve(static_cast<std::size_t>(config.count));
  for (int i = 0; i < config.count; ++i) collection.push_back(collection_nfa(config, i));
  return collection;
}

}  // namespace rispar
