// The five evaluation benchmarks of the paper (Tab. 1), rebuilt as
// self-contained synthetic generators (see DESIGN.md, substitutions).
//
// Each workload is (regular expression, text generator) such that the
// generated text belongs to the language. The suite reproduces the paper's
// two benchmark groups:
//   * "even"   — bigdata, fasta, traffic: the minimal DFA is about as small
//     as the NFA, or speculative runs die almost immediately, so the DFA
//     variant of CSDPA has nothing to lose and RID merely matches it;
//   * "winning"— bible, regexp: the minimal DFA is much larger than the NFA
//     *and* total on typical text (speculative runs never die), so the DFA
//     variant pays |Q_DFA| × n transitions while RID pays |I_RI-DFA| × n.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "regex/ast.hpp"
#include "util/prng.hpp"

namespace rispar {

struct WorkloadSpec {
  std::string name;
  bool winning = false;  ///< paper's expected group
  /// Pattern of the language (whole-input semantics).
  std::function<RePtr()> regex;
  /// Generates ~`bytes` of text belonging to the language.
  std::function<std::string(std::size_t bytes, Prng& prng)> text;
  /// Paper's maximum text size for this benchmark (Tab. 1), scaled down by
  /// the bench drivers' --scale flag.
  std::size_t paper_bytes = 0;
};

/// bigdata: short synthetic RE (5-state NFA) + pumped member text.
WorkloadSpec bigdata_workload();

/// regexp: the DFA-explosion family (a|b)*a(a|b)^k (paper uses a series;
/// the default k is 6 giving a 128-state minimal DFA from an 8-state NFA,
/// matching the paper's DFA/RID transition ratio of ~127).
WorkloadSpec regexp_workload(int k = 6);

/// bible: HTML-manuscript model — body text with <h3> section titles whose
/// 3rd-from-last character must be a digit; the Σ*-context plus the digit
/// window blow the DFA up while the Glushkov NFA stays at Tab. 1's 16
/// states, putting the DFA/RID transition ratio in the paper's 8–9 band.
WorkloadSpec bible_workload();

/// fasta: DNA records searched for a few short motifs (Aho-Corasick-like
/// language: minimal DFA ≈ NFA, the even case).
WorkloadSpec fasta_workload();

/// traffic: syslog-formatted network log; the rigid line format kills
/// mis-speculated runs within one line (the other even case).
WorkloadSpec traffic_workload();

/// All five, in the paper's Tab. 3 order.
std::vector<WorkloadSpec> benchmark_suite(int regexp_k = 6);

}  // namespace rispar
