#include "workloads/suite.hpp"

#include <array>

#include "regex/parser.hpp"

namespace rispar {

namespace {

// ---------------------------------------------------------------- bigdata

// (ab|ba)* — a 5-state Glushkov NFA from a short RE, standing in for the
// REgen-produced random RE of the paper. Texts are pumped members.
std::string bigdata_text(std::size_t bytes, Prng& prng) {
  std::string text;
  text.reserve(bytes + 2);
  while (text.size() < bytes) text += prng.next_bool(0.5) ? "ab" : "ba";
  return text;
}

// ----------------------------------------------------------------- regexp

std::string regexp_pattern(int k) {
  // Class form so the Glushkov NFA has k+2 states like the paper's series
  // (writing (a|b) would double every position).
  return "[ab]*a[ab]{" + std::to_string(k) + "}";
}

std::string regexp_text(std::size_t bytes, Prng& prng, int k) {
  std::string text(bytes, 'a');
  for (auto& ch : text) ch = prng.next_bool(0.5) ? 'a' : 'b';
  // Membership: the (k+1)-th character from the end must be 'a'.
  if (text.size() >= static_cast<std::size_t>(k) + 1)
    text[text.size() - static_cast<std::size_t>(k) - 1] = 'a';
  return text;
}

// ------------------------------------------------------------------ bible

// Body text in Σ* context with <h3> titles of the form
// [a-z0-9 ]*[0-9][a-z0-9 ]{2} — "the 3rd character from the end of the
// title is a digit". Every digit inside a title speculatively starts a
// countdown, so the subset construction tracks which of the last 3 title
// characters were digits: the minimal DFA lands near 140 states over a
// 16-state NFA (Tab. 1's bible size), giving the paper's 8–9 DFA/RID
// ratio. Crucially the leading/trailing Σ* make the minimal DFA total, so
// every speculative chunk run survives to the chunk end — the winning
// regime.
constexpr char kBiblePattern[] =
    ".*<h3>[a-z0-9 ]*[0-9][a-z0-9 ]{2}</h3>.*";

const char* kWords[] = {"in",    "principio", "creo",   "il",    "cielo",
                        "e",     "la",        "terra",  "luce",  "acque",
                        "giorno","notte",     "disse",  "fu",    "sera",
                        "mattina","secondo",  "libro",  "verso", "capitolo"};

std::string bible_text(std::size_t bytes, Prng& prng) {
  std::string text;
  text.reserve(bytes + 64);
  std::size_t section = 0;
  while (text.size() < bytes) {
    // A section title every ~40 lines. Format: words then " NNNNNx" where
    // the digit 6-from-the-end satisfies the pattern.
    text += "<h3>";
    for (int w = 0; w < 3; ++w) {
      text += kWords[prng.pick_index(std::size(kWords))];
      text += ' ';
    }
    text += static_cast<char>('0' + (section++ % 10));
    text += "ab";  // exactly 2 trailing [a-z0-9 ] characters
    text += "</h3>\n";
    const std::size_t lines = 30 + prng.pick_index(20);
    for (std::size_t line = 0; line < lines && text.size() < bytes; ++line) {
      const std::size_t words = 8 + prng.pick_index(8);
      for (std::size_t w = 0; w < words; ++w) {
        text += kWords[prng.pick_index(std::size(kWords))];
        text += ' ';
      }
      text += '\n';
    }
  }
  return text;
}

// ------------------------------------------------------------------ fasta

// DNA records in strict FASTA-like shape: a header naming the motif found
// in the record, then base lines. The rigid format (newlines, '>' headers)
// kills a mis-speculated run within one line for the DFA *and* the RI-DFA
// chunk automaton alike, so the two tie — the paper's even group, with the
// Glushkov NFA around Tab. 1's 29 states.
constexpr char kFastaPattern[] =
    "(>[a-z0-9]+ (GATTACA|CCGGTTAA|ACGTACGT) [0-9]+\n([ACGT]+\n)+)*";

std::string fasta_text(std::size_t bytes, Prng& prng) {
  static const char bases[] = {'A', 'C', 'G', 'T'};
  static const char* motifs[] = {"GATTACA", "CCGGTTAA", "ACGTACGT"};
  std::string text;
  text.reserve(bytes + 160);
  int record = 0;
  while (text.size() < bytes) {
    text += ">seq";
    text += std::to_string(record++);
    text += ' ';
    text += motifs[prng.pick_index(3)];
    text += ' ';
    text += std::to_string(prng.pick_index(100000));
    text += '\n';
    const std::size_t lines = 20 + prng.pick_index(20);
    for (std::size_t line = 0; line < lines; ++line) {
      for (int b = 0; b < 70; ++b) text += bases[prng.pick_index(4)];
      text += '\n';
    }
  }
  return text;
}

// ---------------------------------------------------------------- traffic

// Syslog-like records: (timestamp host daemon[pid]: message\n)*. The rigid
// field structure kills a mis-speculated run within one line, so the
// speculation overhead is bounded by (#starts × line length) per chunk —
// negligible against the chunk length (even group). The Glushkov NFA has
// ~100 states (Tab. 1: 101).
constexpr char kTrafficPattern[] =
    "(May [0-9]{2} [0-9]{2}:[0-9]{2}:[0-9]{2} host[0-9] "
    "(sshd|kernel|systemd|nginxd)\\[[0-9]{1,5}\\]: "
    "(ACCEPT|REJECT|DROP) src=[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"
    " dpt=[0-9]{1,5}\n)*";

std::string traffic_text(std::size_t bytes, Prng& prng) {
  static const char* daemons[] = {"sshd", "kernel", "systemd", "nginxd"};
  static const char* verdicts[] = {"ACCEPT", "REJECT", "DROP"};
  std::string text;
  text.reserve(bytes + 128);
  auto two = [&](int v) {
    std::string s = std::to_string(v);
    return s.size() < 2 ? "0" + s : s;
  };
  while (text.size() < bytes) {
    text += "May ";
    text += two(static_cast<int>(1 + prng.pick_index(28)));
    text += ' ';
    text += two(static_cast<int>(prng.pick_index(24)));
    text += ':';
    text += two(static_cast<int>(prng.pick_index(60)));
    text += ':';
    text += two(static_cast<int>(prng.pick_index(60)));
    text += " host";
    text += static_cast<char>('0' + prng.pick_index(10));
    text += ' ';
    text += daemons[prng.pick_index(4)];
    text += '[';
    text += std::to_string(1 + prng.pick_index(99999));
    text += "]: ";
    text += verdicts[prng.pick_index(3)];
    text += " src=";
    for (int octet = 0; octet < 4; ++octet) {
      if (octet) text += '.';
      text += std::to_string(prng.pick_index(256));
    }
    text += " dpt=";
    text += std::to_string(1 + prng.pick_index(65535));
    text += '\n';
  }
  return text;
}

WorkloadSpec make(std::string name, bool winning, std::string pattern,
                  std::function<std::string(std::size_t, Prng&)> text,
                  std::size_t paper_bytes) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.winning = winning;
  spec.regex = [pattern = std::move(pattern)] { return parse_regex(pattern); };
  spec.text = std::move(text);
  spec.paper_bytes = paper_bytes;
  return spec;
}

}  // namespace

WorkloadSpec bigdata_workload() {
  return make("bigdata", false, "(ab|ba)*", bigdata_text, 13u << 20);
}

WorkloadSpec regexp_workload(int k) {
  return make("regexp", true, regexp_pattern(k),
              [k](std::size_t bytes, Prng& prng) { return regexp_text(bytes, prng, k); },
              6u << 20);
}

WorkloadSpec bible_workload() {
  return make("bible", true, kBiblePattern, bible_text, 4u << 20);
}

WorkloadSpec fasta_workload() {
  return make("fasta", false, kFastaPattern, fasta_text, 765u << 10);
}

WorkloadSpec traffic_workload() {
  return make("traffic", false, kTrafficPattern, traffic_text, 11u << 20);
}

std::vector<WorkloadSpec> benchmark_suite(int regexp_k) {
  std::vector<WorkloadSpec> suite;
  suite.push_back(bigdata_workload());
  suite.push_back(regexp_workload(regexp_k));
  suite.push_back(bible_workload());
  suite.push_back(fasta_workload());
  suite.push_back(traffic_workload());
  return suite;
}

}  // namespace rispar
