#include "util/prng.hpp"

namespace rispar {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection on the low word.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Prng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Prng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::size_t> Prng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = pick_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Prng Prng::split() {
  return Prng(next_u64());
}

std::uint64_t stable_hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace rispar
