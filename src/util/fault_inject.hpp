// Deterministic fault-injection harness (ISSUE 6 tentpole part 4).
//
// Compiled in only under -DRISPAR_FAULT_INJECT=ON; in normal builds every
// probe folds to a constexpr-false no-op, so the sites cost nothing.
//
// When compiled in, each named site draws from one deterministic
// splitmix64 stream: site k fails iff hash(seed, draw_counter) falls under
// the configured probability. Same seed + same execution order (the sweep
// runs single-threaded batteries) => same faults, so a failing sweep seed
// reproduces exactly.
//
// Sites wired in (each throws a typed error the caller must survive):
//  * "pool.task"      — a pool task throws FaultInjected before running its
//                       body (exercises the batch first-error capture)
//  * "governor.poll"  — an active governor's checkpoint trips QueryCancelled
//  * "subset.alloc"   — subset construction fails as std::bad_alloc
//  * "sfa.alloc"      — SFA composition-table growth fails as std::bad_alloc
//  * "packed.alloc"   — packed-table build fails as std::bad_alloc
//  * "reverse.build"  — the reverse-begins artifact build (Pattern::
//                       reverse_begins) throws FaultInjected; the lazy
//                       once-flag must stay unset so a retry can succeed
//  * "mpstream.merge" — MultiStreamSession's window merge throws after the
//                       per-pattern scans ran; the session must poison
//  * "checkpoint.encode" — serializing a session checkpoint fails; the
//                       carry must stay untouched so a retry succeeds
//  * "checkpoint.decode" — resuming from a blob fails before any state is
//                       adopted; the blob stays valid for a retry
//  * "server.drain"   — the rispard drain's checkpoint emission throws; the
//                       client gets a typed ERROR frame and the drain still
//                       completes (terminal frame + close)
//
// Configuration: fault::configure(seed, rate) from tests, or the
// environment (RISPAR_FAULT_SEED, RISPAR_FAULT_RATE — rate in [0,1]) read
// lazily on the first probe. Unconfigured => disabled even when compiled in.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rispar::fault {

/// What an injected task throw looks like. Deliberately NOT a QueryError:
/// the sweep asserts callers surface it (or a typed wrapper) without
/// crashing, and that catch sites for "any error" don't quietly depend on
/// the taxonomy.
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

#ifdef RISPAR_FAULT_INJECT

inline constexpr bool kEnabled = true;

/// Draw the site's next deterministic sample; true => the caller must fail.
bool should_fail(const char* site);

/// Arm the harness: every subsequent draw uses this seed/rate. Resets the
/// draw counter so sweeps are reproducible per (seed, battery).
void configure(std::uint64_t seed, double rate);

/// Disarm (probes return false until the next configure()).
void disable();

/// Total injections fired since the last configure() — sweeps assert > 0
/// so a silently dead harness fails loudly.
std::uint64_t fire_count();

/// RAII disarm for scopes that must run clean (oracle reruns inside the
/// sweep). Restores nothing: re-configure() for the next battery.
struct ScopedDisable {
  ScopedDisable() { disable(); }
  ~ScopedDisable() = default;
};

#else

inline constexpr bool kEnabled = false;

inline bool should_fail(const char*) { return false; }
inline void configure(std::uint64_t, double) {}
inline void disable() {}
inline std::uint64_t fire_count() { return 0; }
struct ScopedDisable {};

#endif

/// The standard probe: throw FaultInjected when the site's draw fails.
/// `if constexpr` keeps release builds free of even the call.
inline void maybe_throw(const char* site) {
  if constexpr (kEnabled) {
    if (should_fail(site)) throw FaultInjected(std::string("injected fault at ") + site);
  } else {
    (void)site;
  }
}

}  // namespace rispar::fault
