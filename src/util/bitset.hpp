// Dynamic bitset tuned for automata state sets.
//
// std::vector<bool> lacks word-level access (needed for fast union /
// intersection / iteration over set bits) and std::bitset is fixed-size.
// Automata code manipulates sets over state universes whose size is only
// known at construction time, so we provide a small dedicated type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rispar {

class Bitset {
 public:
  Bitset() = default;
  /// Creates a set over the universe [0, universe), all bits clear.
  explicit Bitset(std::size_t universe);

  std::size_t universe() const { return universe_; }
  bool empty() const;
  /// Number of set bits.
  std::size_t count() const;

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void clear();

  /// Set-algebraic updates; all operands must share the same universe.
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  Bitset& operator-=(const Bitset& other);  ///< set difference

  bool operator==(const Bitset& other) const = default;

  /// True iff the intersection with `other` is non-empty.
  bool intersects(const Bitset& other) const;
  /// True iff every element of this set is in `other`.
  bool is_subset_of(const Bitset& other) const;

  /// Index of the lowest set bit, or npos when empty.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first() const;
  /// Index of the lowest set bit strictly greater than i, or npos.
  std::size_t next(std::size_t i) const;

  /// Materializes the set as a sorted vector of indices.
  std::vector<std::int32_t> to_indices() const;
  /// Builds a set from indices (each must be < universe).
  static Bitset from_indices(std::size_t universe,
                             const std::vector<std::int32_t>& indices);

  /// Word-level access for hashing.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hash functor so Bitset can key unordered containers.
struct BitsetHash {
  std::size_t operator()(const Bitset& set) const;
};

}  // namespace rispar
