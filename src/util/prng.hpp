// Deterministic pseudo-random number generation for reproducible
// benchmarks, workload generation and property tests.
//
// We deliberately avoid <random> engines in library code: their exact output
// is implementation-defined across standard libraries, while every
// experiment in this repository must be reproducible bit-for-bit from a
// seed. xoshiro256** (Blackman & Vigna) seeded through splitmix64 is the
// conventional choice for simulation workloads.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace rispar {

/// One step of the splitmix64 generator; also used as a seed scrambler.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Cheap to copy; every copy continues the sequence
/// independently of the original.
class Prng {
 public:
  /// Seeds the four lanes of state through splitmix64 so that any 64-bit
  /// seed (including 0) yields a well-mixed initial state.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). Precondition: bound > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi]. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Picks a uniformly random element index of a container of size n.
  /// Precondition: n > 0.
  std::size_t pick_index(std::size_t n) {
    return static_cast<std::size_t>(next_below(n));
  }

  /// Fisher-Yates shuffle of an index range [0, n) returned as a vector.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; useful to give each parallel
  /// task its own stream without sharing state.
  Prng split();

 private:
  std::uint64_t s_[4];
};

/// FNV-1a hash of a string, used to derive stable seeds from textual names
/// (e.g. benchmark names) instead of hard-coding magic numbers everywhere.
std::uint64_t stable_hash(std::string_view text);

}  // namespace rispar
