#include "util/table.hpp"

#include <cstdio>
#include <iomanip>

namespace rispar {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(std::int64_t value) { return std::to_string(value); }
std::string Table::cell(std::uint64_t value) { return std::to_string(value); }

std::string Table::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string Table::ratio(double numerator, double denominator, int precision) {
  if (denominator == 0.0) return "n/a";
  return cell(numerator / denominator, precision);
}

void Table::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  auto line = [&](char fill) {
    out << '+';
    for (const auto width : widths) {
      for (std::size_t i = 0; i < width + 2; ++i) out << fill;
      out << '+';
    }
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      out << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << text << " |";
    }
    out << '\n';
  };

  line('-');
  emit(header_);
  line('=');
  for (const auto& row : rows_) emit(row);
  line('-');
}

}  // namespace rispar
