// Resource governance for queries: deadlines, cooperative cancellation,
// and the typed error taxonomy every failure path maps onto.
//
// This is the bottom layer of the query stack (engine/query.hpp includes
// parallel/ca_run.hpp which includes this), so the taxonomy lives here and
// query.hpp re-exports it — the kernels can throw DeadlineExceeded without
// an include cycle back into engine/.
//
// ## Cooperative checkpoints
//
// Nothing preempts a running kernel. Instead every parallel entry point
// builds a QueryGovernor from QueryOptions::{deadline, cancel} and the
// kernels poll it cooperatively:
//
//  * at the top of every pool task (chunk boundary) — the floor every
//    shape honors, including the SFA comparator whose inner run is opaque;
//  * every kGovernorStride symbols inside the per-symbol loops (reference,
//    NFA, counting, finding kernels) via GovPoll;
//  * after each validated block in the fused/SIMD lockstep loops, once the
//    blocks accumulate to the stride — the blocks are kValidateBlock long,
//    so the amortized cost stays under the documented <2% budget
//    (docs/perf.md "Checkpoint polling granularity");
//  * at every StreamSession window (per feed).
//
// A trip throws QueryCancelled or DeadlineExceeded from whichever worker
// polls first; the exception unwinds through the ThreadPool's first-error
// capture and rethrows from run() on the submitting thread. Sibling chunk
// tasks of the batch still run to completion (they poll too, so they trip
// fast) — the pool never abandons claimed tasks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace rispar {

/// Root of the query failure taxonomy. Thrown when a query asks for an
/// option combination the chosen device (or query shape) cannot honor, or
/// for a device that cannot be built. Catching QueryError catches every
/// subclass below — existing call sites keep working unchanged.
class QueryError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A knob/shape mismatch found during validation (the validate_query
/// rejects, stream-session precondition failures, poisoned-session use).
class ValidationError : public QueryError {
 public:
  using QueryError::QueryError;
};

/// The query's deadline elapsed before it completed. Carries how long the
/// query had run when the trip was observed and the budget it was given.
class DeadlineExceeded : public QueryError {
 public:
  DeadlineExceeded(std::chrono::nanoseconds elapsed, std::chrono::nanoseconds budget);
  std::chrono::nanoseconds elapsed() const { return elapsed_; }
  std::chrono::nanoseconds budget() const { return budget_; }

 private:
  std::chrono::nanoseconds elapsed_;
  std::chrono::nanoseconds budget_;
};

/// The query's CancelToken was tripped. Carries how long the query had run
/// when the cancellation was observed.
class QueryCancelled : public QueryError {
 public:
  explicit QueryCancelled(std::chrono::nanoseconds elapsed);
  std::chrono::nanoseconds elapsed() const { return elapsed_; }

 private:
  std::chrono::nanoseconds elapsed_;
};

/// A resource budget ran out: SFA probe budget, DFA subset-construction
/// budget, or pool admission rejection under overload. `resource` names the
/// budget, `limit` its configured value, `observed` what was demanded when
/// the budget tripped (e.g. the queue depth an overloaded pool rejected at).
class ResourceExhausted : public QueryError {
 public:
  ResourceExhausted(std::string resource, std::int64_t limit, std::int64_t observed);
  const std::string& resource() const { return resource_; }
  std::int64_t limit() const { return limit_; }
  std::int64_t observed() const { return observed_; }

 private:
  std::string resource_;
  std::int64_t limit_;
  std::int64_t observed_;
};

/// Read side of a cancellation flag. Copyable, shareable across threads;
/// a default-constructed token is never cancelled (and `valid()` is false,
/// so governors built from it stay inactive). Obtain a live one from
/// CancelSource::token().
class CancelToken {
 public:
  CancelToken() = default;

  bool valid() const { return flag_ != nullptr; }
  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: request_cancel() trips every token handed out. Safe to call
/// from any thread, any number of times; the queries observing the token
/// throw QueryCancelled at their next checkpoint.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const { return flag_->load(std::memory_order_acquire); }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Symbols between cooperative polls inside the per-symbol kernel loops.
/// Small enough for sub-millisecond trip latency on any kernel, large
/// enough that the poll (one relaxed steady_clock read + one atomic load)
/// amortizes to <2% of the fused/SIMD series (measured by the
/// deadline_checkpoint bench series in BENCH_chunk_kernels.json).
inline constexpr std::size_t kGovernorStride = 8192;

/// One query's governance state: construction captures the start time;
/// poll() throws QueryCancelled (checked first — an explicit cancel beats a
/// deadline that happened to elapse too) or DeadlineExceeded once tripped.
/// Inactive governors (no deadline, no valid token) make poll() a single
/// predictable branch, so kernels thread the pointer unconditionally.
/// Const-polled from many worker threads at once; all state is immutable
/// after construction except the shared token flag.
class QueryGovernor {
 public:
  QueryGovernor(std::chrono::nanoseconds deadline, CancelToken cancel)
      : start_(std::chrono::steady_clock::now()),
        deadline_(deadline),
        cancel_(std::move(cancel)),
        active_(deadline.count() > 0 || cancel_.valid()) {}

  bool active() const { return active_; }

  /// Cooperative checkpoint: no-op while healthy, throws on trip.
  void poll() const {
    if (active_) check();
  }

  std::chrono::nanoseconds elapsed() const {
    return std::chrono::steady_clock::now() - start_;
  }

 private:
  void check() const;  // out of line: the throw paths don't belong inline

  std::chrono::steady_clock::time_point start_;
  std::chrono::nanoseconds deadline_;
  CancelToken cancel_;
  bool active_;
};

/// Countdown helper for per-symbol loops: `step()` per symbol costs one
/// decrement-and-branch until the stride elapses, then one governor poll.
/// Null/inactive governors never poll (the countdown still runs — one
/// register decrement, cheaper than re-testing the pointer per symbol).
struct GovPoll {
  const QueryGovernor* gov;
  std::size_t countdown = kGovernorStride;

  explicit GovPoll(const QueryGovernor* g)
      : gov(g != nullptr && g->active() ? g : nullptr) {}

  void step() {
    if (--countdown == 0) {
      countdown = kGovernorStride;
      if (gov != nullptr) gov->poll();
    }
  }
};

}  // namespace rispar
