#include "util/histogram.hpp"

#include <cmath>
#include <cstdio>

namespace rispar {

Histogram::Histogram(double origin, double width, std::size_t bins)
    : origin_(origin), width_(width), counts_(bins, 0) {}

void Histogram::add(double value) {
  ++total_;
  if (value < origin_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - origin_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::string Histogram::bin_label(std::size_t bin, int precision) const {
  char buffer[64];
  const double lo = origin_ + width_ * static_cast<double>(bin);
  std::snprintf(buffer, sizeof buffer, "%.*f - %.*f", precision, lo, precision,
                lo + width_);
  return buffer;
}

std::size_t Histogram::count_below(double split) const {
  std::size_t sum = underflow_;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double lo = origin_ + width_ * static_cast<double>(bin);
    if (lo < split - 1e-12) sum += counts_[bin];
  }
  return sum;
}

}  // namespace rispar
