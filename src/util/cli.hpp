// Tiny command-line option parser shared by the bench and example binaries.
// Supports "--name value" and "--name=value" pairs plus boolean flags, with
// typed accessors and an auto-generated --help listing. Unknown --options
// are rejected so benchmark sweeps fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rispar {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declares an option with its default (shown in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, char** argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Comma-separated integer list, e.g. --threads 2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  void print_usage() const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace rispar
