// Minimal ASCII table renderer. The bench drivers reproduce the paper's
// tables (Tab. 2, Tab. 3) and figure series as aligned text so that the
// output can be diffed run-to-run and pasted into EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rispar {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row is padded or truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience formatters for numeric cells.
  static std::string cell(std::int64_t value);
  static std::string cell(std::uint64_t value);
  static std::string cell(double value, int precision = 2);
  static std::string ratio(double numerator, double denominator, int precision = 2);

  void render(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rispar
