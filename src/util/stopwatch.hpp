// Monotonic wall-clock stopwatch used by benchmark drivers and by the
// parallel recognizer's per-phase statistics.
#pragma once

#include <chrono>

namespace rispar {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until it has consumed at least `min_seconds` of wall
/// time (and at least once), returning the average seconds per call. Used by
/// the table/figure drivers, which need robust medians without pulling the
/// whole google-benchmark runtime into table-shaped output.
template <typename Fn>
double time_average(Fn&& fn, double min_seconds = 0.2, int min_reps = 1) {
  Stopwatch total;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || total.seconds() < min_seconds);
  return total.seconds() / reps;
}

}  // namespace rispar
