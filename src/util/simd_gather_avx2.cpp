// The AVX2 gather backend. This translation unit is the ONLY one compiled
// with -mavx2 (see CMakeLists.txt); everything it exports is reached through
// the function-pointer table in util/simd_gather.hpp after the runtime CPU
// check, so no AVX2 instruction can execute on hardware without it. Builds
// without the flag (non-x86, RISPAR_DISABLE_AVX2) compile the nullptr stub
// at the bottom and the dispatch stays on the portable backend.
#include "util/simd_gather.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rispar::simd {

namespace {

// One vpgatherdd per eight runs: the i32 state ids are the gather indices,
// the column base is the pointer, and the scale is the entry width. The
// narrow widths gather a full dword at each entry's byte offset and mask it
// down — PackedTable's tail slack keeps the 3 (u8) / 2 (u16) byte over-read
// of the last entries in bounds.
void gather_u8_avx2(const void* col_v, const std::int32_t* idx, std::size_t n,
                    std::int32_t* out) {
  const auto* base = static_cast<const int*>(col_v);
  const __m256i mask = _mm256_set1_epi32(0xFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i indices =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i raw = _mm256_i32gather_epi32(base, indices, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(raw, mask));
  }
  const auto* col = static_cast<const std::uint8_t*>(col_v);
  for (; i < n; ++i) out[i] = static_cast<std::int32_t>(col[idx[i]]);
}

void gather_u16_avx2(const void* col_v, const std::int32_t* idx, std::size_t n,
                     std::int32_t* out) {
  const auto* base = static_cast<const int*>(col_v);
  const __m256i mask = _mm256_set1_epi32(0xFFFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i indices =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i raw = _mm256_i32gather_epi32(base, indices, 2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(raw, mask));
  }
  const auto* col = static_cast<const std::uint16_t*>(col_v);
  for (; i < n; ++i) out[i] = static_cast<std::int32_t>(col[idx[i]]);
}

void gather_i32_avx2(const void* col_v, const std::int32_t* idx, std::size_t n,
                     std::int32_t* out) {
  const auto* base = static_cast<const int*>(col_v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i indices =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_i32gather_epi32(base, indices, 4));
  }
  const auto* col = static_cast<const std::int32_t*>(col_v);
  for (; i < n; ++i) out[i] = col[idx[i]];
}

// The independent lockstep kernel's whole inner loop (simd_gather.hpp,
// AdvanceSpanFn): per pre-validated symbol, one gather advances up to 8
// runs at a time. One constant serves as both the width mask and the
// widened dead sentinel (0xFF / 0xFFFF zero-extended; all-ones for i32,
// where the AND is the identity). The movemask fast path makes the
// all-survive block — the common case while many runs are live — one
// gather plus one store with no per-lane work; blocks with deaths fall
// back to the branchless scalar compaction over the already-gathered
// lanes. Living here (not in ca_run.cpp) keeps the per-symbol work free
// of cross-TU calls: the dispatch boundary is crossed once per validated
// span, not once per symbol.
template <typename T, int kScale>
std::size_t advance_span_avx2(const void* entries_v, std::size_t num_states,
                              const std::int32_t* symbols, std::size_t count,
                              std::int32_t* state, std::uint32_t* origin,
                              std::size_t& live, std::uint64_t& transitions) {
  const T* entries = static_cast<const T*>(entries_v);
  constexpr auto kDead = static_cast<std::int32_t>(static_cast<T>(-1));
  const __m256i mask = _mm256_set1_epi32(kDead);
  std::size_t consumed = 0;
  while (consumed < count && live > 1) {
    const T* col = entries + static_cast<std::size_t>(symbols[consumed]) * num_states;
    const auto* base = reinterpret_cast<const int*>(col);
    std::size_t write = 0;
    std::size_t i = 0;
    for (; i + 8 <= live; i += 8) {
      const __m256i indices =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + i));
      const __m256i gathered =
          _mm256_and_si256(_mm256_i32gather_epi32(base, indices, kScale), mask);
      const int dead_lanes = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(gathered, mask)));
      if (dead_lanes == 0) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + write), gathered);
        if (write != i)
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(origin + write),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(origin + i)));
        write += 8;
      } else {
        alignas(32) std::int32_t lanes[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), gathered);
        for (int lane = 0; lane < 8; ++lane) {
          state[write] = lanes[lane];
          origin[write] = origin[i + lane];
          write += static_cast<std::size_t>(lanes[lane] != kDead);
        }
      }
    }
    for (; i < live; ++i) {
      const auto value = static_cast<std::int32_t>(col[state[i]]);
      state[write] = value;
      origin[write] = origin[i];
      write += static_cast<std::size_t>(value != kDead);
    }
    transitions += write;
    live = write;
    ++consumed;
  }
  return consumed;
}

}  // namespace

const GatherOps* avx2_gather_ops() {
  static constexpr GatherOps ops{gather_u8_avx2,
                                 gather_u16_avx2,
                                 gather_i32_avx2,
                                 advance_span_avx2<std::uint8_t, 1>,
                                 advance_span_avx2<std::uint16_t, 2>,
                                 advance_span_avx2<std::int32_t, 4>,
                                 "avx2"};
  return &ops;
}

}  // namespace rispar::simd

#else  // !__AVX2__

namespace rispar::simd {

const GatherOps* avx2_gather_ops() { return nullptr; }

}  // namespace rispar::simd

#endif
