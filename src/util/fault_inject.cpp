#include "util/fault_inject.hpp"

#ifdef RISPAR_FAULT_INJECT

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace rispar::fault {

namespace {

// Armed state. The draw counter is atomic so concurrently polling workers
// each consume a distinct sample; everything else changes only under
// configure()/disable(), which the sweep calls between batteries (no
// queries in flight).
std::atomic<bool> armed{false};
std::atomic<std::uint64_t> seed_{0};
std::atomic<std::uint64_t> threshold{0};  // fail iff sample < threshold
std::atomic<std::uint64_t> draws{0};
std::atomic<std::uint64_t> fires{0};
std::once_flag env_once;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void arm(std::uint64_t seed, double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  seed_.store(seed, std::memory_order_relaxed);
  // rate == 1.0 would scale to 2^64 exactly, and a float->int cast of an
  // out-of-range value is UB (observed as threshold 0 — "always" silently
  // meaning "never"). Pin it to the all-ones sentinel, which should_fail
  // treats as fire-unconditionally; every rate below 1.0 scales to a
  // representable value under 2^64.
  threshold.store(
      rate >= 1.0 ? ~0ULL
                  : static_cast<std::uint64_t>(rate * 18446744073709551615.0),
      std::memory_order_relaxed);
  draws.store(0, std::memory_order_relaxed);
  fires.store(0, std::memory_order_relaxed);
  armed.store(rate > 0.0, std::memory_order_release);
}

void init_from_env() {
  const char* seed_env = std::getenv("RISPAR_FAULT_SEED");
  const char* rate_env = std::getenv("RISPAR_FAULT_RATE");
  if (seed_env == nullptr && rate_env == nullptr) return;
  const std::uint64_t seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 1;
  const double rate = rate_env != nullptr ? std::strtod(rate_env, nullptr) : 0.01;
  arm(seed, rate);
}

}  // namespace

bool should_fail(const char* site) {
  std::call_once(env_once, init_from_env);
  if (!armed.load(std::memory_order_acquire)) return false;
  // Fold the site name in so distinct sites sharing a draw index diverge.
  std::uint64_t mix = seed_.load(std::memory_order_relaxed);
  for (const char* c = site; *c != '\0'; ++c)
    mix = mix * 31 + static_cast<unsigned char>(*c);
  const std::uint64_t draw = draws.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t thr = threshold.load(std::memory_order_relaxed);
  const bool fail =
      thr == ~0ULL || splitmix64(mix ^ (draw * 0x2545f4914f6cdd1dULL)) < thr;
  if (fail) fires.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

void configure(std::uint64_t seed, double rate) {
  std::call_once(env_once, [] {});  // explicit configure wins over env
  arm(seed, rate);
}

void disable() {
  std::call_once(env_once, [] {});
  armed.store(false, std::memory_order_release);
}

std::uint64_t fire_count() { return fires.load(std::memory_order_relaxed); }

}  // namespace rispar::fault

#endif  // RISPAR_FAULT_INJECT
