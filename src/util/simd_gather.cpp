#include "util/simd_gather.hpp"

#include "util/cpuid.hpp"

namespace rispar::simd {

namespace {

// The portable backend: unrolled so the compiler keeps the eight loads
// independent (no loop-carried branch), 4-wide then scalar for the tail.
template <typename T>
void gather_portable(const void* col_v, const std::int32_t* idx, std::size_t n,
                     std::int32_t* out) {
  const T* col = static_cast<const T*>(col_v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::int32_t a = static_cast<std::int32_t>(col[idx[i + 0]]);
    const std::int32_t b = static_cast<std::int32_t>(col[idx[i + 1]]);
    const std::int32_t c = static_cast<std::int32_t>(col[idx[i + 2]]);
    const std::int32_t d = static_cast<std::int32_t>(col[idx[i + 3]]);
    const std::int32_t e = static_cast<std::int32_t>(col[idx[i + 4]]);
    const std::int32_t f = static_cast<std::int32_t>(col[idx[i + 5]]);
    const std::int32_t g = static_cast<std::int32_t>(col[idx[i + 6]]);
    const std::int32_t h = static_cast<std::int32_t>(col[idx[i + 7]]);
    out[i + 0] = a;
    out[i + 1] = b;
    out[i + 2] = c;
    out[i + 3] = d;
    out[i + 4] = e;
    out[i + 5] = f;
    out[i + 6] = g;
    out[i + 7] = h;
  }
  for (; i + 4 <= n; i += 4) {
    const std::int32_t a = static_cast<std::int32_t>(col[idx[i + 0]]);
    const std::int32_t b = static_cast<std::int32_t>(col[idx[i + 1]]);
    const std::int32_t c = static_cast<std::int32_t>(col[idx[i + 2]]);
    const std::int32_t d = static_cast<std::int32_t>(col[idx[i + 3]]);
    out[i + 0] = a;
    out[i + 1] = b;
    out[i + 2] = c;
    out[i + 3] = d;
  }
  for (; i < n; ++i) out[i] = static_cast<std::int32_t>(col[idx[i]]);
}

// The portable span loop: per symbol, unrolled loads (4-wide plus tail)
// and a branchless compaction — the survivor predicate feeds the write
// cursor. The width's dead sentinel zero-extends to static_cast<T>(-1)
// widened, i.e. 0xFF / 0xFFFF / kDeadState (PackedWideDead in
// packed_table.hpp).
template <typename T>
std::size_t advance_span_portable(const void* entries_v, std::size_t num_states,
                                  const std::int32_t* symbols, std::size_t count,
                                  std::int32_t* state, std::uint32_t* origin,
                                  std::size_t& live, std::uint64_t& transitions) {
  const T* entries = static_cast<const T*>(entries_v);
  constexpr auto kDead = static_cast<std::int32_t>(static_cast<T>(-1));
  std::size_t consumed = 0;
  while (consumed < count && live > 1) {
    const T* col = entries + static_cast<std::size_t>(symbols[consumed]) * num_states;
    std::size_t write = 0;
    std::size_t i = 0;
    for (; i + 4 <= live; i += 4) {
      const std::int32_t a = static_cast<std::int32_t>(col[state[i + 0]]);
      const std::int32_t b = static_cast<std::int32_t>(col[state[i + 1]]);
      const std::int32_t c = static_cast<std::int32_t>(col[state[i + 2]]);
      const std::int32_t d = static_cast<std::int32_t>(col[state[i + 3]]);
      state[write] = a;
      origin[write] = origin[i + 0];
      write += static_cast<std::size_t>(a != kDead);
      state[write] = b;
      origin[write] = origin[i + 1];
      write += static_cast<std::size_t>(b != kDead);
      state[write] = c;
      origin[write] = origin[i + 2];
      write += static_cast<std::size_t>(c != kDead);
      state[write] = d;
      origin[write] = origin[i + 3];
      write += static_cast<std::size_t>(d != kDead);
    }
    for (; i < live; ++i) {
      const std::int32_t value = static_cast<std::int32_t>(col[state[i]]);
      state[write] = value;
      origin[write] = origin[i];
      write += static_cast<std::size_t>(value != kDead);
    }
    transitions += write;
    live = write;
    ++consumed;
  }
  return consumed;
}

}  // namespace

const GatherOps& portable_gather_ops() {
  static constexpr GatherOps ops{gather_portable<std::uint8_t>,
                                 gather_portable<std::uint16_t>,
                                 gather_portable<std::int32_t>,
                                 advance_span_portable<std::uint8_t>,
                                 advance_span_portable<std::uint16_t>,
                                 advance_span_portable<std::int32_t>,
                                 "portable"};
  return ops;
}

const GatherOps& gather_ops() {
  static const GatherOps& selected = []() -> const GatherOps& {
    if (cpu_has_avx2())
      if (const GatherOps* avx2 = avx2_gather_ops()) return *avx2;
    return portable_gather_ops();
  }();
  return selected;
}

const char* simd_backend_name() { return gather_ops().backend; }

}  // namespace rispar::simd
