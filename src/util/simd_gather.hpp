// Vectorized column gathers for the kSimd lockstep kernels.
//
// The hot loop of every deterministic chunk kernel is "advance N live runs
// over one symbol": N independent loads from one symbol-major packed-table
// column (automata/packed_table.hpp). The scalar kernels issue those loads
// one dependent branch at a time; the kSimd kernels instead hand the whole
// live block to one of these gather routines, which widens the state ids to
// i32 indices and issues the loads eight at a time:
//
//  * AVX2 backend — `vpgatherdd` on the column base with scale 1/2/4 for
//    the u8/u16/i32 entry widths; the two narrow widths mask the gathered
//    dwords down to the entry value. Compiled in a dedicated -mavx2
//    translation unit (util/simd_gather_avx2.cpp) so the rest of the
//    library keeps the portable ISA baseline.
//  * portable backend — an 8-wide (4-wide for the tail) unrolled scalar
//    loop: no ISA requirement, still branch-free, and what every build runs
//    when AVX2 is absent or disabled (RISPAR_DISABLE_AVX2).
//
// `gather_ops()` picks the backend once per process via util/cpuid.hpp.
// Output contract: out[i] is the ZERO-EXTENDED entry col[idx[i]] — the dead
// sentinel therefore arrives as PackedWideDead<T> (0xFF / 0xFFFF /
// kDeadState), which is what the kernels compare against. The gathers may
// read up to 3 bytes past an entry (dword loads at narrow widths), which
// PackedTable's build-time tail slack makes safe (kGatherSlackEntries).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rispar::simd {

/// out[i] = zero-extended col[idx[i]] for i in [0, n). `col` points at one
/// packed-table column of the backing entry width; idx values must be valid
/// state ids for that table. In-place operation (out == idx) is supported:
/// every implementation reads a lane's index before writing its output.
using GatherFn = void (*)(const void* col, const std::int32_t* idx, std::size_t n,
                          std::int32_t* out);

/// The independent lockstep kernel's whole inner loop in one call, so the
/// per-symbol work — column base, gather, survivor test, dead-run
/// compaction, transition accounting — never crosses the dispatch boundary.
/// Advances `state[0..live)` (with parallel `origin` tags) over
/// `symbols[0..count)`, all pre-validated to be in range: one column gather
/// per symbol, survivors compacted to the front, the per-symbol survivor
/// count accumulated into `transitions` (one executed transition per run
/// surviving that symbol). Stops after the symbol that leaves live <= 1
/// (the caller's scalar tail takes over). Updates `live` in place and
/// returns the number of symbols fully consumed. The AVX2 backend's
/// movemask fast path makes the all-survive block — the common case while
/// many runs are live — one gather plus one store, no per-lane work.
using AdvanceSpanFn = std::size_t (*)(const void* entries, std::size_t num_states,
                                      const std::int32_t* symbols, std::size_t count,
                                      std::int32_t* state, std::uint32_t* origin,
                                      std::size_t& live, std::uint64_t& transitions);

struct GatherOps {
  GatherFn u8;
  GatherFn u16;
  GatherFn i32;
  AdvanceSpanFn span_u8;
  AdvanceSpanFn span_u16;
  AdvanceSpanFn span_i32;
  const char* backend;
};

/// The backend selected for this process: AVX2 when the build compiled it
/// and the CPU reports it (util/cpuid.hpp), the portable loops otherwise.
const GatherOps& gather_ops();

/// The portable unrolled backend, always available — exposed so tests can
/// cross-check the AVX2 results and benches can sweep gather-vs-scalar.
const GatherOps& portable_gather_ops();

/// The AVX2 backend when this build contains it (x86-64, AVX2 not
/// disabled), nullptr otherwise. Defined in util/simd_gather_avx2.cpp.
const GatherOps* avx2_gather_ops();

/// Name of the backend gather_ops() actually dispatches — "avx2" or
/// "portable". For CLI/bench labels and logs; by construction it can never
/// disagree with the dispatch.
const char* simd_backend_name();

/// The width-typed accessors the templated kernels use.
template <typename T>
GatherFn gather_fn(const GatherOps& ops);
template <>
inline GatherFn gather_fn<std::uint8_t>(const GatherOps& ops) {
  return ops.u8;
}
template <>
inline GatherFn gather_fn<std::uint16_t>(const GatherOps& ops) {
  return ops.u16;
}
template <>
inline GatherFn gather_fn<std::int32_t>(const GatherOps& ops) {
  return ops.i32;
}

template <typename T>
AdvanceSpanFn advance_span_fn(const GatherOps& ops);
template <>
inline AdvanceSpanFn advance_span_fn<std::uint8_t>(const GatherOps& ops) {
  return ops.span_u8;
}
template <>
inline AdvanceSpanFn advance_span_fn<std::uint16_t>(const GatherOps& ops) {
  return ops.span_u16;
}
template <>
inline AdvanceSpanFn advance_span_fn<std::int32_t>(const GatherOps& ops) {
  return ops.span_i32;
}

}  // namespace rispar::simd
