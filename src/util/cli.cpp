#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rispar {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  options_[name] = Option{default_value, help, false};
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"", help, true};
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      print_usage();
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(), name.c_str());
      print_usage();
      return false;
    }
    if (it->second.is_flag) {
      values_[name] = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '--%s' expects a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      value = argv[++i];
    }
    values_[name] = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  if (const auto it = options_.find(name); it != options_.end())
    return it->second.default_value;
  throw std::invalid_argument("undeclared option: " + name);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name) const {
  const std::string value = get(name);
  return !value.empty() && value != "0" && value != "false";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> list;
  const std::string text = get(name);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma > pos)
      list.push_back(std::strtoll(text.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return list;
}

void Cli::print_usage() const {
  std::printf("%s — %s\n\noptions:\n", program_.c_str(), description_.c_str());
  for (const auto& [name, option] : options_) {
    if (option.is_flag)
      std::printf("  --%-24s %s\n", name.c_str(), option.help.c_str());
    else
      std::printf("  --%-24s %s (default: %s)\n", name.c_str(), option.help.c_str(),
                  option.default_value.c_str());
  }
}

}  // namespace rispar
