#include "util/bitset.hpp"

#include <bit>
#include <cassert>

namespace rispar {

Bitset::Bitset(std::size_t universe)
    : universe_(universe), words_((universe + 63) / 64, 0) {}

bool Bitset::empty() const {
  for (const auto word : words_)
    if (word != 0) return false;
  return true;
}

std::size_t Bitset::count() const {
  std::size_t total = 0;
  for (const auto word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

void Bitset::clear() {
  for (auto& word : words_) word = 0;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

Bitset& Bitset::operator-=(const Bitset& other) {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

bool Bitset::intersects(const Bitset& other) const {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & other.words_[w]) return true;
  return false;
}

bool Bitset::is_subset_of(const Bitset& other) const {
  assert(universe_ == other.universe_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & ~other.words_[w]) return false;
  return true;
}

std::size_t Bitset::first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
  return npos;
}

std::size_t Bitset::next(std::size_t i) const {
  ++i;
  if (i >= universe_) return npos;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (word != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    if (++w >= words_.size()) return npos;
    word = words_[w];
  }
}

std::vector<std::int32_t> Bitset::to_indices() const {
  std::vector<std::int32_t> indices;
  indices.reserve(count());
  for (std::size_t i = first(); i != npos; i = next(i))
    indices.push_back(static_cast<std::int32_t>(i));
  return indices;
}

Bitset Bitset::from_indices(std::size_t universe,
                            const std::vector<std::int32_t>& indices) {
  Bitset set(universe);
  for (const auto index : indices) set.set(static_cast<std::size_t>(index));
  return set;
}

std::size_t BitsetHash::operator()(const Bitset& set) const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto word : set.words()) {
    h ^= word;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace rispar
