// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The kSimd chunk kernels (parallel/ca_run.cpp, parallel/match_count.cpp)
// want AVX2 gathers but must run everywhere: the dispatch asks this module
// once per process and falls back to the portable unrolled loops when the
// hardware (or the build — see RISPAR_DISABLE_AVX2 in CMakeLists.txt) does
// not provide AVX2. Detection is a cached `__builtin_cpu_supports` probe on
// x86-64 and constant-false elsewhere, so the per-call cost is one predicted
// branch on a namespace-scope boolean.
#pragma once

namespace rispar {

/// True when this process may execute AVX2 instructions: x86-64 hardware
/// reporting AVX2, in a build that did not define RISPAR_DISABLE_AVX2
/// (which forces false so the portable path is what runs and what gets
/// tested). Cached after the first call. The name of the backend actually
/// dispatched — which also requires the AVX2 TU to have been compiled in —
/// is simd_backend_name() in util/simd_gather.hpp.
bool cpu_has_avx2();

}  // namespace rispar
