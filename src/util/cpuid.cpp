#include "util/cpuid.hpp"

namespace rispar {

namespace {

bool detect_avx2() {
#if defined(RISPAR_DISABLE_AVX2)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

bool cpu_has_avx2() {
  static const bool cached = detect_avx2();
  return cached;
}

}  // namespace rispar
