#include "util/governance.hpp"

#include <string>

#include "util/fault_inject.hpp"

namespace rispar {

namespace {

std::string millis(std::chrono::nanoseconds d) {
  const double ms = std::chrono::duration<double, std::milli>(d).count();
  std::string text = std::to_string(ms);
  // Trim to one decimal — these strings land in error messages, not logs.
  const std::size_t dot = text.find('.');
  if (dot != std::string::npos && dot + 2 < text.size()) text.resize(dot + 2);
  return text;
}

}  // namespace

DeadlineExceeded::DeadlineExceeded(std::chrono::nanoseconds elapsed,
                                   std::chrono::nanoseconds budget)
    : QueryError("query deadline exceeded: ran " + millis(elapsed) +
                 " ms of a " + millis(budget) + " ms budget"),
      elapsed_(elapsed),
      budget_(budget) {}

QueryCancelled::QueryCancelled(std::chrono::nanoseconds elapsed)
    : QueryError("query cancelled after " + millis(elapsed) + " ms"),
      elapsed_(elapsed) {}

ResourceExhausted::ResourceExhausted(std::string resource, std::int64_t limit,
                                     std::int64_t observed)
    : QueryError(resource + " budget exhausted: limit " + std::to_string(limit) +
                 ", observed " + std::to_string(observed)),
      resource_(std::move(resource)),
      limit_(limit),
      observed_(observed) {}

void QueryGovernor::check() const {
  // Fault site: models a cancellation arriving at this exact checkpoint.
  if (fault::should_fail("governor.poll")) throw QueryCancelled(elapsed());
  if (cancel_.cancel_requested()) throw QueryCancelled(elapsed());
  if (deadline_.count() > 0) {
    const std::chrono::nanoseconds ran = elapsed();
    if (ran >= deadline_) throw DeadlineExceeded(ran, deadline_);
  }
}

}  // namespace rispar
