// Fixed-width binning of ratio distributions, used to reproduce Tab. 2
// (distribution of |NFA|/|DFA| and |I_RI-DFA|/|DFA| over a collection).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rispar {

class Histogram {
 public:
  /// Bins of width `width` starting at `origin`. Values below origin fall in
  /// an "underflow" bin; values at or above origin + width*bins overflow.
  Histogram(double origin, double width, std::size_t bins);

  void add(double value);

  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count(std::size_t bin) const { return counts_[bin]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }

  /// Label of bin i in the paper's "lo - hi" interval style.
  std::string bin_label(std::size_t bin, int precision = 1) const;

  /// Total count over bins whose lower edge is < split (plus underflow),
  /// mirroring the paper's "interval < 1 / interval > 1" subtotals.
  std::size_t count_below(double split) const;

 private:
  double origin_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rispar
