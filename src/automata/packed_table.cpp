#include "automata/packed_table.hpp"

#include <atomic>
#include <utility>

#include "util/fault_inject.hpp"

namespace rispar {

namespace {
/// See PackedTable::build_count(). Relaxed: the assertion tests snapshot and
/// compare on one thread; cross-thread precision is not required.
std::atomic<std::uint64_t> g_build_count{0};
}  // namespace

namespace {

template <typename T>
std::vector<T> pack_transposed(const std::vector<State>& table, std::int32_t num_states,
                               std::int32_t num_symbols) {
  const auto n = static_cast<std::size_t>(num_states);
  const auto k = static_cast<std::size_t>(num_symbols);
  // Tail slack for the dword gathers (kGatherSlackEntries, packed_table.hpp);
  // sentinel-filled so a stray read can only ever see "dead".
  std::vector<T> packed(table.size() + kGatherSlackEntries, PackedDead<T>::value);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < k; ++a) {
      const State entry = table[s * k + a];
      packed[a * n + s] =
          entry == kDeadState ? PackedDead<T>::value : static_cast<T>(entry);
    }
  }
  return packed;
}

}  // namespace

PackedTable PackedTable::build(const std::vector<State>& table, std::int32_t num_states,
                               std::int32_t num_symbols) {
  // Fault site: the packed copy is the big allocation of a table build.
  if (fault::should_fail("packed.alloc")) throw std::bad_alloc();
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  PackedTable result;
  result.num_states_ = num_states;
  result.num_symbols_ = num_symbols;
  if (num_states < 0xFF) {
    result.width_ = TableWidth::kU8;
    result.u8_ = pack_transposed<std::uint8_t>(table, num_states, num_symbols);
  } else if (num_states < 0xFFFF) {
    result.width_ = TableWidth::kU16;
    result.u16_ = pack_transposed<std::uint16_t>(table, num_states, num_symbols);
  } else {
    result.width_ = TableWidth::kI32;
    result.i32_ = pack_transposed<std::int32_t>(table, num_states, num_symbols);
  }
  return result;
}

PackedTable PackedTable::adopt(TableWidth width, std::int32_t num_states,
                               std::int32_t num_symbols, const void* entries,
                               std::shared_ptr<const void> owner) {
  PackedTable result;
  result.width_ = width;
  result.num_states_ = num_states;
  result.num_symbols_ = num_symbols;
  result.borrowed_ = entries;
  result.owner_ = std::move(owner);
  return result;
}

std::uint64_t PackedTable::build_count() {
  return g_build_count.load(std::memory_order_relaxed);
}

}  // namespace rispar
