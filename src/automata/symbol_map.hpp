// Byte → dense symbol-class mapping.
//
// Automata transition tables are indexed by *symbol classes*, not raw bytes:
// two bytes that no literal in the source RE distinguishes share a class.
// This keeps DFA tables small (|Q| × #classes instead of |Q| × 256) — the
// standard technique in production matchers — and lets synthetic benchmark
// NFAs use tiny abstract alphabets while recognizers still consume byte
// texts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "regex/ast.hpp"

namespace rispar {

class SymbolMap {
 public:
  /// Identity map over the first `k` printable symbols 'a', 'b', ...; used
  /// by synthetic automata whose alphabet is abstract. k <= 64.
  static SymbolMap identity(int k);

  /// Coarsest partition of the 256 bytes that refines every given class:
  /// bytes b1, b2 get the same symbol iff no set in `classes` separates
  /// them. Bytes not covered by any class map to symbol kUnmapped.
  static SymbolMap build(const std::vector<ByteSet>& classes);

  /// Symbol id of an unmapped byte; recognizers treat it as an immediate
  /// dead transition.
  static constexpr std::int32_t kUnmapped = -1;

  /// Rebuilds a map from a raw byte → symbol table (deserialization:
  /// automata/serialize.* writes raw_table() and loads through here,
  /// preserving the exact symbol numbering). Entries must be kUnmapped or
  /// a dense id range [0, max]; a gap or out-of-range id throws
  /// std::invalid_argument. The representative of each symbol is its
  /// smallest byte.
  static SymbolMap from_table(const std::array<std::int32_t, 256>& table);

  std::int32_t num_symbols() const { return num_symbols_; }

  std::int32_t symbol_of(unsigned char byte) const { return byte_to_symbol_[byte]; }

  /// Set of symbol ids intersecting the given byte class.
  std::vector<std::int32_t> symbols_of(const ByteSet& bytes) const;

  /// A representative byte per symbol (for diagnostics and text synthesis).
  unsigned char representative(std::int32_t symbol) const {
    return reps_[static_cast<std::size_t>(symbol)];
  }

  /// Translates a byte string into symbol ids (kUnmapped for alien bytes).
  /// Guarantee used by the recognizers: every output symbol is either
  /// kUnmapped or in [0, num_symbols()), so validating a translated chunk
  /// is a single scan for out-of-range values (first_invalid_symbol below)
  /// and the per-symbol range checks can be hoisted out of the kernels'
  /// inner loops.
  std::vector<std::int32_t> translate(std::string_view text) const;

  const std::array<std::int32_t, 256>& raw_table() const { return byte_to_symbol_; }

 private:
  std::int32_t num_symbols_ = 0;
  std::array<std::int32_t, 256> byte_to_symbol_{};
  std::vector<unsigned char> reps_;
};

/// Index of the first symbol outside [0, num_symbols), or chunk.size() when
/// every symbol is valid. This is the one-pass validation the chunk kernels
/// run before their unchecked inner loops: for text produced by
/// SymbolMap::translate it amounts to a scan for kUnmapped.
std::size_t first_invalid_symbol(std::span<const std::int32_t> chunk,
                                 std::int32_t num_symbols);

}  // namespace rispar
