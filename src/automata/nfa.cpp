#include "automata/nfa.hpp"

#include <algorithm>
#include <cassert>

namespace rispar {

State Nfa::add_state(bool is_final) {
  const State state = num_states();
  edges_.emplace_back();
  epsilon_.emplace_back();
  Bitset grown(static_cast<std::size_t>(state) + 1);
  for (std::size_t i = finals_.first(); i != Bitset::npos; i = finals_.next(i))
    grown.set(i);
  finals_ = std::move(grown);
  if (is_final) finals_.set(static_cast<std::size_t>(state));
  return state;
}

void Nfa::set_final(State state, bool is_final) {
  if (is_final)
    finals_.set(static_cast<std::size_t>(state));
  else
    finals_.reset(static_cast<std::size_t>(state));
}

void Nfa::add_edge(State from, Symbol symbol, State to) {
  assert(from >= 0 && from < num_states());
  assert(to >= 0 && to < num_states());
  assert(symbol >= 0 && symbol < num_symbols_);
  auto& out = edges_[static_cast<std::size_t>(from)];
  const NfaEdge edge{symbol, to};
  const auto it = std::lower_bound(out.begin(), out.end(), edge);
  if (it != out.end() && *it == edge) return;
  out.insert(it, edge);
}

void Nfa::add_epsilon(State from, State to) {
  assert(from >= 0 && from < num_states());
  assert(to >= 0 && to < num_states());
  auto& out = epsilon_[static_cast<std::size_t>(from)];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  ++epsilon_count_;
}

std::span<const NfaEdge> Nfa::edges(State state, Symbol symbol) const {
  const auto& out = edges_[static_cast<std::size_t>(state)];
  const auto lo = std::lower_bound(out.begin(), out.end(), NfaEdge{symbol, -1});
  auto hi = lo;
  while (hi != out.end() && hi->symbol == symbol) ++hi;
  return {lo, hi};
}

std::size_t Nfa::num_edges() const {
  std::size_t total = 0;
  for (const auto& out : edges_) total += out.size();
  return total;
}

std::int32_t Nfa::max_out_degree() const {
  std::int32_t degree = 0;
  for (const auto& out : edges_) {
    std::size_t run = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      run = (i > 0 && out[i].symbol == out[i - 1].symbol) ? run + 1 : 1;
      degree = std::max(degree, static_cast<std::int32_t>(run));
    }
  }
  return degree;
}

}  // namespace rispar
