#include "automata/searcher.hpp"

#include <vector>

#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/subset.hpp"
#include "util/fault_inject.hpp"

namespace rispar {

namespace {

/// The pattern's byte partition extended so every byte translates to a real
/// symbol (occurrences sit inside arbitrary text): the original classes
/// plus one class of all uncovered bytes. `remap` receives old symbol id →
/// id in the returned map.
SymbolMap full_byte_map(const SymbolMap& map, std::vector<Symbol>& remap) {
  const std::int32_t k = map.num_symbols();
  std::vector<ByteSet> classes(static_cast<std::size_t>(k));
  ByteSet uncovered;
  for (int b = 0; b < 256; ++b) {
    const std::int32_t s = map.symbol_of(static_cast<unsigned char>(b));
    if (s == SymbolMap::kUnmapped)
      uncovered.set(static_cast<std::size_t>(b));
    else
      classes[static_cast<std::size_t>(s)].set(static_cast<std::size_t>(b));
  }
  if (uncovered.any()) classes.push_back(uncovered);
  SymbolMap full = SymbolMap::build(classes);
  remap.resize(static_cast<std::size_t>(k));
  for (std::int32_t s = 0; s < k; ++s)
    remap[static_cast<std::size_t>(s)] = full.symbol_of(map.representative(s));
  return full;
}

/// The pattern NFA copied onto `full` (no extra states): the backbone both
/// the searcher and the reverse machine share.
Nfa lift_to_full_map(const Nfa& nfa, const SymbolMap& full,
                     const std::vector<Symbol>& remap) {
  Nfa lifted(full.num_symbols(), full);
  for (State q = 0; q < nfa.num_states(); ++q) lifted.add_state(nfa.is_final(q));
  for (State q = 0; q < nfa.num_states(); ++q)
    for (const NfaEdge& edge : nfa.edges(q))
      lifted.add_edge(q, remap[static_cast<std::size_t>(edge.symbol)], edge.target);
  lifted.set_initial(nfa.initial());
  return lifted;
}

}  // namespace

Nfa build_searcher_nfa(const Nfa& nfa) {
  std::vector<Symbol> remap;
  const SymbolMap full = full_byte_map(nfa.symbols(), remap);

  Nfa searcher(full.num_symbols(), full);
  const State loop = searcher.add_state(nfa.is_final(nfa.initial()));
  std::vector<State> copy(static_cast<std::size_t>(nfa.num_states()));
  for (State q = 0; q < nfa.num_states(); ++q)
    copy[static_cast<std::size_t>(q)] = searcher.add_state(nfa.is_final(q));
  for (State q = 0; q < nfa.num_states(); ++q)
    for (const NfaEdge& edge : nfa.edges(q))
      searcher.add_edge(copy[static_cast<std::size_t>(q)],
                        remap[static_cast<std::size_t>(edge.symbol)],
                        copy[static_cast<std::size_t>(edge.target)]);
  for (Symbol a = 0; a < full.num_symbols(); ++a) searcher.add_edge(loop, a, loop);
  for (const NfaEdge& edge : nfa.edges(nfa.initial()))
    searcher.add_edge(loop, remap[static_cast<std::size_t>(edge.symbol)],
                      copy[static_cast<std::size_t>(edge.target)]);
  searcher.set_initial(loop);
  return searcher;
}

Dfa build_searcher_dfa(const Nfa& nfa, std::int32_t max_subset_states) {
  Dfa dfa = minimize_dfa(determinize_bounded(build_searcher_nfa(nfa), max_subset_states));
  dfa.packed();  // pre-warm like every other query machine
  return dfa;
}

ReverseBegins build_reverse_begins(const Nfa& nfa, std::int32_t max_subset_states) {
  fault::maybe_throw("reverse.build");

  std::vector<Symbol> remap;
  const SymbolMap full = full_byte_map(nfa.symbols(), remap);

  // reverse() introduces an ε-branching fresh initial; normalize it away so
  // the subset construction sees the ε-free shape it requires.
  Nfa reversed = trim_unreachable(remove_epsilon(reverse(lift_to_full_map(nfa, full, remap))));
  ReverseBegins result;
  result.dfa = minimize_dfa(determinize_bounded(reversed, max_subset_states));
  result.dfa.packed();

  // Separator-soundness certificate: determinize the searcher NFA keeping
  // each DFA state's subset, and check that every state minimization would
  // merge into the initial's Nerode class is the pure {loop} subset (loop =
  // searcher state 0). Then "state == initial" in the minimized searcher
  // really means "no live partial occurrence here", so no occurrence can
  // straddle a separator and the backward scan may stop at one. If any
  // merged state still holds pattern states (p = "a|ba" after 'b'), a
  // separator can sit inside a true occurrence and the certificate fails.
  std::vector<std::vector<State>> contents;
  const Dfa det = determinize_bounded(build_searcher_nfa(nfa), max_subset_states, &contents);
  const NerodePartition classes = nerode_classes(det);
  const std::int32_t initial_class =
      classes.class_of[static_cast<std::size_t>(det.initial())];
  result.separators_sound = true;
  for (State s = 0; s < det.num_states(); ++s) {
    if (classes.class_of[static_cast<std::size_t>(s)] != initial_class) continue;
    const std::vector<State>& subset = contents[static_cast<std::size_t>(s)];
    if (subset.size() != 1 || subset[0] != 0) {
      result.separators_sound = false;
      break;
    }
  }
  return result;
}

}  // namespace rispar
