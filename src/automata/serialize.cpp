#include "automata/serialize.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace rispar {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed automaton file: " + detail);
}

struct Header {
  std::string kind;
  std::int32_t num_states = 0;
  std::int32_t num_symbols = 0;
};

Header read_header(std::istream& in, const std::string& expected_kind,
                   std::int32_t max_symbols) {
  Header header;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    fields >> header.kind >> header.num_states >> header.num_symbols;
    if (header.kind != expected_kind)
      malformed("expected '" + expected_kind + "' header");
    if (header.num_states < 0 || header.num_symbols < 1 ||
        header.num_symbols > max_symbols)
      malformed("bad header counts");
    return header;
  }
  malformed("missing header");
}

/// True for the tags that open a new section — the body loops stop there
/// (seeking back to the line start) so concatenated sections load in
/// sequence from one stream.
bool is_section_header(const std::string& tag) {
  return tag == "nfa" || tag == "dfa" || tag == "bytemap" || tag == "pattern";
}

Nfa load_nfa_impl(std::istream& in, std::int32_t max_symbols, const SymbolMap* map) {
  const Header header = read_header(in, "nfa", max_symbols);
  if (map != nullptr && map->num_symbols() != header.num_symbols)
    malformed("nfa symbol count disagrees with the bytemap");
  Nfa nfa = map != nullptr ? Nfa(header.num_symbols, *map)
                           : Nfa::with_identity_alphabet(header.num_symbols);
  for (std::int32_t s = 0; s < header.num_states; ++s) nfa.add_state();

  auto check_state = [&](std::int64_t s) {
    if (s < 0 || s >= header.num_states) malformed("state id out of range");
    return static_cast<State>(s);
  };

  std::string line;
  std::streampos line_start = in.tellg();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      line_start = in.tellg();
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "initial") {
      std::int64_t s;
      if (!(fields >> s)) malformed("initial");
      nfa.set_initial(check_state(s));
    } else if (tag == "final") {
      std::int64_t s;
      while (fields >> s) nfa.set_final(check_state(s));
    } else if (tag == "edge") {
      std::int64_t from, symbol, to;
      if (!(fields >> from >> symbol >> to)) malformed("edge");
      if (symbol < 0 || symbol >= header.num_symbols) malformed("symbol out of range");
      nfa.add_edge(check_state(from), static_cast<Symbol>(symbol), check_state(to));
    } else if (tag == "eps") {
      std::int64_t from, to;
      if (!(fields >> from >> to)) malformed("eps");
      nfa.add_epsilon(check_state(from), check_state(to));
    } else if (is_section_header(tag)) {
      in.clear();
      in.seekg(line_start);
      break;
    } else {
      malformed("unknown line tag '" + tag + "'");
    }
    line_start = in.tellg();
  }
  return nfa;
}

Dfa load_dfa_impl(std::istream& in, std::int32_t max_symbols, const SymbolMap* map) {
  const Header header = read_header(in, "dfa", max_symbols);
  if (map != nullptr && map->num_symbols() != header.num_symbols)
    malformed("dfa symbol count disagrees with the bytemap");
  Dfa dfa = map != nullptr ? Dfa(header.num_symbols, *map)
                           : Dfa::with_identity_alphabet(header.num_symbols);
  for (std::int32_t s = 0; s < header.num_states; ++s) dfa.add_state();

  auto check_state = [&](std::int64_t s) {
    if (s < 0 || s >= header.num_states) malformed("state id out of range");
    return static_cast<State>(s);
  };

  std::string line;
  std::streampos line_start = in.tellg();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      line_start = in.tellg();
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "initial") {
      std::int64_t s;
      if (!(fields >> s)) malformed("initial");
      dfa.set_initial(check_state(s));
    } else if (tag == "final") {
      std::int64_t s;
      while (fields >> s) dfa.set_final(check_state(s));
    } else if (tag == "trans") {
      std::int64_t from, symbol, to;
      if (!(fields >> from >> symbol >> to)) malformed("trans");
      if (symbol < 0 || symbol >= header.num_symbols) malformed("symbol out of range");
      dfa.set_transition(check_state(from), static_cast<Symbol>(symbol), check_state(to));
    } else if (is_section_header(tag)) {
      in.clear();
      in.seekg(line_start);
      break;
    } else {
      malformed("unknown line tag '" + tag + "'");
    }
    line_start = in.tellg();
  }
  return dfa;
}

}  // namespace

void save_nfa(std::ostream& out, const Nfa& nfa) {
  out << "nfa " << nfa.num_states() << ' ' << nfa.num_symbols() << '\n';
  out << "initial " << nfa.initial() << '\n';
  out << "final";
  for (std::size_t f = nfa.finals().first(); f != Bitset::npos; f = nfa.finals().next(f))
    out << ' ' << f;
  out << '\n';
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& edge : nfa.edges(s))
      out << "edge " << s << ' ' << edge.symbol << ' ' << edge.target << '\n';
    for (const State t : nfa.epsilon_edges(s)) out << "eps " << s << ' ' << t << '\n';
  }
}

void save_dfa(std::ostream& out, const Dfa& dfa) {
  out << "dfa " << dfa.num_states() << ' ' << dfa.num_symbols() << '\n';
  out << "initial " << dfa.initial() << '\n';
  out << "final";
  for (std::size_t f = dfa.finals().first(); f != Bitset::npos; f = dfa.finals().next(f))
    out << ' ' << f;
  out << '\n';
  for (State s = 0; s < dfa.num_states(); ++s)
    for (Symbol a = 0; a < dfa.num_symbols(); ++a)
      if (const State t = dfa.step(s, a); t != kDeadState)
        out << "trans " << s << ' ' << a << ' ' << t << '\n';
}

void save_symbol_map(std::ostream& out, const SymbolMap& map) {
  out << "bytemap";
  for (const std::int32_t symbol : map.raw_table()) out << ' ' << symbol;
  out << '\n';
}

Nfa load_nfa(std::istream& in) { return load_nfa_impl(in, 64, nullptr); }

Nfa load_nfa(std::istream& in, const SymbolMap& symbols) {
  return load_nfa_impl(in, 256, &symbols);
}

Dfa load_dfa(std::istream& in) { return load_dfa_impl(in, 64, nullptr); }

Dfa load_dfa(std::istream& in, const SymbolMap& symbols) {
  return load_dfa_impl(in, 256, &symbols);
}

SymbolMap load_symbol_map(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "bytemap") malformed("expected 'bytemap' line");
    std::array<std::int32_t, 256> table{};
    for (std::int32_t& entry : table)
      if (!(fields >> entry)) malformed("bytemap needs 256 entries");
    if (std::string extra; fields >> extra)
      malformed("bytemap holds more than 256 entries");
    try {
      return SymbolMap::from_table(table);
    } catch (const std::invalid_argument& error) {
      malformed(error.what());
    }
  }
  malformed("missing bytemap");
}

std::string nfa_to_string(const Nfa& nfa) {
  std::ostringstream out;
  save_nfa(out, nfa);
  return out.str();
}

Nfa nfa_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_nfa(in);
}

std::string dfa_to_string(const Dfa& dfa) {
  std::ostringstream out;
  save_dfa(out, dfa);
  return out.str();
}

Dfa dfa_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_dfa(in);
}

}  // namespace rispar
