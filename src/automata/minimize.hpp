// DFA state minimization and Nerode-class computation.
//
// Two consumers with different needs:
//  * The classic CSDPA baseline wants the *minimal DFA* as chunk automaton
//    (paper Fig. 1 uses the minimal DFA) — `minimize_dfa` merges classes.
//  * The RI-DFA interface reduction (paper Sect. 3.4) needs the equivalence
//    classes WITHOUT merging (Fig. 6b: merging would break determinism of
//    the multi-entry machine or force extra merges) — `nerode_classes`
//    exposes the partition directly.
// The partition is computed by Hopcroft's O(kn log n) refinement on the
// completed automaton; the sink's class marks dead states.
#pragma once

#include <vector>

#include "automata/dfa.hpp"

namespace rispar {

struct NerodePartition {
  /// Class id per state of the *input* DFA (dense, 0-based).
  std::vector<std::int32_t> class_of;
  std::int32_t num_classes = 0;
  /// Class of states equivalent to the dead sink (no final reachable);
  /// -1 when every state can still accept.
  std::int32_t dead_class = -1;
};

/// Language-equivalence (undistinguishability) classes of all states. The
/// DFA's initial state is irrelevant — the relation is per-state, which is
/// exactly why it extends to multi-entry RI-DFAs (paper Sect. 3.4).
NerodePartition nerode_classes(const Dfa& dfa);

/// Classic minimization: quotient by Nerode classes, restricted to states
/// reachable from the initial state, with dead states removed (the result
/// is partial). Language-equivalent to the input.
Dfa minimize_dfa(const Dfa& dfa);

}  // namespace rispar
