// Glushkov / McNaughton–Yamada position construction [19 in the paper].
//
// Produces an ε-free NFA with (#positions + 1) states: state 0 is the
// initial ε-position, state i>0 corresponds to the i-th literal occurrence.
// This is the paper's "standard RE→NFA translator": every benchmark NFA in
// Tab. 1 is built this way, and the RI-DFA pipeline consumes its output
// directly (no ε-removal pass needed).
#pragma once

#include "automata/nfa.hpp"
#include "regex/ast.hpp"

namespace rispar {

/// Compiles `re` (bounded repeats are expanded first). The SymbolMap of the
/// result is the coarsest byte partition distinguishing the RE's literal
/// classes, so recognizers consume byte texts directly.
Nfa glushkov_nfa(const RePtr& re);

}  // namespace rispar
