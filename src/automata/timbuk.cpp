#include "automata/timbuk.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rispar {

namespace {

[[noreturn]] void malformed(const std::string& detail) {
  throw std::runtime_error("malformed Timbuk file: " + detail);
}

// Splits "sym(q) -> p" / "leaf() -> q" into its three fields.
struct Rule {
  std::string symbol;
  std::string argument;  // empty for leaf rules
  std::string target;
};

Rule parse_rule(const std::string& line) {
  const auto open = line.find('(');
  const auto close = line.find(')', open);
  const auto arrow = line.find("->", close);
  if (open == std::string::npos || close == std::string::npos ||
      arrow == std::string::npos)
    malformed("bad transition line: " + line);
  auto strip = [](std::string text) {
    const auto begin = text.find_first_not_of(" \t");
    const auto end = text.find_last_not_of(" \t");
    if (begin == std::string::npos) return std::string{};
    return text.substr(begin, end - begin + 1);
  };
  Rule rule;
  rule.symbol = strip(line.substr(0, open));
  rule.argument = strip(line.substr(open + 1, close - open - 1));
  rule.target = strip(line.substr(arrow + 2));
  if (rule.symbol.empty() || rule.target.empty())
    malformed("bad transition line: " + line);
  return rule;
}

}  // namespace

Nfa load_timbuk(std::istream& in) {
  std::map<std::string, State> state_ids;
  std::map<std::string, Symbol> symbol_ids;
  std::vector<std::string> final_names;
  std::vector<Rule> rules;

  enum class Section { kPreamble, kTransitions } section = Section::kPreamble;
  std::string line;
  bool saw_automaton = false;
  while (std::getline(in, line)) {
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    std::istringstream probe(line);
    std::string head;
    if (!(probe >> head)) continue;

    if (section == Section::kPreamble) {
      if (head == "Ops") {
        // Register unary symbols in declaration order so ids are stable
        // across save/load round-trips; nullary symbols are initial-state
        // markers and get no id.
        std::string token;
        while (probe >> token) {
          const auto colon = token.find(':');
          if (colon == std::string::npos) continue;
          const std::string name = token.substr(0, colon);
          const int arity = std::atoi(token.c_str() + colon + 1);
          if (arity >= 1)
            symbol_ids.emplace(name, static_cast<Symbol>(symbol_ids.size()));
        }
        continue;
      } else if (head == "Automaton") {
        saw_automaton = true;
      } else if (head == "States") {
        std::string name;
        while (probe >> name) {
          // Optional ":0" arity suffixes appear in some dumps.
          if (const auto colon = name.find(':'); colon != std::string::npos)
            name = name.substr(0, colon);
          state_ids.emplace(name, static_cast<State>(state_ids.size()));
        }
      } else if (head == "Final") {
        std::string keyword, name;
        probe >> keyword;  // "States"
        while (probe >> name) final_names.push_back(name);
      } else if (head == "Transitions") {
        section = Section::kTransitions;
      } else {
        malformed("unexpected line: " + line);
      }
      continue;
    }
    rules.push_back(parse_rule(line));
  }
  if (!saw_automaton) malformed("missing 'Automaton' header");
  if (section != Section::kTransitions) malformed("missing 'Transitions' section");

  // Symbols: every non-leaf rule symbol, dense in first-seen order.
  for (const Rule& rule : rules) {
    if (rule.argument.empty()) continue;
    if (symbol_ids.emplace(rule.symbol, static_cast<Symbol>(symbol_ids.size())).second &&
        symbol_ids.size() > 64)
      malformed("more than 64 distinct symbols");
  }
  const auto k = static_cast<std::int32_t>(std::max<std::size_t>(symbol_ids.size(), 1));

  Nfa nfa(k, SymbolMap::identity(k));
  for (std::size_t s = 0; s < state_ids.size(); ++s) nfa.add_state();
  auto state_of = [&](const std::string& name) -> State {
    const auto it = state_ids.find(name);
    if (it == state_ids.end()) malformed("unknown state '" + name + "'");
    return it->second;
  };
  for (const auto& name : final_names) nfa.set_final(state_of(name));

  // Leaf rules mark initial states; multiple initials fold behind a fresh
  // start state with ε-moves.
  std::vector<State> initials;
  for (const Rule& rule : rules) {
    if (rule.argument.empty()) {
      initials.push_back(state_of(rule.target));
    } else {
      nfa.add_edge(state_of(rule.argument), symbol_ids.at(rule.symbol),
                   state_of(rule.target));
    }
  }
  if (initials.empty()) malformed("no initial (leaf) rule");
  if (initials.size() == 1) {
    nfa.set_initial(initials.front());
  } else {
    const State start = nfa.add_state();
    nfa.set_initial(start);
    for (const State q : initials) nfa.add_epsilon(start, q);
  }
  return nfa;
}

Nfa timbuk_from_string(const std::string& text) {
  std::istringstream in(text);
  return load_timbuk(in);
}

void save_timbuk(std::ostream& out, const Nfa& nfa, const std::string& name) {
  if (nfa.has_epsilon())
    throw std::invalid_argument("Timbuk word automata cannot carry eps edges");

  out << "Ops i:0";
  for (Symbol a = 0; a < nfa.num_symbols(); ++a) out << " s" << a << ":1";
  out << "\n\nAutomaton " << name << "\nStates";
  for (State s = 0; s < nfa.num_states(); ++s) out << " q" << s;
  out << "\nFinal States";
  for (std::size_t f = nfa.finals().first(); f != Bitset::npos; f = nfa.finals().next(f))
    out << " q" << f;
  out << "\nTransitions\n";
  out << "i() -> q" << nfa.initial() << '\n';
  for (State s = 0; s < nfa.num_states(); ++s)
    for (const auto& edge : nfa.edges(s))
      out << 's' << edge.symbol << "(q" << s << ") -> q" << edge.target << '\n';
}

std::string timbuk_to_string(const Nfa& nfa, const std::string& name) {
  std::ostringstream out;
  save_timbuk(out, nfa, name);
  return out.str();
}

}  // namespace rispar
