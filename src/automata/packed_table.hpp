// Width-specialized, symbol-major copies of a dense DFA transition table.
//
// The RI-DFA construction produces small chunk automata (tens to a few
// hundred states), yet the seed stored every table entry as an int32 in
// state-major order. The packed copy differs in two ways, both for the
// benefit of the speculative multi-start kernels (parallel/ca_run.cpp):
//
//  * entries use the narrowest unsigned type that can hold `num_states`
//    plus a dead sentinel, shrinking the working set up to 4× so the hot
//    part of the table stays L1-resident;
//  * the layout is symbol-major (column(symbol)[state]): a kernel advancing
//    N runs over one symbol hoists the column base out of the per-run loop
//    — no per-lookup row multiply — and the N lookups land in one
//    contiguous `num_states`-sized column.
//
// Encoding: states keep their ids; the dead transition is the all-ones
// value of the entry type (255 / 65535) for the narrow widths and
// kDeadState (-1) for the int32 fallback. `PackedDead<T>::value` is the
// sentinel of entry type T. Kernels are templated over T and dispatch on
// `width()`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "automata/nfa.hpp"

namespace rispar {

enum class TableWidth : std::uint8_t { kU8, kU16, kI32 };

template <typename T>
struct PackedDead;
template <>
struct PackedDead<std::uint8_t> {
  static constexpr std::uint8_t value = 0xFF;
};
template <>
struct PackedDead<std::uint16_t> {
  static constexpr std::uint16_t value = 0xFFFF;
};
template <>
struct PackedDead<std::int32_t> {
  static constexpr std::int32_t value = kDeadState;
};

/// The dead sentinel as it arrives from a zero-extending column gather
/// (util/simd_gather.hpp): 0xFF / 0xFFFF for the narrow widths, kDeadState
/// for i32. The kSimd kernels compare gathered i32 lanes against this.
template <typename T>
inline constexpr std::int32_t PackedWideDead =
    static_cast<std::int32_t>(PackedDead<T>::value);

/// Entries of tail slack appended after the num_states × num_symbols table
/// body. The AVX2 gathers load a full dword at each entry's byte offset, so
/// the last u8/u16 entries over-read up to 3 bytes; four sentinel-filled
/// slack entries (>= 4 bytes at every width) keep those loads inside the
/// allocation. The slack is not part of any column and never holds a state.
inline constexpr std::size_t kGatherSlackEntries = 4;

class PackedTable {
 public:
  PackedTable() = default;

  /// Packs `table` (state-major, num_states × num_symbols, dead =
  /// kDeadState) into the narrowest width whose sentinel cannot collide
  /// with a state id: u8 for < 255 states, u16 for < 65535, int32
  /// otherwise.
  static PackedTable build(const std::vector<State>& table, std::int32_t num_states,
                           std::int32_t num_symbols);

  /// Adopts an already-packed entry array IN PLACE — the zero-copy path of
  /// the mmap'd bundle loader (src/bundle/). `entries` must point at
  /// `num_states × num_symbols + kGatherSlackEntries` entries of the given
  /// width, laid out exactly as build() produces them (symbol-major,
  /// sentinel-filled slack tail), aligned to the entry size; `owner` keeps
  /// the backing storage (the file mapping) alive for as long as this table
  /// or ANY copy of it exists, so a Dfa copied out of a mapped Pattern stays
  /// valid on its own.
  static PackedTable adopt(TableWidth width, std::int32_t num_states,
                           std::int32_t num_symbols, const void* entries,
                           std::shared_ptr<const void> owner);

  /// True when the entries are a borrowed view (adopt()) rather than owned
  /// storage (build()).
  bool adopted() const { return borrowed_ != nullptr; }

  /// Monotone count of build() calls across the process — the observability
  /// hook behind the "a mapped load never re-packs" assertion
  /// (tests/test_bundle.cpp). Snapshot before, compare after.
  static std::uint64_t build_count();

  TableWidth width() const { return width_; }
  std::int32_t num_states() const { return num_states_; }
  std::int32_t num_symbols() const { return num_symbols_; }

  /// Total entries including the gather slack tail — the byte size of the
  /// entry array is total_entries() × entry size (bundle section writer).
  std::size_t total_entries() const {
    return static_cast<std::size_t>(num_states_) * static_cast<std::size_t>(num_symbols_) +
           kGatherSlackEntries;
  }

  /// Symbol-major entry array; T must match width(). Column `a` starts at
  /// data<T>() + a * num_states() and is indexed by state.
  template <typename T>
  const T* data() const;

  template <typename T>
  const T* column(Symbol symbol) const {
    return data<T>() + static_cast<std::size_t>(symbol) * num_states_;
  }

 private:
  TableWidth width_ = TableWidth::kI32;
  std::int32_t num_states_ = 0;
  std::int32_t num_symbols_ = 0;
  std::vector<std::uint8_t> u8_;
  std::vector<std::uint16_t> u16_;
  std::vector<std::int32_t> i32_;
  /// adopt() view: entries live in external storage kept alive by owner_.
  const void* borrowed_ = nullptr;
  std::shared_ptr<const void> owner_;
};

/// Result of a single run over a packed table: `end` is kDeadState when the
/// run died (dead transition or out-of-range symbol) and `consumed` counts
/// the executed transitions — the killing symbol is not counted (accounting
/// convention: parallel/ca_run.hpp).
struct PackedRun {
  State end = kDeadState;
  std::size_t consumed = 0;
};

/// Scalar single-start loop shared by the serial oracle (core/serial_match)
/// and the chunk kernels' single-start / lone-survivor fast paths
/// (parallel/ca_run). One predictable validity branch per symbol — the
/// unsigned cast folds the `< 0` and `>= num_symbols` checks into one
/// compare.
template <typename T>
PackedRun run_packed_single(const PackedTable& table, State start, const Symbol* input,
                            std::size_t length) {
  constexpr T kDead = PackedDead<T>::value;
  const T* entries = table.data<T>();
  const auto n = static_cast<std::size_t>(table.num_states());
  const auto limit = static_cast<std::uint32_t>(table.num_symbols());
  T state = static_cast<T>(start);
  for (std::size_t i = 0; i < length; ++i) {
    if (static_cast<std::uint32_t>(input[i]) >= limit) return {kDeadState, i};
    state = entries[static_cast<std::size_t>(input[i]) * n +
                    static_cast<std::size_t>(state)];
    if (state == kDead) return {kDeadState, i};
  }
  return {static_cast<State>(state), length};
}

// The borrowed-view branch costs one predictable compare per data<T>() call;
// kernels hoist the column base out of their inner loops, so this is once
// per chunk run, not per symbol.
template <>
inline const std::uint8_t* PackedTable::data<std::uint8_t>() const {
  return borrowed_ != nullptr ? static_cast<const std::uint8_t*>(borrowed_)
                              : u8_.data();
}
template <>
inline const std::uint16_t* PackedTable::data<std::uint16_t>() const {
  return borrowed_ != nullptr ? static_cast<const std::uint16_t*>(borrowed_)
                              : u16_.data();
}
template <>
inline const std::int32_t* PackedTable::data<std::int32_t>() const {
  return borrowed_ != nullptr ? static_cast<const std::int32_t*>(borrowed_)
                              : i32_.data();
}

}  // namespace rispar
