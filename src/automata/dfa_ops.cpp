#include "automata/dfa_ops.hpp"

#include <cassert>
#include <deque>
#include <unordered_map>

namespace rispar {

Dfa dfa_complement(const Dfa& dfa) {
  Dfa complete = dfa.completed();
  for (State s = 0; s < complete.num_states(); ++s)
    complete.set_final(s, !complete.is_final(s));
  return complete;
}

namespace {

Dfa product(const Dfa& a, const Dfa& b, bool both_final) {
  assert(a.num_symbols() == b.num_symbols());
  const std::int32_t k = a.num_symbols();

  // Pair (sa, sb) with kDeadState meaning "that side died". For the
  // intersection a dead side kills the pair; for the union it survives as
  // long as the other side lives.
  struct PairHash {
    std::size_t operator()(const std::pair<State, State>& p) const {
      return static_cast<std::size_t>(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first)) << 32) ^
          static_cast<std::uint32_t>(p.second));
    }
  };

  Dfa result(k, a.symbols());
  std::unordered_map<std::pair<State, State>, State, PairHash> index;
  std::deque<std::pair<State, State>> queue;

  auto is_final_pair = [&](State sa, State sb) {
    const bool fa = sa != kDeadState && a.is_final(sa);
    const bool fb = sb != kDeadState && b.is_final(sb);
    return both_final ? (fa && fb) : (fa || fb);
  };
  auto intern = [&](State sa, State sb) -> State {
    const auto key = std::make_pair(sa, sb);
    if (const auto it = index.find(key); it != index.end()) return it->second;
    const State id = result.add_state(is_final_pair(sa, sb));
    index.emplace(key, id);
    queue.push_back(key);
    return id;
  };

  intern(a.initial(), b.initial());
  result.set_initial(0);
  while (!queue.empty()) {
    const auto [sa, sb] = queue.front();
    queue.pop_front();
    const State from = index.at({sa, sb});
    for (Symbol x = 0; x < k; ++x) {
      const State ta = sa == kDeadState ? kDeadState : a.step(sa, x);
      const State tb = sb == kDeadState ? kDeadState : b.step(sb, x);
      if (both_final) {
        if (ta == kDeadState || tb == kDeadState) continue;  // pair dies
      } else {
        if (ta == kDeadState && tb == kDeadState) continue;
      }
      result.set_transition(from, x, intern(ta, tb));
    }
  }
  return result;
}

}  // namespace

Dfa dfa_intersection(const Dfa& a, const Dfa& b) { return product(a, b, true); }
Dfa dfa_union(const Dfa& a, const Dfa& b) { return product(a, b, false); }

bool dfa_empty(const Dfa& dfa) {
  return !dfa_shortest_member(dfa).has_value();
}

std::optional<std::vector<Symbol>> dfa_shortest_member(const Dfa& dfa) {
  if (dfa.num_states() == 0) return std::nullopt;
  struct Crumb {
    State parent;
    Symbol via;
  };
  std::vector<Crumb> crumbs(static_cast<std::size_t>(dfa.num_states()),
                            {kDeadState, -1});
  std::vector<bool> seen(static_cast<std::size_t>(dfa.num_states()), false);
  std::deque<State> queue{dfa.initial()};
  seen[static_cast<std::size_t>(dfa.initial())] = true;

  State found = kDeadState;
  while (!queue.empty() && found == kDeadState) {
    const State state = queue.front();
    queue.pop_front();
    if (dfa.is_final(state)) {
      found = state;
      break;
    }
    for (Symbol x = 0; x < dfa.num_symbols(); ++x) {
      const State next = dfa.step(state, x);
      if (next == kDeadState || seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      crumbs[static_cast<std::size_t>(next)] = {state, x};
      queue.push_back(next);
    }
  }
  if (found == kDeadState) return std::nullopt;

  std::vector<Symbol> word;
  for (State s = found; s != dfa.initial() || word.empty();) {
    const Crumb& crumb = crumbs[static_cast<std::size_t>(s)];
    if (crumb.via < 0) break;  // reached the initial state
    word.push_back(crumb.via);
    s = crumb.parent;
    if (s == dfa.initial()) break;
  }
  return std::vector<Symbol>(word.rbegin(), word.rend());
}

std::vector<std::uint64_t> dfa_census(const Dfa& dfa, std::size_t max_length) {
  // counts[s] = number of paths of the current length from initial to s.
  const auto n = static_cast<std::size_t>(dfa.num_states());
  std::vector<std::uint64_t> counts(n, 0), next(n, 0);
  counts[static_cast<std::size_t>(dfa.initial())] = 1;

  std::vector<std::uint64_t> census;
  census.reserve(max_length + 1);
  for (std::size_t length = 0; length <= max_length; ++length) {
    std::uint64_t accepted = 0;
    for (State s = 0; s < dfa.num_states(); ++s)
      if (dfa.is_final(s)) accepted += counts[static_cast<std::size_t>(s)];
    census.push_back(accepted);
    if (length == max_length) break;
    std::fill(next.begin(), next.end(), 0);
    for (State s = 0; s < dfa.num_states(); ++s) {
      const std::uint64_t ways = counts[static_cast<std::size_t>(s)];
      if (ways == 0) continue;
      for (Symbol x = 0; x < dfa.num_symbols(); ++x)
        if (const State t = dfa.step(s, x); t != kDeadState)
          next[static_cast<std::size_t>(t)] += ways;
    }
    std::swap(counts, next);
  }
  return census;
}

}  // namespace rispar
