// The Σ*p searcher family and its reverse-DFA companion.
//
// Forward: build_searcher_nfa/build_searcher_dfa derive the occurrence
// machine Pattern::searcher() caches — the pattern NFA over a SymbolMap
// extended to cover all 256 bytes, plus a Σ-self-loop start state, so the
// machine is final after exactly the prefixes ending an occurrence.
//
// Reverse (ISSUE 9 tentpole): build_reverse_begins derives the machine that
// pins *leftmost-exact* begins. The reversed pattern NFA (same full byte
// map, NO Σ-loop) is determinized and minimized; running it backwards from
// a match end over the searcher-translated text visits final states exactly
// at the positions b with text[b..end) ∈ L(p) — the smallest such b is the
// exact begin. The struct also records whether the searcher's separator
// positions are *sound* truncation points for that backward scan (see
// ReverseBegins::separators_sound): minimization can merge a subset that
// still holds a live partial occurrence into the initial state's class
// (e.g. p = "a|ba": after 'b' the subset {loop, after-b} is language-
// equivalent to {loop}), in which case a separator may sit strictly inside
// a true occurrence and the scan must not stop there.
#pragma once

#include <cstdint>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"

namespace rispar {

/// The pattern NFA lifted onto a byte-complete alphabet and extended with a
/// Σ-self-loop start state (state 0). Requires an ε-free input NFA.
Nfa build_searcher_nfa(const Nfa& nfa);

/// Minimal packed DFA of build_searcher_nfa — what Pattern::searcher()
/// caches. Throws ResourceExhausted when the determinization exceeds
/// `max_subset_states` (<= 0 = unbounded).
Dfa build_searcher_dfa(const Nfa& nfa, std::int32_t max_subset_states);

/// The cached reverse-confirmation artifact of a Pattern (lazily built by
/// Pattern::reverse_begins). `dfa` consumes searcher-translated symbols
/// backwards; its initial state is final iff ε ∈ L(p).
struct ReverseBegins {
  Dfa dfa;
  /// True when every searcher state minimized into the initial state's
  /// Nerode class corresponds to the pure {loop} subset — i.e. a separator
  /// position provably carries no live partial occurrence, so the backward
  /// scan (and a streaming session's history carry) may stop at the last
  /// separator. When false, exact-begin resolution must scan to the window
  /// start (one-shot) or retain history from the stream start (streaming).
  bool separators_sound = false;
};

/// Builds the reverse machine + the separator-soundness certificate.
/// Fault-injection site: "reverse.build". Throws ResourceExhausted when a
/// determinization exceeds `max_subset_states` (<= 0 = unbounded).
ReverseBegins build_reverse_begins(const Nfa& nfa, std::int32_t max_subset_states);

}  // namespace rispar
