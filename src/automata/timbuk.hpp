// Reader for the Timbuk word-automata format used by the Ondrik collection
// (github.com/ondrik/automata-benchmarks) — the corpus behind the paper's
// Tab. 2 and Sect. 4.5. The environment is offline, so the repo ships a
// synthetic stand-in (workloads/collection.hpp); this loader is the bridge
// that lets anyone with the real corpus rerun those experiments verbatim.
//
// Grammar (word automata encoded as unary tree automata):
//   Ops <sym>:<arity> ...          -- nullary symbols mark initial states
//   Automaton <name>
//   States <q> ...
//   Final States <q> ...
//   Transitions
//   <leaf>() -> <q>                -- q is an initial state
//   <sym>(<q>) -> <p>              -- p ∈ ρ(q, sym)
// Multiple initial states are folded behind a fresh start with ε-moves
// (remove_epsilon(trim_unreachable(...)) afterwards if an ε-free NFA is
// required).
#pragma once

#include <iosfwd>
#include <string>

#include "automata/nfa.hpp"

namespace rispar {

/// Throws std::runtime_error on malformed input; symbols are assigned dense
/// ids in first-seen order (at most 64 distinct unary symbols).
Nfa load_timbuk(std::istream& in);
Nfa timbuk_from_string(const std::string& text);

/// Writes an NFA back out in the same dialect (ε edges are not
/// representable and raise std::invalid_argument).
void save_timbuk(std::ostream& out, const Nfa& nfa, const std::string& name = "A");
std::string timbuk_to_string(const Nfa& nfa, const std::string& name = "A");

}  // namespace rispar
