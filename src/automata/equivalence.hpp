// Language-equivalence checks, used pervasively by the test suite (the
// RI-DFA, the minimized RI-DFA, the minimal DFA and the source NFA must all
// recognize the same language) and by the collection tooling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"

namespace rispar {

/// Hopcroft–Karp style pairwise BFS with union-find; partial transitions are
/// treated as moves into a shared dead state. O(n α(n)) pairs.
bool dfa_equivalent(const Dfa& a, const Dfa& b);

/// When the DFAs differ, produces a shortest-ish witness string (symbol ids)
/// accepted by exactly one of them; nullopt when equivalent.
std::optional<std::vector<Symbol>> dfa_distinguishing_word(const Dfa& a, const Dfa& b);

/// Determinizes both sides and compares. Alphabets must match symbol-wise.
bool nfa_equivalent(const Nfa& a, const Nfa& b);

}  // namespace rispar
