// Plain-text serialization of NFAs and DFAs.
//
// Format (line-oriented, '#' comments):
//   nfa|dfa <num_states> <num_symbols>
//   initial <state>
//   final <state> [<state> ...]
//   edge <from> <symbol> <to>          (NFA)
//   eps <from> <to>                    (NFA)
//   trans <from> <symbol> <to>         (DFA)
// SymbolMaps are reconstructed as identity alphabets; the format is meant
// for test fixtures, examples and collection dumps, not byte-level regexes.
#pragma once

#include <iosfwd>
#include <string>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"

namespace rispar {

void save_nfa(std::ostream& out, const Nfa& nfa);
void save_dfa(std::ostream& out, const Dfa& dfa);

/// Throws std::runtime_error on malformed input.
Nfa load_nfa(std::istream& in);
Dfa load_dfa(std::istream& in);

/// String round-trip conveniences.
std::string nfa_to_string(const Nfa& nfa);
Nfa nfa_from_string(const std::string& text);
std::string dfa_to_string(const Dfa& dfa);
Dfa dfa_from_string(const std::string& text);

}  // namespace rispar
