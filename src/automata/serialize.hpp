// Plain-text serialization of NFAs, DFAs and SymbolMaps.
//
// Format (line-oriented, '#' comments):
//   nfa|dfa <num_states> <num_symbols>
//   initial <state>
//   final <state> [<state> ...]
//   edge <from> <symbol> <to>          (NFA)
//   eps <from> <to>                    (NFA)
//   trans <from> <symbol> <to>         (DFA)
//   bytemap <256 symbol ids>           (SymbolMap; -1 = unmapped byte)
//
// The one-argument loaders reconstruct SymbolMaps as identity alphabets —
// good for test fixtures, examples and collection dumps. Byte-level
// automata (regex compilations) serialize their map with save_symbol_map
// and load through the map-taking overloads, which preserve the exact
// symbol numbering; Pattern::serialize()/deserialize() bundle sections
// this way. Loaders stop (without consuming) at the next section header,
// so sections concatenate in one SEEKABLE stream (string/file streams —
// the stop seeks back to the header line; an unseekable stream such as
// std::cin supports single-section loads only).
#pragma once

#include <iosfwd>
#include <string>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"

namespace rispar {

void save_nfa(std::ostream& out, const Nfa& nfa);
void save_dfa(std::ostream& out, const Dfa& dfa);
void save_symbol_map(std::ostream& out, const SymbolMap& map);

/// Throws std::runtime_error on malformed input.
Nfa load_nfa(std::istream& in);
Dfa load_dfa(std::istream& in);
SymbolMap load_symbol_map(std::istream& in);

/// Loaders for byte-level automata: the automaton's alphabet is the given
/// map (symbol counts must agree — up to 256 classes instead of the
/// identity loaders' 64).
Nfa load_nfa(std::istream& in, const SymbolMap& symbols);
Dfa load_dfa(std::istream& in, const SymbolMap& symbols);

/// String round-trip conveniences.
std::string nfa_to_string(const Nfa& nfa);
Nfa nfa_from_string(const std::string& text);
std::string dfa_to_string(const Dfa& dfa);
Dfa dfa_from_string(const std::string& text);

}  // namespace rispar
