#include "automata/minimize.hpp"

#include <algorithm>
#include <numeric>

namespace rispar {

namespace {

// Hopcroft's partition refinement on a complete DFA given as an explicit
// inverse transition function.
class Refiner {
 public:
  Refiner(std::int32_t num_states, std::int32_t num_symbols,
          const std::vector<State>& table, const Bitset& finals)
      : n_(num_states), k_(num_symbols) {
    // Inverse transitions in CSR form, one block per symbol.
    std::vector<std::int32_t> in_degree(static_cast<std::size_t>(n_) * k_, 0);
    for (State s = 0; s < n_; ++s)
      for (Symbol a = 0; a < k_; ++a)
        ++in_degree[static_cast<std::size_t>(table[idx(s, a)]) * k_ + a];
    inverse_offset_.resize(static_cast<std::size_t>(n_) * k_ + 1, 0);
    for (std::size_t i = 0; i < in_degree.size(); ++i)
      inverse_offset_[i + 1] = inverse_offset_[i] + in_degree[i];
    inverse_.resize(static_cast<std::size_t>(n_) * k_);
    std::vector<std::int32_t> cursor(inverse_offset_.begin(), inverse_offset_.end() - 1);
    for (State s = 0; s < n_; ++s)
      for (Symbol a = 0; a < k_; ++a) {
        const State t = table[idx(s, a)];
        inverse_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(t) * k_ + a]++)] = s;
      }

    // Partition storage: `elements_` is a permutation of states grouped by
    // block; each block is [begin, end) plus a split marker.
    elements_.resize(static_cast<std::size_t>(n_));
    std::iota(elements_.begin(), elements_.end(), 0);
    location_.resize(static_cast<std::size_t>(n_));
    block_of_.assign(static_cast<std::size_t>(n_), 0);

    // Initial partition: finals vs non-finals.
    std::stable_partition(elements_.begin(), elements_.end(), [&](State s) {
      return finals.test(static_cast<std::size_t>(s));
    });
    std::int32_t num_finals = 0;
    for (State s = 0; s < n_; ++s)
      if (finals.test(static_cast<std::size_t>(s))) ++num_finals;

    if (num_finals == 0 || num_finals == n_) {
      blocks_.push_back({0, n_, 0});
    } else {
      blocks_.push_back({0, num_finals, num_finals});
      blocks_.push_back({num_finals, n_, n_});
      for (std::int32_t i = num_finals; i < n_; ++i)
        block_of_[static_cast<std::size_t>(elements_[static_cast<std::size_t>(i)])] = 1;
      // Seed the worklist with the smaller half for every symbol.
      const std::int32_t seed = (num_finals <= n_ - num_finals) ? 0 : 1;
      for (Symbol a = 0; a < k_; ++a) worklist_.push_back({seed, a});
    }
    blocks_[0].marker = blocks_[0].begin;
    if (blocks_.size() > 1) blocks_[1].marker = blocks_[1].begin;
    for (std::int32_t i = 0; i < n_; ++i)
      location_[static_cast<std::size_t>(elements_[static_cast<std::size_t>(i)])] = i;
  }

  void refine() {
    std::vector<State> splitter_members;
    while (!worklist_.empty()) {
      const auto [splitter, symbol] = worklist_.back();
      worklist_.pop_back();

      // Snapshot the splitter's members: mark() permutes elements_ in place
      // (possibly inside the splitter block itself), so iterating the live
      // range would skip or repeat members.
      {
        const Block block = blocks_[static_cast<std::size_t>(splitter)];
        splitter_members.assign(elements_.begin() + block.begin,
                                elements_.begin() + block.end);
      }

      // Collect X = preimage of the splitter block under `symbol`, marking
      // touched blocks by moving members before the block's marker.
      touched_.clear();
      for (const State member : splitter_members) {
        const std::size_t row = static_cast<std::size_t>(member) * k_ +
                                static_cast<std::size_t>(symbol);
        for (std::int32_t e = inverse_offset_[row]; e < inverse_offset_[row + 1]; ++e)
          mark(inverse_[static_cast<std::size_t>(e)]);
      }

      // Split every touched block at its marker. Only index-based access:
      // push_back below can reallocate blocks_.
      for (const std::int32_t b : touched_) {
        const std::int32_t mid = blocks_[static_cast<std::size_t>(b)].marker;
        const std::int32_t begin = blocks_[static_cast<std::size_t>(b)].begin;
        const std::int32_t end = blocks_[static_cast<std::size_t>(b)].end;
        if (mid == end || mid == begin) {
          blocks_[static_cast<std::size_t>(b)].marker = begin;  // no split
          continue;
        }
        // New block takes the marked half [begin, mid); old keeps [mid, end).
        const auto new_id = static_cast<std::int32_t>(blocks_.size());
        blocks_.push_back({begin, mid, begin});
        blocks_[static_cast<std::size_t>(b)].begin = mid;
        blocks_[static_cast<std::size_t>(b)].marker = mid;
        for (std::int32_t i = begin; i < mid; ++i)
          block_of_[static_cast<std::size_t>(elements_[static_cast<std::size_t>(i)])] =
              new_id;
        // Enqueue both halves for all symbols. (Hopcroft's smaller-half
        // refinement needs worklist-membership tracking to stay sound; the
        // unconditional form is correct and still fast at our sizes.)
        for (Symbol a = 0; a < k_; ++a) {
          worklist_.push_back({new_id, a});
          worklist_.push_back({b, a});
        }
      }
    }
  }

  std::int32_t num_blocks() const { return static_cast<std::int32_t>(blocks_.size()); }
  std::int32_t block_of(State s) const { return block_of_[static_cast<std::size_t>(s)]; }

 private:
  struct Block {
    std::int32_t begin, end, marker;
  };

  std::size_t idx(State s, Symbol a) const {
    return static_cast<std::size_t>(s) * k_ + static_cast<std::size_t>(a);
  }

  void mark(State s) {
    const std::int32_t b = block_of_[static_cast<std::size_t>(s)];
    Block& block = blocks_[static_cast<std::size_t>(b)];
    const std::int32_t pos = location_[static_cast<std::size_t>(s)];
    if (pos < block.marker) return;  // already marked
    if (block.marker == block.begin) touched_.push_back(b);
    // Swap s to the marker position and advance the marker.
    const State other = elements_[static_cast<std::size_t>(block.marker)];
    std::swap(elements_[static_cast<std::size_t>(pos)],
              elements_[static_cast<std::size_t>(block.marker)]);
    location_[static_cast<std::size_t>(s)] = block.marker;
    location_[static_cast<std::size_t>(other)] = pos;
    ++block.marker;
  }

  std::int32_t n_, k_;
  std::vector<std::int32_t> inverse_offset_;
  std::vector<State> inverse_;
  std::vector<State> elements_;
  std::vector<std::int32_t> location_;
  std::vector<std::int32_t> block_of_;
  std::vector<Block> blocks_;
  std::vector<std::pair<std::int32_t, Symbol>> worklist_;
  std::vector<std::int32_t> touched_;
};

}  // namespace

NerodePartition nerode_classes(const Dfa& dfa) {
  NerodePartition partition;
  if (dfa.num_states() == 0) return partition;

  // Complete with a sink so the refinement sees a total function. The sink
  // is the last state (only when the input was partial).
  const Dfa complete = dfa.completed();
  const bool added_sink = complete.num_states() != dfa.num_states();

  Refiner refiner(complete.num_states(), complete.num_symbols(), complete.table(),
                  complete.finals());
  refiner.refine();

  partition.class_of.resize(static_cast<std::size_t>(dfa.num_states()));
  // Renumber classes densely over the original states only.
  std::vector<std::int32_t> remap(static_cast<std::size_t>(refiner.num_blocks()), -1);
  for (State s = 0; s < dfa.num_states(); ++s) {
    const std::int32_t block = refiner.block_of(s);
    if (remap[static_cast<std::size_t>(block)] == -1)
      remap[static_cast<std::size_t>(block)] = partition.num_classes++;
    partition.class_of[static_cast<std::size_t>(s)] =
        remap[static_cast<std::size_t>(block)];
  }
  (void)added_sink;

  // Dead states (empty right language) all share one Nerode class — the
  // class of any state from which no final is reachable. Reverse BFS from
  // the finals identifies them; this also covers traps in complete DFAs,
  // not just states equivalent to the completion sink.
  std::vector<bool> co_reachable(static_cast<std::size_t>(dfa.num_states()), false);
  std::vector<State> stack;
  for (State s = 0; s < dfa.num_states(); ++s)
    if (dfa.is_final(s)) {
      co_reachable[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  // Build reverse adjacency once.
  std::vector<std::vector<State>> predecessors(
      static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s)
    for (Symbol a = 0; a < dfa.num_symbols(); ++a)
      if (const State t = dfa.step(s, a); t != kDeadState)
        predecessors[static_cast<std::size_t>(t)].push_back(s);
  while (!stack.empty()) {
    const State s = stack.back();
    stack.pop_back();
    for (const State p : predecessors[static_cast<std::size_t>(s)])
      if (!co_reachable[static_cast<std::size_t>(p)]) {
        co_reachable[static_cast<std::size_t>(p)] = true;
        stack.push_back(p);
      }
  }
  for (State s = 0; s < dfa.num_states(); ++s)
    if (!co_reachable[static_cast<std::size_t>(s)]) {
      partition.dead_class = partition.class_of[static_cast<std::size_t>(s)];
      break;
    }
  return partition;
}

Dfa minimize_dfa(const Dfa& dfa) {
  if (dfa.num_states() == 0) return dfa;
  const NerodePartition partition = nerode_classes(dfa);

  // Representative per class.
  std::vector<State> representative(static_cast<std::size_t>(partition.num_classes),
                                    kDeadState);
  for (State s = 0; s < dfa.num_states(); ++s) {
    const std::int32_t c = partition.class_of[static_cast<std::size_t>(s)];
    if (representative[static_cast<std::size_t>(c)] == kDeadState)
      representative[static_cast<std::size_t>(c)] = s;
  }

  // BFS over classes reachable from the initial class, skipping dead.
  const std::int32_t initial_class =
      partition.class_of[static_cast<std::size_t>(dfa.initial())];
  std::vector<State> new_id(static_cast<std::size_t>(partition.num_classes), kDeadState);
  std::vector<std::int32_t> order;
  if (initial_class != partition.dead_class) {
    new_id[static_cast<std::size_t>(initial_class)] = 0;
    order.push_back(initial_class);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const State rep = representative[static_cast<std::size_t>(order[head])];
      for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
        const State t = dfa.step(rep, a);
        if (t == kDeadState) continue;
        const std::int32_t c = partition.class_of[static_cast<std::size_t>(t)];
        if (c == partition.dead_class) continue;
        if (new_id[static_cast<std::size_t>(c)] == kDeadState) {
          new_id[static_cast<std::size_t>(c)] = static_cast<State>(order.size());
          order.push_back(c);
        }
      }
    }
  }

  Dfa result(dfa.num_symbols(), dfa.symbols());
  for (const std::int32_t c : order)
    result.add_state(dfa.is_final(representative[static_cast<std::size_t>(c)]));
  if (order.empty()) {
    // Empty language: single non-final initial state with no transitions.
    result.add_state(false);
    result.set_initial(0);
    return result;
  }
  result.set_initial(0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const State rep = representative[static_cast<std::size_t>(order[i])];
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      const State t = dfa.step(rep, a);
      if (t == kDeadState) continue;
      const std::int32_t c = partition.class_of[static_cast<std::size_t>(t)];
      if (c == partition.dead_class) continue;
      result.set_transition(static_cast<State>(i), a,
                            new_id[static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace rispar
