#include "automata/glushkov.hpp"

#include <cassert>

#include "regex/simplify.hpp"

namespace rispar {

namespace {

// Per-subtree Glushkov attributes over position ids (1-based; 0 is the
// initial state).
struct Attrs {
  bool nullable = false;
  std::vector<std::int32_t> first;
  std::vector<std::int32_t> last;
};

struct Builder {
  std::vector<ByteSet> position_bytes;               // 1-based via index-1
  std::vector<std::vector<std::int32_t>> follow;     // 1-based via index-1

  std::int32_t new_position(const ByteSet& bytes) {
    position_bytes.push_back(bytes);
    follow.emplace_back();
    return static_cast<std::int32_t>(position_bytes.size());
  }

  void add_follow(std::int32_t from, const std::vector<std::int32_t>& successors) {
    auto& out = follow[static_cast<std::size_t>(from) - 1];
    out.insert(out.end(), successors.begin(), successors.end());
  }

  Attrs visit(const RePtr& node) {
    switch (node->kind) {
      case ReKind::kEmpty:
        return Attrs{false, {}, {}};
      case ReKind::kEpsilon:
        return Attrs{true, {}, {}};
      case ReKind::kLiteral: {
        const std::int32_t pos = new_position(node->bytes);
        return Attrs{false, {pos}, {pos}};
      }
      case ReKind::kConcat: {
        Attrs acc = visit(node->children.front());
        for (std::size_t i = 1; i < node->children.size(); ++i) {
          const Attrs rhs = visit(node->children[i]);
          for (const auto last_pos : acc.last) add_follow(last_pos, rhs.first);
          if (acc.nullable)
            acc.first.insert(acc.first.end(), rhs.first.begin(), rhs.first.end());
          if (rhs.nullable)
            acc.last.insert(acc.last.end(), rhs.last.begin(), rhs.last.end());
          else
            acc.last = rhs.last;
          acc.nullable = acc.nullable && rhs.nullable;
        }
        return acc;
      }
      case ReKind::kAlternate: {
        Attrs acc;
        for (const auto& child : node->children) {
          const Attrs branch = visit(child);
          acc.nullable = acc.nullable || branch.nullable;
          acc.first.insert(acc.first.end(), branch.first.begin(), branch.first.end());
          acc.last.insert(acc.last.end(), branch.last.begin(), branch.last.end());
        }
        return acc;
      }
      case ReKind::kStar: {
        Attrs inner = visit(node->children.front());
        for (const auto last_pos : inner.last) add_follow(last_pos, inner.first);
        inner.nullable = true;
        return inner;
      }
      case ReKind::kPlus: {
        Attrs inner = visit(node->children.front());
        for (const auto last_pos : inner.last) add_follow(last_pos, inner.first);
        return inner;
      }
      case ReKind::kOptional: {
        Attrs inner = visit(node->children.front());
        inner.nullable = true;
        return inner;
      }
      case ReKind::kRepeat:
        assert(false && "bounded repeats must be expanded before Glushkov");
        return {};
    }
    return {};
  }
};

}  // namespace

Nfa glushkov_nfa(const RePtr& re) {
  const RePtr expanded = re_expand_repeats(re);
  Builder builder;
  const Attrs root = builder.visit(expanded);

  SymbolMap symbols = SymbolMap::build(builder.position_bytes);
  const std::int32_t k = std::max<std::int32_t>(symbols.num_symbols(), 1);
  if (symbols.num_symbols() == 0) symbols = SymbolMap::identity(1);

  Nfa nfa(k, symbols);
  nfa.add_state(root.nullable);  // state 0 = initial ε-position
  for (const auto& bytes : builder.position_bytes) {
    (void)bytes;
    nfa.add_state(false);
  }
  nfa.set_initial(0);

  auto connect = [&](State from, std::int32_t to_pos) {
    const ByteSet& bytes = builder.position_bytes[static_cast<std::size_t>(to_pos) - 1];
    for (const Symbol symbol : nfa.symbols().symbols_of(bytes))
      nfa.add_edge(from, symbol, to_pos);
  };

  for (const auto first_pos : root.first) connect(0, first_pos);
  for (std::size_t pos = 1; pos <= builder.follow.size(); ++pos)
    for (const auto next_pos : builder.follow[pos - 1])
      connect(static_cast<State>(pos), next_pos);
  for (const auto last_pos : root.last) nfa.set_final(last_pos);
  return nfa;
}

}  // namespace rispar
