// Powerset (subset) construction, in a form that supports the paper's
// *incremental* RI-DFA construction (Sect. 3.1).
//
// SubsetConstruction keeps a registry of interned NFA-state subsets and a
// worklist; `add_seed` interns a subset as a DFA state, `run` explores to a
// fixpoint. The classic NFA→DFA determinization seeds once with {q0}; the
// RI-DFA construction seeds ℓ times, once per singleton {q_i}, reusing the
// same registry so shared subsets are built exactly once — this is what
// makes the measured construction cost "≈20×, not |Q|×" (Sect. 4.5).
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "util/bitset.hpp"

namespace rispar {

class SubsetConstruction {
 public:
  /// Requires an ε-free NFA (apply remove_epsilon first).
  explicit SubsetConstruction(const Nfa& nfa);

  /// Interns `subset` as a DFA state (id stable across calls) and queues it
  /// for exploration if new. Must be non-empty.
  State add_seed(const Bitset& subset);

  /// Singleton convenience: add_seed({q}).
  State add_seed_singleton(State nfa_state);

  /// Optional budget on the number of interned subsets; when exploration
  /// would exceed it, run() stops early and exceeded() turns true. Guards
  /// against pathological powerset blow-up on hostile inputs.
  void set_state_limit(std::int32_t limit) { state_limit_ = limit; }
  bool exceeded() const { return exceeded_; }

  /// Drains the worklist: computes transitions of every queued state,
  /// interning and queueing successor subsets. Returns false when the
  /// state limit was hit (the construction is left incomplete).
  bool run();

  std::int32_t num_states() const { return static_cast<std::int32_t>(contents_.size()); }
  const Bitset& contents(State state) const {
    return contents_[static_cast<std::size_t>(state)];
  }
  State transition(State state, Symbol symbol) const {
    return table_[static_cast<std::size_t>(state) * num_symbols_ +
                  static_cast<std::size_t>(symbol)];
  }
  bool is_final(State state) const;

  /// Exports a standalone Dfa with the given initial state. `contents_out`
  /// (optional) receives each DFA state's subset as sorted NFA state ids.
  Dfa to_dfa(State initial,
             std::vector<std::vector<State>>* contents_out = nullptr) const;

 private:
  const Nfa& nfa_;
  std::int32_t num_symbols_;
  std::vector<Bitset> contents_;
  std::vector<State> table_;  // row per interned state; filled when explored
  std::unordered_map<Bitset, State, BitsetHash> index_;
  std::vector<State> worklist_;
  std::int32_t state_limit_ = std::numeric_limits<std::int32_t>::max();
  bool exceeded_ = false;
};

/// One-shot classic determinization from closure({q0}).
Dfa determinize(const Nfa& nfa, std::vector<std::vector<State>>* contents_out = nullptr);

/// Budgeted determinization: like determinize(), but throws
/// ResourceExhausted("subset construction", limit, interned) when the
/// powerset exploration interns more than `max_states` subsets — the guard
/// Engine::Config::subset_budget hangs the searcher/DFA builds on so a
/// pathological regex fails compile instead of consuming unbounded memory.
/// max_states <= 0 means unbounded (identical to determinize()).
Dfa determinize_bounded(const Nfa& nfa, std::int32_t max_states,
                        std::vector<std::vector<State>>* contents_out = nullptr);

}  // namespace rispar
