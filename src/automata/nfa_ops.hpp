// Structural operations on NFAs: ε-closure/removal, reachability trimming,
// reversal, disjoint union, and direct frontier-set acceptance (the serial
// NFA recognizer, also used as a test oracle).
#pragma once

#include <string>
#include <vector>

#include "automata/nfa.hpp"

namespace rispar {

/// ε-closure of a set of states (in place).
void epsilon_closure(const Nfa& nfa, Bitset& states);

/// Equivalent ε-free NFA (standard closure-based elimination). States are
/// preserved one-to-one; unreachable states are NOT removed (use trim).
Nfa remove_epsilon(const Nfa& nfa);

/// Keeps only states reachable from the initial state, renumbering densely.
/// `kept` (optional) receives old→new ids (kDeadState when dropped).
Nfa trim_unreachable(const Nfa& nfa, std::vector<State>* kept = nullptr);

/// Edge-reversed NFA. The reverse has no meaningful single initial state; we
/// pick state 0 and mark old-initial as the only final. Useful for
/// Brzozowski-style tests.
Nfa reverse(const Nfa& nfa);

/// Disjoint union recognizing L(a) ∪ L(b); a fresh initial state ε-connects
/// to both originals (so the result has ε edges).
Nfa nfa_union(const Nfa& a, const Nfa& b);

/// Frontier-set simulation from the initial state over a symbol string.
bool nfa_accepts(const Nfa& nfa, const std::vector<Symbol>& input);
/// Byte-string convenience using the NFA's attached SymbolMap.
bool nfa_accepts(const Nfa& nfa, const std::string& text);

/// The set ρ(q0, input) of states reached after consuming `input`
/// (ε-closures applied); empty set when all runs died.
Bitset nfa_reach(const Nfa& nfa, const Bitset& start, const std::vector<Symbol>& input);

}  // namespace rispar
