#include "automata/equivalence.hpp"

#include <algorithm>
#include <deque>

#include "automata/subset.hpp"

namespace rispar {

namespace {

// Union-find over the combined state space (a's states, then b's states,
// then one shared dead state).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false when already joined.
  bool join(std::size_t x, std::size_t y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    parent_[x] = y;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct PairItem {
  State in_a, in_b;  // kDeadState encodes the dead side
  std::vector<Symbol> path;
};

std::optional<std::vector<Symbol>> check(const Dfa& a, const Dfa& b, bool want_witness) {
  if (a.num_symbols() != b.num_symbols())
    return std::vector<Symbol>{};  // trivially different
  const std::size_t na = static_cast<std::size_t>(a.num_states());
  const std::size_t nb = static_cast<std::size_t>(b.num_states());
  const std::size_t dead = na + nb;  // shared dead node
  UnionFind classes(dead + 1);

  auto id_a = [&](State s) {
    return s == kDeadState ? dead : static_cast<std::size_t>(s);
  };
  auto id_b = [&](State s) {
    return s == kDeadState ? dead : na + static_cast<std::size_t>(s);
  };
  auto final_a = [&](State s) { return s != kDeadState && a.is_final(s); };
  auto final_b = [&](State s) { return s != kDeadState && b.is_final(s); };

  std::deque<PairItem> queue;
  classes.join(id_a(a.initial()), id_b(b.initial()));
  queue.push_back({a.initial(), b.initial(), {}});

  while (!queue.empty()) {
    PairItem item = std::move(queue.front());
    queue.pop_front();
    if (final_a(item.in_a) != final_b(item.in_b))
      return want_witness ? std::optional(item.path)
                          : std::optional(std::vector<Symbol>{});
    for (Symbol x = 0; x < a.num_symbols(); ++x) {
      const State ta = item.in_a == kDeadState ? kDeadState : a.step(item.in_a, x);
      const State tb = item.in_b == kDeadState ? kDeadState : b.step(item.in_b, x);
      if (ta == kDeadState && tb == kDeadState) continue;
      if (classes.join(id_a(ta), id_b(tb))) {
        PairItem next{ta, tb, {}};
        if (want_witness) {
          next.path = item.path;
          next.path.push_back(x);
        }
        queue.push_back(std::move(next));
      }
    }
  }
  return std::nullopt;
}

}  // namespace

bool dfa_equivalent(const Dfa& a, const Dfa& b) {
  return !check(a, b, /*want_witness=*/false).has_value();
}

std::optional<std::vector<Symbol>> dfa_distinguishing_word(const Dfa& a, const Dfa& b) {
  return check(a, b, /*want_witness=*/true);
}

bool nfa_equivalent(const Nfa& a, const Nfa& b) {
  return dfa_equivalent(determinize(a), determinize(b));
}

}  // namespace rispar
