// Nondeterministic finite automaton with a single initial state, the
// device "N = (Q_N, Σ, ρ, q0, F)" of the paper (Sect. 3.1).
//
// Transitions are stored per state as (symbol, target) pairs sorted by
// symbol, which gives cache-friendly frontier simulation and O(log d) edge
// lookup. ε-transitions live in a separate adjacency (only the Thompson
// construction produces them; the RI-DFA pipeline requires ε-free input and
// nfa_ops provides removal).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "automata/symbol_map.hpp"
#include "util/bitset.hpp"

namespace rispar {

using State = std::int32_t;
using Symbol = std::int32_t;

constexpr State kDeadState = -1;

struct NfaEdge {
  Symbol symbol;
  State target;

  bool operator==(const NfaEdge&) const = default;
  bool operator<(const NfaEdge& other) const {
    return symbol != other.symbol ? symbol < other.symbol : target < other.target;
  }
};

class Nfa {
 public:
  Nfa() = default;
  Nfa(std::int32_t num_symbols, SymbolMap symbols)
      : num_symbols_(num_symbols), symbols_(std::move(symbols)) {}

  /// Convenience: abstract alphabet of k symbols with the identity map.
  static Nfa with_identity_alphabet(int k) { return Nfa(k, SymbolMap::identity(k)); }

  State add_state(bool is_final = false);
  void set_final(State state, bool is_final = true);
  void set_initial(State state) { initial_ = state; }

  /// Adds ρ(from, symbol) ∋ to. Duplicate edges are ignored.
  void add_edge(State from, Symbol symbol, State to);
  void add_epsilon(State from, State to);

  std::int32_t num_states() const { return static_cast<std::int32_t>(edges_.size()); }
  std::int32_t num_symbols() const { return num_symbols_; }
  State initial() const { return initial_; }
  bool is_final(State state) const {
    return finals_.test(static_cast<std::size_t>(state));
  }
  const Bitset& finals() const { return finals_; }
  const SymbolMap& symbols() const { return symbols_; }
  void set_symbols(SymbolMap symbols) { symbols_ = std::move(symbols); }

  /// All outgoing edges of `state`, sorted by symbol.
  std::span<const NfaEdge> edges(State state) const {
    return edges_[static_cast<std::size_t>(state)];
  }
  /// The slice of edges(state) labelled `symbol`.
  std::span<const NfaEdge> edges(State state, Symbol symbol) const;

  const std::vector<State>& epsilon_edges(State state) const {
    return epsilon_[static_cast<std::size_t>(state)];
  }
  bool has_epsilon() const { return epsilon_count_ > 0; }

  std::size_t num_edges() const;
  std::size_t num_epsilon_edges() const { return epsilon_count_; }

  /// Maximum out-degree over all (state, symbol) pairs; 1 on every pair
  /// means the NFA is actually deterministic.
  std::int32_t max_out_degree() const;

 private:
  std::int32_t num_symbols_ = 0;
  State initial_ = 0;
  Bitset finals_{0};
  std::vector<std::vector<NfaEdge>> edges_;
  std::vector<std::vector<State>> epsilon_;
  std::size_t epsilon_count_ = 0;
  SymbolMap symbols_ = SymbolMap::identity(1);
};

}  // namespace rispar
