// Boolean algebra on DFAs: product intersection/union, complement, and
// emptiness — the standard toolkit a downstream user of the library expects
// next to determinization and minimization, and an independent oracle for
// the equivalence checker (A ≡ B iff (A ∩ ¬B) ∪ (B ∩ ¬A) is empty).
#pragma once

#include <optional>
#include <vector>

#include "automata/dfa.hpp"

namespace rispar {

/// Complement over the same alphabet: completes the automaton and flips
/// finality (recognizes Σ* \ L).
Dfa dfa_complement(const Dfa& dfa);

/// Product automaton restricted to reachable pairs; `both_final` chooses
/// intersection (true) or union (false) acceptance. Alphabets must have the
/// same symbol count (byte maps are taken from `a`).
Dfa dfa_intersection(const Dfa& a, const Dfa& b);
Dfa dfa_union(const Dfa& a, const Dfa& b);

/// True iff L(dfa) = ∅ (no final state reachable).
bool dfa_empty(const Dfa& dfa);

/// A shortest accepted word (symbol ids), or nullopt when the language is
/// empty. BFS over reachable states.
std::optional<std::vector<Symbol>> dfa_shortest_member(const Dfa& dfa);

/// Number of words of each length 0..max_length in L(dfa) — the language's
/// census, useful for workload design and as a strong equivalence probe.
std::vector<std::uint64_t> dfa_census(const Dfa& dfa, std::size_t max_length);

}  // namespace rispar
