#include "automata/dfa.hpp"

#include <cassert>

namespace rispar {

const PackedTable& Dfa::packed() const {
  auto current = std::atomic_load_explicit(&packed_, std::memory_order_acquire);
  if (!current) {
    auto built = std::make_shared<const PackedTable>(
        PackedTable::build(table_, num_states(), num_symbols_));
    std::shared_ptr<const PackedTable> expected;
    if (std::atomic_compare_exchange_strong(&packed_, &expected, built))
      current = std::move(built);
    else
      current = std::move(expected);  // another thread won; use its build
  }
  return *current;
}

State Dfa::add_state(bool is_final) {
  packed_.reset();
  const State state = num_states();
  table_.insert(table_.end(), static_cast<std::size_t>(num_symbols_), kDeadState);
  Bitset grown(static_cast<std::size_t>(state) + 1);
  for (std::size_t i = finals_.first(); i != Bitset::npos; i = finals_.next(i))
    grown.set(i);
  finals_ = std::move(grown);
  if (is_final) finals_.set(static_cast<std::size_t>(state));
  return state;
}

void Dfa::set_final(State state, bool is_final) {
  if (is_final)
    finals_.set(static_cast<std::size_t>(state));
  else
    finals_.reset(static_cast<std::size_t>(state));
}

void Dfa::set_transition(State from, Symbol symbol, State to) {
  packed_.reset();
  assert(from >= 0 && from < num_states());
  assert(symbol >= 0 && symbol < num_symbols_);
  assert(to == kDeadState || (to >= 0 && to < num_states()));
  table_[static_cast<std::size_t>(from) * num_symbols_ +
         static_cast<std::size_t>(symbol)] = to;
}

std::size_t Dfa::num_transitions() const {
  std::size_t total = 0;
  for (const State entry : table_)
    if (entry != kDeadState) ++total;
  return total;
}

State Dfa::run(State start, const std::vector<Symbol>& input) const {
  State state = start;
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= num_symbols_) return kDeadState;
    state = step(state, symbol);
    if (state == kDeadState) return kDeadState;
  }
  return state;
}

bool Dfa::accepts(const std::vector<Symbol>& input) const {
  const State state = run(initial_, input);
  return state != kDeadState && is_final(state);
}

bool Dfa::accepts(const std::string& text) const {
  return accepts(symbols_.translate(text));
}

bool Dfa::is_complete() const {
  for (const State entry : table_)
    if (entry == kDeadState) return false;
  return true;
}

Dfa Dfa::completed() const {
  if (is_complete()) return *this;
  Dfa result = *this;
  const State sink = result.add_state(false);
  for (State s = 0; s < result.num_states(); ++s)
    for (Symbol a = 0; a < result.num_symbols(); ++a)
      if (result.step(s, a) == kDeadState) result.set_transition(s, a, sink);
  return result;
}

Nfa dfa_to_nfa(const Dfa& dfa) {
  Nfa nfa(dfa.num_symbols(), dfa.symbols());
  for (State s = 0; s < dfa.num_states(); ++s) nfa.add_state(dfa.is_final(s));
  nfa.set_initial(dfa.initial());
  for (State s = 0; s < dfa.num_states(); ++s)
    for (Symbol a = 0; a < dfa.num_symbols(); ++a)
      if (const State t = dfa.step(s, a); t != kDeadState) nfa.add_edge(s, a, t);
  return nfa;
}

}  // namespace rispar
