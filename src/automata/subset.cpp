#include "automata/subset.hpp"

#include <cassert>

#include "automata/nfa_ops.hpp"
#include "util/fault_inject.hpp"
#include "util/governance.hpp"

namespace rispar {

SubsetConstruction::SubsetConstruction(const Nfa& nfa)
    : nfa_(nfa), num_symbols_(nfa.num_symbols()) {
  assert(!nfa.has_epsilon() && "SubsetConstruction requires an eps-free NFA");
}

State SubsetConstruction::add_seed(const Bitset& subset) {
  assert(!subset.empty());
  const auto it = index_.find(subset);
  if (it != index_.end()) return it->second;
  // Fault site: interning a new subset is where construction allocates.
  if (fault::should_fail("subset.alloc")) throw std::bad_alloc();
  const State id = num_states();
  index_.emplace(subset, id);
  contents_.push_back(subset);
  table_.insert(table_.end(), static_cast<std::size_t>(num_symbols_), kDeadState);
  worklist_.push_back(id);
  return id;
}

State SubsetConstruction::add_seed_singleton(State nfa_state) {
  Bitset subset(static_cast<std::size_t>(nfa_.num_states()));
  subset.set(static_cast<std::size_t>(nfa_state));
  return add_seed(subset);
}

bool SubsetConstruction::run() {
  const auto universe = static_cast<std::size_t>(nfa_.num_states());
  std::vector<Bitset> successor(static_cast<std::size_t>(num_symbols_), Bitset(universe));
  while (!worklist_.empty()) {
    if (num_states() > state_limit_) {
      exceeded_ = true;
      worklist_.clear();
      return false;
    }
    const State state = worklist_.back();
    worklist_.pop_back();
    for (auto& subset : successor) subset.clear();

    // One pass over the member states' edge lists fills all symbol columns.
    // Copy, not a reference: contents_ may grow while columns fill.
    const Bitset members = contents_[static_cast<std::size_t>(state)];
    for (std::size_t q = members.first(); q != Bitset::npos; q = members.next(q))
      for (const auto& edge : nfa_.edges(static_cast<State>(q)))
        successor[static_cast<std::size_t>(edge.symbol)].set(
            static_cast<std::size_t>(edge.target));

    for (Symbol a = 0; a < num_symbols_; ++a) {
      if (successor[static_cast<std::size_t>(a)].empty()) continue;
      const State target = add_seed(successor[static_cast<std::size_t>(a)]);
      table_[static_cast<std::size_t>(state) * num_symbols_ +
             static_cast<std::size_t>(a)] = target;
    }
  }
  return true;
}

bool SubsetConstruction::is_final(State state) const {
  return contents_[static_cast<std::size_t>(state)].intersects(nfa_.finals());
}

Dfa SubsetConstruction::to_dfa(State initial,
                               std::vector<std::vector<State>>* contents_out) const {
  Dfa dfa(num_symbols_, nfa_.symbols());
  for (State s = 0; s < num_states(); ++s) dfa.add_state(is_final(s));
  dfa.set_initial(initial);
  for (State s = 0; s < num_states(); ++s)
    for (Symbol a = 0; a < num_symbols_; ++a)
      dfa.set_transition(s, a, transition(s, a));
  if (contents_out) {
    contents_out->clear();
    contents_out->reserve(static_cast<std::size_t>(num_states()));
    for (State s = 0; s < num_states(); ++s)
      contents_out->push_back(contents_[static_cast<std::size_t>(s)].to_indices());
  }
  return dfa;
}

Dfa determinize(const Nfa& nfa, std::vector<std::vector<State>>* contents_out) {
  const Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : nfa;
  SubsetConstruction construction(eps_free);
  Bitset start(static_cast<std::size_t>(eps_free.num_states()));
  start.set(static_cast<std::size_t>(eps_free.initial()));
  const State initial = construction.add_seed(start);
  construction.run();
  return construction.to_dfa(initial, contents_out);
}

Dfa determinize_bounded(const Nfa& nfa, std::int32_t max_states,
                        std::vector<std::vector<State>>* contents_out) {
  if (max_states <= 0) return determinize(nfa, contents_out);
  const Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : nfa;
  SubsetConstruction construction(eps_free);
  construction.set_state_limit(max_states);
  Bitset start(static_cast<std::size_t>(eps_free.num_states()));
  start.set(static_cast<std::size_t>(eps_free.initial()));
  const State initial = construction.add_seed(start);
  if (!construction.run())
    throw ResourceExhausted("subset construction", max_states,
                            construction.num_states());
  return construction.to_dfa(initial, contents_out);
}

}  // namespace rispar
