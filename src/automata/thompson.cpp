#include "automata/thompson.hpp"

#include <cassert>

#include "regex/simplify.hpp"

namespace rispar {

namespace {

struct Fragment {
  State start;
  State accept;
};

struct Builder {
  Nfa nfa;

  explicit Builder(SymbolMap symbols)
      : nfa(std::max<std::int32_t>(symbols.num_symbols(), 1), std::move(symbols)) {}

  Fragment fragment() {
    const State start = nfa.add_state();
    const State accept = nfa.add_state();
    return {start, accept};
  }

  Fragment visit(const RePtr& node) {
    switch (node->kind) {
      case ReKind::kEmpty:
        return fragment();  // start and accept disconnected
      case ReKind::kEpsilon: {
        const Fragment f = fragment();
        nfa.add_epsilon(f.start, f.accept);
        return f;
      }
      case ReKind::kLiteral: {
        const Fragment f = fragment();
        for (const Symbol symbol : nfa.symbols().symbols_of(node->bytes))
          nfa.add_edge(f.start, symbol, f.accept);
        return f;
      }
      case ReKind::kConcat: {
        Fragment acc = visit(node->children.front());
        for (std::size_t i = 1; i < node->children.size(); ++i) {
          const Fragment rhs = visit(node->children[i]);
          nfa.add_epsilon(acc.accept, rhs.start);
          acc.accept = rhs.accept;
        }
        return acc;
      }
      case ReKind::kAlternate: {
        const Fragment f = fragment();
        for (const auto& child : node->children) {
          const Fragment branch = visit(child);
          nfa.add_epsilon(f.start, branch.start);
          nfa.add_epsilon(branch.accept, f.accept);
        }
        return f;
      }
      case ReKind::kStar: {
        const Fragment inner = visit(node->children.front());
        const Fragment f = fragment();
        nfa.add_epsilon(f.start, inner.start);
        nfa.add_epsilon(f.start, f.accept);
        nfa.add_epsilon(inner.accept, inner.start);
        nfa.add_epsilon(inner.accept, f.accept);
        return f;
      }
      case ReKind::kPlus: {
        const Fragment inner = visit(node->children.front());
        const Fragment f = fragment();
        nfa.add_epsilon(f.start, inner.start);
        nfa.add_epsilon(inner.accept, inner.start);
        nfa.add_epsilon(inner.accept, f.accept);
        return f;
      }
      case ReKind::kOptional: {
        const Fragment inner = visit(node->children.front());
        const Fragment f = fragment();
        nfa.add_epsilon(f.start, inner.start);
        nfa.add_epsilon(f.start, f.accept);
        nfa.add_epsilon(inner.accept, f.accept);
        return f;
      }
      case ReKind::kRepeat:
        assert(false && "bounded repeats must be expanded before Thompson");
        return fragment();
    }
    return fragment();
  }
};

// Collects the literal byte classes so the SymbolMap covers exactly the
// bytes the RE can consume.
void collect_classes(const RePtr& node, std::vector<ByteSet>& classes) {
  if (node->kind == ReKind::kLiteral) classes.push_back(node->bytes);
  for (const auto& child : node->children) collect_classes(child, classes);
}

}  // namespace

Nfa thompson_nfa(const RePtr& re) {
  const RePtr expanded = re_expand_repeats(re);
  std::vector<ByteSet> classes;
  collect_classes(expanded, classes);
  SymbolMap symbols = SymbolMap::build(classes);
  if (symbols.num_symbols() == 0) symbols = SymbolMap::identity(1);

  Builder builder(std::move(symbols));
  const Fragment root = builder.visit(expanded);
  builder.nfa.set_initial(root.start);
  builder.nfa.set_final(root.accept);
  return builder.nfa;
}

}  // namespace rispar
