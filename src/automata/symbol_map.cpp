#include "automata/symbol_map.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace rispar {

SymbolMap SymbolMap::identity(int k) {
  assert(k >= 1 && k <= 64);
  SymbolMap map;
  map.byte_to_symbol_.fill(kUnmapped);
  map.num_symbols_ = k;
  map.reps_.resize(static_cast<std::size_t>(k));
  // Printable window starting at 'a' then wrapping through other printables
  // so small alphabets stay human-readable in generated texts.
  static const char* kWindow =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";
  for (int s = 0; s < k; ++s) {
    const auto byte = static_cast<unsigned char>(kWindow[s]);
    map.byte_to_symbol_[byte] = s;
    map.reps_[static_cast<std::size_t>(s)] = byte;
  }
  return map;
}

SymbolMap SymbolMap::build(const std::vector<ByteSet>& classes) {
  // Signature of byte b = the subset of `classes` containing b. Bytes with
  // equal signatures are indistinguishable; group them by signature.
  SymbolMap map;
  map.byte_to_symbol_.fill(kUnmapped);

  std::map<std::vector<bool>, std::int32_t> signature_to_symbol;
  for (int b = 0; b < 256; ++b) {
    std::vector<bool> signature(classes.size());
    bool covered = false;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      signature[c] = classes[c].test(static_cast<std::size_t>(b));
      covered = covered || signature[c];
    }
    if (!covered) continue;  // byte never matched by any literal
    auto [it, inserted] =
        signature_to_symbol.emplace(std::move(signature), map.num_symbols_);
    if (inserted) {
      ++map.num_symbols_;
      map.reps_.push_back(static_cast<unsigned char>(b));
    }
    map.byte_to_symbol_[static_cast<std::size_t>(b)] = it->second;
  }
  return map;
}

SymbolMap SymbolMap::from_table(const std::array<std::int32_t, 256>& table) {
  SymbolMap map;
  map.byte_to_symbol_ = table;
  std::int32_t max_symbol = -1;
  for (const std::int32_t symbol : table) {
    if (symbol == kUnmapped) continue;
    if (symbol < 0 || symbol > 255)
      throw std::invalid_argument("SymbolMap::from_table: symbol id out of range");
    max_symbol = std::max(max_symbol, symbol);
  }
  map.num_symbols_ = max_symbol + 1;
  map.reps_.assign(static_cast<std::size_t>(map.num_symbols_), 0);
  std::vector<bool> seen(static_cast<std::size_t>(map.num_symbols_), false);
  for (int b = 255; b >= 0; --b) {  // walk down so the smallest byte wins
    const std::int32_t symbol = table[static_cast<std::size_t>(b)];
    if (symbol == kUnmapped) continue;
    map.reps_[static_cast<std::size_t>(symbol)] = static_cast<unsigned char>(b);
    seen[static_cast<std::size_t>(symbol)] = true;
  }
  for (std::int32_t s = 0; s < map.num_symbols_; ++s)
    if (!seen[static_cast<std::size_t>(s)])
      throw std::invalid_argument("SymbolMap::from_table: gap in symbol ids");
  return map;
}

std::vector<std::int32_t> SymbolMap::symbols_of(const ByteSet& bytes) const {
  std::vector<bool> seen(static_cast<std::size_t>(num_symbols_), false);
  std::vector<std::int32_t> result;
  for (int b = 0; b < 256; ++b) {
    if (!bytes.test(static_cast<std::size_t>(b))) continue;
    const std::int32_t symbol = byte_to_symbol_[static_cast<std::size_t>(b)];
    if (symbol == kUnmapped || seen[static_cast<std::size_t>(symbol)]) continue;
    seen[static_cast<std::size_t>(symbol)] = true;
    result.push_back(symbol);
  }
  return result;
}

std::vector<std::int32_t> SymbolMap::translate(std::string_view text) const {
  std::vector<std::int32_t> symbols;
  symbols.reserve(text.size());
  for (const char ch : text)
    symbols.push_back(byte_to_symbol_[static_cast<unsigned char>(ch)]);
  return symbols;
}

std::size_t first_invalid_symbol(std::span<const std::int32_t> chunk,
                                 std::int32_t num_symbols) {
  // Blocked max-reduction so the common all-valid case vectorizes; the
  // unsigned cast folds the `< 0` and `>= num_symbols` checks into one
  // compare (negative values wrap above any valid symbol id).
  const auto limit = static_cast<std::uint32_t>(num_symbols);
  constexpr std::size_t kBlock = 64;
  std::size_t i = 0;
  for (; i + kBlock <= chunk.size(); i += kBlock) {
    std::uint32_t max_seen = 0;
    for (std::size_t j = 0; j < kBlock; ++j) {
      const auto value = static_cast<std::uint32_t>(chunk[i + j]);
      max_seen = value > max_seen ? value : max_seen;
    }
    if (max_seen < limit) continue;
    for (std::size_t j = 0; j < kBlock; ++j)
      if (static_cast<std::uint32_t>(chunk[i + j]) >= limit) return i + j;
  }
  for (; i < chunk.size(); ++i)
    if (static_cast<std::uint32_t>(chunk[i]) >= limit) return i;
  return chunk.size();
}

}  // namespace rispar
