// Structured random NFA generation — the offline stand-in for the Ondrik
// automata collection (paper Sect. 4.2 / Tab. 2), and a fuzzing source for
// the property tests.
//
// Pure uniform random graphs determinize either trivially or explosively;
// neither matches the collection's profile (NFAs moderately smaller than
// their minimal DFAs, always reducible interfaces). The generator therefore
// builds automata with verification-flavoured structure: a reachable
// backbone of trails, locally dense forward edges, a sprinkle of
// nondeterministic duplicates, and a configurable fraction of final states.
#pragma once

#include "automata/nfa.hpp"
#include "util/prng.hpp"

namespace rispar {

struct RandomNfaConfig {
  std::int32_t num_states = 40;
  std::int32_t num_symbols = 4;
  /// Average number of labelled edges per state (>= 1 keeps most states
  /// alive; the backbone guarantees reachability regardless).
  double density = 1.6;
  /// Fraction of extra edges that duplicate an existing (state, symbol)
  /// pair — the knob for the degree of nondeterminism.
  double nondeterminism = 0.35;
  /// Fraction of states marked final (at least one is always final).
  double final_fraction = 0.2;
  /// Edges prefer nearby targets (locality window as a fraction of n);
  /// smaller windows produce more layered, verification-like graphs.
  double locality = 0.25;
};

/// Generates an NFA over the identity alphabet; every state is reachable
/// from the initial state and the language is non-empty.
Nfa random_nfa(Prng& prng, const RandomNfaConfig& config = {});

}  // namespace rispar
