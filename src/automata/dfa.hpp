// Deterministic finite automaton with a dense transition table.
//
// The table stores `num_states × num_symbols` entries; kDeadState (-1) marks
// a missing transition. DFAs are deliberately *partial*: speculative chunk
// runs that die early are the main source of the paper's overhead savings,
// so the dead sentinel is load-bearing, not an optimization.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/nfa.hpp"
#include "automata/packed_table.hpp"
#include "automata/symbol_map.hpp"
#include "util/bitset.hpp"

namespace rispar {

class Dfa {
 public:
  Dfa() = default;
  Dfa(std::int32_t num_symbols, SymbolMap symbols)
      : num_symbols_(num_symbols), symbols_(std::move(symbols)) {}

  static Dfa with_identity_alphabet(int k) { return Dfa(k, SymbolMap::identity(k)); }

  State add_state(bool is_final = false);
  void set_final(State state, bool is_final = true);
  void set_initial(State state) { initial_ = state; }
  void set_transition(State from, Symbol symbol, State to);

  std::int32_t num_states() const {
    return num_symbols_ == 0 ? 0
                             : static_cast<std::int32_t>(table_.size()) / num_symbols_;
  }
  std::int32_t num_symbols() const { return num_symbols_; }
  State initial() const { return initial_; }
  bool is_final(State state) const {
    return finals_.test(static_cast<std::size_t>(state));
  }
  const Bitset& finals() const { return finals_; }
  const SymbolMap& symbols() const { return symbols_; }
  void set_symbols(SymbolMap symbols) { symbols_ = std::move(symbols); }

  /// δ(state, symbol), kDeadState when undefined.
  State step(State state, Symbol symbol) const {
    return table_[static_cast<std::size_t>(state) * num_symbols_ +
                  static_cast<std::size_t>(symbol)];
  }

  /// Row pointer for the hot loops of the recognizers.
  const State* row(State state) const {
    return table_.data() + static_cast<std::size_t>(state) * num_symbols_;
  }

  std::size_t num_transitions() const;  ///< defined (non-dead) entries

  /// δ*(start, input); kDeadState once any step is undefined.
  State run(State start, const std::vector<Symbol>& input) const;

  bool accepts(const std::vector<Symbol>& input) const;
  bool accepts(const std::string& text) const;

  /// Returns an equivalent complete DFA (adds a sink state when any entry is
  /// dead; otherwise returns *this unchanged).
  Dfa completed() const;
  bool is_complete() const;

  /// View of the whole table (tests, serialization).
  const std::vector<State>& table() const { return table_; }

  /// Width-specialized copy of the table for the hot kernels (see
  /// packed_table.hpp). Built lazily and cached; mutations invalidate the
  /// cache. Concurrent packed() calls are safe (atomic install; a lost race
  /// just discards a duplicate build) — but mutating the Dfa concurrently
  /// with any reader is not, as everywhere else on this class. The devices
  /// still warm the cache in their constructors so pool workers never pay
  /// the build.
  const PackedTable& packed() const;

  /// Pre-installs the packed cache with an externally built table — the
  /// mmap'd bundle loader adopts the file's entries so packed() never packs
  /// (src/bundle/). The table must describe exactly this DFA; mutations
  /// still invalidate it like any cached pack.
  void adopt_packed(std::shared_ptr<const PackedTable> packed) {
    std::atomic_store_explicit(&packed_, std::move(packed),
                               std::memory_order_release);
  }

 private:
  friend struct BundleRestoreAccess;  ///< src/bundle/restore.hpp
  std::int32_t num_symbols_ = 0;
  State initial_ = 0;
  Bitset finals_{0};
  std::vector<State> table_;
  SymbolMap symbols_ = SymbolMap::identity(1);
  /// Cache of packed(); shared so copies of an unmutated Dfa reuse it.
  mutable std::shared_ptr<const PackedTable> packed_;
};

/// Interprets the DFA as an NFA (for pipelines that need the common type).
Nfa dfa_to_nfa(const Dfa& dfa);

}  // namespace rispar
