#include "automata/random_nfa.hpp"

#include <algorithm>
#include <cmath>

namespace rispar {

Nfa random_nfa(Prng& prng, const RandomNfaConfig& config) {
  const std::int32_t n = std::max<std::int32_t>(config.num_states, 1);
  const std::int32_t k = std::max<std::int32_t>(config.num_symbols, 1);
  Nfa nfa = Nfa::with_identity_alphabet(k);
  for (std::int32_t s = 0; s < n; ++s) nfa.add_state();
  nfa.set_initial(0);

  // Backbone: visit states in a random order starting from 0, connecting
  // each new state from an already-visited one, so reachability holds by
  // construction.
  std::vector<State> visited{0};
  auto rest = prng.permutation(static_cast<std::size_t>(n));
  for (const std::size_t raw : rest) {
    const auto target = static_cast<State>(raw);
    if (target == 0) continue;
    const State from = visited[prng.pick_index(visited.size())];
    nfa.add_edge(from, static_cast<Symbol>(prng.pick_index(static_cast<std::size_t>(k))),
                 target);
    visited.push_back(target);
  }

  // Locality-biased extra edges up to the requested density.
  const auto extra_target_count = static_cast<std::size_t>(
      std::max(0.0, config.density * n - static_cast<double>(n - 1)));
  const auto window = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(config.locality * static_cast<double>(n)));
  for (std::size_t e = 0; e < extra_target_count; ++e) {
    const auto from = static_cast<State>(prng.pick_index(static_cast<std::size_t>(n)));
    State to;
    if (prng.next_bool(0.8)) {
      // Forward-ish local edge.
      const std::int64_t offset = prng.next_in(-window / 4, window);
      to = static_cast<State>(std::clamp<std::int64_t>(from + offset, 0, n - 1));
    } else {
      to = static_cast<State>(prng.pick_index(static_cast<std::size_t>(n)));
    }
    const auto symbol = static_cast<Symbol>(prng.pick_index(static_cast<std::size_t>(k)));
    nfa.add_edge(from, symbol, to);
    // Optionally duplicate the (from, symbol) pair to force nondeterminism.
    if (prng.next_bool(config.nondeterminism)) {
      const std::int64_t offset = prng.next_in(-window / 4, window);
      const auto twin =
          static_cast<State>(std::clamp<std::int64_t>(from + offset, 0, n - 1));
      nfa.add_edge(from, symbol, twin);
    }
  }

  // Final states: a trailing block of the id space plus random extras, so
  // that "deep" states are likelier final (keeps prefixes alive and the
  // language non-trivial).
  const auto finals_wanted = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::lround(config.final_fraction * n)));
  nfa.set_final(n - 1);
  for (std::int32_t f = 1; f < finals_wanted; ++f)
    nfa.set_final(static_cast<State>(prng.pick_index(static_cast<std::size_t>(n))));
  return nfa;
}

}  // namespace rispar
