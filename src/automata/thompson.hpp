// Thompson construction: RE → NFA with ε-transitions.
//
// Kept alongside Glushkov as the textbook alternative (2 states per
// operator, linear size, but ε edges). The RI-DFA pipeline uses Glushkov;
// Thompson + ε-removal serves as an independent oracle in the test suite
// and as the front end for callers that prefer its shape.
#pragma once

#include "automata/nfa.hpp"
#include "regex/ast.hpp"

namespace rispar {

/// Compiles `re` (bounded repeats are expanded first); the result generally
/// contains ε-transitions — pass through remove_epsilon()/trim_unreachable()
/// before determinization.
Nfa thompson_nfa(const RePtr& re);

}  // namespace rispar
