#include "automata/nfa_ops.hpp"

#include <vector>

namespace rispar {

void epsilon_closure(const Nfa& nfa, Bitset& states) {
  if (!nfa.has_epsilon()) return;
  std::vector<State> stack = states.to_indices();
  while (!stack.empty()) {
    const State state = stack.back();
    stack.pop_back();
    for (const State next : nfa.epsilon_edges(state)) {
      if (!states.test(static_cast<std::size_t>(next))) {
        states.set(static_cast<std::size_t>(next));
        stack.push_back(next);
      }
    }
  }
}

Nfa remove_epsilon(const Nfa& nfa) {
  if (!nfa.has_epsilon()) return nfa;
  Nfa result(nfa.num_symbols(), nfa.symbols());
  for (State s = 0; s < nfa.num_states(); ++s) result.add_state();
  result.set_initial(nfa.initial());

  const auto universe = static_cast<std::size_t>(nfa.num_states());
  for (State s = 0; s < nfa.num_states(); ++s) {
    Bitset closure(universe);
    closure.set(static_cast<std::size_t>(s));
    epsilon_closure(nfa, closure);
    bool is_final = false;
    for (std::size_t q = closure.first(); q != Bitset::npos; q = closure.next(q)) {
      if (nfa.is_final(static_cast<State>(q))) is_final = true;
      for (const auto& edge : nfa.edges(static_cast<State>(q)))
        result.add_edge(s, edge.symbol, edge.target);
    }
    result.set_final(s, is_final);
  }
  return result;
}

Nfa trim_unreachable(const Nfa& nfa, std::vector<State>* kept) {
  std::vector<State> remap(static_cast<std::size_t>(nfa.num_states()), kDeadState);
  std::vector<State> order;
  std::vector<State> stack{nfa.initial()};
  remap[static_cast<std::size_t>(nfa.initial())] = 0;
  order.push_back(nfa.initial());
  while (!stack.empty()) {
    const State state = stack.back();
    stack.pop_back();
    auto visit = [&](State next) {
      if (remap[static_cast<std::size_t>(next)] == kDeadState) {
        remap[static_cast<std::size_t>(next)] = static_cast<State>(order.size());
        order.push_back(next);
        stack.push_back(next);
      }
    };
    for (const auto& edge : nfa.edges(state)) visit(edge.target);
    for (const State next : nfa.epsilon_edges(state)) visit(next);
  }

  Nfa result(nfa.num_symbols(), nfa.symbols());
  for (std::size_t i = 0; i < order.size(); ++i)
    result.add_state(nfa.is_final(order[i]));
  result.set_initial(0);
  for (const State old_state : order) {
    const State new_state = remap[static_cast<std::size_t>(old_state)];
    for (const auto& edge : nfa.edges(old_state))
      result.add_edge(new_state, edge.symbol,
                      remap[static_cast<std::size_t>(edge.target)]);
    for (const State next : nfa.epsilon_edges(old_state))
      result.add_epsilon(new_state, remap[static_cast<std::size_t>(next)]);
  }
  if (kept) *kept = std::move(remap);
  return result;
}

Nfa reverse(const Nfa& nfa) {
  Nfa result(nfa.num_symbols(), nfa.symbols());
  for (State s = 0; s < nfa.num_states(); ++s)
    result.add_state(s == nfa.initial());
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& edge : nfa.edges(s)) result.add_edge(edge.target, edge.symbol, s);
    for (const State next : nfa.epsilon_edges(s)) result.add_epsilon(next, s);
  }
  // Reversal has multiple starts (the old finals); introduce a fresh initial
  // that ε-branches to all of them so the type's single-initial invariant
  // holds.
  const State start = result.add_state();
  result.set_initial(start);
  for (std::size_t f = nfa.finals().first(); f != Bitset::npos; f = nfa.finals().next(f))
    result.add_epsilon(start, static_cast<State>(f));
  return result;
}

Nfa nfa_union(const Nfa& a, const Nfa& b) {
  // Alphabets must agree; callers using byte texts should have built both
  // automata over the same SymbolMap.
  Nfa result(a.num_symbols(), a.symbols());
  const State start = result.add_state();
  result.set_initial(start);
  const State base_a = result.num_states();
  for (State s = 0; s < a.num_states(); ++s) result.add_state(a.is_final(s));
  const State base_b = result.num_states();
  for (State s = 0; s < b.num_states(); ++s) result.add_state(b.is_final(s));

  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& edge : a.edges(s))
      result.add_edge(base_a + s, edge.symbol, base_a + edge.target);
    for (const State next : a.epsilon_edges(s))
      result.add_epsilon(base_a + s, base_a + next);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& edge : b.edges(s))
      result.add_edge(base_b + s, edge.symbol, base_b + edge.target);
    for (const State next : b.epsilon_edges(s))
      result.add_epsilon(base_b + s, base_b + next);
  }
  result.add_epsilon(start, base_a + a.initial());
  result.add_epsilon(start, base_b + b.initial());
  return result;
}

Bitset nfa_reach(const Nfa& nfa, const Bitset& start, const std::vector<Symbol>& input) {
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier = start;
  epsilon_closure(nfa, frontier);
  Bitset next(universe);
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= nfa.num_symbols()) return Bitset(universe);
    next.clear();
    for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s))
      for (const auto& edge : nfa.edges(static_cast<State>(s), symbol))
        next.set(static_cast<std::size_t>(edge.target));
    epsilon_closure(nfa, next);
    std::swap(frontier, next);
    if (frontier.empty()) break;
  }
  return frontier;
}

bool nfa_accepts(const Nfa& nfa, const std::vector<Symbol>& input) {
  Bitset start(static_cast<std::size_t>(nfa.num_states()));
  start.set(static_cast<std::size_t>(nfa.initial()));
  const Bitset reached = nfa_reach(nfa, start, input);
  return reached.intersects(nfa.finals());
}

bool nfa_accepts(const Nfa& nfa, const std::string& text) {
  return nfa_accepts(nfa, nfa.symbols().translate(text));
}

}  // namespace rispar
