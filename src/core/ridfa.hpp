// RI-DFA — the reduced-interface deterministic automaton, the paper's
// central contribution (Sect. 3).
//
// An RI-DFA B = (P, Σ, δ_B, I_B, F_B) is a multi-entry DFA derived from an
// ε-free NFA N with ℓ states:
//   * its state set P is the union of the ℓ incremental powerset machines
//     N(q0), N(q1), ..., N(q_{ℓ-1}) built over one shared subset registry;
//   * its initial (interface) states I_B are exactly the ℓ singletons {q_i};
//   * its transition function δ_B is deterministic;
//   * its final states are the subsets intersecting the NFA finals.
// Used as the chunk automaton of the RID device, it gives speculative
// parallel recognition with only ℓ = |Q_N| start states instead of |Q_DFA|,
// while every transition stays a deterministic table lookup.
//
// The `interface` table realizes the paper's interface function `if`
// (Sect. 3.2): NFA state q ↦ the CA initial state responsible for q. After
// interface minimization (Sect. 3.4; interface_min.hpp) some singletons
// *delegate* their initial role to a Nerode-equivalent one and the table
// points to the delegate — the transition graph itself never changes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"

namespace rispar {

class Ridfa {
 public:
  /// The underlying deterministic machine (partial table, dead = -1).
  const Dfa& dfa() const { return dfa_; }

  std::int32_t num_states() const { return dfa_.num_states(); }
  std::int32_t num_symbols() const { return dfa_.num_symbols(); }
  std::int32_t num_nfa_states() const { return num_nfa_states_; }

  State step(State state, Symbol symbol) const { return dfa_.step(state, symbol); }
  bool is_final(State state) const { return dfa_.is_final(state); }
  const SymbolMap& symbols() const { return dfa_.symbols(); }

  /// Subset label: the NFA states contained in CA state `p` (sorted).
  const std::vector<State>& contents(State state) const {
    return contents_[static_cast<std::size_t>(state)];
  }

  /// CA state of the singleton {q} (pre-delegation; always a real state).
  State singleton(State nfa_state) const {
    return singleton_[static_cast<std::size_t>(nfa_state)];
  }

  /// Interface: CA initial state that answers for NFA state q. Equal to
  /// singleton(q) until interface minimization delegates it.
  State interface_of(State nfa_state) const {
    return interface_[static_cast<std::size_t>(nfa_state)];
  }

  /// The distinct initial states (sorted, deduplicated interface range) —
  /// the speculative starting set of every chunk automaton B_i, i >= 2.
  const std::vector<State>& initial_states() const { return initials_; }
  std::int32_t initial_count() const {
    return static_cast<std::int32_t>(initials_.size());
  }

  /// Start state of the first chunk automaton: the singleton {q0} itself
  /// (its initial *role* may be delegated, but B_1 knows its true start).
  State start_state() const { return start_; }

  /// Applies the interface function to a PLAS set given as CA state ids:
  /// if(PLAS) = { interface_of(q) : p ∈ PLAS, q ∈ contents(p) }, returned
  /// sorted and deduplicated. This is `if` before minimization and `if_min`
  /// after (the delegation is inside interface_of).
  std::vector<State> interface_image(const std::vector<State>& plas) const;

  // --- mutation API used by the builder and by interface minimization ---
  struct Builder;
  void set_interface(std::vector<State> interface);

 private:
  friend struct RidfaBuilderAccess;
  friend struct BundleRestoreAccess;  ///< src/bundle/restore.hpp
  Dfa dfa_;
  std::vector<std::vector<State>> contents_;
  std::vector<State> singleton_;
  std::vector<State> interface_;
  std::vector<State> initials_;
  State start_ = 0;
  std::int32_t num_nfa_states_ = 0;
};

/// Sect. 3.1 construction. Requires an ε-free NFA (Glushkov output or
/// remove_epsilon'd); the interface starts as the identity (every singleton
/// is initial). The incremental seeding over one registry is what keeps the
/// measured cost far below ℓ separate determinizations (Sect. 4.5).
Ridfa build_ridfa(const Nfa& nfa);

/// Budgeted variant: gives up (nullopt) when the incremental powerset would
/// intern more than `max_states` subsets. Used by collection tooling to
/// skip machines with pathological determinization blow-up.
std::optional<Ridfa> try_build_ridfa(const Nfa& nfa, std::int32_t max_states);

/// Construction-cost observability for the Sect. 4.5 experiment.
struct RidfaStats {
  std::int32_t nfa_states = 0;
  std::int32_t ridfa_states = 0;
  std::int32_t initial_states = 0;
  std::size_t table_entries = 0;
};
RidfaStats ridfa_stats(const Ridfa& ridfa);

}  // namespace rispar
