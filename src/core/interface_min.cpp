#include "core/interface_min.hpp"

#include <vector>

#include "automata/minimize.hpp"

namespace rispar {

InterfaceMinStats minimize_interface(Ridfa& ridfa) {
  InterfaceMinStats stats;
  stats.initial_before = ridfa.initial_count();

  // Language-equivalence classes of all CA states. The relation ignores the
  // initial states entirely, which is what makes it sound for a multi-entry
  // machine: outgoing behaviour is deterministic from every state.
  const NerodePartition partition = nerode_classes(ridfa.dfa());

  // Elect, per class, the lowest-id singleton as representative.
  std::vector<State> class_representative(static_cast<std::size_t>(partition.num_classes),
                                          kDeadState);
  for (State q = 0; q < ridfa.num_nfa_states(); ++q) {
    const State p = ridfa.singleton(q);
    const std::int32_t c = partition.class_of[static_cast<std::size_t>(p)];
    State& rep = class_representative[static_cast<std::size_t>(c)];
    if (rep == kDeadState || p < rep) rep = p;
  }

  // Delegate: interface(q) = representative of class({q}). Note we rebuild
  // from the *singleton* table, not the current interface, so the pass is
  // idempotent and can run after a previous minimization.
  std::vector<State> interface(static_cast<std::size_t>(ridfa.num_nfa_states()));
  for (State q = 0; q < ridfa.num_nfa_states(); ++q) {
    const State p = ridfa.singleton(q);
    const std::int32_t c = partition.class_of[static_cast<std::size_t>(p)];
    const State rep = class_representative[static_cast<std::size_t>(c)];
    interface[static_cast<std::size_t>(q)] = rep;
    if (rep != p) ++stats.downgraded;
  }
  ridfa.set_interface(std::move(interface));

  stats.initial_after = ridfa.initial_count();
  return stats;
}

Ridfa build_minimized_ridfa(const Nfa& nfa) {
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);
  return ridfa;
}

}  // namespace rispar
