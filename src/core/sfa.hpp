// Simultaneous Finite Automaton (SFA) — the speculation-free alternative
// the paper compares against (Sect. 1; Sin'ya et al. [25], assessed in [5]).
//
// Given a deterministic chunk automaton where every state may act as
// initial, the SFA's states are *mappings* f : Q → Q ∪ {dead}: the state
// reached from every possible start simultaneously. One SFA run per chunk
// (starting from the identity mapping) replaces the |Q| speculative runs,
// so parallel recognition costs exactly n transitions — but the state space
// can explode towards |Q+1|^|Q|, which is why construction carries a
// budget. This is the trade-off that motivates the RI-DFA: NFA-sized
// speculation without the SFA's construction blow-up.
#pragma once

#include <cstdint>
#include <optional>

#include "automata/dfa.hpp"
#include "automata/packed_table.hpp"

namespace rispar {

class Sfa {
 public:
  std::int32_t num_states() const { return mappings_.num_symbols(); }
  std::int32_t num_symbols() const { return num_symbols_; }

  /// Chunk-automaton states per mapping (the |Q| of the machine the SFA
  /// was built from).
  std::int32_t map_width() const { return mappings_.num_states(); }

  /// The identity mapping — the SFA's initial state for every chunk.
  State initial() const { return 0; }

  /// δ_SFA(state, symbol); never dead (the all-dead mapping is a real state).
  /// Reads the packed table — the only copy of δ_SFA the Sfa keeps; a dense
  /// int32 duplicate would double the footprint of the explosion-prone
  /// machine for the benefit of this cold accessor alone.
  State step(State state, Symbol symbol) const {
    const std::size_t at =
        static_cast<std::size_t>(symbol) * static_cast<std::size_t>(num_states()) +
        static_cast<std::size_t>(state);
    switch (packed_.width()) {
      case TableWidth::kU8:
        return static_cast<State>(packed_.data<std::uint8_t>()[at]);
      case TableWidth::kU16:
        return static_cast<State>(packed_.data<std::uint16_t>()[at]);
      case TableWidth::kI32:
        break;
    }
    return packed_.data<std::int32_t>()[at];
  }

  /// The SFA's own δ, width-packed and symbol-major (automata/
  /// packed_table.hpp) — the same layout the pattern DFA's scans use, and
  /// the only representation of δ_SFA the Sfa stores. δ_SFA is total, so no
  /// packed body entry is ever the dead sentinel.
  const PackedTable& packed() const { return packed_; }

  /// Entry q of SFA state `state`'s mapping: the chunk-automaton state
  /// reached from start q, or kDeadState if that run died. One width
  /// dispatch per call — the SFA join reads a single entry per chunk.
  State mapping_entry(State state, State q) const {
    const auto at = static_cast<std::size_t>(q);
    switch (mappings_.width()) {
      case TableWidth::kU8: {
        const std::uint8_t v = mappings_.column<std::uint8_t>(state)[at];
        return v == PackedDead<std::uint8_t>::value ? kDeadState
                                                    : static_cast<State>(v);
      }
      case TableWidth::kU16: {
        const std::uint16_t v = mappings_.column<std::uint16_t>(state)[at];
        return v == PackedDead<std::uint16_t>::value ? kDeadState
                                                     : static_cast<State>(v);
      }
      case TableWidth::kI32:
        break;
    }
    return mappings_.column<std::int32_t>(state)[at];
  }

  /// The mappings as a PackedTable, reusing its width-packing, slack-tail
  /// and zero-copy adoption machinery with a transposed identification:
  /// "symbols" are SFA states and "states" are chunk-automaton states, so
  /// column(s) is the contiguous (narrow) mapping row of SFA state s. This
  /// is what a bundle stores verbatim and adopts in place — the mappings
  /// dominate an SFA's footprint, and materializing them on load is most
  /// of a cold start.
  const PackedTable& mappings() const { return mappings_; }

  /// Runs the SFA over a chunk from the identity, returning the arrival
  /// SFA state and counting one transition per symbol.
  State run(const Symbol* input, std::size_t length, std::uint64_t& transitions) const;

  /// The all-dead mapping's state id, when that mapping was interned during
  /// construction (it is the arrival state of any chunk containing an alien
  /// symbol). nullopt means the chunk automaton is total and alien symbols
  /// cannot occur in translated text.
  std::optional<State> all_dead_state() const { return all_dead_; }

 private:
  friend std::optional<Sfa> try_build_sfa(const Dfa&, std::int32_t);
  friend struct BundleRestoreAccess;  ///< src/bundle/restore.hpp
  std::int32_t num_symbols_ = 0;
  PackedTable packed_;    ///< δ_SFA, width-packed and symbol-major
  PackedTable mappings_;  ///< mapping rows as columns (see mappings())
  std::optional<State> all_dead_;
};

/// Builds the SFA of a deterministic chunk automaton, giving up (nullopt)
/// once more than `max_states` mappings have been interned — the explosion
/// case the paper reports as "construction can be a thousand times slower".
std::optional<Sfa> try_build_sfa(const Dfa& chunk_automaton,
                                 std::int32_t max_states = 1 << 16);

}  // namespace rispar
