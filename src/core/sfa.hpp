// Simultaneous Finite Automaton (SFA) — the speculation-free alternative
// the paper compares against (Sect. 1; Sin'ya et al. [25], assessed in [5]).
//
// Given a deterministic chunk automaton where every state may act as
// initial, the SFA's states are *mappings* f : Q → Q ∪ {dead}: the state
// reached from every possible start simultaneously. One SFA run per chunk
// (starting from the identity mapping) replaces the |Q| speculative runs,
// so parallel recognition costs exactly n transitions — but the state space
// can explode towards |Q+1|^|Q|, which is why construction carries a
// budget. This is the trade-off that motivates the RI-DFA: NFA-sized
// speculation without the SFA's construction blow-up.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/packed_table.hpp"

namespace rispar {

class Sfa {
 public:
  std::int32_t num_states() const { return static_cast<std::int32_t>(mappings_.size()); }
  std::int32_t num_symbols() const { return num_symbols_; }

  /// The identity mapping — the SFA's initial state for every chunk.
  State initial() const { return 0; }

  /// δ_SFA(state, symbol); never dead (the all-dead mapping is a real state).
  State step(State state, Symbol symbol) const {
    return table_[static_cast<std::size_t>(state) * num_symbols_ +
                  static_cast<std::size_t>(symbol)];
  }

  /// The SFA's own δ, width-packed and symbol-major (automata/
  /// packed_table.hpp) — the same layout the pattern DFA's scans use, so
  /// chunk runs walk u8/u16 entries instead of the int32 state-major rows.
  /// δ_SFA is total, so no packed entry is ever the dead sentinel.
  const PackedTable& packed() const { return packed_; }

  /// The mapping of an SFA state: entry q is the chunk-automaton state
  /// reached from start q, or kDeadState if that run died.
  const std::vector<State>& mapping(State state) const {
    return mappings_[static_cast<std::size_t>(state)];
  }

  /// Runs the SFA over a chunk from the identity, returning the arrival
  /// SFA state and counting one transition per symbol.
  State run(const Symbol* input, std::size_t length, std::uint64_t& transitions) const;

  /// The all-dead mapping's state id, when that mapping was interned during
  /// construction (it is the arrival state of any chunk containing an alien
  /// symbol). nullopt means the chunk automaton is total and alien symbols
  /// cannot occur in translated text.
  std::optional<State> all_dead_state() const { return all_dead_; }

 private:
  friend std::optional<Sfa> try_build_sfa(const Dfa&, std::int32_t);
  std::int32_t num_symbols_ = 0;
  std::vector<State> table_;
  PackedTable packed_;  ///< width-packed symbol-major copy of table_
  std::vector<std::vector<State>> mappings_;
  std::optional<State> all_dead_;
};

/// Builds the SFA of a deterministic chunk automaton, giving up (nullopt)
/// once more than `max_states` mappings have been interned — the explosion
/// case the paper reports as "construction can be a thousand times slower".
std::optional<Sfa> try_build_sfa(const Dfa& chunk_automaton,
                                 std::int32_t max_states = 1 << 16);

}  // namespace rispar
