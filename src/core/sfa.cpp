#include "core/sfa.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "automata/packed_table.hpp"
#include "util/fault_inject.hpp"

namespace rispar {

namespace {

struct MappingHash {
  std::size_t operator()(const std::vector<State>& mapping) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const State s : mapping) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(s));
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// Composes `current` with symbol `a` of the packed chunk-automaton table.
// The symbol-major layout makes this a walk over one contiguous column.
template <typename T>
void compose_mapping(const PackedTable& table, std::span<const State> current,
                     Symbol a, std::vector<State>& next) {
  constexpr T kDead = PackedDead<T>::value;
  const T* col = table.column<T>(a);
  for (std::size_t q = 0; q < current.size(); ++q) {
    const State mid = current[q];
    if (mid == kDeadState) {
      next[q] = kDeadState;
      continue;
    }
    const T stepped = col[static_cast<std::size_t>(mid)];
    next[q] = stepped == kDead ? kDeadState : static_cast<State>(stepped);
  }
}

}  // namespace

namespace {

// The packed scan: one unchecked column lookup per symbol (δ_SFA is total,
// so the loop has exactly one branch — the alien-symbol range check, folded
// into a single unsigned compare as in run_packed_single).
template <typename T>
State run_packed_sfa(const PackedTable& table, const Symbol* input, std::size_t length,
                     const std::optional<State>& all_dead, std::uint64_t& transitions) {
  const T* entries = table.data<T>();
  const auto n = static_cast<std::size_t>(table.num_states());
  const auto limit = static_cast<std::uint32_t>(table.num_symbols());
  T state = 0;  // Sfa::initial() — the identity mapping
  for (std::size_t i = 0; i < length; ++i) {
    if (static_cast<std::uint32_t>(input[i]) >= limit) {
      // Alien symbol: every run dies, so the arrival state is the all-dead
      // mapping (a fixpoint of every symbol), precomputed at build time.
      // When it was never interned the chunk automaton is total and alien
      // symbols cannot occur for texts translated with its SymbolMap.
      transitions += i;
      return all_dead.value_or(static_cast<State>(state));
    }
    state = entries[static_cast<std::size_t>(input[i]) * n +
                    static_cast<std::size_t>(state)];
  }
  transitions += length;
  return static_cast<State>(state);
}

}  // namespace

State Sfa::run(const Symbol* input, std::size_t length,
               std::uint64_t& transitions) const {
  switch (packed_.width()) {
    case TableWidth::kU8:
      return run_packed_sfa<std::uint8_t>(packed_, input, length, all_dead_,
                                          transitions);
    case TableWidth::kU16:
      return run_packed_sfa<std::uint16_t>(packed_, input, length, all_dead_,
                                           transitions);
    case TableWidth::kI32:
      break;
  }
  return run_packed_sfa<std::int32_t>(packed_, input, length, all_dead_, transitions);
}

std::optional<Sfa> try_build_sfa(const Dfa& chunk_automaton, std::int32_t max_states) {
  const std::int32_t n = chunk_automaton.num_states();
  const std::int32_t k = chunk_automaton.num_symbols();
  const PackedTable& packed = chunk_automaton.packed();

  Sfa sfa;
  sfa.num_symbols_ = k;

  // Construction scratch, both dense and dead on return: the state-major
  // δ_SFA and the row-major mappings (only the packed copies survive).
  std::vector<State> table;
  std::vector<State> rows;
  std::unordered_map<std::vector<State>, State, MappingHash> index;
  std::vector<State> worklist;

  auto intern = [&](std::vector<State> mapping) -> State {
    const auto it = index.find(mapping);
    if (it != index.end()) return it->second;
    // Fault site: interning a new mapping is where SFA construction grows.
    if (fault::should_fail("sfa.alloc")) throw std::bad_alloc();
    const auto id = static_cast<State>(index.size());
    if (!sfa.all_dead_ &&
        std::all_of(mapping.begin(), mapping.end(),
                    [](const State s) { return s == kDeadState; }))
      sfa.all_dead_ = id;
    rows.insert(rows.end(), mapping.begin(), mapping.end());
    index.emplace(std::move(mapping), id);
    table.insert(table.end(), static_cast<std::size_t>(k), kDeadState);
    worklist.push_back(id);
    return id;
  };

  // Seed: the identity mapping (state 0 by construction).
  std::vector<State> identity(static_cast<std::size_t>(n));
  for (State q = 0; q < n; ++q) identity[static_cast<std::size_t>(q)] = q;
  intern(std::move(identity));

  while (!worklist.empty()) {
    if (static_cast<std::int32_t>(index.size()) > max_states) return std::nullopt;
    const State state = worklist.back();
    worklist.pop_back();
    for (Symbol a = 0; a < k; ++a) {
      std::vector<State> next(static_cast<std::size_t>(n));
      // Re-fetched per symbol: intern() may grow (and reallocate) `rows`.
      const std::span<const State> current{
          rows.data() + static_cast<std::size_t>(state) * static_cast<std::size_t>(n),
          static_cast<std::size_t>(n)};
      switch (packed.width()) {
        case TableWidth::kU8:
          compose_mapping<std::uint8_t>(packed, current, a, next);
          break;
        case TableWidth::kU16:
          compose_mapping<std::uint16_t>(packed, current, a, next);
          break;
        case TableWidth::kI32:
          compose_mapping<std::int32_t>(packed, current, a, next);
          break;
      }
      const State target = intern(std::move(next));
      table[static_cast<std::size_t>(state) * k + static_cast<std::size_t>(a)] =
          target;
    }
  }
  const auto ns = static_cast<std::int32_t>(index.size());
  // Pack δ_SFA like every other scan table: width by state count,
  // symbol-major.
  sfa.packed_ = PackedTable::build(table, ns, k);
  // Pack the mappings under the transposed identification mappings()
  // documents — "states" are chunk-automaton states (the value bound, so
  // width is canonical on n), "symbols" are SFA states. The builder takes
  // state-major input, so transpose the row-major scratch first; the
  // packed result's column(s) is then exactly mapping row s.
  std::vector<State> transposed(rows.size());
  for (std::int32_t s = 0; s < ns; ++s)
    for (std::int32_t q = 0; q < n; ++q)
      transposed[static_cast<std::size_t>(q) * ns + s] =
          rows[static_cast<std::size_t>(s) * n + q];
  sfa.mappings_ = PackedTable::build(transposed, n, ns);
  return sfa;
}

}  // namespace rispar
