#include "core/sfa.hpp"

#include <unordered_map>

namespace rispar {

namespace {

struct MappingHash {
  std::size_t operator()(const std::vector<State>& mapping) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const State s : mapping) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(s));
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

State Sfa::run(const Symbol* input, std::size_t length, std::uint64_t& transitions) const {
  State state = initial();
  for (std::size_t i = 0; i < length; ++i) {
    const Symbol symbol = input[i];
    if (symbol < 0 || symbol >= num_symbols_) {
      // Foreign byte: every run dies; jump to the all-dead mapping by
      // composing with it is equivalent to staying dead forever. We encode
      // this by scanning to the all-dead state through a dead composition:
      // the all-dead mapping is a fixpoint of every symbol, and it is
      // reachable lazily — here we simply return it via linear search.
      for (State s = 0; s < num_states(); ++s) {
        bool all_dead = true;
        for (const State entry : mappings_[static_cast<std::size_t>(s)])
          all_dead = all_dead && entry == kDeadState;
        if (all_dead) return s;
      }
      // No all-dead mapping exists in this SFA (the CA is total): foreign
      // bytes cannot occur for texts translated with the CA's SymbolMap.
      return state;
    }
    state = step(state, symbol);
    ++transitions;
  }
  return state;
}

std::optional<Sfa> try_build_sfa(const Dfa& chunk_automaton, std::int32_t max_states) {
  const std::int32_t n = chunk_automaton.num_states();
  const std::int32_t k = chunk_automaton.num_symbols();

  Sfa sfa;
  sfa.num_symbols_ = k;

  std::unordered_map<std::vector<State>, State, MappingHash> index;
  std::vector<State> worklist;

  auto intern = [&](std::vector<State> mapping) -> State {
    const auto it = index.find(mapping);
    if (it != index.end()) return it->second;
    const State id = sfa.num_states();
    index.emplace(mapping, id);
    sfa.mappings_.push_back(std::move(mapping));
    sfa.table_.insert(sfa.table_.end(), static_cast<std::size_t>(k), kDeadState);
    worklist.push_back(id);
    return id;
  };

  // Seed: the identity mapping (state 0 by construction).
  std::vector<State> identity(static_cast<std::size_t>(n));
  for (State q = 0; q < n; ++q) identity[static_cast<std::size_t>(q)] = q;
  intern(std::move(identity));

  while (!worklist.empty()) {
    if (sfa.num_states() > max_states) return std::nullopt;
    const State state = worklist.back();
    worklist.pop_back();
    for (Symbol a = 0; a < k; ++a) {
      std::vector<State> next(static_cast<std::size_t>(n));
      const std::vector<State>& current = sfa.mappings_[static_cast<std::size_t>(state)];
      for (State q = 0; q < n; ++q) {
        const State mid = current[static_cast<std::size_t>(q)];
        next[static_cast<std::size_t>(q)] =
            mid == kDeadState ? kDeadState : chunk_automaton.step(mid, a);
      }
      const State target = intern(std::move(next));
      sfa.table_[static_cast<std::size_t>(state) * k + static_cast<std::size_t>(a)] =
          target;
    }
  }
  return sfa;
}

}  // namespace rispar
