#include "core/ridfa.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "automata/subset.hpp"

namespace rispar {

namespace {

std::vector<State> dedup_sorted(std::vector<State> states) {
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  return states;
}

}  // namespace

// Grants build_ridfa access to the private fields without exposing setters
// in the public API.
struct RidfaBuilderAccess {
  static Ridfa make(Dfa dfa, std::vector<std::vector<State>> contents,
                    std::vector<State> singleton, std::int32_t num_nfa_states) {
    Ridfa ridfa;
    ridfa.dfa_ = std::move(dfa);
    ridfa.contents_ = std::move(contents);
    ridfa.singleton_ = std::move(singleton);
    ridfa.num_nfa_states_ = num_nfa_states;
    ridfa.interface_ = ridfa.singleton_;
    ridfa.initials_ = dedup_sorted(ridfa.interface_);
    ridfa.start_ = ridfa.singleton_[static_cast<std::size_t>(0)];
    return ridfa;
  }
};

void Ridfa::set_interface(std::vector<State> interface) {
  assert(interface.size() == static_cast<std::size_t>(num_nfa_states_));
  interface_ = std::move(interface);
  initials_ = dedup_sorted(interface_);
}

std::vector<State> Ridfa::interface_image(const std::vector<State>& plas) const {
  std::vector<State> image;
  for (const State p : plas)
    for (const State q : contents(p))
      image.push_back(interface_of(q));
  return dedup_sorted(std::move(image));
}

namespace {

std::optional<Ridfa> build_ridfa_impl(const Nfa& nfa, std::int32_t max_states) {
  assert(!nfa.has_epsilon() &&
         "build_ridfa requires an eps-free NFA (use Glushkov or remove_epsilon)");
  const std::int32_t l = nfa.num_states();

  SubsetConstruction construction(nfa);
  construction.set_state_limit(max_states);
  std::vector<State> singleton(static_cast<std::size_t>(l), kDeadState);

  // Incremental construction, Sect. 3.1: N(q0) first (seeded with the true
  // initial state so chunk 1 starts correctly), then each remaining NFA
  // state. The registry is shared, so N(q_{i}) only adds subsets that the
  // previous machines did not already reach.
  singleton[static_cast<std::size_t>(nfa.initial())] =
      construction.add_seed_singleton(nfa.initial());
  if (!construction.run()) return std::nullopt;
  for (State q = 0; q < l; ++q) {
    if (q == nfa.initial()) continue;
    singleton[static_cast<std::size_t>(q)] = construction.add_seed_singleton(q);
    if (!construction.run()) return std::nullopt;
  }

  std::vector<std::vector<State>> contents;
  Dfa dfa = construction.to_dfa(singleton[static_cast<std::size_t>(nfa.initial())],
                                &contents);

  // Re-index the singleton table (ids are construction-order stable, but
  // double-check the subsets actually are singletons).
  for (State q = 0; q < l; ++q) {
    [[maybe_unused]] const State p = singleton[static_cast<std::size_t>(q)];
    assert(contents[static_cast<std::size_t>(p)].size() == 1 &&
           contents[static_cast<std::size_t>(p)][0] == q);
  }

  return RidfaBuilderAccess::make(std::move(dfa), std::move(contents),
                                  std::move(singleton), l);
}

}  // namespace

Ridfa build_ridfa(const Nfa& nfa) {
  auto ridfa = build_ridfa_impl(nfa, std::numeric_limits<std::int32_t>::max());
  assert(ridfa.has_value());
  return std::move(*ridfa);
}

std::optional<Ridfa> try_build_ridfa(const Nfa& nfa, std::int32_t max_states) {
  return build_ridfa_impl(nfa, max_states);
}

RidfaStats ridfa_stats(const Ridfa& ridfa) {
  RidfaStats stats;
  stats.nfa_states = ridfa.num_nfa_states();
  stats.ridfa_states = ridfa.num_states();
  stats.initial_states = ridfa.initial_count();
  stats.table_entries = ridfa.dfa().num_transitions();
  return stats;
}

}  // namespace rispar
