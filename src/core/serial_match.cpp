#include "core/serial_match.hpp"

#include "util/bitset.hpp"

namespace rispar {

State run_dfa_span(const Dfa& dfa, State start, const Symbol* input, std::size_t length,
                   std::uint64_t& transitions) {
  State state = start;
  const std::int32_t k = dfa.num_symbols();
  for (std::size_t i = 0; i < length; ++i) {
    const Symbol symbol = input[i];
    if (symbol < 0 || symbol >= k) return kDeadState;
    state = dfa.row(state)[symbol];
    if (state == kDeadState) return kDeadState;
    ++transitions;
  }
  return state;
}

MatchResult serial_match(const Dfa& dfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const State end = run_dfa_span(dfa, dfa.initial(), input.data(), input.size(),
                                 result.transitions);
  result.accepted = end != kDeadState && dfa.is_final(end);
  return result;
}

MatchResult serial_match(const Dfa& dfa, const std::string& text) {
  return serial_match(dfa, dfa.symbols().translate(text));
}

MatchResult serial_match(const Nfa& nfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier(universe);
  frontier.set(static_cast<std::size_t>(nfa.initial()));
  // ε edges are legal here (unlike in the RI-DFA pipeline); apply closures.
  if (nfa.has_epsilon()) {
    std::vector<State> stack = frontier.to_indices();
    while (!stack.empty()) {
      const State s = stack.back();
      stack.pop_back();
      for (const State t : nfa.epsilon_edges(s))
        if (!frontier.test(static_cast<std::size_t>(t))) {
          frontier.set(static_cast<std::size_t>(t));
          stack.push_back(t);
        }
    }
  }

  Bitset next(universe);
  std::vector<State> stack;
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= nfa.num_symbols()) {
      frontier.clear();
      break;
    }
    next.clear();
    for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s)) {
      for (const auto& edge : nfa.edges(static_cast<State>(s), symbol)) {
        ++result.transitions;  // one per edge traversal, Fig. 1 convention
        next.set(static_cast<std::size_t>(edge.target));
      }
    }
    if (nfa.has_epsilon()) {
      stack = next.to_indices();
      while (!stack.empty()) {
        const State s = stack.back();
        stack.pop_back();
        for (const State t : nfa.epsilon_edges(s))
          if (!next.test(static_cast<std::size_t>(t))) {
            next.set(static_cast<std::size_t>(t));
            stack.push_back(t);
          }
      }
    }
    std::swap(frontier, next);
    if (frontier.empty()) break;
  }
  result.accepted = frontier.intersects(nfa.finals());
  return result;
}

MatchResult serial_match(const Nfa& nfa, const std::string& text) {
  return serial_match(nfa, nfa.symbols().translate(text));
}

MatchResult serial_match(const Ridfa& ridfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const State end = run_dfa_span(ridfa.dfa(), ridfa.start_state(), input.data(),
                                 input.size(), result.transitions);
  result.accepted = end != kDeadState && ridfa.is_final(end);
  return result;
}

MatchResult serial_match(const Ridfa& ridfa, const std::string& text) {
  return serial_match(ridfa, ridfa.symbols().translate(text));
}

}  // namespace rispar
