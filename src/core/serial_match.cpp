#include "core/serial_match.hpp"

#include "automata/packed_table.hpp"
#include "util/bitset.hpp"

namespace rispar {

State run_dfa_span(const Dfa& dfa, State start, const Symbol* input, std::size_t length,
                   std::uint64_t& transitions) {
  const PackedTable& table = dfa.packed();
  PackedRun run;
  switch (table.width()) {
    case TableWidth::kU8:
      run = run_packed_single<std::uint8_t>(table, start, input, length);
      break;
    case TableWidth::kU16:
      run = run_packed_single<std::uint16_t>(table, start, input, length);
      break;
    case TableWidth::kI32:
      run = run_packed_single<std::int32_t>(table, start, input, length);
      break;
  }
  transitions += run.consumed;
  return run.end;
}

MatchResult serial_match(const Dfa& dfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const State end = run_dfa_span(dfa, dfa.initial(), input.data(), input.size(),
                                 result.transitions);
  result.accepted = end != kDeadState && dfa.is_final(end);
  return result;
}

MatchResult serial_match(const Dfa& dfa, const std::string& text) {
  return serial_match(dfa, dfa.symbols().translate(text));
}

MatchResult serial_match(const Nfa& nfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier(universe);
  frontier.set(static_cast<std::size_t>(nfa.initial()));
  // ε edges are legal here (unlike in the RI-DFA pipeline); apply closures.
  if (nfa.has_epsilon()) {
    std::vector<State> stack = frontier.to_indices();
    while (!stack.empty()) {
      const State s = stack.back();
      stack.pop_back();
      for (const State t : nfa.epsilon_edges(s))
        if (!frontier.test(static_cast<std::size_t>(t))) {
          frontier.set(static_cast<std::size_t>(t));
          stack.push_back(t);
        }
    }
  }

  Bitset next(universe);
  std::vector<State> stack;
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= nfa.num_symbols()) {
      frontier.clear();
      break;
    }
    next.clear();
    for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s)) {
      for (const auto& edge : nfa.edges(static_cast<State>(s), symbol)) {
        ++result.transitions;  // one per edge traversal, Fig. 1 convention
        next.set(static_cast<std::size_t>(edge.target));
      }
    }
    if (nfa.has_epsilon()) {
      stack = next.to_indices();
      while (!stack.empty()) {
        const State s = stack.back();
        stack.pop_back();
        for (const State t : nfa.epsilon_edges(s))
          if (!next.test(static_cast<std::size_t>(t))) {
            next.set(static_cast<std::size_t>(t));
            stack.push_back(t);
          }
      }
    }
    std::swap(frontier, next);
    if (frontier.empty()) break;
  }
  result.accepted = frontier.intersects(nfa.finals());
  return result;
}

MatchResult serial_match(const Nfa& nfa, const std::string& text) {
  return serial_match(nfa, nfa.symbols().translate(text));
}

MatchResult serial_match(const Ridfa& ridfa, const std::vector<Symbol>& input) {
  MatchResult result;
  const State end = run_dfa_span(ridfa.dfa(), ridfa.start_state(), input.data(),
                                 input.size(), result.transitions);
  result.accepted = end != kDeadState && ridfa.is_final(end);
  return result;
}

MatchResult serial_match(const Ridfa& ridfa, const std::string& text) {
  return serial_match(ridfa, ridfa.symbols().translate(text));
}

}  // namespace rispar
