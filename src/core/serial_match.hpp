// Serial recognizers with exact transition accounting.
//
// These are the c = 1 baselines of the paper's evaluation and the oracles of
// the test suite. They follow the transition-accounting convention stated
// once in parallel/ca_run.hpp (reproducing Fig. 1 exactly: min-DFA 15 /
// NFA 14 / RI-DFA 9 on "aabcab" in two chunks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "core/ridfa.hpp"

namespace rispar {

struct MatchResult {
  bool accepted = false;
  std::uint64_t transitions = 0;
};

/// DFA run from its initial state over the whole input.
MatchResult serial_match(const Dfa& dfa, const std::vector<Symbol>& input);
MatchResult serial_match(const Dfa& dfa, const std::string& text);

/// NFA frontier-set run from its initial state.
MatchResult serial_match(const Nfa& nfa, const std::vector<Symbol>& input);
MatchResult serial_match(const Nfa& nfa, const std::string& text);

/// RI-DFA run from start_state() — behaves exactly like a DFA run serially.
MatchResult serial_match(const Ridfa& ridfa, const std::vector<Symbol>& input);
MatchResult serial_match(const Ridfa& ridfa, const std::string& text);

/// Building block shared with the parallel reach kernels: runs `dfa` from
/// `start` over input[begin, end), returns the arrival state (kDeadState on
/// death) and adds consumed symbols to `transitions`.
State run_dfa_span(const Dfa& dfa, State start, const Symbol* input, std::size_t length,
                   std::uint64_t& transitions);

}  // namespace rispar
