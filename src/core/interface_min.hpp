// Interface minimization of an RI-DFA (paper Sect. 3.4).
//
// The classic DFA state-partition algorithm cannot be applied wholesale to
// an RI-DFA — merging undistinguishable states would either break the
// determinism of the multi-entry machine or force a cascade of merges
// (paper Fig. 6). Instead we only *downgrade*: within each Nerode class the
// singleton initial states elect one representative and the others delegate
// their initial role to it. The transition graph is untouched; only the
// interface table changes, so every saved start state saves one whole
// speculative chunk run.
#pragma once

#include "core/ridfa.hpp"

namespace rispar {

struct InterfaceMinStats {
  std::int32_t initial_before = 0;
  std::int32_t initial_after = 0;
  std::int32_t downgraded = 0;  ///< singletons that delegated their role
};

/// Reduces the initial-state set in place; returns what changed. Idempotent.
/// The recognized language is preserved (delegates are language-equivalent),
/// which the test suite checks against the serial DFA oracle.
InterfaceMinStats minimize_interface(Ridfa& ridfa);

/// Convenience: Sect. 3.1 construction followed by Sect. 3.4 reduction —
/// the configuration the paper's experiments use ("RID_min").
Ridfa build_minimized_ridfa(const Nfa& nfa);

}  // namespace rispar
