// The rispard wire protocol: length-prefixed binary frames over TCP.
//
// Both sides of the serving path speak the same framing (this header is the
// whole contract — the server, the example client, the load generator and
// the tests all include it, so protocol drift fails the build or the smoke
// tests, never a deployed fleet):
//
//   frame := u32le payload_length | u8 frame_type | payload bytes
//
// Integers are little-endian, unaligned. One TCP connection multiplexes any
// number of client-named streaming-find sessions; every request frame that
// concerns a session carries its id, and every response frame echoes it, so
// responses of interleaved sessions are attributable without ordering
// assumptions beyond TCP's per-connection FIFO. The full protocol semantics
// (session lifecycle, backpressure, reload, error taxonomy mapping) are
// documented in docs/rispard.md.
//
// Client -> server:
//   OPEN_SESSION {session_id, pattern_id, feed_deadline_ns, chunks [, flags]}
//                single-pattern (the trailing flags byte is optional — a
//                kOpenFlag* mask, absent = 0); pattern_id == kMultiPattern
//                selects the MULTI-PATTERN form, whose payload continues with
//                {flags, count, count x pattern_id} — count == 0 subscribes
//                the tenant's WHOLE catalog generation (flags bit 0 requests
//                begin_mode=exact; other bits must be zero)
//   FEED         {session_id, bytes...}        one streaming-find window
//   CLOSE        {session_id}
//   STATS        {}                            server + pool counters as JSON
//   RELOAD       {manifest text | empty}       swap the PatternSet (empty =
//                                              re-read the manifest file)
//   CHECKPOINT   {session_id}                  request the session's durable
//                                              state; answered by CHECKPOINTED
//                                              once in-flight feeds finish
//   RESUME_SESSION {session_id, pattern_id, feed_deadline_ns, chunks, flags}
//                then, in the multi-pattern form (pattern_id ==
//                kMultiPattern), {count, count x pattern_id}; the REST of the
//                payload is an opaque checkpoint blob (from CHECKPOINTED or
//                DRAINING). Opens a session that continues byte-exact from
//                the blob — same validation as OPEN_SESSION plus blob
//                integrity/identity checks; answered by OPENED
//
// Server -> client:
//   OPENED      {session_id, pattern_id, generation}   multi-pattern opens
//               echo kMultiPattern as the pattern_id
//   MATCHES     {session_id, count, count x {pattern_id, begin, end}}
//               pattern_id is the CATALOG id (manifest line order) in both
//               session forms — multi-pattern sessions remap their internal
//               indices before framing
//   FED         {session_id, consumed_total, matches_total}    per-FEED ack
//   CLOSED      {session_id, matches_total, accepted}
//   STATS_JSON  {json bytes}
//   RELOADED    {generation, pattern_count}
//   ERROR       {session_id | kNoSession, code, message bytes}
//   CHECKPOINTED {session_id, pattern_id, blob}   reply to CHECKPOINT; the
//               blob resumes via RESUME_SESSION (here or after reconnect)
//   DRAINING    {session_id, pattern_id, blob}    unsolicited at drain (and
//               idle reaping): the session's final checkpoint. The terminal
//               form {kNoSession} (no further fields) means every session on
//               the connection has drained and the server will close it
#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rispar::rispard {

/// Frame types. Requests are < 0x80, responses >= 0x80.
enum class FrameType : std::uint8_t {
  kOpenSession = 0x01,
  kFeed = 0x02,
  kClose = 0x03,
  kStats = 0x04,
  kReload = 0x05,
  kCheckpoint = 0x06,
  kResumeSession = 0x07,

  kOpened = 0x81,
  kMatches = 0x82,
  kFed = 0x83,
  kClosed = 0x84,
  kStatsJson = 0x85,
  kReloaded = 0x86,
  kError = 0x87,
  kCheckpointed = 0x88,
  kDraining = 0x89,
};

/// Typed error frames: the QueryError taxonomy (util/governance.hpp) plus
/// the protocol-level failures that have no exception to map.
enum class ErrorCode : std::uint8_t {
  kProtocol = 1,          ///< malformed frame; the server closes after sending
  kUnknownPattern = 2,    ///< pattern_id outside the current catalog
  kUnknownSession = 3,    ///< FEED/CLOSE for a session_id never opened (or closed)
  kSessionExists = 4,     ///< OPEN_SESSION reusing a live session_id
  kTooManySessions = 5,   ///< per-connection session cap reached
  kValidation = 6,        ///< ValidationError — incl. feeds to a poisoned session
  kDeadlineExceeded = 7,  ///< DeadlineExceeded — the per-feed budget tripped
  kCancelled = 8,         ///< QueryCancelled
  kResourceExhausted = 9, ///< ResourceExhausted — pool admission reject, budgets
  kBadManifest = 10,      ///< RELOAD manifest empty/unreadable/uncompilable
  kInternal = 11,         ///< anything else; the session (if any) is poisoned
};

const char* error_code_name(ErrorCode code);

/// ERROR frames not scoped to a session carry this sentinel id (session ids
/// are client-chosen, so 0 is a legal id and cannot be the sentinel).
inline constexpr std::uint32_t kNoSession = 0xffffffffu;

/// OPEN_SESSION pattern_id sentinel selecting the multi-pattern session
/// form (the payload then carries a flags byte and an explicit id list; see
/// the header comment). Catalogs are capped far below this, so no real
/// pattern can collide with it. OPENED echoes it back.
inline constexpr std::uint32_t kMultiPattern = 0xfffffffeu;

/// OPEN_SESSION multi-pattern flags (bit mask; unknown bits reject).
inline constexpr std::uint8_t kOpenFlagExactBegins = 0x01;

/// Frame header: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;
/// Hard cap on one frame's payload. Bounds per-connection buffering against
/// a hostile or broken peer; a FEED window this large is far past the point
/// where splitting it helps latency anyway (docs/rispard.md, backpressure).
inline constexpr std::size_t kMaxFramePayload = 1u << 24;  // 16 MiB

// ------------------------------------------------------------- serialization

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

/// Appends one whole frame (header + payload) to `out`.
inline void put_frame(std::string& out, FrameType type, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u8(out, static_cast<std::uint8_t>(type));
  out.append(payload);
}

/// Bounds-checked payload reader. Every get_* returns a value and clears
/// `ok` on underrun; callers check `ok` once at the end (a short frame reads
/// zeros, then fails the single check — no per-field error plumbing).
struct PayloadReader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  explicit PayloadReader(std::string_view payload)
      : data(payload.data()), size(payload.size()) {}

  std::uint8_t get_u8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint32_t get_u32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos++])) << shift;
    return v;
  }

  std::uint64_t get_u64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos++])) << shift;
    return v;
  }

  /// The unread remainder (FEED bytes, ERROR message, manifest text).
  std::string_view rest() {
    std::string_view tail(data + pos, size - pos);
    pos = size;
    return tail;
  }

  /// True when every read succeeded AND the payload was fully consumed —
  /// trailing garbage is a protocol error, not padding.
  bool exhausted() const { return ok && pos == size; }
};

/// One parsed frame. `payload` points into the FrameReader's buffer and is
/// valid until the next append()/next() call.
struct Frame {
  FrameType type{};
  std::string_view payload;
};

/// Incremental frame reassembly over a byte stream. Feed whatever recv()
/// produced; pop complete frames. Oversized length prefixes are reported as
/// a hard error (the stream is unrecoverable — there is no way to resync).
class FrameReader {
 public:
  /// Appends raw stream bytes.
  void append(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// True when the buffered prefix declares a payload past kMaxFramePayload.
  /// The connection should send ERROR{kProtocol} and close.
  bool overflowed() const {
    if (buffer_.size() - pos_ < 4) return false;
    return peek_len() > kMaxFramePayload;
  }

  /// Pops the next complete frame into `frame`. Returns false when the
  /// buffer holds only a partial frame (or an overflowed one — check
  /// overflowed() separately).
  bool next(Frame& frame) {
    const std::size_t available = buffer_.size() - pos_;
    if (available < kFrameHeaderBytes) return maybe_compact(), false;
    const std::uint32_t len = peek_len();
    if (len > kMaxFramePayload) return false;
    if (available < kFrameHeaderBytes + len) return maybe_compact(), false;
    frame.type = static_cast<FrameType>(
        static_cast<unsigned char>(buffer_[pos_ + 4]));
    frame.payload = std::string_view(buffer_.data() + pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    return true;
  }

  /// Bytes buffered but not yet popped (partial frame tail).
  std::size_t pending() const { return buffer_.size() - pos_; }

 private:
  std::uint32_t peek_len() const {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[pos_ + i]))
           << (8 * i);
    return v;
  }

  /// Drops consumed bytes once they dominate the buffer. Safe only when no
  /// Frame::payload is live — which next()'s contract already requires
  /// (payloads are invalidated by the next call).
  void maybe_compact() {
    if (pos_ >= 4096 && pos_ * 2 >= buffer_.size()) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buffer_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------- request frame builders

/// `flags` is a kOpenFlag* mask (kOpenFlagExactBegins requests
/// begin_mode=exact). Encoded as an optional trailing byte: 0 is omitted,
/// so frames from older builders parse identically.
inline std::string make_open_session(std::uint32_t session_id, std::uint32_t pattern_id,
                                     std::uint64_t feed_deadline_ns,
                                     std::uint32_t chunks, std::uint8_t flags = 0) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, pattern_id);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  if (flags != 0) put_u8(payload, flags);
  std::string frame;
  put_frame(frame, FrameType::kOpenSession, payload);
  return frame;
}

/// The multi-pattern OPEN_SESSION form: subscribes `pattern_ids` (catalog
/// ids; empty = the whole catalog generation) to one merged streaming-find
/// session. `flags` is a kOpenFlag* mask (kOpenFlagExactBegins requests
/// begin_mode=exact on every subscribed pattern).
inline std::string make_open_session_multi(std::uint32_t session_id,
                                           std::uint64_t feed_deadline_ns,
                                           std::uint32_t chunks,
                                           const std::vector<std::uint32_t>& pattern_ids,
                                           std::uint8_t flags = 0) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, kMultiPattern);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  put_u8(payload, flags);
  put_u32(payload, static_cast<std::uint32_t>(pattern_ids.size()));
  for (const std::uint32_t id : pattern_ids) put_u32(payload, id);
  std::string frame;
  put_frame(frame, FrameType::kOpenSession, payload);
  return frame;
}

inline std::string make_feed(std::uint32_t session_id, std::string_view bytes) {
  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(4 + bytes.size()));
  put_u8(frame, static_cast<std::uint8_t>(FrameType::kFeed));
  put_u32(frame, session_id);
  frame.append(bytes);
  return frame;
}

inline std::string make_close(std::uint32_t session_id) {
  std::string payload;
  put_u32(payload, session_id);
  std::string frame;
  put_frame(frame, FrameType::kClose, payload);
  return frame;
}

inline std::string make_checkpoint(std::uint32_t session_id) {
  std::string payload;
  put_u32(payload, session_id);
  std::string frame;
  put_frame(frame, FrameType::kCheckpoint, payload);
  return frame;
}

/// Single-pattern RESUME_SESSION: the OPEN_SESSION prefix (with a MANDATORY
/// flags byte — the blob's begin mode must be re-requested explicitly) plus
/// the opaque checkpoint blob as the rest of the payload.
inline std::string make_resume_session(std::uint32_t session_id,
                                       std::uint32_t pattern_id,
                                       std::uint64_t feed_deadline_ns,
                                       std::uint32_t chunks, std::uint8_t flags,
                                       std::string_view checkpoint) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, pattern_id);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  put_u8(payload, flags);
  payload.append(checkpoint);
  std::string frame;
  put_frame(frame, FrameType::kResumeSession, payload);
  return frame;
}

/// Multi-pattern RESUME_SESSION: like make_open_session_multi (explicit
/// count keeps the trailing blob unambiguous; count == 0 = whole catalog,
/// which the blob's carry count must then match) plus the blob.
inline std::string make_resume_session_multi(
    std::uint32_t session_id, std::uint64_t feed_deadline_ns, std::uint32_t chunks,
    const std::vector<std::uint32_t>& pattern_ids, std::uint8_t flags,
    std::string_view checkpoint) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, kMultiPattern);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  put_u8(payload, flags);
  put_u32(payload, static_cast<std::uint32_t>(pattern_ids.size()));
  for (const std::uint32_t id : pattern_ids) put_u32(payload, id);
  payload.append(checkpoint);
  std::string frame;
  put_frame(frame, FrameType::kResumeSession, payload);
  return frame;
}

inline std::string make_stats() {
  std::string frame;
  put_frame(frame, FrameType::kStats, {});
  return frame;
}

inline std::string make_reload(std::string_view manifest_text) {
  std::string frame;
  put_frame(frame, FrameType::kReload, manifest_text);
  return frame;
}

// ------------------------------------------------- blocking client helpers
// For the minimal clients (example, tests): the server itself never blocks.

/// Writes all of `data` to a blocking socket. Returns false on error/EPIPE.
inline bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads from a blocking socket into `reader` until one complete frame pops
/// into `frame`. Returns false on EOF/error/oversized frame.
inline bool recv_frame(int fd, FrameReader& reader, Frame& frame) {
  while (!reader.next(frame)) {
    if (reader.overflowed()) return false;
    char chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

// ------------------------------------------------------ reconnect + resume
// The durable-session client side: a dropped connection (server restart,
// drain, network blip) is survivable whenever the client holds the
// session's last checkpoint blob (CHECKPOINTED/DRAINING frames). Used by
// the loadgen --chaos mode and examples/rispard_client.cpp; the server
// never calls these.

/// Blocking connect to 127.0.0.1:`port`, retrying with exponential backoff
/// (base doubling per attempt, capped at 1024x) until it succeeds or
/// `max_attempts` runs out — bridges the gap while a restarting server is
/// not yet listening. Returns the connected fd, or -1.
inline int connect_backoff(std::uint16_t port, int max_attempts = 50,
                           std::chrono::milliseconds base =
                               std::chrono::milliseconds(1)) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(base * (1 << std::min(attempt, 10)));
  }
  return -1;
}

/// Everything needed to re-establish one session after a drop: the
/// RESUME_SESSION parameters plus the last checkpoint blob. A client keeps
/// one of these per session, refreshing `checkpoint` from every
/// CHECKPOINTED/DRAINING frame it receives.
struct ResumeSpec {
  std::uint32_t session_id = 0;
  /// kMultiPattern selects the multi-pattern resume form (with
  /// `pattern_ids`); any other value is the single-pattern catalog id.
  std::uint32_t pattern_id = 0;
  std::uint64_t feed_deadline_ns = 0;
  std::uint32_t chunks = 1;
  std::uint8_t flags = 0;  ///< kOpenFlag* mask — must match the blob's mode
  std::vector<std::uint32_t> pattern_ids;  ///< multi form only
  std::string checkpoint;
};

/// Reconnects with exponential backoff and resumes `spec`'s session:
/// connect, send RESUME_SESSION, await OPENED. On success returns the
/// connected fd (caller owns it; `reader` — which must be fresh — holds any
/// bytes received after the OPENED frame). Returns -1 when the connect
/// retries run out, the send fails, or the server answers anything but
/// OPENED for this session (e.g. ERROR for a stale blob — retrying cannot
/// help, so the caller must re-open from scratch).
inline int reconnect_and_resume(std::uint16_t port, const ResumeSpec& spec,
                                FrameReader& reader, int max_attempts = 50) {
  const int fd = connect_backoff(port, max_attempts);
  if (fd < 0) return -1;
  const std::string request =
      spec.pattern_id == kMultiPattern
          ? make_resume_session_multi(spec.session_id, spec.feed_deadline_ns,
                                      spec.chunks, spec.pattern_ids, spec.flags,
                                      spec.checkpoint)
          : make_resume_session(spec.session_id, spec.pattern_id,
                                spec.feed_deadline_ns, spec.chunks, spec.flags,
                                spec.checkpoint);
  Frame reply;
  if (!send_all(fd, request) || !recv_frame(fd, reader, reply) ||
      reply.type != FrameType::kOpened) {
    ::close(fd);
    return -1;
  }
  PayloadReader opened(reply.payload);
  if (opened.get_u32() != spec.session_id) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace rispar::rispard
