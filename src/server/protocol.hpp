// The rispard wire protocol: length-prefixed binary frames over TCP.
//
// Both sides of the serving path speak the same framing (this header is the
// whole contract — the server, the example client, the load generator and
// the tests all include it, so protocol drift fails the build or the smoke
// tests, never a deployed fleet):
//
//   frame := u32le payload_length | u8 frame_type | payload bytes
//
// Integers are little-endian, unaligned. One TCP connection multiplexes any
// number of client-named streaming-find sessions; every request frame that
// concerns a session carries its id, and every response frame echoes it, so
// responses of interleaved sessions are attributable without ordering
// assumptions beyond TCP's per-connection FIFO. The full protocol semantics
// (session lifecycle, backpressure, reload, error taxonomy mapping) are
// documented in docs/rispard.md.
//
// Client -> server:
//   OPEN_SESSION {session_id, pattern_id, feed_deadline_ns, chunks}
//                single-pattern; pattern_id == kMultiPattern selects the
//                MULTI-PATTERN form, whose payload continues with
//                {flags, count, count x pattern_id} — count == 0 subscribes
//                the tenant's WHOLE catalog generation (flags bit 0 requests
//                begin_mode=exact; other bits must be zero)
//   FEED         {session_id, bytes...}        one streaming-find window
//   CLOSE        {session_id}
//   STATS        {}                            server + pool counters as JSON
//   RELOAD       {manifest text | empty}       swap the PatternSet (empty =
//                                              re-read the manifest file)
//
// Server -> client:
//   OPENED      {session_id, pattern_id, generation}   multi-pattern opens
//               echo kMultiPattern as the pattern_id
//   MATCHES     {session_id, count, count x {pattern_id, begin, end}}
//               pattern_id is the CATALOG id (manifest line order) in both
//               session forms — multi-pattern sessions remap their internal
//               indices before framing
//   FED         {session_id, consumed_total, matches_total}    per-FEED ack
//   CLOSED      {session_id, matches_total, accepted}
//   STATS_JSON  {json bytes}
//   RELOADED    {generation, pattern_count}
//   ERROR       {session_id | kNoSession, code, message bytes}
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

namespace rispar::rispard {

/// Frame types. Requests are < 0x80, responses >= 0x80.
enum class FrameType : std::uint8_t {
  kOpenSession = 0x01,
  kFeed = 0x02,
  kClose = 0x03,
  kStats = 0x04,
  kReload = 0x05,

  kOpened = 0x81,
  kMatches = 0x82,
  kFed = 0x83,
  kClosed = 0x84,
  kStatsJson = 0x85,
  kReloaded = 0x86,
  kError = 0x87,
};

/// Typed error frames: the QueryError taxonomy (util/governance.hpp) plus
/// the protocol-level failures that have no exception to map.
enum class ErrorCode : std::uint8_t {
  kProtocol = 1,          ///< malformed frame; the server closes after sending
  kUnknownPattern = 2,    ///< pattern_id outside the current catalog
  kUnknownSession = 3,    ///< FEED/CLOSE for a session_id never opened (or closed)
  kSessionExists = 4,     ///< OPEN_SESSION reusing a live session_id
  kTooManySessions = 5,   ///< per-connection session cap reached
  kValidation = 6,        ///< ValidationError — incl. feeds to a poisoned session
  kDeadlineExceeded = 7,  ///< DeadlineExceeded — the per-feed budget tripped
  kCancelled = 8,         ///< QueryCancelled
  kResourceExhausted = 9, ///< ResourceExhausted — pool admission reject, budgets
  kBadManifest = 10,      ///< RELOAD manifest empty/unreadable/uncompilable
  kInternal = 11,         ///< anything else; the session (if any) is poisoned
};

const char* error_code_name(ErrorCode code);

/// ERROR frames not scoped to a session carry this sentinel id (session ids
/// are client-chosen, so 0 is a legal id and cannot be the sentinel).
inline constexpr std::uint32_t kNoSession = 0xffffffffu;

/// OPEN_SESSION pattern_id sentinel selecting the multi-pattern session
/// form (the payload then carries a flags byte and an explicit id list; see
/// the header comment). Catalogs are capped far below this, so no real
/// pattern can collide with it. OPENED echoes it back.
inline constexpr std::uint32_t kMultiPattern = 0xfffffffeu;

/// OPEN_SESSION multi-pattern flags (bit mask; unknown bits reject).
inline constexpr std::uint8_t kOpenFlagExactBegins = 0x01;

/// Frame header: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;
/// Hard cap on one frame's payload. Bounds per-connection buffering against
/// a hostile or broken peer; a FEED window this large is far past the point
/// where splitting it helps latency anyway (docs/rispard.md, backpressure).
inline constexpr std::size_t kMaxFramePayload = 1u << 24;  // 16 MiB

// ------------------------------------------------------------- serialization

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

/// Appends one whole frame (header + payload) to `out`.
inline void put_frame(std::string& out, FrameType type, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u8(out, static_cast<std::uint8_t>(type));
  out.append(payload);
}

/// Bounds-checked payload reader. Every get_* returns a value and clears
/// `ok` on underrun; callers check `ok` once at the end (a short frame reads
/// zeros, then fails the single check — no per-field error plumbing).
struct PayloadReader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  explicit PayloadReader(std::string_view payload)
      : data(payload.data()), size(payload.size()) {}

  std::uint8_t get_u8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint32_t get_u32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos++])) << shift;
    return v;
  }

  std::uint64_t get_u64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos++])) << shift;
    return v;
  }

  /// The unread remainder (FEED bytes, ERROR message, manifest text).
  std::string_view rest() {
    std::string_view tail(data + pos, size - pos);
    pos = size;
    return tail;
  }

  /// True when every read succeeded AND the payload was fully consumed —
  /// trailing garbage is a protocol error, not padding.
  bool exhausted() const { return ok && pos == size; }
};

/// One parsed frame. `payload` points into the FrameReader's buffer and is
/// valid until the next append()/next() call.
struct Frame {
  FrameType type{};
  std::string_view payload;
};

/// Incremental frame reassembly over a byte stream. Feed whatever recv()
/// produced; pop complete frames. Oversized length prefixes are reported as
/// a hard error (the stream is unrecoverable — there is no way to resync).
class FrameReader {
 public:
  /// Appends raw stream bytes.
  void append(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// True when the buffered prefix declares a payload past kMaxFramePayload.
  /// The connection should send ERROR{kProtocol} and close.
  bool overflowed() const {
    if (buffer_.size() - pos_ < 4) return false;
    return peek_len() > kMaxFramePayload;
  }

  /// Pops the next complete frame into `frame`. Returns false when the
  /// buffer holds only a partial frame (or an overflowed one — check
  /// overflowed() separately).
  bool next(Frame& frame) {
    const std::size_t available = buffer_.size() - pos_;
    if (available < kFrameHeaderBytes) return maybe_compact(), false;
    const std::uint32_t len = peek_len();
    if (len > kMaxFramePayload) return false;
    if (available < kFrameHeaderBytes + len) return maybe_compact(), false;
    frame.type = static_cast<FrameType>(
        static_cast<unsigned char>(buffer_[pos_ + 4]));
    frame.payload = std::string_view(buffer_.data() + pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    return true;
  }

  /// Bytes buffered but not yet popped (partial frame tail).
  std::size_t pending() const { return buffer_.size() - pos_; }

 private:
  std::uint32_t peek_len() const {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[pos_ + i]))
           << (8 * i);
    return v;
  }

  /// Drops consumed bytes once they dominate the buffer. Safe only when no
  /// Frame::payload is live — which next()'s contract already requires
  /// (payloads are invalidated by the next call).
  void maybe_compact() {
    if (pos_ >= 4096 && pos_ * 2 >= buffer_.size()) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buffer_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------- request frame builders

inline std::string make_open_session(std::uint32_t session_id, std::uint32_t pattern_id,
                                     std::uint64_t feed_deadline_ns,
                                     std::uint32_t chunks) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, pattern_id);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  std::string frame;
  put_frame(frame, FrameType::kOpenSession, payload);
  return frame;
}

/// The multi-pattern OPEN_SESSION form: subscribes `pattern_ids` (catalog
/// ids; empty = the whole catalog generation) to one merged streaming-find
/// session. `flags` is a kOpenFlag* mask (kOpenFlagExactBegins requests
/// begin_mode=exact on every subscribed pattern).
inline std::string make_open_session_multi(std::uint32_t session_id,
                                           std::uint64_t feed_deadline_ns,
                                           std::uint32_t chunks,
                                           const std::vector<std::uint32_t>& pattern_ids,
                                           std::uint8_t flags = 0) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, kMultiPattern);
  put_u64(payload, feed_deadline_ns);
  put_u32(payload, chunks);
  put_u8(payload, flags);
  put_u32(payload, static_cast<std::uint32_t>(pattern_ids.size()));
  for (const std::uint32_t id : pattern_ids) put_u32(payload, id);
  std::string frame;
  put_frame(frame, FrameType::kOpenSession, payload);
  return frame;
}

inline std::string make_feed(std::uint32_t session_id, std::string_view bytes) {
  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(4 + bytes.size()));
  put_u8(frame, static_cast<std::uint8_t>(FrameType::kFeed));
  put_u32(frame, session_id);
  frame.append(bytes);
  return frame;
}

inline std::string make_close(std::uint32_t session_id) {
  std::string payload;
  put_u32(payload, session_id);
  std::string frame;
  put_frame(frame, FrameType::kClose, payload);
  return frame;
}

inline std::string make_stats() {
  std::string frame;
  put_frame(frame, FrameType::kStats, {});
  return frame;
}

inline std::string make_reload(std::string_view manifest_text) {
  std::string frame;
  put_frame(frame, FrameType::kReload, manifest_text);
  return frame;
}

// ------------------------------------------------- blocking client helpers
// For the minimal clients (example, tests): the server itself never blocks.

/// Writes all of `data` to a blocking socket. Returns false on error/EPIPE.
inline bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads from a blocking socket into `reader` until one complete frame pops
/// into `frame`. Returns false on EOF/error/oversized frame.
inline bool recv_frame(int fd, FrameReader& reader, Frame& frame) {
  while (!reader.next(frame)) {
    if (reader.overflowed()) return false;
    char chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace rispar::rispard
