#include "server/catalog.hpp"

#include <utility>

#include "bundle/mapped_bundle.hpp"
#include "engine/compile_cache.hpp"

namespace rispar::rispard {

std::vector<std::string> parse_manifest(std::string_view text) {
  std::vector<std::string> regexes;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) continue;
    std::size_t end = line.find_last_not_of(" \t");
    line = line.substr(start, end - start + 1);
    if (line.empty() || line.front() == '#') continue;
    regexes.emplace_back(line);
  }
  return regexes;
}

bool is_bundle_entry(std::string_view manifest_line) {
  return manifest_line.size() > 4 &&
         manifest_line.substr(manifest_line.size() - 4) == ".rpb";
}

std::shared_ptr<const PatternCatalog> build_catalog(
    const std::vector<std::string>& regexes, std::uint64_t generation,
    std::shared_ptr<ThreadPool> pool, const EngineConfig& base_config) {
  auto catalog = std::make_shared<PatternCatalog>();
  catalog->generation = generation;
  catalog->patterns.reserve(regexes.size());
  const auto& cache = base_config.compile_cache;

  const auto add_tenant = [&](std::string display, Pattern pattern) {
    EngineConfig config = base_config;
    config.shared_pool = pool;
    TenantPattern tenant;
    tenant.regex = std::move(display);
    tenant.engine = std::make_unique<Engine>(std::move(pattern), config);
    // Pre-warm the Σ*p searcher (streaming find runs on it): a blow-up
    // pattern trips ResourceExhausted HERE — at reload, where the old
    // generation still serves — never inside a session open or feed. A
    // bundle-shipped searcher makes this a no-op.
    (void)tenant.engine->searcher();
    catalog->patterns.push_back(std::move(tenant));
  };

  for (const std::string& entry : regexes) {
    if (is_bundle_entry(entry)) {
      // One map per manifest entry; every pattern of the bundle becomes a
      // tenant (ids keep line-then-bundle order). Cached under the file's
      // (path, index, mtime, size) identity — an unchanged bundle across
      // reloads is pure hits, and even a miss is a zero-copy mapped load,
      // not a compile.
      const auto bundle = bundle::MappedBundle::open(entry);
      for (std::uint32_t i = 0; i < bundle->pattern_count(); ++i) {
        Pattern pattern =
            cache != nullptr
                ? cache->get_or_compile(
                      CompileCache::bundle_key(entry, i),
                      [&] { return Pattern::from_bundle(bundle, i); })
                : Pattern::from_bundle(bundle, i);
        std::string display = !pattern.source().empty()
                                  ? std::string(pattern.source())
                                  : entry + "#" + std::to_string(i);
        add_tenant(std::move(display), std::move(pattern));
      }
    } else if (cache != nullptr) {
      add_tenant(entry, cache->get_or_compile(CompileCache::regex_key(entry, 0),
                                              [&] { return Pattern::compile(entry); }));
    } else {
      add_tenant(entry, Pattern::compile(entry));
    }
  }
  return catalog;
}

}  // namespace rispar::rispard
