#include "server/catalog.hpp"

#include <utility>

namespace rispar::rispard {

std::vector<std::string> parse_manifest(std::string_view text) {
  std::vector<std::string> regexes;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) continue;
    std::size_t end = line.find_last_not_of(" \t");
    line = line.substr(start, end - start + 1);
    if (line.empty() || line.front() == '#') continue;
    regexes.emplace_back(line);
  }
  return regexes;
}

std::shared_ptr<const PatternCatalog> build_catalog(
    const std::vector<std::string>& regexes, std::uint64_t generation,
    std::shared_ptr<ThreadPool> pool, const EngineConfig& base_config) {
  auto catalog = std::make_shared<PatternCatalog>();
  catalog->generation = generation;
  catalog->patterns.reserve(regexes.size());
  for (const std::string& regex : regexes) {
    EngineConfig config = base_config;
    config.shared_pool = pool;
    TenantPattern tenant;
    tenant.regex = regex;
    tenant.engine = std::make_unique<Engine>(Pattern::compile(regex), config);
    // Pre-warm the Σ*p searcher (streaming find runs on it): a blow-up
    // pattern trips ResourceExhausted HERE — at reload, where the old
    // generation still serves — never inside a session open or feed.
    (void)tenant.engine->searcher();
    catalog->patterns.push_back(std::move(tenant));
  }
  return catalog;
}

}  // namespace rispar::rispard
