#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <system_error>
#include <utility>

#include "engine/compile_cache.hpp"
#include "engine/pattern_set.hpp"
#include "util/fault_inject.hpp"

namespace rispar::rispard {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::string opened_frame(std::uint32_t session_id, std::uint32_t pattern_id,
                         std::uint64_t generation) {
  std::string payload;
  put_u32(payload, session_id);
  put_u32(payload, pattern_id);
  put_u64(payload, generation);
  std::string frame;
  put_frame(frame, FrameType::kOpened, payload);
  return frame;
}

/// MATCHES frames are capped so one prolific window cannot produce a frame
/// past kMaxFramePayload; overflow just emits several frames in order.
constexpr std::size_t kMatchesPerFrame = 16384;

void append_matches_frames(std::string& out, std::uint32_t session_id,
                           const std::vector<Match>& matches) {
  std::size_t emitted = 0;
  while (emitted < matches.size()) {
    const std::size_t batch = std::min(kMatchesPerFrame, matches.size() - emitted);
    put_u32(out, static_cast<std::uint32_t>(8 + batch * 20));
    put_u8(out, static_cast<std::uint8_t>(FrameType::kMatches));
    put_u32(out, session_id);
    put_u32(out, static_cast<std::uint32_t>(batch));
    for (std::size_t i = 0; i < batch; ++i) {
      const Match& m = matches[emitted + i];
      put_u32(out, m.pattern_id);
      put_u64(out, m.begin);
      put_u64(out, m.end);
    }
    emitted += batch;
  }
}

void append_fed_frame(std::string& out, std::uint32_t session_id,
                      std::uint64_t consumed, std::uint64_t matches_total) {
  std::string payload;
  put_u32(payload, session_id);
  put_u64(payload, consumed);
  put_u64(payload, matches_total);
  put_frame(out, FrameType::kFed, payload);
}

std::string closed_frame(std::uint32_t session_id, std::uint64_t matches_total,
                         bool accepted) {
  std::string payload;
  put_u32(payload, session_id);
  put_u64(payload, matches_total);
  put_u8(payload, accepted ? 1 : 0);
  std::string frame;
  put_frame(frame, FrameType::kClosed, payload);
  return frame;
}

std::string reloaded_frame(std::uint64_t generation, std::uint32_t pattern_count) {
  std::string payload;
  put_u64(payload, generation);
  put_u32(payload, pattern_count);
  std::string frame;
  put_frame(frame, FrameType::kReloaded, payload);
  return frame;
}

std::string error_frame(std::uint32_t session_id, ErrorCode code,
                        std::string_view message) {
  std::string payload;
  put_u32(payload, session_id);
  put_u8(payload, static_cast<std::uint8_t>(code));
  payload.append(message);
  std::string frame;
  put_frame(frame, FrameType::kError, payload);
  return frame;
}

/// CHECKPOINTED and DRAINING share a shape: {session_id, pattern_id, blob}.
std::string checkpoint_frame(FrameType type, std::uint32_t session_id,
                             std::uint32_t pattern_id, std::string_view blob) {
  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(8 + blob.size()));
  put_u8(frame, static_cast<std::uint8_t>(type));
  put_u32(frame, session_id);
  put_u32(frame, pattern_id);
  frame.append(blob);
  return frame;
}

/// The terminal DRAINING frame: {kNoSession}, meaning "every session on this
/// connection has been checkpointed or errored; the server closes now".
std::string draining_terminal_frame() {
  std::string payload;
  put_u32(payload, kNoSession);
  std::string frame;
  put_frame(frame, FrameType::kDraining, payload);
  return frame;
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kUnknownPattern: return "unknown_pattern";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kSessionExists: return "session_exists";
    case ErrorCode::kTooManySessions: return "too_many_sessions";
    case ErrorCode::kValidation: return "validation";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kBadManifest: return "bad_manifest";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

// ------------------------------------------------------------- state types

struct Server::Session {
  std::uint32_t id;
  std::uint32_t pattern_id;  ///< kMultiPattern for the multi-pattern form
  /// Pins the generation this session opened against: the Engines (and the
  /// Device or Patterns the session points into) stay alive until the last
  /// pinning session closes, however many RELOADs happen meanwhile.
  std::shared_ptr<const PatternCatalog> catalog;
  /// Exactly one of the two is engaged, for the session's whole life.
  std::optional<StreamSession> stream;      ///< single-pattern form
  std::optional<MultiStreamSession> multi;  ///< multi-pattern form
  /// Multi form: session-local pattern index -> catalog id (manifest line
  /// order), applied to every emitted Match before framing so MATCHES
  /// always speak catalog ids, whichever subset the session subscribed.
  std::vector<std::uint32_t> catalog_ids;
  std::deque<std::string> pending;  ///< feed windows awaiting their turn
  bool busy = false;                ///< a crew worker owns the session right now
  bool closing = false;             ///< CLOSE received; ack after feeds drain
  bool checkpoint_requested = false; ///< CHECKPOINT received mid-feed; answer when idle

  Session(std::uint32_t id_, std::uint32_t pattern_id_,
          std::shared_ptr<const PatternCatalog> catalog_, StreamSession stream_)
      : id(id_),
        pattern_id(pattern_id_),
        catalog(std::move(catalog_)),
        stream(std::move(stream_)) {}

  Session(std::uint32_t id_, std::shared_ptr<const PatternCatalog> catalog_,
          MultiStreamSession multi_, std::vector<std::uint32_t> catalog_ids_)
      : id(id_),
        pattern_id(kMultiPattern),
        catalog(std::move(catalog_)),
        multi(std::move(multi_)),
        catalog_ids(std::move(catalog_ids_)) {}

  void feed(std::string_view bytes, const MatchSink& sink) {
    if (multi)
      multi->feed(bytes, sink);
    else
      stream->feed(bytes, sink);
  }
  std::uint64_t matches() const { return multi ? multi->matches() : stream->matches(); }
  bool accepted() const { return multi ? multi->accepted() : stream->accepted(); }
  std::uint64_t bytes_consumed() const {
    return multi ? multi->bytes_consumed() : stream->bytes_consumed();
  }
  /// Only called between feeds (never while busy) — the engine-level
  /// contract of StreamSession/MultiStreamSession::checkpoint(). Server
  /// sessions feed through a sink, so the undrained-matches reject cannot
  /// trip; a poisoned session still throws ValidationError.
  std::string checkpoint() const {
    return multi ? multi->checkpoint() : stream->checkpoint();
  }
};

struct Server::Connection {
  int fd = -1;
  std::uint64_t uid = 0;
  FrameReader reader;
  std::string outbuf;
  std::size_t outpos = 0;
  std::uint32_t registered_events = 0;
  bool reading = true;         ///< EPOLLIN interest (false = backpressured)
  bool draining_close = false; ///< protocol error: close once outbuf flushes
  bool broken = false;         ///< hard socket error; close at next safe point
  bool drain_terminal_sent = false;  ///< terminal DRAINING frame enqueued
  std::unordered_map<std::uint32_t, std::shared_ptr<Session>> sessions;
  std::size_t queued_feeds = 0;  ///< windows pending + in flight, all sessions
  std::uint64_t last_activity_ms = 0;  ///< inbound bytes / feed completions (reaper)
};

// ------------------------------------------------------------ construction

Server::Server(std::vector<std::string> seed_regexes, ServerConfig config)
    : config_(std::move(config)) {
  if (config_.feed_workers == 0) config_.feed_workers = 1;
  if (config_.handle_sighup || config_.handle_sigterm) {
    // Block the handled signals BEFORE any thread exists (the pool spawns
    // below): spawned threads inherit the mask, so a signal can only
    // surface through the signalfd in run(), never as a default-action
    // death of a worker.
    sigset_t mask;
    sigemptyset(&mask);
    if (config_.handle_sighup) sigaddset(&mask, SIGHUP);
    if (config_.handle_sigterm) sigaddset(&mask, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);
  }
  pool_ = std::make_shared<ThreadPool>(config_.pool_threads, config_.admission);
  compile_cache_ = std::make_shared<CompileCache>();
  EngineConfig seed_config;
  seed_config.compile_cache = compile_cache_;
  catalog_.store(build_catalog(seed_regexes, 1, pool_, seed_config));
  generation_.store(1);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("rispard: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("rispard: bad bind address " + config_.bind_address);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("rispard: bind");
  if (::listen(listen_fd_, 1024) < 0) throw_errno("rispard: listen");
  socklen_t addr_len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0)
    throw_errno("rispard: getsockname");
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("rispard: epoll_create1");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) throw_errno("rispard: eventfd");
}

Server::~Server() {
  stop();
  // run() must have returned by now (the caller owns that thread); all that
  // is left is releasing descriptors run() did not own.
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (signal_fd_ >= 0) ::close(signal_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [fd, conn] : connections_) ::close(fd);
}

std::uint64_t Server::generation() const { return generation_.load(); }

std::weak_ptr<const PatternCatalog> Server::catalog_handle() const {
  return catalog_.load();
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted = connections_accepted_.load();
  c.connections_open = connections_open_.load();
  c.sessions_opened = sessions_opened_.load();
  c.sessions_open = sessions_open_.load();
  c.feeds = feeds_.load();
  c.bytes_fed = bytes_fed_.load();
  c.matches_emitted = matches_emitted_.load();
  c.error_frames = error_frames_.load();
  c.feed_rejects = feed_rejects_.load();
  c.reloads = reloads_.load();
  c.protocol_errors = protocol_errors_.load();
  c.sessions_resumed = sessions_resumed_.load();
  c.sessions_reaped_idle = sessions_reaped_idle_.load();
  c.draining = draining_.load();
  return c;
}

void Server::stop(bool drain) {
  if (drain)
    drain_requested_.store(true);
  else
    stop_requested_.store(true);
  if (event_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof one);
  }
}

// --------------------------------------------------------------- the loop

void Server::run() {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0)
    throw_errno("rispard: epoll_ctl(listen)");
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0)
    throw_errno("rispard: epoll_ctl(eventfd)");
  if (config_.handle_sighup || config_.handle_sigterm) {
    sigset_t mask;
    sigemptyset(&mask);
    if (config_.handle_sighup) sigaddset(&mask, SIGHUP);
    if (config_.handle_sigterm) sigaddset(&mask, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &mask, nullptr);  // run() may be another thread
    signal_fd_ = ::signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
    if (signal_fd_ < 0) throw_errno("rispard: signalfd");
    ev.data.fd = signal_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, signal_fd_, &ev) < 0)
      throw_errno("rispard: epoll_ctl(signalfd)");
  }
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) throw_errno("rispard: timerfd_create");
  ev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) < 0)
    throw_errno("rispard: epoll_ctl(timerfd)");
  if (config_.idle_timeout_ms != 0) {
    // Two ticks per timeout keeps reap latency under 1.5x the configured
    // idle window without a wheel of per-connection timers.
    const std::uint64_t tick =
        std::max<std::uint64_t>(config_.idle_timeout_ms / 2, 10);
    arm_timer(tick, tick);
  }

  crew_.reserve(config_.feed_workers);
  for (unsigned i = 0; i < config_.feed_workers; ++i)
    crew_.emplace_back([this] { feed_worker_loop(); });

  while (!stop_requested_.load(std::memory_order_relaxed)) event_loop_iteration();

  // Shutdown: stop the crew first (their completions are dropped), then
  // tear the connection table down. Sessions pinning retired catalogs
  // release them here.
  {
    std::lock_guard<std::mutex> lock(feed_mutex_);
    crew_stop_ = true;
  }
  feed_cv_.notify_all();
  for (std::thread& t : crew_) t.join();
  crew_.clear();
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_.clear();
  }
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  connections_by_uid_.clear();
}

void Server::event_loop_iteration() {
  epoll_event events[128];
  const int n = ::epoll_wait(epoll_fd_, events, 128, -1);
  if (n < 0) {
    if (errno == EINTR) return;
    throw_errno("rispard: epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t mask = events[i].events;
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if (fd == event_fd_) {
      std::uint64_t drained = 0;
      while (::read(event_fd_, &drained, sizeof drained) > 0) {
      }
      if (drain_requested_.exchange(false)) start_drain();
      handle_completions();
      continue;
    }
    if (fd == signal_fd_) {
      signalfd_siginfo info;
      while (::read(signal_fd_, &info, sizeof info) == sizeof info) {
        if (info.ssi_signo == SIGTERM) {
          std::fprintf(stderr, "rispard: SIGTERM — draining\n");
          start_drain();
        } else {
          std::fprintf(stderr, "rispard: SIGHUP — re-reading manifest\n");
          apply_reload(nullptr, {});
        }
      }
      continue;
    }
    if (fd == timer_fd_) {
      std::uint64_t expirations = 0;
      while (::read(timer_fd_, &expirations, sizeof expirations) > 0) {
      }
      if (draining_.load(std::memory_order_relaxed))
        drain_deadline_fired();
      else
        idle_tick();
      continue;
    }
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;  // closed earlier this sweep
    Connection& conn = *it->second;
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      close_connection(fd);
      continue;
    }
    if ((mask & EPOLLOUT) != 0) handle_writable(conn);
    if (connections_.find(fd) == connections_.end()) continue;
    if ((mask & EPOLLIN) != 0) handle_readable(conn);
  }
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failures (EMFILE, ECONNABORTED): keep serving
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->uid = next_connection_uid_++;
    conn->last_activity_ms = steady_now_ms();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->registered_events = EPOLLIN;
    connections_by_uid_[conn->uid] = conn.get();
    connections_[fd] = std::move(conn);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  sessions_open_.fetch_sub(conn.sessions.size(), std::memory_order_relaxed);
  // In-flight FeedJobs hold their Session shared_ptr (and its catalog pin);
  // their completions route by uid, find nothing, and are dropped.
  connections_by_uid_.erase(conn.uid);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  maybe_finish_drain();
}

void Server::epoll_update(Connection& conn) {
  const std::uint32_t wanted =
      (conn.reading && !conn.draining_close ? EPOLLIN : 0u) |
      (conn.outpos < conn.outbuf.size() ? EPOLLOUT : 0u);
  if (wanted == conn.registered_events) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
    conn.registered_events = wanted;
}

void Server::update_read_interest(Connection& conn) {
  if (draining_.load(std::memory_order_relaxed)) {
    // A draining server reads nothing more; the hysteresis below must not
    // re-enable EPOLLIN while busy sessions finish their last feeds.
    conn.reading = false;
    epoll_update(conn);
    return;
  }
  const std::size_t backlog = conn.outbuf.size() - conn.outpos;
  if (conn.reading) {
    if (backlog >= config_.write_high_water ||
        conn.queued_feeds >= config_.max_pending_feeds)
      conn.reading = false;
  } else {
    // Hysteresis: resume only once both brakes are clearly released, so a
    // connection riding the limit doesn't thrash epoll_ctl.
    if (backlog <= config_.write_high_water / 2 &&
        conn.queued_feeds <= config_.max_pending_feeds / 2)
      conn.reading = true;
  }
  epoll_update(conn);
}

// ------------------------------------------------------------------- reads

void Server::handle_readable(Connection& conn) {
  char chunk[65536];
  const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
  if (n == 0) {
    close_connection(conn.fd);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_connection(conn.fd);
    return;
  }
  conn.reader.append(chunk, static_cast<std::size_t>(n));
  conn.last_activity_ms = steady_now_ms();
  Frame frame;
  while (!conn.draining_close && conn.reader.next(frame)) process_frame(conn, frame);
  if (conn.reader.overflowed() && !conn.draining_close) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, kNoSession, ErrorCode::kProtocol,
               "frame exceeds the 16 MiB payload cap");
    conn.draining_close = true;
  }
  if (conn.broken) {
    close_connection(conn.fd);
    return;
  }
  if (conn.draining_close && conn.outpos >= conn.outbuf.size()) {
    close_connection(conn.fd);
    return;
  }
  update_read_interest(conn);
}

void Server::handle_writable(Connection& conn) {
  flush_output(conn);
  if (conn.broken || (conn.draining_close && conn.outpos >= conn.outbuf.size())) {
    close_connection(conn.fd);
    return;
  }
  update_read_interest(conn);
}

// ------------------------------------------------------------------ writes

void Server::enqueue_output(Connection& conn, std::string_view frames) {
  conn.outbuf.append(frames);
  flush_output(conn);
}

void Server::flush_output(Connection& conn) {
  while (conn.outpos < conn.outbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.outpos,
                             conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.broken = true;  // peer reset; closed at the caller's safe point
      conn.outbuf.clear();
      conn.outpos = 0;
      return;
    }
    conn.outpos += static_cast<std::size_t>(n);
  }
  if (conn.outpos >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
  } else if (conn.outpos > (1u << 20) && conn.outpos * 2 >= conn.outbuf.size()) {
    conn.outbuf.erase(0, conn.outpos);
    conn.outpos = 0;
  }
  epoll_update(conn);
}

void Server::send_error(Connection& conn, std::uint32_t session_id, ErrorCode code,
                        std::string_view message) {
  error_frames_.fetch_add(1, std::memory_order_relaxed);
  enqueue_output(conn, error_frame(session_id, code, message));
}

// ----------------------------------------------------------------- frames

void Server::process_frame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kOpenSession: handle_open_session(conn, frame, false); return;
    case FrameType::kResumeSession: handle_open_session(conn, frame, true); return;
    case FrameType::kCheckpoint: handle_checkpoint(conn, frame); return;
    case FrameType::kFeed: handle_feed(conn, frame); return;
    case FrameType::kClose: handle_close(conn, frame); return;
    case FrameType::kStats: handle_stats(conn); return;
    case FrameType::kReload: handle_reload(conn, frame); return;
    default: break;
  }
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  send_error(conn, kNoSession, ErrorCode::kProtocol, "unknown frame type");
  conn.draining_close = true;
}

void Server::handle_open_session(Connection& conn, const Frame& frame,
                                 bool resume) {
  const char* const kind = resume ? "RESUME_SESSION" : "OPEN_SESSION";
  PayloadReader reader(frame.payload);
  const std::uint32_t session_id = reader.get_u32();
  const std::uint32_t pattern_id = reader.get_u32();
  std::uint64_t deadline_ns = reader.get_u64();
  const std::uint32_t chunks = reader.get_u32();
  std::uint8_t open_flags = 0;
  std::vector<std::uint32_t> requested_ids;
  bool whole_catalog = false;
  if (pattern_id == kMultiPattern) {
    // The multi-pattern extension: {flags, count, count x id}. The count is
    // validated against the REMAINING payload before any allocation, so a
    // hostile count cannot reserve gigabytes off a short frame. RESUME
    // additionally trails the checkpoint blob, so the ids need only FIT.
    open_flags = reader.get_u8();
    const std::uint32_t count = reader.get_u32();
    const std::size_t remaining = reader.size - reader.pos;
    const std::uint64_t id_bytes = static_cast<std::uint64_t>(count) * 4;
    if (!reader.ok || (resume ? id_bytes > remaining : id_bytes != remaining)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, kNoSession, ErrorCode::kProtocol,
                 std::string("malformed ") + kind);
      conn.draining_close = true;
      return;
    }
    whole_catalog = count == 0;
    requested_ids.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) requested_ids.push_back(reader.get_u32());
  } else if (resume || reader.pos < reader.size) {
    // Mandatory on RESUME (the blob's begin mode must be re-requested, never
    // sniffed); an optional trailing extension on single-pattern OPEN —
    // old clients simply omit it.
    open_flags = reader.get_u8();
  }
  const std::string_view blob = resume ? reader.rest() : std::string_view{};
  if (!reader.ok || (!resume && !reader.exhausted())) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, kNoSession, ErrorCode::kProtocol,
               std::string("malformed ") + kind);
    conn.draining_close = true;
    return;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    send_error(conn, session_id, ErrorCode::kValidation,
               "server is draining — reconnect and resume elsewhere");
    return;
  }
  if ((open_flags & ~kOpenFlagExactBegins) != 0) {
    send_error(conn, session_id, ErrorCode::kValidation,
               std::string("unknown ") + kind +
                   " flags (only kOpenFlagExactBegins is defined)");
    return;
  }
  if (session_id == kNoSession) {
    send_error(conn, kNoSession, ErrorCode::kValidation,
               "session id 0xffffffff is reserved");
    return;
  }
  if (conn.sessions.count(session_id) != 0) {
    send_error(conn, session_id, ErrorCode::kSessionExists,
               "session id already open on this connection");
    return;
  }
  if (conn.sessions.size() >= config_.max_sessions_per_connection) {
    send_error(conn, session_id, ErrorCode::kTooManySessions,
               "per-connection session cap reached");
    return;
  }
  std::shared_ptr<const PatternCatalog> catalog = catalog_.load();
  const auto describe_catalog = [&catalog] {
    return " outside the current catalog (generation " +
           std::to_string(catalog->generation) + " has " +
           std::to_string(catalog->patterns.size()) + " patterns)";
  };
  if (pattern_id == kMultiPattern) {
    if (whole_catalog)
      for (std::uint32_t id = 0; id < catalog->patterns.size(); ++id)
        requested_ids.push_back(id);
    for (const std::uint32_t id : requested_ids) {
      if (id >= catalog->patterns.size()) {
        send_error(conn, session_id, ErrorCode::kUnknownPattern,
                   "multi-pattern id " + std::to_string(id) + describe_catalog());
        return;
      }
    }
    if (requested_ids.empty()) {
      send_error(conn, session_id, ErrorCode::kValidation,
                 std::string("multi-pattern ") + kind +
                     " subscribed zero patterns (the catalog generation is "
                     "empty)");
      return;
    }
  } else if (pattern_id >= catalog->patterns.size()) {
    send_error(conn, session_id, ErrorCode::kUnknownPattern,
               "pattern_id" + describe_catalog());
    return;
  }
  if (config_.max_feed_deadline_ns != 0 && deadline_ns > config_.max_feed_deadline_ns)
    deadline_ns = config_.max_feed_deadline_ns;
  QueryOptions options;
  options.positions = true;
  options.chunks = std::max<std::uint32_t>(chunks, 1);
  options.deadline = std::chrono::nanoseconds(deadline_ns);
  options.max_history_bytes = config_.max_history_bytes;
  // The drain deadline trips every in-flight feed with one request_cancel.
  options.cancel = drain_cancel_.token();
  if ((open_flags & kOpenFlagExactBegins) != 0)
    options.begin_mode = BeginMode::kExact;
  try {
    if (pattern_id == kMultiPattern) {
      // Copies are cheap shared-ownership bumps; the catalog pin keeps the
      // generation (and its compiled artifacts) alive for the session.
      std::vector<Pattern> patterns;
      patterns.reserve(requested_ids.size());
      for (const std::uint32_t id : requested_ids)
        patterns.push_back(catalog->patterns[id].engine->pattern());
      MultiStreamSession multi =
          resume ? MultiStreamSession(std::move(patterns), *pool_, options, blob)
                 : MultiStreamSession(std::move(patterns), *pool_, options);
      auto session = std::make_shared<Session>(session_id, catalog, std::move(multi),
                                               std::move(requested_ids));
      conn.sessions.emplace(session_id, std::move(session));
    } else {
      const Engine& engine = *catalog->patterns[pattern_id].engine;
      StreamSession stream =
          resume ? engine.resume_stream(blob, options) : engine.stream(options);
      auto session = std::make_shared<Session>(session_id, pattern_id, catalog,
                                               std::move(stream));
      conn.sessions.emplace(session_id, std::move(session));
    }
  } catch (const ValidationError& e) {
    send_error(conn, session_id, ErrorCode::kValidation, e.what());
    return;
  } catch (const ResourceExhausted& e) {
    send_error(conn, session_id, ErrorCode::kResourceExhausted, e.what());
    return;
  } catch (const QueryError& e) {
    send_error(conn, session_id, ErrorCode::kValidation, e.what());
    return;
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  sessions_open_.fetch_add(1, std::memory_order_relaxed);
  if (resume) sessions_resumed_.fetch_add(1, std::memory_order_relaxed);
  enqueue_output(conn, opened_frame(session_id, pattern_id, catalog->generation));
}

void Server::handle_checkpoint(Connection& conn, const Frame& frame) {
  PayloadReader reader(frame.payload);
  const std::uint32_t session_id = reader.get_u32();
  if (!reader.exhausted()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, kNoSession, ErrorCode::kProtocol, "malformed CHECKPOINT");
    conn.draining_close = true;
    return;
  }
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end() || it->second->closing) {
    send_error(conn, session_id, ErrorCode::kUnknownSession,
               "CHECKPOINT for a session that is not open");
    return;
  }
  Session& session = *it->second;
  if (session.busy || !session.pending.empty()) {
    // Like CLOSE: answered from handle_completions once every feed received
    // before this frame has been fed and acked — the blob then reflects them.
    session.checkpoint_requested = true;
    return;
  }
  emit_checkpoint_frame(conn, session, FrameType::kCheckpointed);
}

void Server::handle_feed(Connection& conn, const Frame& frame) {
  PayloadReader reader(frame.payload);
  const std::uint32_t session_id = reader.get_u32();
  if (!reader.ok) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, kNoSession, ErrorCode::kProtocol, "malformed FEED");
    conn.draining_close = true;
    return;
  }
  const std::string_view bytes = reader.rest();
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end() || it->second->closing) {
    send_error(conn, session_id, ErrorCode::kUnknownSession,
               "FEED for a session that is not open");
    return;
  }
  feeds_.fetch_add(1, std::memory_order_relaxed);
  bytes_fed_.fetch_add(bytes.size(), std::memory_order_relaxed);
  const std::shared_ptr<Session>& session = it->second;
  session->pending.emplace_back(bytes);
  ++conn.queued_feeds;
  if (!session->busy) dispatch_next_feed(conn, session);
  update_read_interest(conn);
}

void Server::dispatch_next_feed(Connection& conn,
                                const std::shared_ptr<Session>& session) {
  FeedJob job;
  job.connection_uid = conn.uid;
  job.session = session;
  job.bytes = std::move(session->pending.front());
  session->pending.pop_front();
  session->busy = true;
  {
    std::lock_guard<std::mutex> lock(feed_mutex_);
    feed_queue_.push_back(std::move(job));
  }
  feed_cv_.notify_one();
}

void Server::handle_close(Connection& conn, const Frame& frame) {
  PayloadReader reader(frame.payload);
  const std::uint32_t session_id = reader.get_u32();
  if (!reader.exhausted()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, kNoSession, ErrorCode::kProtocol, "malformed CLOSE");
    conn.draining_close = true;
    return;
  }
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end() || it->second->closing) {
    send_error(conn, session_id, ErrorCode::kUnknownSession,
               "CLOSE for a session that is not open");
    return;
  }
  Session& session = *it->second;
  if (session.busy || !session.pending.empty()) {
    session.closing = true;  // ack after the in-flight/queued feeds drain
    return;
  }
  finish_close(conn, session_id);
}

void Server::finish_close(Connection& conn, std::uint32_t session_id) {
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end()) return;
  Session& session = *it->second;
  const std::string frame =
      closed_frame(session_id, session.matches(), session.accepted());
  conn.sessions.erase(it);  // drops the catalog pin
  sessions_open_.fetch_sub(1, std::memory_order_relaxed);
  enqueue_output(conn, frame);
}

void Server::handle_stats(Connection& conn) {
  enqueue_output(conn, [this] {
    std::string frame;
    put_frame(frame, FrameType::kStatsJson, stats_json());
    return frame;
  }());
}

std::string Server::stats_json() const {
  const ServerCounters c = counters();
  const PoolStats p = pool_->stats();
  const CompileCacheStats cc = compile_cache_->stats();
  const std::shared_ptr<const PatternCatalog> catalog = catalog_.load();
  std::ostringstream json;
  json << "{"
       << "\"generation\":" << catalog->generation
       << ",\"patterns\":" << catalog->patterns.size()
       << ",\"connections_accepted\":" << c.connections_accepted
       << ",\"connections_open\":" << c.connections_open
       << ",\"sessions_opened\":" << c.sessions_opened
       << ",\"sessions_open\":" << c.sessions_open
       << ",\"feeds\":" << c.feeds
       << ",\"bytes_fed\":" << c.bytes_fed
       << ",\"matches_emitted\":" << c.matches_emitted
       << ",\"error_frames\":" << c.error_frames
       << ",\"feed_rejects\":" << c.feed_rejects
       << ",\"reloads\":" << c.reloads
       << ",\"protocol_errors\":" << c.protocol_errors
       << ",\"sessions_resumed\":" << c.sessions_resumed
       << ",\"sessions_reaped_idle\":" << c.sessions_reaped_idle
       << ",\"drain_state\":\"" << (c.draining ? "draining" : "serving") << "\""
       << ",\"pool\":{"
       << "\"queued\":" << p.queued << ",\"running\":" << p.running
       << ",\"executed\":" << p.executed << ",\"stolen\":" << p.stolen
       << ",\"rejected\":" << p.rejected << "}"
       << ",\"compile_cache\":{"
       << "\"hits\":" << cc.hits << ",\"misses\":" << cc.misses
       << ",\"evictions\":" << cc.evictions << ",\"entries\":" << cc.entries
       << ",\"bytes\":" << cc.bytes << "}}";
  return json.str();
}

void Server::handle_reload(Connection& conn, const Frame& frame) {
  apply_reload(&conn, frame.payload);
}

void Server::apply_reload(Connection* conn, std::string_view manifest_text) {
  std::string from_file;
  if (manifest_text.empty()) {
    if (config_.manifest_path.empty()) {
      const char* message =
          "empty RELOAD needs a server --manifest file; send the manifest "
          "text inline instead";
      if (conn != nullptr)
        send_error(*conn, kNoSession, ErrorCode::kBadManifest, message);
      else
        std::fprintf(stderr, "rispard: reload failed: %s\n", message);
      return;
    }
    std::ifstream file(config_.manifest_path, std::ios::binary);
    if (!file) {
      const std::string message =
          "cannot read manifest file " + config_.manifest_path;
      if (conn != nullptr)
        send_error(*conn, kNoSession, ErrorCode::kBadManifest, message);
      else
        std::fprintf(stderr, "rispard: reload failed: %s\n", message.c_str());
      return;
    }
    std::ostringstream content;
    content << file.rdbuf();
    from_file = content.str();
    manifest_text = from_file;
  }
  const std::vector<std::string> regexes = parse_manifest(manifest_text);
  if (regexes.empty()) {
    if (conn != nullptr)
      send_error(*conn, kNoSession, ErrorCode::kBadManifest,
                 "manifest has no patterns");
    else
      std::fprintf(stderr, "rispard: reload failed: manifest has no patterns\n");
    return;
  }
  std::shared_ptr<const PatternCatalog> next;
  try {
    // Built aside while the current generation keeps serving; in-flight
    // sessions are untouched either way. The server-lifetime compile cache
    // makes an unchanged manifest a pure-hit rebuild: no recompilation.
    EngineConfig reload_config;
    reload_config.compile_cache = compile_cache_;
    next = build_catalog(regexes, generation_.load() + 1, pool_, reload_config);
  } catch (const std::exception& e) {
    if (conn != nullptr)
      send_error(*conn, kNoSession, ErrorCode::kBadManifest, e.what());
    else
      std::fprintf(stderr, "rispard: reload failed: %s\n", e.what());
    return;
  }
  catalog_.store(next);
  generation_.store(next->generation);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  if (conn != nullptr)
    enqueue_output(*conn,
                   reloaded_frame(next->generation,
                                  static_cast<std::uint32_t>(next->patterns.size())));
  else
    std::fprintf(stderr, "rispard: reloaded generation %llu (%zu patterns)\n",
                 static_cast<unsigned long long>(next->generation),
                 next->patterns.size());
}

// ----------------------------------------------------- drain + idle reaping

void Server::arm_timer(std::uint64_t initial_ms, std::uint64_t interval_ms) {
  if (timer_fd_ < 0) return;
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(initial_ms / 1000);
  spec.it_value.tv_nsec = static_cast<long>((initial_ms % 1000) * 1000000);
  spec.it_interval.tv_sec = static_cast<time_t>(interval_ms / 1000);
  spec.it_interval.tv_nsec = static_cast<long>((interval_ms % 1000) * 1000000);
  ::timerfd_settime(timer_fd_, 0, &spec, nullptr);
}

void Server::emit_checkpoint_frame(Connection& conn, Session& session,
                                   FrameType type) {
  try {
    if (type == FrameType::kDraining) fault::maybe_throw("server.drain");
    const std::string blob = session.checkpoint();
    if (8 + blob.size() > kMaxFramePayload) {
      send_error(conn, session.id, ErrorCode::kResourceExhausted,
                 "checkpoint exceeds the 16 MiB frame cap — configure a "
                 "max_history_bytes bound");
      return;
    }
    enqueue_output(conn,
                   checkpoint_frame(type, session.id, session.pattern_id, blob));
  } catch (const ValidationError& e) {
    // Poisoned sessions (a cancelled or failed feed) have no consistent
    // state to serialize; the client re-opens from its own last blob.
    send_error(conn, session.id, ErrorCode::kValidation, e.what());
  } catch (const std::exception& e) {
    send_error(conn, session.id, ErrorCode::kInternal, e.what());
  }
}

void Server::drain_session(Connection& conn, std::uint32_t session_id) {
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end()) return;
  emit_checkpoint_frame(conn, *it->second, FrameType::kDraining);
  conn.sessions.erase(it);  // drops the catalog pin
  sessions_open_.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::finish_connection_drain(Connection& conn) {
  if (!conn.sessions.empty()) return false;  // busy sessions still finishing
  if (!conn.drain_terminal_sent) {
    conn.drain_terminal_sent = true;
    enqueue_output(conn, draining_terminal_frame());
    conn.draining_close = true;
  }
  if (conn.broken || conn.outpos >= conn.outbuf.size()) {
    close_connection(conn.fd);
    return true;
  }
  return false;  // handle_writable closes it once the outbuf flushes
}

void Server::maybe_finish_drain() {
  if (draining_.load(std::memory_order_relaxed) && connections_.empty())
    stop_requested_.store(true);
}

void Server::start_drain() {
  if (draining_.load(std::memory_order_relaxed)) return;
  draining_.store(true);
  // Stop accepting — and release the port, so a replacement server can bind
  // while this one finishes (the protocol.hpp reconnect helpers back off
  // against the refused connects meanwhile).
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Re-purpose the timer as the one-shot grace deadline (idle reaping is
  // moot now). 0 disarms: the drain then waits for every feed.
  arm_timer(config_.drain_deadline_ms, 0);
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    conn.reading = false;
    epoll_update(conn);
    std::vector<std::uint32_t> idle;
    for (const auto& [id, session] : conn.sessions)
      if (!session->busy && session->pending.empty()) idle.push_back(id);
    for (const std::uint32_t id : idle) drain_session(conn, id);
    finish_connection_drain(conn);  // busy sessions drain from completions
  }
  maybe_finish_drain();
}

void Server::drain_deadline_fired() {
  // Grace period over: drop queued windows (none were acked — the drain
  // guarantee covers acked feeds only) and trip every feed still running.
  // Tripped sessions poison; their completion sends a kCancelled ERROR
  // instead of a checkpoint.
  drain_cancel_.request_cancel();
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    std::vector<std::uint32_t> idle;
    for (const auto& [id, session] : conn.sessions) {
      conn.queued_feeds -= session->pending.size();
      session->pending.clear();
      if (!session->busy) idle.push_back(id);
    }
    for (const std::uint32_t id : idle) drain_session(conn, id);
    finish_connection_drain(conn);
  }
  maybe_finish_drain();
}

void Server::idle_tick() {
  if (config_.idle_timeout_ms == 0) return;
  const std::uint64_t now = steady_now_ms();
  std::vector<int> victims;
  for (const auto& [fd, conn] : connections_)
    if (conn->queued_feeds == 0 &&
        now - conn->last_activity_ms >= config_.idle_timeout_ms)
      victims.push_back(fd);
  for (const int fd : victims) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    if (conn.draining_close) {
      // Reaped (or protocol-errored) a full tick ago and the peer never
      // drained the socket — stop waiting for it.
      close_connection(fd);
      continue;
    }
    sessions_reaped_idle_.fetch_add(conn.sessions.size(),
                                    std::memory_order_relaxed);
    std::vector<std::uint32_t> ids;
    ids.reserve(conn.sessions.size());
    for (const auto& [id, session] : conn.sessions) ids.push_back(id);
    for (const std::uint32_t id : ids) drain_session(conn, id);
    finish_connection_drain(conn);
  }
}

// ------------------------------------------------------------- completions

void Server::handle_completions() {
  std::vector<FeedDone> batch;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    batch.swap(done_);
  }
  for (FeedDone& done : batch) {
    matches_emitted_.fetch_add(done.new_matches, std::memory_order_relaxed);
    if (done.rejected) feed_rejects_.fetch_add(1, std::memory_order_relaxed);
    if (done.errored) error_frames_.fetch_add(1, std::memory_order_relaxed);
    Session& session = *done.session;
    session.busy = false;
    auto it = connections_by_uid_.find(done.connection_uid);
    if (it == connections_by_uid_.end()) continue;  // connection died mid-feed
    Connection& conn = *it->second;
    --conn.queued_feeds;
    conn.last_activity_ms = steady_now_ms();
    enqueue_output(conn, done.frames);
    if (conn.broken) {
      close_connection(conn.fd);
      continue;
    }
    const bool draining = draining_.load(std::memory_order_relaxed);
    if (!session.pending.empty())
      dispatch_next_feed(conn, done.session);
    else if (session.closing)
      finish_close(conn, session.id);
    else if (session.checkpoint_requested && !draining) {
      session.checkpoint_requested = false;
      emit_checkpoint_frame(conn, session, FrameType::kCheckpointed);
      if (conn.broken) {
        close_connection(conn.fd);
        continue;
      }
    }
    if (draining) {
      // The feed this session was waiting on is acked (or errored) now —
      // checkpoint and retire it, and finish the connection when it was the
      // last one.
      if (!session.busy && session.pending.empty())
        drain_session(conn, session.id);
      if (finish_connection_drain(conn)) continue;  // conn closed — invalid
    }
    update_read_interest(conn);
  }
}

// -------------------------------------------------------------------- crew

void Server::feed_worker_loop() {
  for (;;) {
    FeedJob job;
    {
      std::unique_lock<std::mutex> lock(feed_mutex_);
      feed_cv_.wait(lock, [this] { return crew_stop_ || !feed_queue_.empty(); });
      if (crew_stop_) return;
      job = std::move(feed_queue_.front());
      feed_queue_.pop_front();
    }
    FeedDone done = execute_feed(std::move(job));
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_.push_back(std::move(done));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof one);
  }
}

Server::FeedDone Server::execute_feed(FeedJob job) {
  FeedDone done;
  done.connection_uid = job.connection_uid;
  done.session = job.session;
  Session& session = *job.session;
  std::vector<Match> matches;
  try {
    // The governed feed: StreamSession re-arms QueryOptions::deadline per
    // feed, and the chunk fan-out inside goes through the shared pool's
    // admission gate — every PR 6 failure mode funnels into the catch
    // ladder below as a typed error frame.
    // Multi-pattern sessions emit session-local pattern indices; remap to
    // catalog ids here, so MATCHES frames always speak manifest line order.
    const bool remap = session.multi.has_value();
    const MatchSink sink = [&matches, &session, remap](const Match& m) {
      Match tagged = m;
      if (remap) tagged.pattern_id = session.catalog_ids[m.pattern_id];
      matches.push_back(tagged);
    };
    session.feed(job.bytes, sink);
    append_matches_frames(done.frames, session.id, matches);
    append_fed_frame(done.frames, session.id, session.bytes_consumed(),
                     session.matches());
    done.new_matches = matches.size();
    done.fed_bytes = job.bytes.size();
  } catch (const DeadlineExceeded& e) {
    done.errored = true;
    done.frames = error_frame(session.id, ErrorCode::kDeadlineExceeded, e.what());
  } catch (const QueryCancelled& e) {
    done.errored = true;
    done.frames = error_frame(session.id, ErrorCode::kCancelled, e.what());
  } catch (const ResourceExhausted& e) {
    done.errored = true;
    done.rejected = true;
    done.frames = error_frame(session.id, ErrorCode::kResourceExhausted, e.what());
  } catch (const QueryError& e) {
    // ValidationError and the base: feeds to a poisoned session land here.
    done.errored = true;
    done.frames = error_frame(session.id, ErrorCode::kValidation, e.what());
  } catch (const std::exception& e) {
    done.errored = true;
    done.frames = error_frame(session.id, ErrorCode::kInternal, e.what());
  }
  return done;
}

}  // namespace rispar::rispard
