// The multi-tenant pattern catalog behind rispard's RELOAD.
//
// One PatternCatalog is an IMMUTABLE generation of the serving set: N
// compiled patterns, each bound to an Engine, all sharing the server's one
// work-stealing pool (EngineConfig::shared_pool). The server holds the
// current generation behind a std::atomic<std::shared_ptr<...>>; RELOAD (or
// SIGHUP) builds a whole new catalog off to the side and swaps the pointer
// in one atomic store:
//
//  * sessions opened BEFORE the swap copied the shared_ptr at open and keep
//    feeding against the generation they opened with — a reload never tears
//    an in-flight session;
//  * the retired generation (and its Engines, whose devices the sessions'
//    StreamSessions point into) is destroyed when the LAST such session
//    closes — plain shared_ptr reference counting, property-tested in
//    tests/test_server.cpp (RispardReload.OldSetOutlivesItsSessions);
//  * a reload that fails to compile leaves the current generation in place:
//    swap-on-success, never swap-then-fix.
//
// The manifest is the operator surface: one regex per line, '#' comments,
// blank lines ignored. Pattern ids are line order — the contract a client
// and its manifest must agree on (docs/rispard.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"

namespace rispar::rispard {

/// One tenant: the manifest line and the Engine serving it. Engines are not
/// movable, hence the unique_ptr.
struct TenantPattern {
  std::string regex;
  std::unique_ptr<Engine> engine;
};

/// One immutable generation of the serving set.
struct PatternCatalog {
  std::uint64_t generation = 0;
  std::vector<TenantPattern> patterns;
};

/// Splits a manifest into its pattern lines ('#' comments and blank lines
/// dropped, trailing '\r' of CRLF manifests stripped). Line order is
/// pattern-id order.
std::vector<std::string> parse_manifest(std::string_view text);

/// True when a manifest line names a compiled .rpb bundle instead of a
/// regex. A bundle line expands IN PLACE to all of its patterns (ids keep
/// line-then-bundle order), loaded zero-copy via Pattern::load_mapped —
/// the cold-start path of docs/rispard.md "Bundle deployment".
bool is_bundle_entry(std::string_view manifest_line);

/// Compiles every manifest entry into a catalog whose Engines share `pool`.
/// Regex entries compile (through base_config.compile_cache when set — an
/// unchanged manifest reloads as pure cache hits); .rpb entries map their
/// bundles and expand to every contained pattern (cached under the file's
/// identity stamp). The Σ*p searcher each streaming-find session needs is
/// pre-warmed here, at reload time, so no session-open or feed ever pays a
/// lazy subset construction. Throws RegexError on a malformed pattern,
/// ResourceExhausted when a construction budget trips, and ValidationError /
/// std::system_error on a bad bundle — in every case the caller keeps
/// serving the old generation.
std::shared_ptr<const PatternCatalog> build_catalog(
    const std::vector<std::string>& regexes, std::uint64_t generation,
    std::shared_ptr<ThreadPool> pool, const EngineConfig& base_config);

}  // namespace rispar::rispard
