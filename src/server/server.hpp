// rispard — the epoll-based streaming query server over StreamSession.
//
// This is the serving path the ROADMAP's north star asks for: thousands of
// TCP connections, each multiplexing client-named streaming-find sessions
// over the length-prefixed protocol of server/protocol.hpp, on top of the
// transport-agnostic StreamSession/MatchSink API (PR 4), the work-stealing
// pool (PR 5) and the governance plumbing (PR 6 — per-feed deadlines, typed
// QueryErrors, PoolAdmission, PoolStats).
//
// ## Threading model
//
// ONE event-loop thread owns every socket, buffer and session table: a
// level-triggered epoll loop over non-blocking sockets. It never runs a
// kernel and never blocks on the pool — FEED payloads are handed to a small
// crew of feed workers (`ServerConfig::feed_workers`), each of which drives
// the session's governed StreamSession::feed; the chunk fan-out inside the
// feed goes through the pool's EXTERNAL admission path (the PR 6
// PoolAdmission gate — this is where overload surfaces), and the submitting
// feed worker participates in the pool until its feed completes. Completed
// feeds post their response frames back to the event loop through an
// eventfd-signalled completion queue. Feeds of ONE session are strictly
// serialized (StreamSession is single-threaded by contract); feeds of
// different sessions run concurrently up to the crew size.
//
// ## Backpressure
//
// Two per-connection brakes, both released on the event that clears them:
//  * write-buffer high water: a connection whose unsent responses exceed
//    `write_high_water` stops being read (EPOLLIN dropped) until the buffer
//    drains below half the mark — a slow consumer throttles itself, never
//    the server;
//  * feed-queue depth: a connection with `max_pending_feeds` windows queued
//    or in flight stops being read until completions drain the queue — a
//    producer faster than the pool is paced by ack latency, and the bytes
//    it keeps sending accumulate in ITS socket buffer, not our heap.
//
// ## Errors never drop connections
//
// Every failure a query can produce — deadline, cancellation, admission
// reject, poisoned session, validation — maps to a typed ERROR frame scoped
// to the offending session (protocol.hpp ErrorCode); the connection and its
// other sessions keep serving. The only close the server initiates is a
// protocol error (unparseable frame), where no framing remains to answer in.
//
// ## Hot reload
//
// The serving PatternSet lives behind std::atomic<std::shared_ptr<const
// PatternCatalog>> (server/catalog.hpp): RELOAD frames (and SIGHUP, when
// `handle_sighup`) build the next generation aside and swap one pointer.
// In-flight sessions pin the generation they opened with.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "server/catalog.hpp"
#include "server/protocol.hpp"

namespace rispar::rispard {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  /// Manifest file re-read by empty RELOAD frames and SIGHUP; may be empty
  /// when every reload ships its manifest inline.
  std::string manifest_path;
  /// Workers of the shared query pool (0 = hardware concurrency).
  unsigned pool_threads = 0;
  /// Feed crew size: concurrent governed feeds in flight. Each worker
  /// participates in the pool while its feed runs, so the crew adds
  /// submission concurrency, not oversubscription.
  unsigned feed_workers = 2;
  /// Admission policy of the shared pool — the overload gate every feed's
  /// chunk batch passes through (parallel/thread_pool.hpp).
  PoolAdmission admission{};
  /// Per-connection brakes (class comment).
  std::size_t write_high_water = 4u << 20;
  std::size_t max_pending_feeds = 32;
  /// Per-connection live-session cap (kTooManySessions past it).
  std::size_t max_sessions_per_connection = 1024;
  /// Upper bound a client may set as per-feed deadline; 0 = no cap.
  std::uint64_t max_feed_deadline_ns = 0;
  /// Route SIGHUP to a manifest re-read via signalfd (the rispard binary
  /// sets this; tests and embedded servers reload via RELOAD frames).
  bool handle_sighup = false;
  /// Route SIGTERM to a graceful drain via signalfd (the rispard binary sets
  /// this; tests and embedded servers drain via stop(true)).
  bool handle_sigterm = false;
  /// Graceful-drain grace period: once a drain starts, in-flight and queued
  /// feeds get this long to finish; past it the shared drain CancelToken
  /// trips them (QueryCancelled — those sessions poison and get an ERROR
  /// frame instead of a checkpoint). 0 = wait for every feed, however long.
  std::uint64_t drain_deadline_ms = 5000;
  /// Idle defense (slowloris): a connection with no inbound traffic and no
  /// in-flight work for this long has each of its sessions checkpointed
  /// into a DRAINING frame, then closes. 0 = never reap.
  std::uint64_t idle_timeout_ms = 0;
  /// QueryOptions::max_history_bytes applied to every session the server
  /// opens or resumes: bounds the kExact unsound-separator history tail per
  /// session (a trip is a typed kResourceExhausted ERROR frame and poisons
  /// only that session). The default also keeps the encoded checkpoint
  /// (4 bytes per retained byte plus envelope) well under the 16 MiB frame
  /// cap. 0 = unlimited — checkpoints of long unsound-separator kExact
  /// sessions may then exceed the frame cap and fail to serialize.
  std::uint64_t max_history_bytes = 2u << 20;
};

/// Monotone serving counters (the STATS frame serializes these plus
/// PoolStats as JSON). `connections_open`/`sessions_open` are gauges.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_open = 0;
  std::uint64_t feeds = 0;
  std::uint64_t bytes_fed = 0;
  std::uint64_t matches_emitted = 0;
  std::uint64_t error_frames = 0;
  std::uint64_t feed_rejects = 0;  ///< ResourceExhausted feeds (admission/budgets)
  std::uint64_t reloads = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t sessions_resumed = 0;     ///< RESUME_SESSION successes
  std::uint64_t sessions_reaped_idle = 0;  ///< checkpointed+closed by the idle reaper
  bool draining = false;                  ///< drain in progress (stats gauge)
};

class Server {
 public:
  /// Compiles `seed_regexes` as generation 1 and binds the listening
  /// socket. Throws RegexError/ResourceExhausted on a bad seed set and
  /// std::system_error on socket failures. The server is not yet serving —
  /// call run() (typically from a dedicated thread).
  Server(std::vector<std::string> seed_regexes, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// The event loop. Blocks until stop(); reentering after stop is invalid.
  void run();

  /// Thread-safe shutdown request; run() returns after in-flight feeds
  /// complete. Idempotent. With `drain` the server stops accepting, sends
  /// every open session's checkpoint in a DRAINING frame (busy sessions
  /// after their in-flight and queued feeds finish — no acked feed is ever
  /// lost), closes each connection after its terminal DRAINING frame, and
  /// only then returns from run(). Feeds still running when
  /// `config.drain_deadline_ms` expires are cancelled (those sessions get a
  /// kCancelled ERROR instead of a checkpoint). stop() after stop(true)
  /// upgrades the drain to an immediate shutdown.
  void stop(bool drain = false);

  /// Thread-safe observability snapshot (tests, the STATS frame).
  ServerCounters counters() const;
  PoolStats pool_stats() const { return pool_->stats(); }
  std::uint64_t generation() const;

  /// The server-lifetime compile cache every generation builds through —
  /// reloading an unchanged manifest is pure hits (its stats ride in
  /// STATS_JSON as "compile_cache").
  const std::shared_ptr<CompileCache>& compile_cache() const {
    return compile_cache_;
  }

  /// The live catalog as a weak handle — tests observe retired-generation
  /// destruction through it without pinning anything themselves.
  std::weak_ptr<const PatternCatalog> catalog_handle() const;

 private:
  struct Session;
  struct Connection;

  /// One governed feed handed to the crew. The shared_ptr keeps the session
  /// (and, through its catalog pin, the Engines its StreamSession points
  /// into) alive even if the connection dies while the feed runs.
  struct FeedJob {
    std::uint64_t connection_uid = 0;
    std::shared_ptr<Session> session;
    std::string bytes;
  };

  /// What a finished feed posts back to the event loop.
  struct FeedDone {
    std::uint64_t connection_uid = 0;
    std::shared_ptr<Session> session;
    std::string frames;           ///< MATCHES* + FED, or one ERROR frame
    std::uint64_t new_matches = 0;
    std::uint64_t fed_bytes = 0;
    bool rejected = false;        ///< ResourceExhausted (the overload counter)
    bool errored = false;
  };

  // Event-loop internals (all run on the run() thread unless noted).
  void event_loop_iteration();
  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void process_frame(Connection& conn, const Frame& frame);
  /// OPEN_SESSION and RESUME_SESSION share every validation; `resume`
  /// selects the trailing-checkpoint parse and the resume construction.
  void handle_open_session(Connection& conn, const Frame& frame, bool resume);
  void handle_checkpoint(Connection& conn, const Frame& frame);
  void handle_feed(Connection& conn, const Frame& frame);
  void handle_close(Connection& conn, const Frame& frame);
  void handle_stats(Connection& conn);
  void handle_reload(Connection& conn, const Frame& frame);
  void handle_completions();
  void dispatch_next_feed(Connection& conn, const std::shared_ptr<Session>& session);
  void finish_close(Connection& conn, std::uint32_t session_id);
  void send_error(Connection& conn, std::uint32_t session_id, ErrorCode code,
                  std::string_view message);
  void enqueue_output(Connection& conn, std::string_view frames);
  void flush_output(Connection& conn);
  void update_read_interest(Connection& conn);
  void close_connection(int fd);
  void apply_reload(Connection* conn, std::string_view manifest_text);
  std::string stats_json() const;

  // Drain / idle-reap machinery (event-loop thread).
  void start_drain();
  void drain_deadline_fired();
  void idle_tick();
  void arm_timer(std::uint64_t initial_ms, std::uint64_t interval_ms);
  /// Emits `type` (CHECKPOINTED or DRAINING) carrying the session's
  /// checkpoint, or a typed ERROR frame when serialization fails.
  void emit_checkpoint_frame(Connection& conn, Session& session,
                             FrameType type);
  /// DRAINING-checkpoints the session and erases it from the connection.
  void drain_session(Connection& conn, std::uint32_t session_id);
  /// Once a draining/reaped connection has no sessions left, sends the
  /// terminal DRAINING frame and closes when the output buffer is flushed.
  /// Returns true when the connection was closed (it is then invalid).
  bool finish_connection_drain(Connection& conn);
  void maybe_finish_drain();

  /// Crew side: governed feeds, response-frame assembly (not event loop).
  void feed_worker_loop();
  static FeedDone execute_feed(FeedJob job);

  void epoll_update(Connection& conn);

  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;   ///< completion + stop wakeups
  int signal_fd_ = -1;  ///< SIGHUP/SIGTERM, per config_.handle_sig*
  int timer_fd_ = -1;   ///< idle-reap ticks; re-armed as the drain deadline

  std::shared_ptr<ThreadPool> pool_;
  /// Outlives every catalog generation: unchanged manifest lines and .rpb
  /// entries carry their compiled Patterns across reloads.
  std::shared_ptr<CompileCache> compile_cache_;
  std::atomic<std::shared_ptr<const PatternCatalog>> catalog_;
  std::atomic<std::uint64_t> generation_{0};

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;     // by fd
  std::unordered_map<std::uint64_t, Connection*> connections_by_uid_;
  std::uint64_t next_connection_uid_ = 1;

  // Feed crew handoff.
  std::mutex feed_mutex_;
  std::condition_variable feed_cv_;
  std::deque<FeedJob> feed_queue_;
  bool crew_stop_ = false;
  std::vector<std::thread> crew_;

  // Completion queue (crew -> event loop), drained on eventfd wakeups.
  std::mutex done_mutex_;
  std::vector<FeedDone> done_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> draining_{false};  ///< set only by the event loop
  /// Shared cancel source for the drain deadline: every session's
  /// QueryOptions carries its token, so one request_cancel() trips every
  /// feed still in flight when the grace period expires.
  CancelSource drain_cancel_;

  // Counters: atomics because counters()/STATS may race the crew's bumps.
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_open_{0};
  std::atomic<std::uint64_t> feeds_{0};
  std::atomic<std::uint64_t> bytes_fed_{0};
  std::atomic<std::uint64_t> matches_emitted_{0};
  std::atomic<std::uint64_t> error_frames_{0};
  std::atomic<std::uint64_t> feed_rejects_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> sessions_resumed_{0};
  std::atomic<std::uint64_t> sessions_reaped_idle_{0};
};

}  // namespace rispar::rispard
