#include "regex/derivative.hpp"

#include "regex/simplify.hpp"

namespace rispar {

RePtr re_derivative(const RePtr& re, unsigned char byte) {
  switch (re->kind) {
    case ReKind::kEmpty:
    case ReKind::kEpsilon:
      return re_empty();

    case ReKind::kLiteral:
      return re->bytes.test(byte) ? re_epsilon() : re_empty();

    case ReKind::kConcat: {
      // d(r1 r2...rk) = d(r1) r2..rk  |  [r1 nullable] d(r2..rk).
      std::vector<RePtr> rest(re->children.begin() + 1, re->children.end());
      const RePtr tail = re_concat(std::vector<RePtr>(rest));
      std::vector<RePtr> branches;
      {
        std::vector<RePtr> head{re_derivative(re->children.front(), byte)};
        head.insert(head.end(), rest.begin(), rest.end());
        branches.push_back(re_concat(std::move(head)));
      }
      if (re_nullable(re->children.front()))
        branches.push_back(re_derivative(tail, byte));
      return re_alternate(std::move(branches));
    }

    case ReKind::kAlternate: {
      std::vector<RePtr> branches;
      branches.reserve(re->children.size());
      for (const auto& child : re->children)
        branches.push_back(re_derivative(child, byte));
      return re_alternate(std::move(branches));
    }

    case ReKind::kStar:
      // d(r*) = d(r) r*
      return re_concat({re_derivative(re->children.front(), byte), re});

    case ReKind::kPlus:
      // d(r+) = d(r) r*
      return re_concat(
          {re_derivative(re->children.front(), byte), re_star(re->children.front())});

    case ReKind::kOptional:
      return re_derivative(re->children.front(), byte);

    case ReKind::kRepeat: {
      // d(r{m,n}) = d(r) r{max(m-1,0), n-1}  (n-1 keeps -1 for unbounded).
      const RePtr& inner = re->children.front();
      const int min = re->min > 0 ? re->min - 1 : 0;
      const int max = re->max < 0 ? -1 : re->max - 1;
      if (re->max == 0) return re_empty();  // r{0} == eps, derivative empty
      return re_concat({re_derivative(inner, byte), re_repeat(inner, min, max)});
    }
  }
  return re_empty();
}

bool derivative_match(const RePtr& re, const std::string& text) {
  RePtr current = re;
  for (const char ch : text) {
    current = re_derivative(current, static_cast<unsigned char>(ch));
    if (current->kind == ReKind::kEmpty) return false;
    // Periodic simplification keeps the term from snowballing.
    if (re_size(current) > 256) current = simplify_regex(current);
  }
  return re_nullable(current);
}

}  // namespace rispar
