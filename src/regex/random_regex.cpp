#include "regex/random_regex.hpp"

namespace rispar {

namespace {

RePtr gen(Prng& prng, const RandomRegexConfig& config, int budget) {
  if (budget <= 1) {
    // Literal leaf.
    if (config.alphabet.empty()) return re_epsilon();
    if (prng.next_bool(config.p_class) && config.alphabet.size() >= 2) {
      ByteSet set;
      const std::size_t picks = 2 + prng.pick_index(config.alphabet.size() - 1);
      for (std::size_t i = 0; i < picks; ++i)
        set.set(static_cast<unsigned char>(
            config.alphabet[prng.pick_index(config.alphabet.size())]));
      return re_literal(set);
    }
    return re_byte(static_cast<unsigned char>(
        config.alphabet[prng.pick_index(config.alphabet.size())]));
  }

  const double total = config.w_concat + config.w_alternate + config.w_star +
                       config.w_plus + config.w_optional;
  double dice = prng.next_double() * total;

  if ((dice -= config.w_concat) < 0) {
    const int left =
        1 + static_cast<int>(prng.pick_index(static_cast<std::size_t>(budget - 1)));
    std::vector<RePtr> parts;
    parts.push_back(gen(prng, config, left));
    parts.push_back(gen(prng, config, budget - left));
    return re_concat(std::move(parts));
  }
  if ((dice -= config.w_alternate) < 0) {
    const int left =
        1 + static_cast<int>(prng.pick_index(static_cast<std::size_t>(budget - 1)));
    std::vector<RePtr> parts;
    parts.push_back(gen(prng, config, left));
    parts.push_back(gen(prng, config, budget - left));
    return re_alternate(std::move(parts));
  }
  if ((dice -= config.w_star) < 0) return re_star(gen(prng, config, budget - 1));
  if ((dice -= config.w_plus) < 0) return re_plus(gen(prng, config, budget - 1));
  return re_optional(gen(prng, config, budget - 1));
}

}  // namespace

RePtr random_regex(Prng& prng, const RandomRegexConfig& config) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    RePtr node = gen(prng, config, config.target_size);
    if (!config.require_nonempty || node->kind != ReKind::kEmpty) return node;
  }
  return re_epsilon();
}

bool random_member(const RePtr& node, Prng& prng, std::string& out, double growth) {
  switch (node->kind) {
    case ReKind::kEmpty:
      return false;
    case ReKind::kEpsilon:
      return true;
    case ReKind::kLiteral: {
      const std::size_t population = node->bytes.count();
      if (population == 0) return false;
      std::size_t target = prng.pick_index(population);
      for (std::size_t b = 0; b < 256; ++b) {
        if (!node->bytes.test(b)) continue;
        if (target-- == 0) {
          out.push_back(static_cast<char>(b));
          return true;
        }
      }
      return false;
    }
    case ReKind::kConcat:
      for (const auto& child : node->children)
        if (!random_member(child, prng, out, growth)) return false;
      return true;
    case ReKind::kAlternate: {
      // Try branches in a random order so ∅ branches do not poison the draw.
      const auto order = prng.permutation(node->children.size());
      const std::size_t mark = out.size();
      for (const auto index : order) {
        if (random_member(node->children[index], prng, out, growth)) return true;
        out.resize(mark);
      }
      return false;
    }
    case ReKind::kStar: {
      while (prng.next_bool(growth)) {
        const std::size_t mark = out.size();
        if (!random_member(node->children.front(), prng, out, growth)) {
          out.resize(mark);
          break;
        }
      }
      return true;
    }
    case ReKind::kPlus: {
      if (!random_member(node->children.front(), prng, out, growth)) return false;
      while (prng.next_bool(growth)) {
        const std::size_t mark = out.size();
        if (!random_member(node->children.front(), prng, out, growth)) {
          out.resize(mark);
          break;
        }
      }
      return true;
    }
    case ReKind::kOptional: {
      if (prng.next_bool(0.5)) {
        const std::size_t mark = out.size();
        if (!random_member(node->children.front(), prng, out, growth)) out.resize(mark);
      }
      return true;
    }
    case ReKind::kRepeat: {
      int copies = node->min;
      if (node->max < 0) {
        while (prng.next_bool(growth)) ++copies;
      } else if (node->max > node->min) {
        copies += static_cast<int>(prng.pick_index(
            static_cast<std::size_t>(node->max - node->min + 1)));
      }
      for (int i = 0; i < copies; ++i)
        if (!random_member(node->children.front(), prng, out, growth)) return false;
      return true;
    }
  }
  return false;
}

}  // namespace rispar
