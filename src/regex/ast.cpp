#include "regex/ast.hpp"

namespace rispar {

namespace {
RePtr make(ReKind kind) { return std::make_shared<ReNode>(kind); }
}  // namespace

RePtr re_empty() {
  static const RePtr node = make(ReKind::kEmpty);
  return node;
}

RePtr re_epsilon() {
  static const RePtr node = make(ReKind::kEpsilon);
  return node;
}

RePtr re_literal(const ByteSet& bytes) {
  if (bytes.none()) return re_empty();
  auto node = std::make_shared<ReNode>(ReKind::kLiteral);
  node->bytes = bytes;
  return node;
}

RePtr re_byte(unsigned char byte) {
  ByteSet set;
  set.set(byte);
  return re_literal(set);
}

RePtr re_range(unsigned char lo, unsigned char hi) {
  ByteSet set;
  for (int b = lo; b <= hi; ++b) set.set(static_cast<std::size_t>(b));
  return re_literal(set);
}

RePtr re_any() {
  ByteSet set;
  set.set();
  return re_literal(set);
}

RePtr re_concat(std::vector<RePtr> parts) {
  std::vector<RePtr> flat;
  for (auto& part : parts) {
    if (part->kind == ReKind::kEmpty) return re_empty();
    if (part->kind == ReKind::kEpsilon) continue;
    if (part->kind == ReKind::kConcat) {
      flat.insert(flat.end(), part->children.begin(), part->children.end());
    } else {
      flat.push_back(std::move(part));
    }
  }
  if (flat.empty()) return re_epsilon();
  if (flat.size() == 1) return flat.front();
  auto node = std::make_shared<ReNode>(ReKind::kConcat);
  node->children = std::move(flat);
  return node;
}

RePtr re_alternate(std::vector<RePtr> parts) {
  std::vector<RePtr> flat;
  for (auto& part : parts) {
    if (part->kind == ReKind::kEmpty) continue;
    if (part->kind == ReKind::kAlternate) {
      flat.insert(flat.end(), part->children.begin(), part->children.end());
    } else {
      flat.push_back(std::move(part));
    }
  }
  if (flat.empty()) return re_empty();
  if (flat.size() == 1) return flat.front();
  auto node = std::make_shared<ReNode>(ReKind::kAlternate);
  node->children = std::move(flat);
  return node;
}

RePtr re_star(RePtr inner) {
  if (inner->kind == ReKind::kEmpty || inner->kind == ReKind::kEpsilon)
    return re_epsilon();
  if (inner->kind == ReKind::kStar) return inner;
  auto node = std::make_shared<ReNode>(ReKind::kStar);
  node->children.push_back(std::move(inner));
  return node;
}

RePtr re_plus(RePtr inner) {
  if (inner->kind == ReKind::kEmpty) return re_empty();
  if (inner->kind == ReKind::kEpsilon) return re_epsilon();
  if (inner->kind == ReKind::kStar || inner->kind == ReKind::kPlus) return inner;
  auto node = std::make_shared<ReNode>(ReKind::kPlus);
  node->children.push_back(std::move(inner));
  return node;
}

RePtr re_optional(RePtr inner) {
  if (inner->kind == ReKind::kEmpty) return re_epsilon();
  if (inner->kind == ReKind::kEpsilon || inner->kind == ReKind::kStar ||
      inner->kind == ReKind::kOptional)
    return inner;
  if (inner->kind == ReKind::kPlus) return re_star(inner->children.front());
  auto node = std::make_shared<ReNode>(ReKind::kOptional);
  node->children.push_back(std::move(inner));
  return node;
}

RePtr re_repeat(RePtr inner, int min, int max) {
  if (min < 0) min = 0;
  if (max >= 0 && max < min) max = min;
  if (min == 0 && max == 0) return re_epsilon();
  if (min == 0 && max < 0) return re_star(std::move(inner));
  if (min == 1 && max < 0) return re_plus(std::move(inner));
  if (min == 1 && max == 1) return inner;
  if (min == 0 && max == 1) return re_optional(std::move(inner));
  auto node = std::make_shared<ReNode>(ReKind::kRepeat);
  node->children.push_back(std::move(inner));
  node->min = min;
  node->max = max;
  return node;
}

RePtr re_string(const std::string& text) {
  std::vector<RePtr> parts;
  parts.reserve(text.size());
  for (const char ch : text) parts.push_back(re_byte(static_cast<unsigned char>(ch)));
  return re_concat(std::move(parts));
}

bool re_nullable(const RePtr& node) {
  switch (node->kind) {
    case ReKind::kEmpty:
    case ReKind::kLiteral:
      return false;
    case ReKind::kEpsilon:
    case ReKind::kStar:
    case ReKind::kOptional:
      return true;
    case ReKind::kPlus:
      return re_nullable(node->children.front());
    case ReKind::kConcat:
      for (const auto& child : node->children)
        if (!re_nullable(child)) return false;
      return true;
    case ReKind::kAlternate:
      for (const auto& child : node->children)
        if (re_nullable(child)) return true;
      return false;
    case ReKind::kRepeat:
      return node->min == 0 || re_nullable(node->children.front());
  }
  return false;
}

std::size_t re_size(const RePtr& node) {
  std::size_t total = 1;
  for (const auto& child : node->children) total += re_size(child);
  return total;
}

std::size_t re_positions(const RePtr& node) {
  switch (node->kind) {
    case ReKind::kEmpty:
    case ReKind::kEpsilon:
      return 0;
    case ReKind::kLiteral:
      return 1;
    case ReKind::kRepeat: {
      const std::size_t inner = re_positions(node->children.front());
      const std::size_t copies =
          node->max < 0 ? static_cast<std::size_t>(node->min) + 1
                        : static_cast<std::size_t>(node->max);
      return inner * (copies == 0 ? 1 : copies);
    }
    default: {
      std::size_t total = 0;
      for (const auto& child : node->children) total += re_positions(child);
      return total;
    }
  }
}

}  // namespace rispar
