#include "regex/printer.hpp"

#include <cctype>
#include <cstdio>

namespace rispar {

namespace {

bool is_plain(unsigned char byte) {
  if (std::isalnum(byte)) return true;
  switch (byte) {
    case ' ': case '_': case '@': case '%': case '&': case '!': case '~':
    case '#': case ':': case ';': case '<': case '>': case '=': case ',':
    case '/': case '\'': case '"': case '`':
      return true;
    default:
      return false;
  }
}

std::string escape_byte(unsigned char byte, bool in_class) {
  if (is_plain(byte)) return std::string(1, static_cast<char>(byte));
  switch (byte) {
    case '\n': return "\\n";
    case '\r': return "\\r";
    case '\t': return "\\t";
    default: break;
  }
  const bool printable = byte >= 0x20 && byte < 0x7f;
  if (printable && !in_class) return "\\" + std::string(1, static_cast<char>(byte));
  if (printable && in_class) {
    if (byte == ']' || byte == '\\' || byte == '^' || byte == '-')
      return "\\" + std::string(1, static_cast<char>(byte));
    return std::string(1, static_cast<char>(byte));
  }
  char buffer[8];
  std::snprintf(buffer, sizeof buffer, "\\x%02x", byte);
  return buffer;
}

// Precedence: alternation < concat < repetition < atom.
enum Level { kAlt = 0, kCat = 1, kRep = 2, kAtom = 3 };

std::string print(const RePtr& node, int context);

std::string wrap(std::string text, int inner, int context) {
  if (inner < context) return "(" + std::move(text) + ")";
  return text;
}

std::string print(const RePtr& node, int context) {
  switch (node->kind) {
    case ReKind::kEmpty:
      // No ∅ literal in the surface syntax; an empty class is unparseable,
      // so use a class that can never match under whole-input semantics is
      // not expressible either. [^\x00-\xff] is rejected by the parser, so
      // emit a conventional marker that parses to a 1-byte class and document
      // that ∅ only arises internally.
      return "[\\x00]{0}";
    case ReKind::kEpsilon:
      return "";
    case ReKind::kLiteral:
      return byteset_to_string(node->bytes);
    case ReKind::kConcat: {
      std::string text;
      for (const auto& child : node->children) text += print(child, kCat);
      return wrap(std::move(text), kCat, context);
    }
    case ReKind::kAlternate: {
      std::string text;
      for (std::size_t i = 0; i < node->children.size(); ++i) {
        if (i) text += '|';
        text += print(node->children[i], kAlt);
      }
      return wrap(std::move(text), kAlt, context);
    }
    case ReKind::kStar:
      return print(node->children.front(), kAtom) + "*";
    case ReKind::kPlus:
      return print(node->children.front(), kAtom) + "+";
    case ReKind::kOptional:
      return print(node->children.front(), kAtom) + "?";
    case ReKind::kRepeat: {
      std::string bound = "{" + std::to_string(node->min);
      if (node->max < 0)
        bound += ",}";
      else if (node->max != node->min)
        bound += "," + std::to_string(node->max) + "}";
      else
        bound += "}";
      return print(node->children.front(), kAtom) + bound;
    }
  }
  return {};
}

}  // namespace

std::string byteset_to_string(const ByteSet& bytes) {
  if (bytes.all()) return ".";
  if (bytes.count() == 1) {
    for (std::size_t b = 0; b < 256; ++b)
      if (bytes.test(b)) return escape_byte(static_cast<unsigned char>(b), false);
  }
  // Render as a class of maximal ranges; negate when that is shorter.
  const bool negate = bytes.count() > 128;
  const ByteSet effective = negate ? ~bytes : bytes;
  std::string text = negate ? "[^" : "[";
  std::size_t b = 0;
  while (b < 256) {
    if (!effective.test(b)) {
      ++b;
      continue;
    }
    std::size_t end = b;
    while (end + 1 < 256 && effective.test(end + 1)) ++end;
    if (end == b) {
      text += escape_byte(static_cast<unsigned char>(b), true);
    } else if (end == b + 1) {
      text += escape_byte(static_cast<unsigned char>(b), true);
      text += escape_byte(static_cast<unsigned char>(end), true);
    } else {
      text += escape_byte(static_cast<unsigned char>(b), true);
      text += '-';
      text += escape_byte(static_cast<unsigned char>(end), true);
    }
    b = end + 1;
  }
  text += ']';
  return text;
}

std::string regex_to_string(const RePtr& node) {
  if (node->kind == ReKind::kEpsilon) return "()";
  return print(node, kAlt);
}

}  // namespace rispar
