// Recursive-descent parser for a POSIX-flavoured RE syntax.
//
// Supported: alternation `|`, concatenation, `* + ?`, bounded repetition
// `{m}`, `{m,}`, `{m,n}`, groups `( )`, any-byte `.`, character classes
// `[...]` with ranges and negation, and escapes `\d \D \w \W \s \S \n \r \t
// \0 \xHH` plus escaped metacharacters. Matching semantics are whole-input
// recognition (the paper recognizes texts, it does not search), so there are
// no anchors; wrap an RE with `.*` manually to express "contains".
#pragma once

#include <stdexcept>
#include <string>

#include "regex/ast.hpp"

namespace rispar {

class RegexError : public std::runtime_error {
 public:
  RegexError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " at offset " + std::to_string(position)),
        position_(position) {}

  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses `pattern`; throws RegexError on malformed input.
RePtr parse_regex(const std::string& pattern);

}  // namespace rispar
