// Random RE generator — stand-in for the authors' REgen tool [3], used to
// build the "bigdata" benchmark (Sect. 4.1) and for property-test sweeps.
//
// Generation is grammar-directed with a node budget; the operator mix and
// alphabet are configurable so tests can bias towards small/hostile shapes.
#pragma once

#include <string>

#include "regex/ast.hpp"
#include "util/prng.hpp"

namespace rispar {

struct RandomRegexConfig {
  /// Alphabet the literals draw from.
  std::string alphabet = "ab";
  /// Approximate number of AST nodes (the generator stops splitting the
  /// budget once it reaches 1).
  int target_size = 12;
  /// Probability weights of the internal operators.
  double w_concat = 4.0;
  double w_alternate = 3.0;
  double w_star = 1.5;
  double w_plus = 0.7;
  double w_optional = 0.8;
  /// Probability that a literal is a multi-byte class instead of one byte.
  double p_class = 0.15;
  /// Guarantee a non-empty language (rejects and retries ∅ results).
  bool require_nonempty = true;
};

RePtr random_regex(Prng& prng, const RandomRegexConfig& config = {});

/// Generates a random string belonging to L(node); returns false when the
/// language is empty. `growth` in (0,1) bounds the expected unrolling of
/// star/plus loops. Used by property tests and by workload generators that
/// need positive samples.
bool random_member(const RePtr& node, Prng& prng, std::string& out, double growth = 0.4);

}  // namespace rispar
