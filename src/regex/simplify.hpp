// Algebraic RE simplification.
//
// The paper (Sect. 5, "Minimality of source automata") notes that optimizing
// the RE before conversion shrinks the resulting NFA, which directly shrinks
// the RI-DFA interface. This pass applies standard language-preserving
// rewrites; it is deliberately conservative (no exponential-cost rewrites).
#pragma once

#include "regex/ast.hpp"

namespace rispar {

/// Rewrites until a fixpoint of the rule set:
///  - duplicate alternation branches removed (r|r -> r)
///  - literal branches fused ([ab]|[bc] -> [abc])
///  - epsilon elimination (eps|r -> r? ; handled through nullability)
///  - nested repetition collapse ((r*)* -> r*, (r?)+ -> r*, ...)
///  - bounded repeats of repeats collapsed where sound
RePtr simplify_regex(const RePtr& node);

/// Rewrites every bounded repetition r{m,n} into concatenations of copies
/// and optionals (r{2,4} -> r r (r (r)?)?), and r{m,} into r^m r*. The
/// NFA constructions only handle the core operators, so they expand first.
RePtr re_expand_repeats(const RePtr& node);

}  // namespace rispar
