#include "regex/simplify.hpp"

#include <algorithm>

#include "regex/printer.hpp"

namespace rispar {

namespace {

// Structural-equality key; cheap and sufficient for duplicate elimination.
std::string key_of(const RePtr& node) { return regex_to_string(node); }

RePtr simplify_once(const RePtr& node) {
  // Simplify children first.
  std::vector<RePtr> children;
  children.reserve(node->children.size());
  for (const auto& child : node->children) children.push_back(simplify_once(child));

  switch (node->kind) {
    case ReKind::kEmpty:
    case ReKind::kEpsilon:
    case ReKind::kLiteral:
      return node;

    case ReKind::kConcat:
      return re_concat(std::move(children));

    case ReKind::kAlternate: {
      // Fuse literal branches into one class and deduplicate the rest.
      ByteSet fused;
      bool any_literal = false;
      bool nullable_branch = false;
      std::vector<RePtr> kept;
      std::vector<std::string> seen;
      for (auto& child : children) {
        if (child->kind == ReKind::kLiteral) {
          fused |= child->bytes;
          any_literal = true;
          continue;
        }
        if (child->kind == ReKind::kEpsilon) {
          nullable_branch = true;
          continue;
        }
        std::string key = key_of(child);
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(std::move(key));
        kept.push_back(std::move(child));
      }
      if (any_literal) kept.push_back(re_literal(fused));
      RePtr alt = re_alternate(std::move(kept));
      if (nullable_branch && !re_nullable(alt)) alt = re_optional(std::move(alt));
      if (nullable_branch && alt->kind == ReKind::kEmpty) alt = re_epsilon();
      return alt;
    }

    case ReKind::kStar: {
      RePtr inner = children.front();
      // (r?)* == (r+)* == r*
      while (inner->kind == ReKind::kOptional || inner->kind == ReKind::kPlus ||
             inner->kind == ReKind::kStar)
        inner = inner->children.front();
      return re_star(std::move(inner));
    }

    case ReKind::kPlus: {
      RePtr inner = children.front();
      if (inner->kind == ReKind::kOptional)  // (r?)+ == r*
        return re_star(inner->children.front());
      return re_plus(std::move(inner));
    }

    case ReKind::kOptional: {
      RePtr inner = children.front();
      if (re_nullable(inner)) return inner;  // r nullable => r? == r
      if (inner->kind == ReKind::kPlus)      // (r+)? == r*
        return re_star(inner->children.front());
      return re_optional(std::move(inner));
    }

    case ReKind::kRepeat: {
      RePtr inner = children.front();
      if (re_nullable(inner) && node->max < 0)
        return re_star(std::move(inner));  // nullable r => r{m,} == r*
      return re_repeat(std::move(inner), node->min, node->max);
    }
  }
  return node;
}

}  // namespace

RePtr re_expand_repeats(const RePtr& node) {
  std::vector<RePtr> children;
  children.reserve(node->children.size());
  for (const auto& child : node->children) children.push_back(re_expand_repeats(child));

  switch (node->kind) {
    case ReKind::kEmpty:
    case ReKind::kEpsilon:
    case ReKind::kLiteral:
      return node;
    case ReKind::kConcat:
      return re_concat(std::move(children));
    case ReKind::kAlternate:
      return re_alternate(std::move(children));
    case ReKind::kStar:
      return re_star(children.front());
    case ReKind::kPlus:
      return re_plus(children.front());
    case ReKind::kOptional:
      return re_optional(children.front());
    case ReKind::kRepeat: {
      const RePtr& inner = children.front();
      std::vector<RePtr> parts;
      for (int i = 0; i < node->min; ++i) parts.push_back(inner);
      if (node->max < 0) {
        parts.push_back(re_star(inner));
      } else {
        // Nested optionals so r{0,3} is (r (r (r)?)?)? — linear, not cubic.
        RePtr tail = re_epsilon();
        for (int i = node->min; i < node->max; ++i)
          tail = re_optional(re_concat({inner, tail}));
        parts.push_back(std::move(tail));
      }
      return re_concat(std::move(parts));
    }
  }
  return node;
}

RePtr simplify_regex(const RePtr& node) {
  RePtr current = node;
  for (int round = 0; round < 8; ++round) {
    RePtr next = simplify_once(current);
    if (key_of(next) == key_of(current)) return next;
    current = std::move(next);
  }
  return current;
}

}  // namespace rispar
