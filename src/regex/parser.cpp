#include "regex/parser.hpp"

#include <cctype>

namespace rispar {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& pattern) : text_(pattern) {}

  RePtr parse() {
    RePtr result = parse_alternation();
    if (pos_ != text_.size()) fail("unexpected character");
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw RegexError(message, pos_);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }
  bool accept(char ch) {
    if (!done() && peek() == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  RePtr parse_alternation() {
    std::vector<RePtr> branches;
    branches.push_back(parse_concat());
    while (accept('|')) branches.push_back(parse_concat());
    return re_alternate(std::move(branches));
  }

  RePtr parse_concat() {
    std::vector<RePtr> parts;
    while (!done() && peek() != '|' && peek() != ')') parts.push_back(parse_repeat());
    return re_concat(std::move(parts));
  }

  RePtr parse_repeat() {
    RePtr atom = parse_atom();
    while (!done()) {
      if (accept('*')) {
        atom = re_star(std::move(atom));
      } else if (accept('+')) {
        atom = re_plus(std::move(atom));
      } else if (accept('?')) {
        atom = re_optional(std::move(atom));
      } else if (peek() == '{') {
        atom = parse_bounds(std::move(atom));
      } else {
        break;
      }
    }
    return atom;
  }

  RePtr parse_bounds(RePtr atom) {
    ++pos_;  // '{'
    const int min = parse_number();
    int max = min;
    if (accept(',')) {
      max = (!done() && peek() == '}') ? -1 : parse_number();
    }
    if (!accept('}')) fail("expected '}' in repetition bound");
    if (max >= 0 && max < min) fail("repetition bound {m,n} requires m <= n");
    return re_repeat(std::move(atom), min, max);
  }

  int parse_number() {
    if (done() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected a number");
    long value = 0;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + (take() - '0');
      if (value > 100000) fail("repetition bound too large");
    }
    return static_cast<int>(value);
  }

  RePtr parse_atom() {
    if (done()) fail("expected an atom");
    const char ch = peek();
    switch (ch) {
      case '(': {
        ++pos_;
        RePtr inner = parse_alternation();
        if (!accept(')')) fail("expected ')'");
        return inner;
      }
      case '[':
        return parse_class();
      case '.':
        ++pos_;
        return re_any();
      case '\\':
        ++pos_;
        return re_literal(parse_escape());
      case '*':
      case '+':
      case '?':
      case '{':
        fail("quantifier with nothing to repeat");
      case ')':
        fail("unbalanced ')'");
      default:
        ++pos_;
        return re_byte(static_cast<unsigned char>(ch));
    }
  }

  ByteSet parse_escape() {
    if (done()) fail("dangling escape");
    const char ch = take();
    ByteSet set;
    auto set_range = [&set](unsigned char lo, unsigned char hi) {
      for (int b = lo; b <= hi; ++b) set.set(static_cast<std::size_t>(b));
    };
    switch (ch) {
      case 'd': set_range('0', '9'); return set;
      case 'D': set_range('0', '9'); return ~set;
      case 'w':
        set_range('a', 'z'); set_range('A', 'Z'); set_range('0', '9');
        set.set('_');
        return set;
      case 'W':
        set_range('a', 'z'); set_range('A', 'Z'); set_range('0', '9');
        set.set('_');
        return ~set;
      case 's':
        for (const char space : {' ', '\t', '\n', '\r', '\f', '\v'})
          set.set(static_cast<unsigned char>(space));
        return set;
      case 'S':
        for (const char space : {' ', '\t', '\n', '\r', '\f', '\v'})
          set.set(static_cast<unsigned char>(space));
        return ~set;
      case 'n': set.set('\n'); return set;
      case 'r': set.set('\r'); return set;
      case 't': set.set('\t'); return set;
      case '0': set.set(0); return set;
      case 'x': {
        int value = 0;
        for (int digit = 0; digit < 2; ++digit) {
          if (done() || !std::isxdigit(static_cast<unsigned char>(peek())))
            fail("\\x expects two hex digits");
          const char hex = take();
          value = value * 16 +
                  (std::isdigit(static_cast<unsigned char>(hex))
                       ? hex - '0'
                       : std::tolower(static_cast<unsigned char>(hex)) - 'a' + 10);
        }
        set.set(static_cast<std::size_t>(value));
        return set;
      }
      default:
        // Escaped metacharacter or any other byte taken literally.
        set.set(static_cast<unsigned char>(ch));
        return set;
    }
  }

  RePtr parse_class() {
    ++pos_;  // '['
    bool negate = accept('^');
    ByteSet set;
    bool first = true;
    while (true) {
      if (done()) fail("unterminated character class");
      if (peek() == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      ByteSet element;
      if (peek() == '\\') {
        ++pos_;
        element = parse_escape();
      } else {
        element.set(static_cast<unsigned char>(take()));
      }
      // Range "a-z": only when the element is a single byte and '-' is not
      // the class terminator.
      if (!done() && peek() == '-' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] != ']' && element.count() == 1) {
        ++pos_;  // '-'
        unsigned char lo = 0;
        for (std::size_t b = 0; b < 256; ++b)
          if (element.test(b)) lo = static_cast<unsigned char>(b);
        ByteSet hi_set;
        if (peek() == '\\') {
          ++pos_;
          hi_set = parse_escape();
        } else {
          hi_set.set(static_cast<unsigned char>(take()));
        }
        if (hi_set.count() != 1) fail("invalid range endpoint");
        unsigned char hi = 0;
        for (std::size_t b = 0; b < 256; ++b)
          if (hi_set.test(b)) hi = static_cast<unsigned char>(b);
        if (hi < lo) fail("reversed range in character class");
        for (int b = lo; b <= hi; ++b) set.set(static_cast<std::size_t>(b));
      } else {
        set |= element;
      }
    }
    if (negate) set = ~set;
    if (set.none()) fail("empty character class");
    return re_literal(set);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

RePtr parse_regex(const std::string& pattern) {
  return Parser(pattern).parse();
}

}  // namespace rispar
