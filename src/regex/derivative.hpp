// Brzozowski derivatives: a third, automata-free matching semantics.
//
// d_a(r) is the RE whose language is { w : aw ∈ L(r) }; a string matches r
// iff deriving r by each of its bytes in turn leaves a nullable RE. The
// test suite uses this as an oracle that is structurally independent of
// the Glushkov/Thompson/powerset pipeline — a bug would have to hit both
// machineries identically to slip through.
#pragma once

#include <string>

#include "regex/ast.hpp"

namespace rispar {

/// The derivative of `re` with respect to input byte `byte`. Bounded
/// repeats are handled directly (no pre-expansion).
RePtr re_derivative(const RePtr& re, unsigned char byte);

/// Matches by iterated derivation. Worst-case cost is exponential in
/// pathological REs (derivatives can grow); intended for testing, not for
/// production texts.
bool derivative_match(const RePtr& re, const std::string& text);

}  // namespace rispar
