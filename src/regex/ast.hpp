// Regular-expression abstract syntax.
//
// The paper's pipeline starts from REs (benchmarks bigdata, regexp, bible,
// fasta, traffic are all specified as REs, converted to NFAs by a standard
// RE→NFA translator [19]). Nodes are immutable and shared; the whole AST is
// a DAG of `RePtr`. Character classes are sets of bytes so the automata
// layer can map them onto dense symbol classes.
#pragma once

#include <bitset>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rispar {

/// A set of input bytes; regex literals are byte classes, e.g. [a-z].
using ByteSet = std::bitset<256>;

enum class ReKind : std::uint8_t {
  kEmpty,     ///< ∅ — matches nothing (absorbing for concat, unit for alt)
  kEpsilon,   ///< ε — matches only the empty string
  kLiteral,   ///< one byte out of a byte class
  kConcat,    ///< r1 r2 ... rk in sequence
  kAlternate, ///< r1 | r2 | ... | rk
  kStar,      ///< r*
  kPlus,      ///< r+
  kOptional,  ///< r?
  kRepeat,    ///< r{min,max}; max < 0 means unbounded (r{min,})
};

struct ReNode;
using RePtr = std::shared_ptr<const ReNode>;

struct ReNode {
  ReKind kind;
  ByteSet bytes;               ///< kLiteral only
  std::vector<RePtr> children; ///< kConcat/kAlternate: >=2; unary ops: ==1
  int min = 0, max = 0;        ///< kRepeat bounds

  explicit ReNode(ReKind k) : kind(k) {}
};

/// Factory helpers. Constructors normalize trivially (flatten nested
/// concat/alt, drop epsilon in concat, absorb empty) so downstream passes
/// can rely on a canonical-ish shape; the full simplifier lives in
/// simplify.hpp.
RePtr re_empty();
RePtr re_epsilon();
RePtr re_literal(const ByteSet& bytes);
RePtr re_byte(unsigned char byte);
/// Byte class covering the inclusive range [lo, hi].
RePtr re_range(unsigned char lo, unsigned char hi);
/// Any byte ('.' with "dot matches all" semantics; recognition is whole-input).
RePtr re_any();
RePtr re_concat(std::vector<RePtr> parts);
RePtr re_alternate(std::vector<RePtr> parts);
RePtr re_star(RePtr inner);
RePtr re_plus(RePtr inner);
RePtr re_optional(RePtr inner);
RePtr re_repeat(RePtr inner, int min, int max);
/// Literal string: concat of single-byte literals.
RePtr re_string(const std::string& text);

/// True iff the language of `node` contains the empty string.
bool re_nullable(const RePtr& node);

/// Number of AST nodes (size metric used by the random generator and tests).
std::size_t re_size(const RePtr& node);

/// Number of literal positions (= Glushkov NFA states minus one).
std::size_t re_positions(const RePtr& node);

}  // namespace rispar
