// Pretty-printer producing a pattern string that parse_regex() accepts and
// that denotes the same language (round-trip property-tested).
#pragma once

#include <string>

#include "regex/ast.hpp"

namespace rispar {

std::string regex_to_string(const RePtr& node);

/// Renders a byte class in [...] / escaped form (exposed for diagnostics).
std::string byteset_to_string(const ByteSet& bytes);

}  // namespace rispar
