#include "bundle/mapped_bundle.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <system_error>

#include "util/governance.hpp"

namespace rispar::bundle {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ValidationError("bundle: " + what);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), "bundle: " + what);
}

}  // namespace

MappedBundle::~MappedBundle() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

std::shared_ptr<const MappedBundle> MappedBundle::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fstat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(FileHeader)) {
    ::close(fd);
    fail(path + ": " + std::to_string(size) + " bytes is smaller than the " +
         std::to_string(sizeof(FileHeader)) + "-byte header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);  // the mapping holds its own reference to the file
  if (map == MAP_FAILED) {
    errno = saved;
    throw_errno("mmap " + path);
  }

  // shared_ptr<MappedBundle> so a validation throw unmaps via the dtor.
  std::shared_ptr<MappedBundle> bundle(new MappedBundle());
  bundle->path_ = path;
  bundle->map_ = map;
  bundle->map_bytes_ = size;
  bundle->data_ = static_cast<const unsigned char*>(map);
  bundle->size_ = size;
  bundle->validate();
  return bundle;
}

std::shared_ptr<const MappedBundle> MappedBundle::from_memory(std::string_view bytes) {
  std::shared_ptr<MappedBundle> bundle(new MappedBundle());
  bundle->owned_.resize((bytes.size() + sizeof(std::uint64_t) - 1) /
                        sizeof(std::uint64_t));
  if (!bytes.empty())
    std::memcpy(bundle->owned_.data(), bytes.data(), bytes.size());
  bundle->data_ = reinterpret_cast<const unsigned char*>(bundle->owned_.data());
  bundle->size_ = bytes.size();
  bundle->validate();
  return bundle;
}

void MappedBundle::validate() {
  if (size_ < sizeof(FileHeader))
    fail(std::to_string(size_) + " bytes is smaller than the " +
         std::to_string(sizeof(FileHeader)) + "-byte header");
  std::memcpy(&header_, data_, sizeof(FileHeader));

  if (std::memcmp(header_.magic, kMagic.data(), kMagic.size()) != 0)
    fail("bad magic (not a .rpb bundle)");
  if (header_.version != kFormatVersion)
    fail("format version " + std::to_string(header_.version) +
         " (this build reads version " + std::to_string(kFormatVersion) + ")");
  if (header_.header_bytes != sizeof(FileHeader))
    fail("header claims " + std::to_string(header_.header_bytes) +
         " header bytes, expected " + std::to_string(sizeof(FileHeader)));

  FileHeader zeroed = header_;
  zeroed.header_checksum = 0;
  if (checksum64(&zeroed, sizeof zeroed) != header_.header_checksum)
    fail("header checksum mismatch");
  if (header_.file_bytes != size_)
    fail("header claims " + std::to_string(header_.file_bytes) +
         " file bytes, mapped " + std::to_string(size_) + " (truncated copy?)");

  // Directory bounds. The count caps keep the size arithmetic far from
  // overflow; a real bundle is nowhere near either limit.
  if (header_.pattern_count > (1u << 20) || header_.section_count > (1u << 24))
    fail("implausible directory counts");
  const std::uint64_t directory_bytes =
      std::uint64_t{header_.pattern_count} * sizeof(PatternEntry) +
      std::uint64_t{header_.section_count} * sizeof(SectionEntry);
  const std::uint64_t directory_end = sizeof(FileHeader) + directory_bytes;
  if (directory_end > size_) fail("directory extends past end of file");
  if (checksum64(data_ + sizeof(FileHeader), directory_bytes) !=
      header_.directory_checksum)
    fail("directory checksum mismatch");

  patterns_.resize(header_.pattern_count);
  sections_.resize(header_.section_count);
  if (header_.pattern_count != 0)
    std::memcpy(patterns_.data(), data_ + sizeof(FileHeader),
                header_.pattern_count * sizeof(PatternEntry));
  if (header_.section_count != 0)
    std::memcpy(sections_.data(), data_ + directory_end - header_.section_count *
                                              sizeof(SectionEntry),
                header_.section_count * sizeof(SectionEntry));

  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const SectionEntry& section = sections_[i];
    const std::string name = "section " + std::to_string(i) + " (" +
                             section_type_name(static_cast<SectionType>(section.type)) +
                             ")";
    if (section.offset % kSectionAlign != 0) fail(name + ": unaligned offset");
    if (section.offset < directory_end || section.offset > size_ ||
        section.bytes > size_ - section.offset)
      fail(name + ": payload out of bounds");
    if (checksum64(data_ + section.offset, section.bytes) != section.checksum)
      fail(name + ": payload checksum mismatch");
  }
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const PatternEntry& entry = patterns_[i];
    if (entry.first_section > sections_.size() ||
        entry.section_count > sections_.size() - entry.first_section)
      fail("pattern " + std::to_string(i) + ": section range out of bounds");
  }
}

const PatternEntry& MappedBundle::pattern(std::uint32_t index) const {
  if (index >= patterns_.size())
    fail("pattern index " + std::to_string(index) + " out of range (bundle has " +
         std::to_string(patterns_.size()) + ")");
  return patterns_[index];
}

std::span<const SectionEntry> MappedBundle::sections(std::uint32_t index) const {
  const PatternEntry& entry = pattern(index);
  return {sections_.data() + entry.first_section, entry.section_count};
}

const SectionEntry* MappedBundle::find_section(std::uint32_t index,
                                               SectionType type) const {
  for (const SectionEntry& section : sections(index))
    if (section.type == static_cast<std::uint32_t>(type)) return &section;
  return nullptr;
}

std::string_view MappedBundle::source(std::uint32_t index) const {
  const SectionEntry* section = find_section(index, SectionType::kSource);
  if (section == nullptr) return {};
  return {reinterpret_cast<const char*>(payload(*section)), section->bytes};
}

bool MappedBundle::source_is_regex(std::uint32_t index) const {
  return (pattern(index).flags & kPatternSourceIsRegex) != 0;
}

}  // namespace rispar::bundle
