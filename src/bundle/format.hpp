// The rispar binary bundle (.rpb) — the zero-copy deployment format.
//
// PR 3's text serialization (automata/serialize.*) is the interchange
// layer: line-oriented, hand-editable, re-derives the RI-DFA and re-packs
// every table on load. This format is the fleet-startup fast path the
// ROADMAP's item 2 asks for: every section is laid out exactly as the
// runtime consumes it, so Pattern::load_mapped() validates checksums and
// ADOPTS the pages in place instead of parsing anything. In particular the
// width-packed symbol-major tables (automata/packed_table.hpp) are stored
// verbatim — symbol-major entry order, narrowest-width encoding, the
// kGatherSlackEntries sentinel tail for the AVX2 dword over-reads, 64-byte
// (cache-line) alignment — so the SIMD kernels gather straight out of the
// file mapping and N fleet processes share one set of page-cache pages.
//
// ## Layout
//
//   FileHeader                                  (64 bytes)
//   PatternEntry[pattern_count]                 (32 bytes each)
//   SectionEntry[section_count]                 (32 bytes each)
//   ...section payloads, each 64-byte aligned...
//
// A bundle holds any number of patterns (a whole serving manifest ships as
// one file); each PatternEntry names a contiguous slice of the section
// table. All integers are little-endian and the format is only written or
// read on little-endian hosts (statically asserted) — the bundle is
// ISA-independent beyond that: widths, slack entries and alignment do not
// depend on AVX2, so a bundle built on a native leg loads on the portable
// one (CI verifies this).
//
// ## Integrity
//
// The header carries its own checksum64, the directory (pattern + section
// tables) a second one, and every section payload a third.
// MappedBundle::open() validates all of them before any pattern
// materializes, so random corruption and truncation surface as a typed
// ValidationError, never as a wild read (fuzzed in tests/test_fuzz.cpp).
// checksum64 is a 4-lane FNV-1a variant: lanes over 8-byte words hide the
// multiply latency so validating a multi-megabyte bundle runs at memory
// speed instead of one byte per multiply — cold-start time is the whole
// point of this format.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace rispar::bundle {

static_assert(std::endian::native == std::endian::little,
              "the .rpb bundle format is defined little-endian; big-endian "
              "hosts need a byte-swapping loader that does not exist yet");

inline constexpr std::array<unsigned char, 8> kMagic = {'r', 'i', 's', 'p',
                                                        'a', 'r', 'b', 'f'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Every section payload starts on a cache-line boundary, which also covers
/// the 8-byte alignment the u64 arrays inside the payloads need.
inline constexpr std::size_t kSectionAlign = 64;

enum class SectionType : std::uint32_t {
  kSource = 1,          ///< UTF-8 provenance string (regex or a display name)
  kSymbolMap = 2,       ///< 256 × i32 byte → symbol table (the pattern's map)
  kNfa = 3,             ///< the ε-free trimmed NFA (source of truth)
  kMinDfa = 4,          ///< minimal DFA, dense i32 state-major table
  kMinDfaPacked = 5,    ///< its width-packed symbol-major copy, slack included
  kRidfaDfa = 6,        ///< the RI-DFA's deterministic machine
  kRidfaPacked = 7,     ///< its packed copy
  kRidfaAux = 8,        ///< contents/singleton/interface/start of the RI-DFA
  kSearcherMap = 9,     ///< the Σ*p searcher's all-bytes SymbolMap
  kSearcherDfa = 10,    ///< the Σ*p searcher DFA (count/find/streaming find)
  kSearcherPacked = 11, ///< its packed copy
  kSfa = 12,            ///< SFA dimensions + all-dead state (header only)
  kSfaPacked = 13,      ///< δ_SFA, packed — the SFA's only transition table
  kSfaMappings = 14,    ///< the mappings, packed with SFA-state-major columns
};

const char* section_type_name(SectionType type);

// PatternEntry::flags bits.
inline constexpr std::uint32_t kPatternHasSearcher = 1u << 0;
inline constexpr std::uint32_t kPatternHasSfa = 1u << 1;
/// The kSource section is the compiling regex (rispar_bundle verify --deep
/// recompiles it and cross-checks); unset = an informational display name.
inline constexpr std::uint32_t kPatternSourceIsRegex = 1u << 2;

struct FileHeader {
  unsigned char magic[8];
  std::uint32_t version;
  std::uint32_t header_bytes;        ///< sizeof(FileHeader)
  std::uint64_t file_bytes;          ///< total size; a torn copy fails fast
  std::uint32_t pattern_count;
  std::uint32_t section_count;
  std::uint64_t directory_checksum;  ///< checksum64 over both directory tables
  std::uint64_t header_checksum;     ///< checksum64 over this struct, field zeroed
  unsigned char reserved[16];
};
static_assert(sizeof(FileHeader) == 64);

struct PatternEntry {
  std::uint32_t first_section;  ///< index into the section table
  std::uint32_t section_count;  ///< contiguous run of sections
  std::uint32_t flags;
  std::int32_t max_subset_states;  ///< PatternLimits the pattern compiled with
  std::int32_t sfa_probe_budget;   ///< budget of the embedded SFA (0 = none)
  std::uint32_t reserved0;
  std::uint64_t reserved1;
};
static_assert(sizeof(PatternEntry) == 32);

struct SectionEntry {
  std::uint32_t type;      ///< SectionType
  std::uint32_t reserved;
  std::uint64_t offset;    ///< absolute, kSectionAlign-aligned
  std::uint64_t bytes;     ///< payload length (no padding)
  std::uint64_t checksum;  ///< checksum64 of the payload
};
static_assert(sizeof(SectionEntry) == 32);

// ------------------------------------------------ section payload headers
// Each payload starts with a fixed-size header followed by raw arrays; the
// arrays' offsets are all 8-byte aligned by construction (headers are
// multiples of 8, i32 arrays come in even-length pairs where needed).

/// kMinDfa / kRidfaDfa / kSearcherDfa payload:
///   DfaSectionHeader | u64 finals[finals_words] | i32 table[table_entries]
struct DfaSectionHeader {
  std::int32_t num_states;
  std::int32_t num_symbols;
  std::int32_t initial;
  std::uint32_t finals_words;
  std::uint64_t table_entries;  ///< num_states × num_symbols
  std::uint64_t reserved;
};
static_assert(sizeof(DfaSectionHeader) == 32);

/// kNfa payload:
///   NfaSectionHeader | u64 finals[finals_words]
///   | {i32 from, i32 symbol, i32 target}[num_edges]   (state-major, sorted)
struct NfaSectionHeader {
  std::int32_t num_states;
  std::int32_t num_symbols;
  std::int32_t initial;
  std::uint32_t finals_words;
  std::uint64_t num_edges;
  std::uint64_t reserved;
};
static_assert(sizeof(NfaSectionHeader) == 32);

/// k*Packed payload: PackedSectionHeader | entries. The header is one full
/// cache line so the entries land on the section's 64-byte alignment — the
/// kernels' gather base. `total_entries` INCLUDES the kGatherSlackEntries
/// sentinel tail; the stored bytes are bit-identical to what
/// PackedTable::build produces, which is what makes in-place adoption legal.
struct PackedSectionHeader {
  std::uint32_t width;        ///< TableWidth
  std::uint32_t entry_bytes;  ///< 1, 2 or 4 — must agree with width
  std::int32_t num_states;
  std::int32_t num_symbols;
  std::uint64_t total_entries;
  unsigned char reserved[40];
};
static_assert(sizeof(PackedSectionHeader) == 64);

/// kRidfaAux payload:
///   RidfaAuxSectionHeader | i32 singleton[num_nfa_states]
///   | i32 interface[num_nfa_states] | u64 content_offsets[num_states + 1]
///   | i32 contents[contents_total]
/// (singleton+interface together are 8·num_nfa_states bytes, keeping the
/// u64 offsets aligned.)
struct RidfaAuxSectionHeader {
  std::int32_t num_nfa_states;
  std::int32_t num_states;
  std::int32_t start;
  std::uint32_t reserved0;
  std::uint64_t contents_total;
  std::uint64_t reserved1;
};
static_assert(sizeof(RidfaAuxSectionHeader) == 32);

/// kSfa payload: SfaSectionHeader, nothing else. The machine's two arrays
/// ship as companion packed sections, both adopted in place:
///   kSfaPacked   — δ_SFA (num_states × num_symbols, never dead)
///   kSfaMappings — the mappings, a PackedTable under the transposed
///                  identification Sfa::mappings() documents: the section's
///                  "num_states" is map_width (mapping entries are
///                  chunk-automaton states, which bound the width — almost
///                  always a byte) and its "num_symbols" is the SFA's
///                  num_states, so each column is one mapping row. The SFA
///                  is the explosion-prone machine and its mappings dominate
///                  a bundle; adopting them from the file is what makes a
///                  mapped cold start allocation-free.
struct SfaSectionHeader {
  std::int32_t num_states;
  std::int32_t num_symbols;
  std::int32_t all_dead;       ///< valid when has_all_dead
  std::int32_t map_width;      ///< chunk-automaton states per mapping
  std::uint32_t has_all_dead;
  std::uint32_t reserved0;
  std::uint64_t reserved1;
};
static_assert(sizeof(SfaSectionHeader) == 32);

/// The bundle checksum: a 4-lane FNV-1a variant over 8-byte words (length
/// mixed in, scalar FNV-1a tail). Fast, dependency-free, and strong enough
/// for the threat model — accidental corruption and torn copies, not an
/// adversary (docs/api.md, "Bundles and the compile cache").
std::uint64_t checksum64(const void* data, std::size_t bytes);

/// `offset` rounded up to the next kSectionAlign boundary.
inline std::uint64_t align_up(std::uint64_t offset) {
  return (offset + (kSectionAlign - 1)) & ~static_cast<std::uint64_t>(kSectionAlign - 1);
}

}  // namespace rispar::bundle
