// MappedBundle — a validated, shared-ownership view of one .rpb file.
//
// open() mmaps the file read-only, validates the header, directory and
// every per-section checksum (throwing ValidationError on any mismatch —
// see format.hpp for the integrity model), and hands back a
// shared_ptr<const MappedBundle>. Everything loaded out of the bundle —
// every Pattern, every adopted PackedTable view — co-owns that pointer, so
// the mapping outlives the last machine referencing it regardless of
// destruction order (Pattern outlives Engine, bundle outlives Pattern;
// property-tested in tests/test_bundle.cpp).
//
// from_memory() serves the same validated view over an owned byte buffer:
// the fuzz harness corrupts bundles in memory without touching the
// filesystem, and tests round-trip without temp files.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bundle/format.hpp"

namespace rispar::bundle {

class MappedBundle {
 public:
  MappedBundle(const MappedBundle&) = delete;
  MappedBundle& operator=(const MappedBundle&) = delete;
  ~MappedBundle();

  /// mmaps and validates `path`. Throws ValidationError on any structural
  /// or checksum failure and std::system_error when the file cannot be
  /// opened or mapped.
  static std::shared_ptr<const MappedBundle> open(const std::string& path);

  /// Validates a bundle held in memory (copied into aligned storage).
  /// Throws ValidationError exactly like open().
  static std::shared_ptr<const MappedBundle> from_memory(std::string_view bytes);

  const FileHeader& header() const { return header_; }
  std::uint32_t pattern_count() const { return header_.pattern_count; }
  /// The file path this bundle was mapped from ("" for from_memory).
  const std::string& path() const { return path_; }

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// Directory entry of pattern `index`; throws ValidationError out of range.
  const PatternEntry& pattern(std::uint32_t index) const;
  /// The section-table slice belonging to pattern `index`.
  std::span<const SectionEntry> sections(std::uint32_t index) const;
  /// First section of the given type within pattern `index`, or nullptr.
  const SectionEntry* find_section(std::uint32_t index, SectionType type) const;

  /// Payload bytes of a directory entry (checksummed at open time).
  const unsigned char* payload(const SectionEntry& section) const {
    return data_ + section.offset;
  }

  /// The kSource string of pattern `index` ("" when the section is absent).
  std::string_view source(std::uint32_t index) const;
  /// Whether that source is the compiling regex (kPatternSourceIsRegex).
  bool source_is_regex(std::uint32_t index) const;

 private:
  MappedBundle() = default;
  void validate();  ///< throws ValidationError; fills header_/directory

  std::string path_;
  /// from_memory storage: u64 words so data_ is 8-byte aligned even for
  /// buffers too small for the heap (SSO strings give no such guarantee).
  std::vector<std::uint64_t> owned_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;  ///< munmap target when open()-mapped
  std::size_t map_bytes_ = 0;

  FileHeader header_{};
  /// Validated copies of the directory tables (memcpy'd out of the mapping
  /// — tiny, and dodges every alignment/aliasing question for the part of
  /// the file we re-walk constantly; payloads stay zero-copy).
  std::vector<PatternEntry> patterns_;
  std::vector<SectionEntry> sections_;
};

}  // namespace rispar::bundle
