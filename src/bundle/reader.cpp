#include "bundle/reader.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "bundle/restore.hpp"
#include "util/governance.hpp"

namespace rispar::bundle {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ValidationError("bundle: " + what);
}

/// Bounds-checked cursor over one section's payload.
struct PayloadCursor {
  const unsigned char* data;
  std::size_t size;
  std::string name;
  std::size_t pos = 0;

  template <typename T>
  T read() {
    T value;
    std::memcpy(&value, raw(sizeof(T)), sizeof(T));
    return value;
  }

  const unsigned char* raw(std::size_t bytes) {
    if (bytes > size - pos) fail(name + ": truncated payload");
    const unsigned char* at = data + pos;
    pos += bytes;
    return at;
  }

  std::vector<State> states(std::size_t count) {
    std::vector<State> out(count);
    if (count != 0) std::memcpy(out.data(), raw(count * sizeof(State)), count * sizeof(State));
    return out;
  }

  void done() {
    if (pos != size) fail(name + ": " + std::to_string(size - pos) + " trailing bytes");
  }
};

PayloadCursor cursor_of(const MappedBundle& bundle, const SectionEntry& section) {
  return {bundle.payload(section), section.bytes,
          std::string("section ") +
              section_type_name(static_cast<SectionType>(section.type))};
}

const SectionEntry& require(const MappedBundle& bundle, std::uint32_t index,
                            SectionType type) {
  const SectionEntry* section = bundle.find_section(index, type);
  if (section == nullptr)
    fail("pattern " + std::to_string(index) + ": missing " +
         section_type_name(type) + " section");
  return *section;
}

SymbolMap load_symbol_map(const MappedBundle& bundle, const SectionEntry& section) {
  if (section.bytes != 256 * sizeof(std::int32_t))
    fail("symbol map section must be 1024 bytes, has " +
         std::to_string(section.bytes));
  std::array<std::int32_t, 256> table;
  std::memcpy(table.data(), bundle.payload(section), sizeof table);
  try {
    return SymbolMap::from_table(table);
  } catch (const std::exception& e) {
    fail(std::string("bad symbol map: ") + e.what());
  }
}

Bitset load_finals(PayloadCursor& cursor, std::uint32_t words,
                   std::int32_t num_states) {
  const auto universe = static_cast<std::size_t>(num_states);
  if (words != (universe + 63) / 64)
    fail(cursor.name + ": finals word count does not match state count");
  Bitset finals(universe);
  for (std::uint32_t w = 0; w < words; ++w) {
    const auto word = cursor.read<std::uint64_t>();
    for (std::uint64_t bits = word; bits != 0; bits &= bits - 1) {
      const auto bit = static_cast<std::size_t>(w) * 64 +
                       static_cast<std::size_t>(std::countr_zero(bits));
      if (bit >= universe) fail(cursor.name + ": finals bit out of range");
      finals.set(bit);
    }
  }
  return finals;
}

// Validation of bulk state arrays is branchless — a fault accumulator OR'd
// across the loop, checked once at the end — so the compiler vectorizes it
// and multi-megabyte sections validate at memory speed. The unsigned cast
// folds the negative and the >= limit case into one compare.
void check_states(const std::vector<State>& states, std::int32_t limit,
                  bool allow_dead, const std::string& what) {
  const auto bound = static_cast<std::uint32_t>(limit);
  std::uint32_t bad = 0;
  if (allow_dead) {
    for (const State s : states)
      bad |= static_cast<std::uint32_t>(s != kDeadState &&
                                        static_cast<std::uint32_t>(s) >= bound);
  } else {
    for (const State s : states)
      bad |= static_cast<std::uint32_t>(static_cast<std::uint32_t>(s) >= bound);
  }
  if (bad != 0) fail(what + ": state id out of range");
}

Dfa load_dense_dfa(const MappedBundle& bundle, const SectionEntry& section,
                   SymbolMap map) {
  PayloadCursor cursor = cursor_of(bundle, section);
  const auto header = cursor.read<DfaSectionHeader>();
  const std::int32_t ns = header.num_states;
  const std::int32_t k = header.num_symbols;
  if (ns < 1 || ns > (1 << 26)) fail(cursor.name + ": implausible state count");
  if (k != map.num_symbols())
    fail(cursor.name + ": symbol count disagrees with the symbol map");
  if (header.table_entries !=
      static_cast<std::uint64_t>(ns) * static_cast<std::uint64_t>(k))
    fail(cursor.name + ": table size does not match dimensions");
  if (header.initial < 0 || header.initial >= ns)
    fail(cursor.name + ": initial state out of range");
  Bitset finals = load_finals(cursor, header.finals_words, ns);
  std::vector<State> table = cursor.states(static_cast<std::size_t>(header.table_entries));
  cursor.done();
  check_states(table, ns, /*allow_dead=*/true, cursor.name + " table");
  return BundleRestoreAccess::restore_dfa(k, std::move(map), header.initial,
                                          std::move(finals), std::move(table));
}

/// Validates a packed section against its companion machine and returns an
/// in-place view over the mapping. The entry scan (sentinel or in-range
/// state) is what lets the kernels run the adopted bytes with the same
/// no-bounds-check inner loops they use on tables they built. Pass
/// `allow_dead = false` for total machines (δ_SFA): their body entries are
/// used as unchecked indexes downstream, so a sentinel is corruption — the
/// gather-slack tail may always carry sentinels.
PackedTable adopt_packed(const std::shared_ptr<const MappedBundle>& bundle,
                         const SectionEntry& section, std::int32_t num_states,
                         std::int32_t num_symbols, bool allow_dead = true) {
  PayloadCursor cursor = cursor_of(*bundle, section);
  const auto header = cursor.read<PackedSectionHeader>();
  const TableWidth expected_width = num_states < 0xFF    ? TableWidth::kU8
                                    : num_states < 0xFFFF ? TableWidth::kU16
                                                          : TableWidth::kI32;
  if (header.width != static_cast<std::uint32_t>(expected_width))
    fail(cursor.name + ": width is not the canonical width for " +
         std::to_string(num_states) + " states");
  const std::uint32_t entry_bytes = header.width == 0 ? 1 : header.width == 1 ? 2 : 4;
  if (header.entry_bytes != entry_bytes)
    fail(cursor.name + ": entry size does not match width");
  if (header.num_states != num_states || header.num_symbols != num_symbols)
    fail(cursor.name + ": dimensions disagree with the dense table");
  const std::uint64_t total =
      static_cast<std::uint64_t>(num_states) * static_cast<std::uint64_t>(num_symbols) +
      kGatherSlackEntries;
  if (header.total_entries != total)
    fail(cursor.name + ": entry count does not match dimensions + gather slack");
  const unsigned char* entries = cursor.raw(static_cast<std::size_t>(total) * entry_bytes);
  cursor.done();

  // Entry scan, blocked + branchless so it vectorizes: a packed table can
  // be hundreds of kilobytes and this runs on every load. With
  // allow_dead = false the body check degenerates to a plain range check —
  // every width's sentinel is >= any canonical-width state count.
  const auto scan = [&]<typename T>(std::type_identity<T>) {
    constexpr T kDead = PackedDead<T>::value;
    const auto bound = static_cast<std::uint32_t>(num_states);
    const std::uint64_t body = total - kGatherSlackEntries;
    std::uint32_t bad = 0;
    T block[256];
    std::uint64_t i = 0;
    if (allow_dead) {
      for (; i + 256 <= body; i += 256) {
        std::memcpy(block, entries + i * sizeof(T), sizeof block);
        for (const T v : block)
          bad |= static_cast<std::uint32_t>(
              v != kDead && static_cast<std::uint32_t>(v) >= bound);
      }
    } else {
      for (; i + 256 <= body; i += 256) {
        std::memcpy(block, entries + i * sizeof(T), sizeof block);
        for (const T v : block)
          bad |= static_cast<std::uint32_t>(static_cast<std::uint32_t>(v) >= bound);
      }
    }
    const auto check_one = [&](std::uint64_t at, bool dead_ok) {
      T v;
      std::memcpy(&v, entries + at * sizeof(T), sizeof(T));
      bad |= static_cast<std::uint32_t>(
          (!dead_ok || v != kDead) && static_cast<std::uint32_t>(v) >= bound);
    };
    for (; i < body; ++i) check_one(i, allow_dead);
    for (std::uint64_t at = body; at < total; ++at) check_one(at, true);
    if (bad != 0) fail(cursor.name + ": packed entry out of range");
  };
  switch (expected_width) {
    case TableWidth::kU8:
      scan(std::type_identity<std::uint8_t>{});
      break;
    case TableWidth::kU16:
      scan(std::type_identity<std::uint16_t>{});
      break;
    case TableWidth::kI32:
      scan(std::type_identity<std::int32_t>{});
      break;
  }
  return PackedTable::adopt(expected_width, num_states, num_symbols, entries,
                            std::shared_ptr<const void>(bundle));
}

/// Dense DFA + adopted packed view, the pairing every DFA in a bundle uses.
Dfa load_dfa_with_packed(const std::shared_ptr<const MappedBundle>& bundle,
                         const SectionEntry& dense, const SectionEntry& packed,
                         SymbolMap map) {
  Dfa dfa = load_dense_dfa(*bundle, dense, std::move(map));
  dfa.adopt_packed(std::make_shared<const PackedTable>(
      adopt_packed(bundle, packed, dfa.num_states(), dfa.num_symbols())));
  return dfa;
}

Nfa load_nfa(const MappedBundle& bundle, const SectionEntry& section,
             const SymbolMap& map) {
  PayloadCursor cursor = cursor_of(bundle, section);
  const auto header = cursor.read<NfaSectionHeader>();
  const std::int32_t ns = header.num_states;
  const std::int32_t k = header.num_symbols;
  if (ns < 1 || ns > (1 << 26)) fail(cursor.name + ": implausible state count");
  if (k != map.num_symbols())
    fail(cursor.name + ": symbol count disagrees with the symbol map");
  if (header.initial < 0 || header.initial >= ns)
    fail(cursor.name + ": initial state out of range");
  Bitset finals = load_finals(cursor, header.finals_words, ns);

  Nfa nfa(k, map);
  for (State q = 0; q < ns; ++q)
    nfa.add_state(finals.test(static_cast<std::size_t>(q)));
  nfa.set_initial(header.initial);
  for (std::uint64_t e = 0; e < header.num_edges; ++e) {
    std::int32_t triple[3];
    std::memcpy(triple, cursor.raw(sizeof triple), sizeof triple);
    if (triple[0] < 0 || triple[0] >= ns || triple[2] < 0 || triple[2] >= ns)
      fail(cursor.name + ": edge endpoint out of range");
    if (triple[1] < 0 || triple[1] >= k)
      fail(cursor.name + ": edge symbol out of range");
    nfa.add_edge(triple[0], triple[1], triple[2]);
  }
  cursor.done();
  return nfa;
}

Ridfa load_ridfa(const std::shared_ptr<const MappedBundle>& bundle,
                 std::uint32_t index, const SymbolMap& map,
                 std::int32_t num_nfa_states) {
  Dfa dfa = load_dfa_with_packed(bundle, require(*bundle, index, SectionType::kRidfaDfa),
                                 require(*bundle, index, SectionType::kRidfaPacked), map);
  const std::int32_t np = dfa.num_states();

  PayloadCursor cursor =
      cursor_of(*bundle, require(*bundle, index, SectionType::kRidfaAux));
  const auto header = cursor.read<RidfaAuxSectionHeader>();
  if (header.num_nfa_states != num_nfa_states)
    fail(cursor.name + ": NFA state count disagrees with the NFA section");
  if (header.num_states != np)
    fail(cursor.name + ": state count disagrees with the RI-DFA table");
  if (header.start < 0 || header.start >= np)
    fail(cursor.name + ": start state out of range");
  const auto nq = static_cast<std::size_t>(num_nfa_states);
  std::vector<State> singleton = cursor.states(nq);
  std::vector<State> interface_fn = cursor.states(nq);
  check_states(singleton, np, /*allow_dead=*/false, cursor.name + " singleton");
  check_states(interface_fn, np, /*allow_dead=*/false, cursor.name + " interface");

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(np) + 1);
  std::memcpy(offsets.data(), cursor.raw(offsets.size() * sizeof(std::uint64_t)),
              offsets.size() * sizeof(std::uint64_t));
  if (offsets.front() != 0 || offsets.back() != header.contents_total)
    fail(cursor.name + ": contents offsets do not span the contents array");
  std::vector<std::vector<State>> contents(static_cast<std::size_t>(np));
  for (std::size_t p = 0; p < contents.size(); ++p) {
    if (offsets[p + 1] < offsets[p])
      fail(cursor.name + ": contents offsets not monotone");
    const auto count = static_cast<std::size_t>(offsets[p + 1] - offsets[p]);
    contents[p] = cursor.states(count);
    for (std::size_t i = 0; i < count; ++i) {
      const State q = contents[p][i];
      if (q < 0 || q >= num_nfa_states)
        fail(cursor.name + ": subset label out of range");
      if (i > 0 && contents[p][i - 1] >= q)
        fail(cursor.name + ": subset label not sorted");
    }
  }
  cursor.done();
  return BundleRestoreAccess::restore_ridfa(std::move(dfa), std::move(contents),
                                            std::move(singleton),
                                            std::move(interface_fn), header.start,
                                            num_nfa_states);
}

Sfa load_sfa(const std::shared_ptr<const MappedBundle>& bundle, std::uint32_t index,
             const Dfa& min_dfa) {
  PayloadCursor cursor = cursor_of(*bundle, require(*bundle, index, SectionType::kSfa));
  const auto header = cursor.read<SfaSectionHeader>();
  const std::int32_t ns = header.num_states;
  const std::int32_t k = header.num_symbols;
  if (ns < 1 || ns > (1 << 26)) fail(cursor.name + ": implausible state count");
  if (k != min_dfa.num_symbols())
    fail(cursor.name + ": symbol count disagrees with the chunk automaton");
  if (header.map_width != min_dfa.num_states())
    fail(cursor.name + ": mapping width disagrees with the chunk automaton");
  if (header.has_all_dead > 1) fail(cursor.name + ": bad all_dead flag");
  if (header.has_all_dead == 1 && (header.all_dead < 0 || header.all_dead >= ns))
    fail(cursor.name + ": all_dead state out of range");
  cursor.done();

  // Both SFA arrays are adopted straight out of the mapping — the mappings
  // dominate a bundle's bytes, so materializing them would be most of a
  // cold start. δ_SFA gets allow_dead = false: it is total, and Sfa::run
  // uses its arrival states as unchecked indexes into the mappings.
  PackedTable packed =
      adopt_packed(bundle, require(*bundle, index, SectionType::kSfaPacked), ns, k,
                   /*allow_dead=*/false);
  // The mappings section uses the transposed identification Sfa::mappings()
  // documents: "states" = map_width (the value bound), "symbols" = ns.
  PackedTable mappings =
      adopt_packed(bundle, require(*bundle, index, SectionType::kSfaMappings),
                   header.map_width, ns);
  return BundleRestoreAccess::restore_sfa(
      k, std::move(packed), std::move(mappings),
      header.has_all_dead == 1 ? std::optional<State>(header.all_dead)
                               : std::nullopt);
}

}  // namespace

LoadedPattern load_pattern(const std::shared_ptr<const MappedBundle>& bundle,
                           std::uint32_t index) {
  const PatternEntry& entry = bundle->pattern(index);
  LoadedPattern result;
  result.source = std::string(bundle->source(index));
  result.source_is_regex = (entry.flags & kPatternSourceIsRegex) != 0;
  result.max_subset_states = entry.max_subset_states < 0 ? 0 : entry.max_subset_states;

  const SymbolMap map =
      load_symbol_map(*bundle, require(*bundle, index, SectionType::kSymbolMap));
  result.nfa = load_nfa(*bundle, require(*bundle, index, SectionType::kNfa), map);
  result.min_dfa =
      load_dfa_with_packed(bundle, require(*bundle, index, SectionType::kMinDfa),
                           require(*bundle, index, SectionType::kMinDfaPacked), map);
  result.ridfa = load_ridfa(bundle, index, map, result.nfa.num_states());

  if ((entry.flags & kPatternHasSearcher) != 0) {
    const SymbolMap searcher_map = load_symbol_map(
        *bundle, require(*bundle, index, SectionType::kSearcherMap));
    result.searcher = load_dfa_with_packed(
        bundle, require(*bundle, index, SectionType::kSearcherDfa),
        require(*bundle, index, SectionType::kSearcherPacked), searcher_map);
  }
  if ((entry.flags & kPatternHasSfa) != 0) {
    result.sfa = load_sfa(bundle, index, result.min_dfa);
    result.sfa_probe_budget =
        entry.sfa_probe_budget > 0 ? entry.sfa_probe_budget : result.sfa->num_states();
  }
  return result;
}

}  // namespace rispar::bundle
