// BundleRestoreAccess — the bundle reader's private door into Dfa, Ridfa
// and Sfa.
//
// Loading a bundle must reconstruct machines FIELD-FOR-FIELD: the public
// mutation APIs (add_state/set_transition/...) exist for construction
// algorithms, re-validate per call, and cannot express "install this table
// verbatim". Each class befriends this one struct (the existing
// RidfaBuilderAccess is defined inside ridfa.cpp, so it cannot be reused
// across translation units); the restore functions take fully-formed field
// values and do nothing but move them into place — every invariant is the
// reader's responsibility (src/bundle/reader.cpp validates before calling).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "automata/dfa.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"

namespace rispar {

struct BundleRestoreAccess {
  static Dfa restore_dfa(std::int32_t num_symbols, SymbolMap symbols, State initial,
                         Bitset finals, std::vector<State> table) {
    Dfa dfa;
    dfa.num_symbols_ = num_symbols;
    dfa.symbols_ = std::move(symbols);
    dfa.initial_ = initial;
    dfa.finals_ = std::move(finals);
    dfa.table_ = std::move(table);
    return dfa;
  }

  /// `interface_fn` goes through the public set_interface(), which also
  /// re-derives the deduplicated initial-state set.
  static Ridfa restore_ridfa(Dfa dfa, std::vector<std::vector<State>> contents,
                             std::vector<State> singleton,
                             std::vector<State> interface_fn, State start,
                             std::int32_t num_nfa_states) {
    Ridfa ridfa;
    ridfa.dfa_ = std::move(dfa);
    ridfa.contents_ = std::move(contents);
    ridfa.singleton_ = std::move(singleton);
    ridfa.start_ = start;
    ridfa.num_nfa_states_ = num_nfa_states;
    ridfa.set_interface(std::move(interface_fn));
    return ridfa;
  }

  /// Both arrays arrive as PackedTables (typically adopted views into the
  /// mapped bundle): `packed` is δ_SFA, `mappings` the transposed packing
  /// Sfa::mappings() documents — its dimensions also carry the SFA's state
  /// count and map width.
  static Sfa restore_sfa(std::int32_t num_symbols, PackedTable packed,
                         PackedTable mappings, std::optional<State> all_dead) {
    Sfa sfa;
    sfa.num_symbols_ = num_symbols;
    sfa.packed_ = std::move(packed);
    sfa.mappings_ = std::move(mappings);
    sfa.all_dead_ = all_dead;
    return sfa;
  }
};

}  // namespace rispar
