// The consumer side of the .rpb format: materializes one pattern's machine
// family out of a validated MappedBundle.
//
// The contract the acceptance tests assert: NO regex parse, NO subset
// construction, NO table re-pack happens here. Dense tables, finals sets
// and subset labels are memcpy-reconstructed; the width-packed tables —
// the arrays every hot kernel actually reads — are ADOPTED in place as
// views into the mapping (PackedTable::adopt), each view co-owning the
// MappedBundle so copies stay valid on their own. Every count, range and
// cross-section consistency condition is checked before a byte is trusted;
// violations throw ValidationError (the checksums in MappedBundle::open
// already rule out accidental corruption — these checks rule out confused
// or truncated WRITERS, and give the fuzzer a typed failure mode).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "bundle/mapped_bundle.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"

namespace rispar::bundle {

/// One pattern's machines, restored. Pattern::from_bundle moves these into
/// its Compiled block (engine/pattern.cpp) — the searcher/sfa optionals
/// pre-seed the lazy artifacts when the bundle shipped them.
struct LoadedPattern {
  std::string source;
  bool source_is_regex = false;
  std::int32_t max_subset_states = 0;
  Nfa nfa;
  Dfa min_dfa;
  Ridfa ridfa;
  std::optional<Dfa> searcher;
  std::optional<Sfa> sfa;
  std::int32_t sfa_probe_budget = 0;
};

/// Restores pattern `index`. Throws ValidationError on any structural
/// violation. `bundle` is retained by every adopted packed view.
LoadedPattern load_pattern(const std::shared_ptr<const MappedBundle>& bundle,
                           std::uint32_t index);

}  // namespace rispar::bundle
