#include "bundle/format.hpp"

#include <cstring>

namespace rispar::bundle {

const char* section_type_name(SectionType type) {
  switch (type) {
    case SectionType::kSource:
      return "source";
    case SectionType::kSymbolMap:
      return "symbol_map";
    case SectionType::kNfa:
      return "nfa";
    case SectionType::kMinDfa:
      return "min_dfa";
    case SectionType::kMinDfaPacked:
      return "min_dfa_packed";
    case SectionType::kRidfaDfa:
      return "ridfa_dfa";
    case SectionType::kRidfaPacked:
      return "ridfa_packed";
    case SectionType::kRidfaAux:
      return "ridfa_aux";
    case SectionType::kSearcherMap:
      return "searcher_map";
    case SectionType::kSearcherDfa:
      return "searcher_dfa";
    case SectionType::kSearcherPacked:
      return "searcher_packed";
    case SectionType::kSfa:
      return "sfa";
    case SectionType::kSfaPacked:
      return "sfa_packed";
    case SectionType::kSfaMappings:
      return "sfa_mappings";
  }
  return "unknown";
}

std::uint64_t checksum64(const void* data, std::size_t bytes) {
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);

  // Four independent FNV-1a lanes over 8-byte words: each lane is a serial
  // xor-multiply chain, but four chains in flight hide the multiply latency
  // and keep validation at memory speed on multi-megabyte sections.
  std::uint64_t lane0 = kBasis + 1, lane1 = kBasis + 2;
  std::uint64_t lane2 = kBasis + 3, lane3 = kBasis + 4;
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    std::uint64_t words[4];
    std::memcpy(words, p + i, sizeof words);
    lane0 = (lane0 ^ words[0]) * kPrime;
    lane1 = (lane1 ^ words[1]) * kPrime;
    lane2 = (lane2 ^ words[2]) * kPrime;
    lane3 = (lane3 ^ words[3]) * kPrime;
  }

  // Fold the lanes and the length, then absorb the sub-32-byte tail one
  // byte at a time (plain FNV-1a), so every input length hashes uniquely.
  std::uint64_t hash = (kBasis ^ static_cast<std::uint64_t>(bytes)) * kPrime;
  for (const std::uint64_t lane : {lane0, lane1, lane2, lane3})
    hash = (hash ^ lane) * kPrime;
  for (; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

}  // namespace rispar::bundle
