// The producer side of the .rpb format: serializes compiled machines into
// the mmap-ready section layout of format.hpp.
//
// The writer is deliberately below engine/ in the layering — it takes raw
// machine references, not Patterns, so bundle <- automata/core only.
// Pattern::save_bundle and the rispar_bundle CLI assemble PatternSections
// from a compiled Pattern's public accessors.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"

namespace rispar::bundle {

/// Everything the writer serializes for ONE pattern. nfa/min_dfa/ridfa are
/// required; searcher and sfa ship when present (nullptr omits the
/// sections — the mapped pattern rebuilds them lazily, like a text-loaded
/// one). Referenced machines must outlive the write call; their packed
/// tables are built here if not already warm (the ONE place the producer
/// pays the pack so the consumer never does).
struct PatternSections {
  std::string_view source;      ///< regex or display name ("" = no section)
  bool source_is_regex = false;
  std::int32_t max_subset_states = 0;  ///< PatternLimits to restore
  const Nfa* nfa = nullptr;
  const Dfa* min_dfa = nullptr;
  const Ridfa* ridfa = nullptr;
  const Dfa* searcher = nullptr;
  const Sfa* sfa = nullptr;
  std::int32_t sfa_probe_budget = 0;  ///< budget the sfa was built with
};

/// Serializes the patterns into one bundle image (header, directory,
/// aligned checksummed sections — see format.hpp).
std::string write_bundle(std::span<const PatternSections> patterns);

/// write_bundle + atomic file replace (write to `path`.tmp, fsync, rename)
/// so a crashed save never leaves a torn bundle at `path`. Throws
/// std::system_error on I/O failure.
void write_bundle_file(const std::string& path,
                       std::span<const PatternSections> patterns);

}  // namespace rispar::bundle
