#include "bundle/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <system_error>
#include <vector>

#include "bundle/format.hpp"
#include "bundle/mapped_bundle.hpp"

namespace rispar::bundle {

namespace {

void append_raw(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

std::string symbol_map_payload(const SymbolMap& map) {
  std::string payload;
  append_raw(payload, map.raw_table().data(), map.raw_table().size() * sizeof(std::int32_t));
  return payload;
}

void append_finals(std::string& out, const Bitset& finals) {
  append_raw(out, finals.words().data(), finals.words().size() * sizeof(std::uint64_t));
}

std::string dfa_payload(const Dfa& dfa) {
  DfaSectionHeader header{};
  header.num_states = dfa.num_states();
  header.num_symbols = dfa.num_symbols();
  header.initial = dfa.initial();
  header.finals_words = static_cast<std::uint32_t>(dfa.finals().words().size());
  header.table_entries = dfa.table().size();
  std::string payload;
  append_raw(payload, &header, sizeof header);
  append_finals(payload, dfa.finals());
  append_raw(payload, dfa.table().data(), dfa.table().size() * sizeof(State));
  return payload;
}

std::string nfa_payload(const Nfa& nfa) {
  NfaSectionHeader header{};
  header.num_states = nfa.num_states();
  header.num_symbols = nfa.num_symbols();
  header.initial = nfa.initial();
  header.finals_words = static_cast<std::uint32_t>(nfa.finals().words().size());
  header.num_edges = nfa.num_edges();
  std::string payload;
  append_raw(payload, &header, sizeof header);
  append_finals(payload, nfa.finals());
  for (State q = 0; q < nfa.num_states(); ++q)
    for (const NfaEdge& edge : nfa.edges(q)) {
      const std::int32_t triple[3] = {q, edge.symbol, edge.target};
      append_raw(payload, triple, sizeof triple);
    }
  return payload;
}

std::string packed_payload(const PackedTable& packed) {
  PackedSectionHeader header{};
  header.width = static_cast<std::uint32_t>(packed.width());
  header.num_states = packed.num_states();
  header.num_symbols = packed.num_symbols();
  header.total_entries = packed.total_entries();
  const void* entries = nullptr;
  switch (packed.width()) {
    case TableWidth::kU8:
      header.entry_bytes = 1;
      entries = packed.data<std::uint8_t>();
      break;
    case TableWidth::kU16:
      header.entry_bytes = 2;
      entries = packed.data<std::uint16_t>();
      break;
    case TableWidth::kI32:
      header.entry_bytes = 4;
      entries = packed.data<std::int32_t>();
      break;
  }
  std::string payload;
  append_raw(payload, &header, sizeof header);
  append_raw(payload, entries, packed.total_entries() * header.entry_bytes);
  return payload;
}

std::string ridfa_aux_payload(const Ridfa& ridfa) {
  const std::int32_t nq = ridfa.num_nfa_states();
  const std::int32_t np = ridfa.num_states();
  RidfaAuxSectionHeader header{};
  header.num_nfa_states = nq;
  header.num_states = np;
  header.start = ridfa.start_state();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(np) + 1, 0);
  for (State p = 0; p < np; ++p)
    offsets[static_cast<std::size_t>(p) + 1] =
        offsets[static_cast<std::size_t>(p)] + ridfa.contents(p).size();
  header.contents_total = offsets.back();

  std::string payload;
  append_raw(payload, &header, sizeof header);
  for (State q = 0; q < nq; ++q) {
    const State s = ridfa.singleton(q);
    append_raw(payload, &s, sizeof s);
  }
  for (State q = 0; q < nq; ++q) {
    const State s = ridfa.interface_of(q);
    append_raw(payload, &s, sizeof s);
  }
  append_raw(payload, offsets.data(), offsets.size() * sizeof(std::uint64_t));
  for (State p = 0; p < np; ++p)
    append_raw(payload, ridfa.contents(p).data(),
               ridfa.contents(p).size() * sizeof(State));
  return payload;
}

std::string sfa_payload(const Sfa& sfa) {
  SfaSectionHeader header{};
  header.num_states = sfa.num_states();
  header.num_symbols = sfa.num_symbols();
  header.map_width = sfa.map_width();
  header.has_all_dead = sfa.all_dead_state().has_value() ? 1 : 0;
  header.all_dead = sfa.all_dead_state().value_or(kDeadState);

  std::string payload;
  append_raw(payload, &header, sizeof header);
  return payload;
}

}  // namespace

std::string write_bundle(std::span<const PatternSections> patterns) {
  std::vector<PatternEntry> pattern_entries;
  std::vector<SectionEntry> section_entries;
  std::vector<std::string> payloads;

  const auto add = [&](SectionType type, std::string payload) {
    SectionEntry entry{};
    entry.type = static_cast<std::uint32_t>(type);
    entry.bytes = payload.size();
    entry.checksum = checksum64(payload.data(), payload.size());
    section_entries.push_back(entry);
    payloads.push_back(std::move(payload));
  };

  for (const PatternSections& p : patterns) {
    PatternEntry entry{};
    entry.first_section = static_cast<std::uint32_t>(section_entries.size());
    entry.max_subset_states = p.max_subset_states;
    if (!p.source.empty()) {
      add(SectionType::kSource, std::string(p.source));
      if (p.source_is_regex) entry.flags |= kPatternSourceIsRegex;
    }
    add(SectionType::kSymbolMap, symbol_map_payload(p.nfa->symbols()));
    add(SectionType::kNfa, nfa_payload(*p.nfa));
    add(SectionType::kMinDfa, dfa_payload(*p.min_dfa));
    add(SectionType::kMinDfaPacked, packed_payload(p.min_dfa->packed()));
    add(SectionType::kRidfaDfa, dfa_payload(p.ridfa->dfa()));
    add(SectionType::kRidfaPacked, packed_payload(p.ridfa->dfa().packed()));
    add(SectionType::kRidfaAux, ridfa_aux_payload(*p.ridfa));
    if (p.searcher != nullptr) {
      entry.flags |= kPatternHasSearcher;
      add(SectionType::kSearcherMap, symbol_map_payload(p.searcher->symbols()));
      add(SectionType::kSearcherDfa, dfa_payload(*p.searcher));
      add(SectionType::kSearcherPacked, packed_payload(p.searcher->packed()));
    }
    if (p.sfa != nullptr) {
      entry.flags |= kPatternHasSfa;
      entry.sfa_probe_budget = p.sfa_probe_budget;
      add(SectionType::kSfa, sfa_payload(*p.sfa));
      add(SectionType::kSfaPacked, packed_payload(p.sfa->packed()));
      add(SectionType::kSfaMappings, packed_payload(p.sfa->mappings()));
    }
    entry.section_count =
        static_cast<std::uint32_t>(section_entries.size()) - entry.first_section;
    pattern_entries.push_back(entry);
  }

  // Lay the payloads out: directory first, then each section rounded up to
  // the cache-line boundary its packed entries rely on.
  const std::uint64_t directory_end =
      sizeof(FileHeader) + pattern_entries.size() * sizeof(PatternEntry) +
      section_entries.size() * sizeof(SectionEntry);
  std::uint64_t cursor = align_up(directory_end);
  for (std::size_t i = 0; i < section_entries.size(); ++i) {
    section_entries[i].offset = cursor;
    cursor = align_up(cursor + section_entries[i].bytes);
  }
  const std::uint64_t file_bytes =
      section_entries.empty()
          ? directory_end
          : section_entries.back().offset + payloads.back().size();

  FileHeader header{};
  std::memcpy(header.magic, kMagic.data(), kMagic.size());
  header.version = kFormatVersion;
  header.header_bytes = sizeof(FileHeader);
  header.file_bytes = file_bytes;
  header.pattern_count = static_cast<std::uint32_t>(pattern_entries.size());
  header.section_count = static_cast<std::uint32_t>(section_entries.size());

  std::string directory;
  append_raw(directory, pattern_entries.data(),
             pattern_entries.size() * sizeof(PatternEntry));
  append_raw(directory, section_entries.data(),
             section_entries.size() * sizeof(SectionEntry));
  header.directory_checksum = checksum64(directory.data(), directory.size());
  header.header_checksum = checksum64(&header, sizeof header);  // field is zero here

  std::string image;
  image.reserve(file_bytes);
  append_raw(image, &header, sizeof header);
  image += directory;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    image.resize(section_entries[i].offset, '\0');  // alignment padding
    image += payloads[i];
  }
  return image;
}

void write_bundle_file(const std::string& path,
                       std::span<const PatternSections> patterns) {
  const std::string image = write_bundle(patterns);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    throw std::system_error(errno, std::generic_category(), "bundle: open " + tmp);
  std::size_t written = 0;
  while (written < image.size()) {
    const ssize_t n = ::write(fd, image.data() + written, image.size() - written);
    if (n < 0) {
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::system_error(saved, std::generic_category(), "bundle: write " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::system_error(errno, std::generic_category(), "bundle: fsync " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw std::system_error(saved, std::generic_category(), "bundle: rename " + path);
  }
}

}  // namespace rispar::bundle
