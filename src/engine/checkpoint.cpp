#include "engine/checkpoint.hpp"

#include <cstddef>
#include <string>

#include "bundle/format.hpp"
#include "util/fault_inject.hpp"
#include "util/governance.hpp"

namespace rispar::checkpoint {
namespace {

constexpr std::size_t kHeaderBytes = 20;  // magic + version + 4 flags + fingerprint
constexpr std::size_t kTrailerBytes = 8;  // checksum64

[[noreturn]] void reject(const std::string& what) {
  throw ValidationError("checkpoint: " + what);
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
}

std::uint8_t get_u8(std::string_view image, std::size_t& pos) {
  if (pos >= image.size()) reject("truncated blob");
  return static_cast<std::uint8_t>(image[pos++]);
}

std::uint32_t get_u32(std::string_view image, std::size_t& pos) {
  if (image.size() - pos < 4) reject("truncated blob");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8)
    value |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(image[pos++])) << shift;
  return value;
}

std::uint64_t get_u64(std::string_view image, std::size_t& pos) {
  if (image.size() - pos < 8) reject("truncated blob");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8)
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(image[pos++])) << shift;
  return value;
}

bool get_flag(std::string_view image, std::size_t& pos, const char* name) {
  const std::uint8_t raw = get_u8(image, pos);
  if (raw > 1) reject(std::string("malformed ") + name + " flag");
  return raw != 0;
}

/// A DFA's full resume-relevant content: shape, initial state, the
/// final-state bitmap, the transition table and the byte→symbol map.
/// Shapes alone cannot tell `a` from `b` (identical minimal automata up to
/// the byte classes), so the fingerprint hashes the content — still
/// memory-speed via checksum64.
void append_dfa_content(std::string& buf, const Dfa& dfa) {
  put_u32(buf, static_cast<std::uint32_t>(dfa.num_states()));
  put_u32(buf, static_cast<std::uint32_t>(dfa.num_symbols()));
  put_u32(buf, static_cast<std::uint32_t>(dfa.initial()));
  std::uint8_t bits = 0;
  for (State state = 0; state < dfa.num_states(); ++state) {
    if (dfa.is_final(state)) bits |= static_cast<std::uint8_t>(1u << (state & 7));
    if ((state & 7) == 7) {
      buf.push_back(static_cast<char>(bits));
      bits = 0;
    }
  }
  if (dfa.num_states() & 7) buf.push_back(static_cast<char>(bits));
  for (const State target : dfa.table()) put_u32(buf, static_cast<std::uint32_t>(target));
  for (const std::int32_t symbol : dfa.symbols().raw_table())
    put_u32(buf, static_cast<std::uint32_t>(symbol));
}

void append_header(std::string& out, Kind kind, std::uint8_t variant,
                   const QueryOptions& options, std::uint64_t fingerprint) {
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(variant));
  out.push_back(static_cast<char>(options.positions ? 1 : 0));
  out.push_back(static_cast<char>(options.begin_mode));
  put_u64(out, fingerprint);
}

void seal(std::string& out) { put_u64(out, bundle::checksum64(out.data(), out.size())); }

struct Envelope {
  Kind kind;
  std::uint8_t variant = 0;
  bool positions = false;
  BeginMode begin_mode = BeginMode::kSeparator;
  std::uint64_t fingerprint = 0;
  std::string_view body;  ///< between the header and the checksum trailer
};

/// Integrity first, meaning second: length, magic, version, then the
/// whole-blob checksum — only after those pass are the header fields
/// interpreted. A truncation or byte flip anywhere therefore reaches at
/// most the checksum comparison, never a field-driven allocation.
Envelope open_envelope(std::string_view blob) {
  if (blob.size() < kHeaderBytes + kTrailerBytes) reject("truncated blob");
  std::size_t pos = 0;
  if (get_u32(blob, pos) != kMagic) reject("bad magic (not a session checkpoint)");
  if (const std::uint32_t version = get_u32(blob, pos); version != kVersion)
    reject("unsupported version " + std::to_string(version));
  std::size_t trailer_pos = blob.size() - kTrailerBytes;
  const std::uint64_t stored = get_u64(blob, trailer_pos);
  if (bundle::checksum64(blob.data(), blob.size() - kTrailerBytes) != stored)
    reject("checksum mismatch (corrupted or truncated blob)");

  Envelope env;
  const std::uint8_t kind = get_u8(blob, pos);
  if (kind != static_cast<std::uint8_t>(Kind::kSingleStream) &&
      kind != static_cast<std::uint8_t>(Kind::kMultiStream))
    reject("unknown kind " + std::to_string(kind));
  env.kind = static_cast<Kind>(kind);
  env.variant = get_u8(blob, pos);
  env.positions = get_flag(blob, pos, "positions");
  const std::uint8_t mode = get_u8(blob, pos);
  if (mode > static_cast<std::uint8_t>(BeginMode::kExact)) reject("malformed begin mode");
  env.begin_mode = static_cast<BeginMode>(mode);
  env.fingerprint = get_u64(blob, pos);
  env.body = blob.substr(kHeaderBytes, blob.size() - kHeaderBytes - kTrailerBytes);
  return env;
}

/// The option/identity cross-checks shared by both decoders. The blob is
/// internally consistent by now (checksum passed); what remains is whether
/// it belongs to THIS pattern and THIS session shape.
void match_session(const Envelope& env, Kind kind, const QueryOptions& options,
                   std::uint64_t fingerprint) {
  if (env.kind != kind)
    reject(kind == Kind::kSingleStream
               ? "multi-pattern blob offered to a single-pattern resume"
               : "single-pattern blob offered to a multi-pattern resume");
  if (env.fingerprint != fingerprint)
    reject("pattern fingerprint mismatch (checkpoint was taken against a "
           "different pattern or fleet)");
  if (env.positions != options.positions)
    reject(env.positions ? "blob carries a find side but positions=false was requested"
                         : "positions=true requested but the blob has no find side");
  if (env.begin_mode != options.begin_mode)
    reject(std::string("begin-mode mismatch (blob ") + begin_mode_name(env.begin_mode) +
           ", resume requested " + begin_mode_name(options.begin_mode) + ")");
}

}  // namespace

std::uint64_t pattern_fingerprint(const Pattern& pattern) {
  // The minimal DFA is canonical for the language and its byte classes, so
  // its content identifies the pattern across processes without forcing
  // the lazy searcher build (decision-only sessions checkpoint too).
  std::string buf;
  append_dfa_content(buf, pattern.min_dfa());
  return bundle::checksum64(buf.data(), buf.size());
}

std::uint64_t fleet_fingerprint(std::span<const Pattern> patterns) {
  std::string buf;
  put_u64(buf, patterns.size());
  for (const Pattern& pattern : patterns) put_u64(buf, pattern_fingerprint(pattern));
  return bundle::checksum64(buf.data(), buf.size());
}

std::string encode_stream(const StreamCarry& carry, Variant variant,
                          const QueryOptions& options, std::uint64_t fingerprint) {
  fault::maybe_throw("checkpoint.encode");
  std::string out;
  append_header(out, Kind::kSingleStream, static_cast<std::uint8_t>(variant), options,
                fingerprint);
  out.push_back(static_cast<char>(carry.at_start ? 1 : 0));
  put_u64(out, carry.transitions);
  put_u64(out, carry.windows);
  put_u32(out, static_cast<std::uint32_t>(carry.states.size()));
  for (const State state : carry.states) put_u32(out, static_cast<std::uint32_t>(state));
  encode_find_carry(carry.find, out);
  seal(out);
  return out;
}

StreamCarry decode_stream(std::string_view blob, Variant variant,
                          const QueryOptions& options, std::uint64_t fingerprint) {
  fault::maybe_throw("checkpoint.decode");
  const Envelope env = open_envelope(blob);
  match_session(env, Kind::kSingleStream, options, fingerprint);
  if (env.variant != static_cast<std::uint8_t>(variant))
    reject(env.variant > static_cast<std::uint8_t>(Variant::kSfa)
               ? "malformed variant"
               : std::string("variant mismatch (blob ") +
                     variant_name(static_cast<Variant>(env.variant)) +
                     ", resume requested " +
                     variant_name(variant) + ") — decision states do not transfer");

  StreamCarry carry;
  std::size_t pos = 0;
  carry.at_start = get_flag(env.body, pos, "at_start");
  carry.transitions = get_u64(env.body, pos);
  carry.windows = get_u64(env.body, pos);
  const std::uint32_t nstates = get_u32(env.body, pos);
  if (nstates > (env.body.size() - pos) / 4) reject("truncated decision state list");
  carry.states.reserve(nstates);
  for (std::uint32_t i = 0; i < nstates; ++i) {
    const State state = static_cast<State>(get_u32(env.body, pos));
    if (state < 0) reject("decision state out of range");
    carry.states.push_back(state);
  }
  if (carry.at_start && (!carry.states.empty() || carry.windows != 0))
    reject("at_start carry with fed windows");
  carry.find = decode_find_carry(env.body, pos);
  if (pos != env.body.size()) reject("trailing bytes after carry image");
  return carry;
}

std::string encode_multi(const std::vector<const FindCarry*>& carries,
                         std::uint64_t consumed, const QueryOptions& options,
                         std::uint64_t fingerprint) {
  fault::maybe_throw("checkpoint.encode");
  std::string out;
  append_header(out, Kind::kMultiStream, /*variant=*/0, options, fingerprint);
  put_u64(out, consumed);
  put_u32(out, static_cast<std::uint32_t>(carries.size()));
  for (const FindCarry* carry : carries) encode_find_carry(*carry, out);
  seal(out);
  return out;
}

MultiImage decode_multi(std::string_view blob, std::size_t expected_patterns,
                        const QueryOptions& options, std::uint64_t fingerprint) {
  fault::maybe_throw("checkpoint.decode");
  const Envelope env = open_envelope(blob);
  match_session(env, Kind::kMultiStream, options, fingerprint);
  if (env.variant != 0) reject("malformed variant (multi-pattern blobs carry none)");

  MultiImage image;
  std::size_t pos = 0;
  image.consumed = get_u64(env.body, pos);
  const std::uint32_t npatterns = get_u32(env.body, pos);
  if (npatterns != expected_patterns)
    reject("fleet size mismatch (blob has " + std::to_string(npatterns) +
           " carries, resuming fleet has " + std::to_string(expected_patterns) + ")");
  image.carries.reserve(npatterns);
  for (std::uint32_t i = 0; i < npatterns; ++i) {
    FindCarry carry = decode_find_carry(env.body, pos);
    // Every pattern of a merged session is fed the same windows, so each
    // carry's byte count must equal the session's.
    if (carry.consumed != image.consumed)
      reject("carry byte count disagrees with the session's");
    image.carries.push_back(std::move(carry));
  }
  if (pos != env.body.size()) reject("trailing bytes after carry images");
  return image;
}

}  // namespace rispar::checkpoint
