// The polymorphic device interface of the query API.
//
// A Device is one speculative recognition scheme over one compiled
// language: the classic CSDPA over the minimal DFA or the NFA, the paper's
// RID over the RI-DFA, or the speculation-free SFA comparator. The concrete
// devices live in parallel/csdpa.hpp; Engine (engine/engine.hpp) holds one
// of each behind this base, so every query shape dispatches through the
// same two virtuals:
//
//  * recognize()   — one-shot parallel recognition of a whole input;
//  * stream_feed() — consume one window of an unbounded input, carrying
//    only the device-specific PLAS representation across windows (the
//    paper's join condition applied at window granularity — feeding a text
//    in any segmentation yields the one-shot decision, property-tested).
//
// capabilities() declares which QueryOptions knobs the device honors;
// validate_query() rejects anything beyond that set.
#pragma once

#include <span>
#include <vector>

#include "automata/nfa.hpp"
#include "engine/query.hpp"

namespace rispar {

class ThreadPool;

/// The state a StreamSession carries between windows. `states` is
/// device-specific: DFA/RI-DFA states of the surviving runs (PLAS), NFA
/// frontier states, or the single composed chunk-automaton state of the
/// SFA. Empty states after the first window means every run died — the
/// stream is dead and every extension rejects.
struct StreamCarry {
  std::vector<State> states;
  bool at_start = true;  ///< nothing fed yet
  std::uint64_t transitions = 0;
  std::uint64_t windows = 0;
};

class Device {
 public:
  virtual ~Device() = default;

  virtual Variant variant() const = 0;
  virtual DeviceCaps capabilities() const = 0;

  /// What the device honors in streaming mode: its one-shot capabilities
  /// minus look-back and tree-join (there is no look-back window across
  /// the carry and the join is serial per window). stream_feed validates
  /// against this, so direct device callers and Engine::stream get the
  /// same reject-don't-ignore contract.
  DeviceCaps stream_capabilities() const {
    DeviceCaps caps = capabilities();
    caps.lookback = false;
    caps.tree_join = false;
    return caps;
  }

  /// Parallel recognition of `input` (reach on the pool + join).
  /// Throws QueryError when `options` requests a knob outside
  /// capabilities(); Engine validates too, so direct callers and Engine
  /// users get the same contract.
  virtual QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                                const QueryOptions& options) const = 0;

  /// Consumes the next window of a streamed input, updating `carry` in
  /// place (empty windows are a no-op). Streaming always runs the chunk
  /// kernels selected by `options.kernel`; lookback/tree_join are not
  /// available in streaming mode (Engine::stream rejects them).
  virtual void stream_feed(StreamCarry& carry, std::span<const Symbol> window,
                           ThreadPool& pool, const QueryOptions& options) const = 0;

  /// Decision over everything fed into `carry` so far.
  virtual bool stream_accepted(const StreamCarry& carry) const = 0;
};

}  // namespace rispar
