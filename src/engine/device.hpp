// The polymorphic device interface of the query API.
//
// A Device is one speculative recognition scheme over one compiled
// language: the classic CSDPA over the minimal DFA or the NFA, the paper's
// RID over the RI-DFA, or the speculation-free SFA comparator. The concrete
// devices live in parallel/csdpa.hpp; Engine (engine/engine.hpp) holds one
// of each behind this base, so every query shape dispatches through the
// same two virtuals:
//
//  * recognize()   — one-shot parallel recognition of a whole input;
//  * stream_feed() — consume one window of an unbounded input, carrying
//    only the device-specific PLAS representation across windows (the
//    paper's join condition applied at window granularity — feeding a text
//    in any segmentation yields the one-shot decision, property-tested).
//    When the caller hands it a StreamFindWindow, the feed ALSO advances
//    the carry's find side over the Σ*p searcher and emits every
//    occurrence ending in the window with absolute byte offsets — the
//    streaming-find discipline (Hyperscan-style), equal to the one-shot
//    find_all under any window segmentation (fuzz-tested).
//
// capabilities() declares which QueryOptions knobs the device honors;
// validate_query() rejects anything beyond that set.
#pragma once

#include <span>
#include <vector>

#include "automata/nfa.hpp"
#include "engine/query.hpp"
#include "parallel/match_count.hpp"

namespace rispar {

class ThreadPool;

/// The state a StreamSession carries between windows. `states` is
/// device-specific: DFA/RI-DFA states of the surviving runs (PLAS), NFA
/// frontier states, or the single composed chunk-automaton state of the
/// SFA. Empty states after the first window means every run died — the
/// stream's DECISION is dead and every extension rejects; the find side
/// (`find`, fed only on positions sessions) keeps emitting occurrences
/// regardless, because occurrence search never dies on byte input.
struct StreamCarry {
  std::vector<State> states;
  bool at_start = true;  ///< nothing fed yet
  std::uint64_t transitions = 0;
  std::uint64_t windows = 0;
  /// The (end, last-separator) hit tracking of streaming find, carried
  /// across windows (parallel/match_count.hpp). Untouched unless the feed
  /// receives a StreamFindWindow.
  FindCarry find;
};

/// The find side of one streamed window: the Σ*p searcher runs on its OWN
/// all-bytes SymbolMap, so the window arrives twice — device-translated
/// for the decision, searcher-translated here (one symbol per byte; both
/// spans cover the same bytes, so they have equal length). Matches emit
/// through `sink` as they are joined, with absolute byte offsets.
struct StreamFindWindow {
  const Dfa& searcher;
  std::span<const Symbol> window;
  const MatchSink& sink;
  std::uint32_t pattern_id = 0;
  /// Required under QueryOptions::begin_mode == BeginMode::kExact: the
  /// pattern's reverse-confirmation artifact (Pattern::reverse_begins).
  const ReverseBegins* reverse = nullptr;
};

class Device {
 public:
  virtual ~Device() = default;

  virtual Variant variant() const = 0;
  virtual DeviceCaps capabilities() const = 0;

  /// What the device honors in streaming mode: its one-shot capabilities
  /// minus look-back and tree-join (there is no look-back window across
  /// the carry and the join is serial per window), plus `positions` —
  /// every shipped device serves streaming find, because the emission
  /// rides the variant-independent Σ*p searcher alongside the decision
  /// carry. A device that cannot (or a future decision-only one) overrides
  /// this and positions sessions REJECT at Engine::stream. stream_feed
  /// validates against this set, so direct device callers and
  /// Engine::stream get the same reject-don't-ignore contract.
  virtual DeviceCaps stream_capabilities() const {
    DeviceCaps caps = capabilities();
    caps.lookback = false;
    caps.tree_join = false;
    caps.positions = true;
    caps.exact_begins = true;  // rides the searcher/reverse pair, like positions
    return caps;
  }

  /// Parallel recognition of `input` (reach on the pool + join).
  /// Throws QueryError when `options` requests a knob outside
  /// capabilities(); Engine validates too, so direct callers and Engine
  /// users get the same contract.
  virtual QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                                const QueryOptions& options) const = 0;

  /// Consumes the next window of a streamed input, updating `carry` in
  /// place (empty windows are a no-op). Streaming always runs the chunk
  /// kernels selected by `options.kernel`; lookback/tree_join are not
  /// available in streaming mode (Engine::stream rejects them). With
  /// `find` non-null the same feed advances carry.find over the searcher
  /// and emits the window's occurrences through find->sink (absolute byte
  /// offsets, begins resolved through the carried separator) — the find
  /// side runs even after the decision carry died, since substring
  /// occurrences outlive whole-stream membership.
  ///
  /// Governance is PER FEED: options.deadline/cancel build one governor at
  /// the top of each feed, shared by the decision and the find side — a
  /// trip throws out of this call; the session-level poisoning contract
  /// lives in StreamSession (engine/engine.hpp).
  void stream_feed(StreamCarry& carry, std::span<const Symbol> window,
                   ThreadPool& pool, const QueryOptions& options,
                   const StreamFindWindow* find = nullptr) const;

  /// Decision over everything fed into `carry` so far.
  virtual bool stream_accepted(const StreamCarry& carry) const = 0;

 protected:
  /// The device-specific decision half of stream_feed (the PLAS window
  /// join). Validation, governor construction and the find side live in
  /// the shared front end; `governor` is pre-normalized (nullptr when
  /// inactive) and polled at every chunk-task start inside the window.
  virtual void stream_window(StreamCarry& carry, std::span<const Symbol> window,
                             ThreadPool& pool, const QueryOptions& options,
                             const QueryGovernor* governor) const = 0;
};

}  // namespace rispar
