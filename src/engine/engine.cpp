#include "engine/engine.hpp"

#include <string>

#include "parallel/match_count.hpp"

namespace rispar {

Engine::Engine(Pattern pattern, EngineConfig config)
    : pattern_(std::move(pattern)),
      config_(config),
      pool_(std::make_unique<ThreadPool>(config.threads)),
      dfa_device_(pattern_.min_dfa()),
      nfa_device_(pattern_.nfa()),
      rid_device_(pattern_.ridfa()) {}

const Device* Engine::try_device(Variant variant) const {
  switch (variant) {
    case Variant::kDfa: return &dfa_device_;
    case Variant::kNfa: return &nfa_device_;
    case Variant::kRid: return &rid_device_;
    case Variant::kSfa: return pattern_.sfa_device(config_.sfa_budget);
  }
  return nullptr;
}

const Device& Engine::device(Variant variant) const {
  const Device* found = try_device(variant);
  if (found == nullptr) {
    // The probe is cached per Pattern, so the effective budget may not be
    // this Engine's configured one — report the budget that actually ran.
    const std::int32_t probed = pattern_.sfa_probe_budget();
    std::string message =
        std::string(variant_name(variant)) +
        ": device unavailable (SFA construction exceeded the budget of " +
        std::to_string(probed) +
        " mappings — the explosion case the paper reports)";
    if (probed != config_.sfa_budget)
      message += "; the shared Pattern was first probed with that budget, so "
                 "this Engine's sfa_budget of " +
                 std::to_string(config_.sfa_budget) + " was not applied";
    throw QueryError(message);
  }
  return *found;
}

QueryResult Engine::recognize(std::string_view text, const QueryOptions& options) const {
  return recognize(pattern_.translate(text), options);
}

QueryResult Engine::recognize(std::span<const Symbol> input,
                              const QueryOptions& options) const {
  return device(options.variant).recognize(input, *pool_, options);
}

QueryResult Engine::count(std::string_view text, const QueryOptions& options) const {
  // Reject up front — before paying the lazy searcher build (determinize +
  // minimize) and the full-text translation; count_matches re-validates.
  validate_query(options, kCountingCaps, kCountingContext);
  const Dfa& dfa = searcher();
  return count_matches(dfa, dfa.symbols().translate(text), *pool_, options);
}

QueryResult Engine::find(std::string_view text, const QueryOptions& options) const {
  // Reject up front, like count() — before the lazy searcher build and the
  // full-text translation; find_matches re-validates.
  validate_query(options, kFindingCaps, kFindingContext);
  const Dfa& dfa = searcher();
  return find_matches(dfa, dfa.symbols().translate(text), *pool_, options);
}

std::vector<Match> Engine::find_all(std::string_view text,
                                    const QueryOptions& options) const {
  return std::move(find(text, options).positions);
}

StreamSession Engine::stream(const QueryOptions& options) const {
  const Device& dev = device(options.variant);
  // Fail at session creation, not at the first feed (which re-validates).
  validate_query(options, dev.stream_capabilities(),
                 device_context("stream", options.variant));
  // Positions sessions pay the lazy searcher build here, at open — never
  // inside the first feed on the hot path.
  if (options.positions) (void)pattern_.searcher();
  return StreamSession(dev, pattern_, *pool_, options);
}

std::vector<QueryResult> Engine::match_all(std::span<const std::string_view> texts,
                                           const QueryOptions& options) const {
  const Device& dev = device(options.variant);
  // Fail before any text is translated; per-text recognize re-validates.
  validate_query(options, dev.capabilities(),
                 device_context("match_all", options.variant));
  std::vector<QueryResult> results(texts.size());
  // One task per text; per-text chunk runs nest on the same pool and
  // execute inline (ThreadPool reentrancy), so the sharding unit is the
  // text — the right shape for many small-to-medium documents.
  pool_->run(texts.size(), [&](std::size_t i) {
    results[i] = dev.recognize(pattern_.translate(texts[i]), *pool_, options);
  });
  return results;
}

bool Engine::accepts(std::span<const Symbol> input) const {
  const Dfa& dfa = pattern_.min_dfa();
  State state = dfa.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) return false;
    state = dfa.step(state, symbol);
    if (state == kDeadState) return false;
  }
  return dfa.is_final(state);
}

bool Engine::accepts(std::string_view text) const {
  return accepts(pattern_.translate(text));
}

void StreamSession::feed(std::string_view bytes) {
  if (!options_.positions) {
    device_->stream_feed(carry_, pattern_.translate(bytes), *pool_, options_);
    return;
  }
  feed(bytes, [this](const Match& match) { pending_.push_back(match); });
}

void StreamSession::feed(std::string_view bytes, const MatchSink& sink) {
  if (!options_.positions)
    throw QueryError(
        "stream (match drain): this session was not opened with positions — "
        "set QueryOptions::positions at Engine::stream to request streaming "
        "find");
  // The decision and the find side consume the same bytes through two maps:
  // the pattern's classes for the device carry, the searcher's all-bytes
  // map (one symbol per byte) for position emission.
  const Dfa& searcher = pattern_.searcher();
  const std::vector<Symbol> find_window = searcher.symbols().translate(bytes);
  const StreamFindWindow find{searcher, find_window, sink};
  if (dead()) {
    // The decision already died — its window would no-op anyway, so skip
    // the device-side translation (the tailing steady state: only the find
    // side still scans). Keep the window accounting stream_window would do.
    if (!bytes.empty()) ++carry_.windows;
    device_->stream_feed(carry_, std::span<const Symbol>{}, *pool_, options_, &find);
    return;
  }
  device_->stream_feed(carry_, pattern_.translate(bytes), *pool_, options_, &find);
}

void StreamSession::feed(std::span<const Symbol> window) {
  if (options_.positions)
    throw QueryError(
        "stream (positions): symbol-span windows cannot serve streaming find "
        "— the searcher translates raw bytes with its own map; feed "
        "string_view windows (or open the session without positions)");
  device_->stream_feed(carry_, window, *pool_, options_);
}

std::vector<Match> StreamSession::take_matches() {
  if (!options_.positions)
    throw QueryError(
        "stream (take_matches): this session was not opened with positions — "
        "set QueryOptions::positions at Engine::stream to request streaming "
        "find");
  std::vector<Match> taken = std::move(pending_);
  pending_.clear();
  return taken;
}

}  // namespace rispar
