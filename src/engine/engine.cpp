#include "engine/engine.hpp"

#include <string>

#include "engine/checkpoint.hpp"
#include "parallel/match_count.hpp"

namespace rispar {

Engine::Engine(Pattern pattern, EngineConfig config)
    : pattern_(std::move(pattern)),
      config_(config),
      pool_(config.shared_pool != nullptr
                ? config.shared_pool
                : std::make_shared<ThreadPool>(config.threads, config.admission)),
      dfa_device_(pattern_.min_dfa()),
      nfa_device_(pattern_.nfa()),
      rid_device_(pattern_.ridfa()) {}

const Device* Engine::try_device(Variant variant) const {
  switch (variant) {
    case Variant::kDfa: return &dfa_device_;
    case Variant::kNfa: return &nfa_device_;
    case Variant::kRid: return &rid_device_;
    case Variant::kSfa: return pattern_.sfa_device(config_.sfa_budget);
  }
  return nullptr;
}

const Device& Engine::device(Variant variant) const {
  const Device* found = try_device(variant);
  if (found == nullptr) {
    // The probe is cached per Pattern, so the effective budget may not be
    // this Engine's configured one — report the budget that actually ran.
    // (try_build_sfa gives up when the interned mappings pass the budget,
    // so the observed demand is at least limit + 1 — the explosion case
    // the paper reports.)
    const std::int32_t probed = pattern_.sfa_probe_budget();
    std::string resource =
        std::string(variant_name(variant)) + ": SFA construction";
    if (probed != config_.sfa_budget)
      resource += " (the shared Pattern was first probed with budget " +
                  std::to_string(probed) + ", so this Engine's sfa_budget of " +
                  std::to_string(config_.sfa_budget) + " was not applied)";
    throw ResourceExhausted(std::move(resource), probed,
                            static_cast<std::int64_t>(probed) + 1);
  }
  return *found;
}

QueryResult Engine::recognize(std::string_view text, const QueryOptions& options) const {
  return recognize(pattern_.translate(text), options);
}

QueryResult Engine::recognize(std::span<const Symbol> input,
                              const QueryOptions& options) const {
  return device(options.variant).recognize(input, *pool_, options);
}

QueryResult Engine::count(std::string_view text, const QueryOptions& options) const {
  // Reject up front — before paying the lazy searcher build (determinize +
  // minimize) and the full-text translation; count_matches re-validates.
  validate_query(options, kCountingCaps, kCountingContext);
  // The governor's clock starts BEFORE the lazy searcher build and the
  // translation: the deadline budgets the whole call, not just the kernel.
  const QueryGovernor governor(options.deadline, options.cancel);
  const Dfa& dfa = searcher();
  governor.poll();
  const std::vector<Symbol> input = dfa.symbols().translate(text);
  governor.poll();
  return count_matches(dfa, input, *pool_, options, &governor);
}

QueryResult Engine::find(std::string_view text, const QueryOptions& options) const {
  // Reject up front, like count() — before the lazy searcher build and the
  // full-text translation; find_matches re-validates.
  validate_query(options, kFindingCaps, kFindingContext);
  const QueryGovernor governor(options.deadline, options.cancel);
  const Dfa& dfa = searcher();
  governor.poll();
  // Exact begins pay the lazy reverse-DFA build here, inside the same
  // deadline budget as the searcher (subsequent calls hit the cache).
  const ReverseBegins* reverse =
      options.begin_mode == BeginMode::kExact
          ? &pattern_.reverse_begins(config_.subset_budget)
          : nullptr;
  governor.poll();
  const std::vector<Symbol> input = dfa.symbols().translate(text);
  governor.poll();
  return find_matches(dfa, input, *pool_, options, /*pattern_id=*/0, &governor,
                      reverse);
}

std::vector<Match> Engine::find_all(std::string_view text,
                                    const QueryOptions& options) const {
  return std::move(find(text, options).positions);
}

StreamSession Engine::stream(const QueryOptions& options) const {
  const Device& dev = device(options.variant);
  // Fail at session creation, not at the first feed (which re-validates).
  validate_query(options, dev.stream_capabilities(),
                 device_context("stream", options.variant));
  // Positions sessions pay the lazy searcher build here, at open — never
  // inside the first feed on the hot path (and under this Engine's
  // subset_budget, so a blow-up pattern trips ResourceExhausted at open).
  // Exact-begin sessions likewise pre-pay the reverse-DFA build.
  if (options.positions) (void)searcher();
  if (options.begin_mode == BeginMode::kExact)
    (void)pattern_.reverse_begins(config_.subset_budget);
  return StreamSession(dev, pattern_, *pool_, options);
}

StreamSession Engine::resume_stream(std::string_view blob,
                                    const QueryOptions& options) const {
  // Exactly stream()'s open-time discipline — validation and lazy-artifact
  // pre-pay happen BEFORE the blob is decoded, so a resume rejects for the
  // same reasons at the same point a fresh open would.
  const Device& dev = device(options.variant);
  validate_query(options, dev.stream_capabilities(),
                 device_context("resume_stream", options.variant));
  if (options.positions) (void)searcher();
  if (options.begin_mode == BeginMode::kExact)
    (void)pattern_.reverse_begins(config_.subset_budget);
  StreamSession session(dev, pattern_, *pool_, options);
  session.carry_ = checkpoint::decode_stream(
      blob, options.variant, options, checkpoint::pattern_fingerprint(pattern_));
  return session;
}

std::vector<QueryResult> Engine::match_all(std::span<const std::string_view> texts,
                                           const QueryOptions& options) const {
  const Device& dev = device(options.variant);
  // Fail before any text is translated; per-text recognize re-validates.
  validate_query(options, dev.capabilities(),
                 device_context("match_all", options.variant));
  std::vector<QueryResult> results(texts.size());
  // One task per text; per-text chunk runs nest on the same pool and
  // execute inline (ThreadPool reentrancy), so the sharding unit is the
  // text — the right shape for many small-to-medium documents.
  //
  // Governance is PER TASK: each text's recognize builds its own governor,
  // so the deadline budgets one text, not the batch. The batch-level
  // governor below only paces admission blocking (OverloadPolicy::kBlock).
  const QueryGovernor batch_governor(options.deadline, options.cancel);
  pool_->run(texts.size(), [&](std::size_t i) {
    results[i] = dev.recognize(pattern_.translate(texts[i]), *pool_, options);
  }, batch_governor.active() ? &batch_governor : nullptr);
  return results;
}

bool Engine::accepts(std::span<const Symbol> input) const {
  const Dfa& dfa = pattern_.min_dfa();
  State state = dfa.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) return false;
    state = dfa.step(state, symbol);
    if (state == kDeadState) return false;
  }
  return dfa.is_final(state);
}

bool Engine::accepts(std::string_view text) const {
  return accepts(pattern_.translate(text));
}

void StreamSession::ensure_live() const {
  if (poisoned_)
    throw ValidationError(
        "stream (feed): session is poisoned — a previous feed failed "
        "mid-window (deadline, cancellation or fault), so the carry is "
        "inconsistent; reset() to reuse the session (take_matches() still "
        "drains what was buffered)");
}

void StreamSession::feed(std::string_view bytes) {
  if (!options_.positions) {
    ensure_live();
    try {
      device_->stream_feed(carry_, pattern_.translate(bytes), *pool_, options_);
    } catch (...) {
      poisoned_ = true;
      throw;
    }
    return;
  }
  feed(bytes, [this](const Match& match) { pending_.push_back(match); });
}

void StreamSession::feed(std::string_view bytes, const MatchSink& sink) {
  // Shape precondition first: rejecting here never poisons — nothing ran.
  if (!options_.positions)
    throw ValidationError(
        "stream (match drain): this session was not opened with positions — "
        "set QueryOptions::positions at Engine::stream to request streaming "
        "find");
  ensure_live();
  try {
    // The decision and the find side consume the same bytes through two
    // maps: the pattern's classes for the device carry, the searcher's
    // all-bytes map (one symbol per byte) for position emission.
    const Dfa& searcher = pattern_.searcher();
    const std::vector<Symbol> find_window = searcher.symbols().translate(bytes);
    const ReverseBegins* reverse = options_.begin_mode == BeginMode::kExact
                                       ? &pattern_.reverse_begins()
                                       : nullptr;
    const StreamFindWindow find{searcher, find_window, sink, /*pattern_id=*/0,
                                reverse};
    if (dead()) {
      // The decision already died — its window would no-op anyway, so skip
      // the device-side translation (the tailing steady state: only the
      // find side still scans). Keep the window accounting stream_window
      // would do.
      if (!bytes.empty()) ++carry_.windows;
      device_->stream_feed(carry_, std::span<const Symbol>{}, *pool_, options_,
                           &find);
      return;
    }
    device_->stream_feed(carry_, pattern_.translate(bytes), *pool_, options_, &find);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

void StreamSession::feed(std::span<const Symbol> window) {
  if (options_.positions)
    throw ValidationError(
        "stream (positions): symbol-span windows cannot serve streaming find "
        "— the searcher translates raw bytes with its own map; feed "
        "string_view windows (or open the session without positions)");
  ensure_live();
  try {
    device_->stream_feed(carry_, window, *pool_, options_);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

std::string StreamSession::checkpoint() const {
  if (poisoned_)
    throw ValidationError(
        "stream (checkpoint): session is poisoned — a previous feed failed "
        "mid-window, so there is no consistent carry to save; reset() and "
        "refeed, or resume an earlier checkpoint");
  if (!pending_.empty())
    throw ValidationError(
        "stream (checkpoint): " + std::to_string(pending_.size()) +
        " buffered matches are undrained — take_matches() first; checkpoints "
        "never carry match payloads, so resuming would silently drop them");
  return checkpoint::encode_stream(carry_, device_->variant(), options_,
                                   checkpoint::pattern_fingerprint(pattern_));
}

std::vector<Match> StreamSession::take_matches() {
  if (!options_.positions)
    throw ValidationError(
        "stream (take_matches): this session was not opened with positions — "
        "set QueryOptions::positions at Engine::stream to request streaming "
        "find");
  std::vector<Match> taken = std::move(pending_);
  pending_.clear();
  return taken;
}

}  // namespace rispar
