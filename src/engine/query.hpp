// The one options/result surface of the public query API.
//
// Every query shape (recognize / count / stream / match_all) and every
// speculative device speaks the same vocabulary:
//
//  * Variant   — which chunk automaton answers the query (the paper's three
//    schemes plus the speculation-free SFA comparator [25]);
//  * QueryOptions — the single knob struct, absorbing what used to be split
//    between DeviceOptions (chunks, lookback, tree_join) and DetChunkOptions
//    (convergence, kernel). A device that cannot honor a requested knob
//    REJECTS the query with QueryError instead of silently ignoring it —
//    capabilities() says up front what each device honors;
//  * QueryResult — the unified structured result (decision, occurrence
//    count, transition accounting, per-phase wall times).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/ca_run.hpp"
#include "util/governance.hpp"

namespace rispar {

enum class Variant {
  kDfa,  ///< classic CSDPA over the minimal DFA
  kNfa,  ///< classic CSDPA over the NFA
  kRid,  ///< the paper's RID over the interface-minimized RI-DFA
  kSfa,  ///< speculation-free SFA comparator (paper Sect. 1, [25])
};

const char* variant_name(Variant variant);

// The query failure taxonomy (QueryError and its subclasses ValidationError,
// DeadlineExceeded, QueryCancelled, ResourceExhausted — plus CancelSource/
// CancelToken and the QueryGovernor checkpoints) lives in
// util/governance.hpp, re-exported here: the chunk kernels sit below this
// header and throw the same types.

/// What a device can honor. Anything requested beyond this set raises
/// QueryError during validation — never a silent ignore.
struct DeviceCaps {
  bool convergence = false;    ///< run-convergence in the chunk kernels
  bool kernel_select = false;  ///< fused/reference kernel choice
  bool lookback = false;       ///< look-back start pruning (Sect. 5 / [28])
  bool tree_join = false;      ///< parallel tree-reduction join
  bool paging = false;         ///< offset/limit on the positions payload
  bool positions = false;      ///< Match emission (find payloads, streaming find)
  bool exact_begins = false;   ///< BeginMode::kExact (reverse-DFA confirmation)
};

/// What Match::begin means (find/find_all/streaming find only — other query
/// shapes reject a non-default mode via DeviceCaps::exact_begins).
enum class BeginMode {
  /// The fast default: `begin` is the searcher's last separator before the
  /// hit — a documented over-approximation when partial occurrences chain
  /// (see Match). No extra pass, no extra carry.
  kSeparator,
  /// Leftmost-exact: after the forward find pins `end`, a reversed minimal
  /// DFA of the pattern (Pattern::reverse_begins) is run backwards from
  /// `end` and `begin` becomes the smallest b with text[b..end) in L(p).
  /// Costs one backward scan per match; streaming sessions retain enough
  /// window history to resolve begins that cross feed boundaries.
  kExact,
};

const char* begin_mode_name(BeginMode mode);

/// One positioned occurrence, the unit of Engine::find_all and
/// PatternSet::find_all. Offsets are byte offsets into the queried text
/// (the Σ*p searcher maps one byte to one symbol), `end` exclusive: the
/// occurrence's last byte is text[end - 1].
///
/// What `begin` means is selected by QueryOptions::begin_mode. Under the
/// default BeginMode::kSeparator it is the searcher's *last separator*
/// before the hit — the last position at which the scan held no live
/// partial occurrence (its state's residual language was again the full
/// Σ*p); when partial occurrences chain (e.g. "aab" for pattern "ab"),
/// `begin` then points at the leftmost still-pending candidate start
/// rather than the exact match start. Under BeginMode::kExact a reverse-
/// DFA confirmation pass pins `begin` to the true leftmost start: the
/// smallest b such that text[b..end) matches the pattern. In both modes
/// one Match is emitted per match-ending position — find_all(text).size()
/// equals count(text).matches (overlaps counted).
struct Match {
  std::uint32_t pattern_id = 0;  ///< 0 for Engine; the pattern's index in a PatternSet
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  bool operator==(const Match&) const = default;
};

/// Consumer of incrementally emitted matches (streaming find): invoked once
/// per occurrence, in ascending (end, begin) order, from the feeding thread.
/// Sinks let a caller drain an unbounded stream's matches without the
/// session accumulating them (StreamSession::feed(window, sink)).
using MatchSink = std::function<void(const Match&)>;

struct QueryOptions {
  /// Which chunk automaton runs the query (ignored by count(), which has
  /// exactly one deterministic counting device — see engine.hpp).
  Variant variant = Variant::kRid;
  /// Requested chunk count c; clamped to the input length. c <= 1 means
  /// serial execution (single chunk, no speculation).
  std::size_t chunks = 1;
  /// Run-convergence optimization in the deterministic kernels (ablation).
  bool convergence = false;
  /// Deterministic-kernel implementation (fused default; reference oracle).
  DetKernel kernel = DetKernel::kFused;
  /// Look-back state speculation (paper Sect. 5, Yang & Prasanna [28]
  /// flavour), DFA device only: before the speculative runs of chunk i>=2,
  /// all starts are advanced over the `lookback` symbols preceding the
  /// chunk boundary; only the (deduplicated) survivors start real runs.
  /// Sound because the true boundary state is the image of *some* state
  /// over that window. 0 disables.
  std::size_t lookback = 0;
  /// Parallel tree-reduction join (DFA device only): chunk mappings are
  /// total functions Q → Q ∪ {dead}, whose composition is associative, so
  /// the join can reduce pairwise on the pool in O(log c) rounds instead of
  /// serially. The paper keeps the join serial because it is <1% of the
  /// time (Sect. 4.4) — this mode exists to *measure* that claim.
  bool tree_join = false;
  /// Paging of the positions payload (find/find_all only — other query
  /// shapes REJECT a non-default offset/limit): skip the first `offset`
  /// matches and materialize at most `limit` of the rest. QueryResult's
  /// `matches` still reports the TOTAL occurrence count, so a server can
  /// return one page plus the overall total from a single scan.
  std::size_t offset = 0;
  std::size_t limit = kNoLimit;
  /// Ask for Match emission. find/find_all always emit positions (the knob
  /// is implied); on Engine::stream it turns the session into a streaming
  /// find: every feed also advances the Σ*p searcher and emits positioned
  /// matches with absolute byte offsets (drain with take_matches() or a
  /// MatchSink). Query shapes without position support REJECT the knob via
  /// DeviceCaps (recognize/count/match_all).
  bool positions = false;
  /// What Match::begin reports (see BeginMode). Only position-emitting
  /// query shapes with DeviceCaps::exact_begins honor kExact; everything
  /// else REJECTS it during validation.
  BeginMode begin_mode = BeginMode::kSeparator;
  /// Streaming find under begin_mode=kExact only: byte cap on the retained
  /// history tail (FindCarry::history — one retained byte per stream byte).
  /// Patterns whose separator-purity certificate fails retain history from
  /// the stream start, i.e. unbounded on adversarial input; this cap bounds
  /// the PEAK retention (carried tail + incoming window) instead. A feed
  /// that would exceed it throws ResourceExhausted{"exact-begin history",
  /// limit, observed} BEFORE consuming the window, and the session poisons
  /// (StreamSession semantics — reset() reuses it). 0 = unlimited; other
  /// query shapes ignore the knob (one-shot find retains nothing).
  std::uint64_t max_history_bytes = 0;
  /// Wall-clock budget for the query, 0 = none. Checked cooperatively at
  /// chunk boundaries and every kGovernorStride symbols inside the kernels
  /// (see util/governance.hpp); a trip throws DeadlineExceeded. Every query
  /// shape honors it (no DeviceCaps gate — the chunk-boundary poll is the
  /// universal floor). One-shot shapes budget the whole call; on a
  /// StreamSession the budget applies PER FEED; match_all/PatternSet apply
  /// it per task (per text / per (text, pattern) scan).
  std::chrono::nanoseconds deadline{0};
  /// Shareable cancellation flag (from CancelSource::token()); a tripped
  /// token throws QueryCancelled at the next checkpoint. Default token =
  /// never cancelled. Honored everywhere, like `deadline`.
  CancelToken cancel{};

  static constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();
};

/// The unified result of every query shape. recognize/stream fill the
/// decision and overhead metrics; count() additionally fills `matches` and
/// `died` (and sets accepted = matches > 0); find() fills all of those plus
/// the `positions` payload.
struct QueryResult {
  bool accepted = false;
  std::uint64_t transitions = 0;  ///< total over all chunks (reach phase)
  std::uint64_t chunks = 0;       ///< actual chunk count after clamping
  double reach_seconds = 0.0;
  double join_seconds = 0.0;
  std::uint64_t matches = 0;  ///< count()/find(): prefixes ending an occurrence
  bool died = false;          ///< count()/find(): the true run left the automaton
  /// find()/find_all(): the positioned matches, ascending by (end, begin,
  /// pattern_id), windowed by QueryOptions::offset/limit. `matches` counts
  /// ALL occurrences even when paging trims this payload. Empty for every
  /// other query shape.
  std::vector<Match> positions;

  double total_seconds() const { return reach_seconds + join_seconds; }
};

/// Throws ValidationError naming the offending knob when `options` requests
/// anything outside `caps`. `context` names who is validating, e.g.
/// "the DFA device (recognize)" or "count (the deterministic counting
/// kernel)" — it leads the error message.
void validate_query(const QueryOptions& options, const DeviceCaps& caps,
                    const std::string& context);

/// The standard validate_query context of a device-backed query shape:
/// "the DFA device (recognize)".
std::string device_context(const char* what, Variant variant);

}  // namespace rispar
