#include "engine/device.hpp"

#include "parallel/thread_pool.hpp"

namespace rispar {

void Device::stream_feed(StreamCarry& carry, std::span<const Symbol> window,
                         ThreadPool& pool, const QueryOptions& options,
                         const StreamFindWindow* find) const {
  validate_query(options, stream_capabilities(), device_context("stream", variant()));
  // One governor per FEED: its clock starts here and covers both the
  // decision window and the find side, so a feed's deadline is the budget
  // for everything that window triggers.
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = own.active() ? &own : nullptr;
  stream_window(carry, window, pool, options, gov);
  if (find == nullptr) return;
  // The find side scans the same bytes re-translated with the searcher's
  // all-bytes map; only the knobs streaming find honors are forwarded, so
  // a device-only knob (a future one) can never leak into the kernel.
  QueryOptions find_options;
  find_options.chunks = options.chunks;
  find_options.convergence = options.convergence;
  find_options.kernel = options.kernel;
  find_options.positions = true;
  find_options.begin_mode = options.begin_mode;
  find_options.max_history_bytes = options.max_history_bytes;
  stream_find_feed(find->searcher, carry.find, find->window, pool, find_options,
                   find->sink, find->pattern_id, gov, find->reverse);
}

}  // namespace rispar
