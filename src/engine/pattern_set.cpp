#include "engine/pattern_set.hpp"

#include <algorithm>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/compile_cache.hpp"
#include "parallel/match_count.hpp"
#include "util/fault_inject.hpp"

namespace rispar {

namespace {

constexpr const char* kPatternSetContext =
    "PatternSet::find (the position-emitting counting kernel per pattern; "
    "it honors chunks, convergence, kernel, begin_mode and offset/limit)";

constexpr const char* kMultiStreamContext =
    "PatternSet::stream_find (the multi-pattern window-fed kernel; it "
    "honors chunks, convergence, kernel and begin_mode)";

/// Merges the N per-pattern scans of one text into one QueryResult:
/// positions ascending by (end, begin, pattern_id) — unique, since each
/// pattern emits at most one Match per end — then windowed by the caller's
/// offset/limit. Counts/transitions sum; the phase times and chunk count
/// report the maximum, because the scans overlap on the pool.
QueryResult merge_text(std::span<QueryResult> per_pattern, const QueryOptions& options) {
  QueryResult merged;
  std::size_t total = 0;
  for (QueryResult& r : per_pattern) {
    merged.transitions += r.transitions;
    merged.matches += r.matches;
    merged.died = merged.died || r.died;
    merged.chunks = std::max(merged.chunks, r.chunks);
    merged.reach_seconds = std::max(merged.reach_seconds, r.reach_seconds);
    merged.join_seconds = std::max(merged.join_seconds, r.join_seconds);
    total += r.positions.size();
  }
  merged.accepted = merged.matches > 0;
  merged.positions.reserve(total);
  for (QueryResult& r : per_pattern)
    merged.positions.insert(merged.positions.end(),
                            std::make_move_iterator(r.positions.begin()),
                            std::make_move_iterator(r.positions.end()));
  std::sort(merged.positions.begin(), merged.positions.end(),
            [](const Match& a, const Match& b) {
              if (a.end != b.end) return a.end < b.end;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.pattern_id < b.pattern_id;
            });
  // Page the MERGED stream (the per-pattern kernels ran unpaged — a global
  // window cannot be cut per pattern).
  if (options.offset >= merged.positions.size()) {
    merged.positions.clear();
  } else if (options.offset > 0) {
    merged.positions.erase(merged.positions.begin(),
                           merged.positions.begin() +
                               static_cast<std::ptrdiff_t>(options.offset));
  }
  if (merged.positions.size() > options.limit)
    merged.positions.resize(options.limit);
  return merged;
}

}  // namespace

PatternSet::PatternSet(std::vector<Pattern> patterns, EngineConfig config)
    : patterns_(std::move(patterns)),
      pool_(std::make_unique<ThreadPool>(config.threads, config.admission)) {
  // Pre-warm every searcher (the expensive lazy artifact: determinize +
  // minimize over an all-bytes alphabet) in parallel, once, before any
  // query fans out — pool workers never pay a build mid-query and the
  // first concurrent callers contend on nothing.
  pool_->run(patterns_.size(), [&](std::size_t p) { patterns_[p].searcher(); });
}

PatternSet PatternSet::compile(std::span<const std::string_view> regexes,
                               EngineConfig config) {
  std::vector<Pattern> patterns;
  patterns.reserve(regexes.size());
  for (const std::string_view regex : regexes) {
    if (config.compile_cache != nullptr) {
      patterns.push_back(config.compile_cache->get_or_compile(
          CompileCache::regex_key(regex, 0),
          [&] { return Pattern::compile(regex); }));
    } else {
      patterns.push_back(Pattern::compile(regex));
    }
  }
  return PatternSet(std::move(patterns), config);
}

PatternSet PatternSet::compile(std::initializer_list<std::string_view> regexes,
                               EngineConfig config) {
  return compile(std::span<const std::string_view>(regexes.begin(), regexes.size()),
                 config);
}

QueryResult PatternSet::find(std::string_view text, const QueryOptions& options) const {
  const std::string_view one[]{text};
  return std::move(find_all(std::span<const std::string_view>(one), options).front());
}

std::vector<Match> PatternSet::find_all(std::string_view text,
                                        const QueryOptions& options) const {
  return std::move(find(text, options).positions);
}

std::vector<QueryResult> PatternSet::find_all(std::span<const std::string_view> texts,
                                              const QueryOptions& options) const {
  // Reject before any fan-out; the kernels re-validate the stripped copy.
  validate_query(options, kFindingCaps, kPatternSetContext);
  QueryOptions scan_options = options;
  scan_options.offset = 0;
  scan_options.limit = QueryOptions::kNoLimit;

  // One task per (text, pattern) pair on the shared pool; the per-scan
  // chunk runs nest inline (ThreadPool reentrancy), so pattern scans of
  // one text and scans of different texts all shard at the same level.
  // The one-pair case skips the outer fan-out entirely — a nested run()
  // would execute its chunk tasks inline on one thread, and a lone scan
  // should parallelize at chunk level instead (one pattern, one text is
  // exactly the Engine::find shape).
  // Governance is PER (text, pattern) SCAN: each task's find_matches builds
  // its own governor from the options, so the deadline budgets one scan.
  // The batch-level governor only paces admission blocking (kBlock).
  // Exact begins: force every pattern's lazy reverse artifact BEFORE the
  // fan-out, so pool tasks never contend on a build (same discipline as the
  // constructor's searcher pre-warm; cached after the first exact query).
  const bool exact = options.begin_mode == BeginMode::kExact;
  if (exact)
    for (const Pattern& pattern : patterns_) (void)pattern.reverse_begins();

  const QueryGovernor batch_governor(options.deadline, options.cancel);
  const std::size_t n = patterns_.size();
  std::vector<QueryResult> per_pair(texts.size() * n);
  const auto scan_pair = [&](std::size_t task) {
    const std::size_t t = task / n;
    const auto p = static_cast<std::uint32_t>(task % n);
    const Dfa& dfa = patterns_[p].searcher();
    per_pair[task] = find_matches(dfa, dfa.symbols().translate(texts[t]), *pool_,
                                  scan_options, p, nullptr,
                                  exact ? &patterns_[p].reverse_begins() : nullptr);
  };
  if (per_pair.size() == 1)
    scan_pair(0);
  else
    pool_->run(per_pair.size(), scan_pair,
               batch_governor.active() ? &batch_governor : nullptr);

  std::vector<QueryResult> results;
  results.reserve(texts.size());
  for (std::size_t t = 0; t < texts.size(); ++t)
    results.push_back(
        merge_text(std::span<QueryResult>(per_pair).subspan(t * n, n), options));
  return results;
}

MultiStreamSession PatternSet::stream_find(const QueryOptions& options) const {
  return MultiStreamSession(patterns_, *pool_, options);
}

MultiStreamSession PatternSet::resume_stream(std::string_view blob,
                                             const QueryOptions& options) const {
  return MultiStreamSession(patterns_, *pool_, options, blob);
}

MultiStreamSession::MultiStreamSession(std::vector<Pattern> patterns,
                                       ThreadPool& pool, QueryOptions options)
    : pool_(&pool), options_(std::move(options)) {
  options_.positions = true;  // implied, like Engine::find — this IS finding
  validate_query(options_, kStreamFindingCaps, kMultiStreamContext);
  const bool exact = options_.begin_mode == BeginMode::kExact;
  states_.reserve(patterns.size());
  for (Pattern& pattern : patterns) {
    PatternState state{std::move(pattern)};
    // Pay the lazy builds at open, never inside a feed (Engine::stream's
    // discipline) — a blow-up pattern trips ResourceExhausted here.
    (void)state.pattern.searcher();
    if (exact) state.reverse = &state.pattern.reverse_begins();
    states_.push_back(std::move(state));
  }
}

MultiStreamSession::MultiStreamSession(std::vector<Pattern> patterns,
                                       ThreadPool& pool, QueryOptions options,
                                       std::string_view checkpoint)
    : MultiStreamSession(std::move(patterns), pool, std::move(options)) {
  std::vector<Pattern> fleet;
  fleet.reserve(states_.size());
  for (const PatternState& state : states_) fleet.push_back(state.pattern);
  checkpoint::MultiImage image = checkpoint::decode_multi(
      checkpoint, states_.size(), options_, checkpoint::fleet_fingerprint(fleet));
  consumed_ = image.consumed;
  for (std::size_t p = 0; p < states_.size(); ++p)
    states_[p].carry = std::move(image.carries[p]);
}

std::string MultiStreamSession::checkpoint() const {
  if (poisoned_)
    throw ValidationError(
        "stream_find (checkpoint): session is poisoned — some pattern carries "
        "advanced past others, so there is no consistent state to save; "
        "reset() and refeed, or resume an earlier checkpoint");
  if (!pending_.empty())
    throw ValidationError(
        "stream_find (checkpoint): " + std::to_string(pending_.size()) +
        " buffered matches are undrained — take_matches() first; checkpoints "
        "never carry match payloads, so resuming would silently drop them");
  std::vector<const FindCarry*> carries;
  std::vector<Pattern> fleet;
  carries.reserve(states_.size());
  fleet.reserve(states_.size());
  for (const PatternState& state : states_) {
    carries.push_back(&state.carry);
    fleet.push_back(state.pattern);
  }
  return checkpoint::encode_multi(carries, consumed_, options_,
                                  checkpoint::fleet_fingerprint(fleet));
}

void MultiStreamSession::ensure_live() const {
  if (poisoned_)
    throw ValidationError(
        "stream_find (feed): session is poisoned — a previous feed failed "
        "mid-window (deadline, cancellation or fault), so some pattern "
        "carries advanced and others did not; reset() to reuse the session "
        "(take_matches() still drains what was buffered)");
}

void MultiStreamSession::feed(std::string_view bytes) {
  feed_merged(bytes, [this](const Match& match) { pending_.push_back(match); });
}

void MultiStreamSession::feed(std::string_view bytes, const MatchSink& sink) {
  feed_merged(bytes, sink);
}

void MultiStreamSession::feed_merged(std::string_view bytes, const MatchSink& sink) {
  ensure_live();
  try {
    // One governor per FEED, shared by all N pattern scans — the deadline
    // budgets the whole window, not each pattern separately.
    const QueryGovernor governor(options_.deadline, options_.cancel);
    const QueryGovernor* gov = governor.active() ? &governor : nullptr;

    // Fan one streaming-find task per pattern; each translates the window
    // with its own searcher map and collects into a private buffer (the
    // merge below needs the whole window's matches per pattern, so sinks
    // cannot stream through — and a shared sink would race).
    std::vector<std::vector<Match>> buffers(states_.size());
    pool_->run(
        states_.size(),
        [&](std::size_t p) {
          PatternState& state = states_[p];
          const Dfa& searcher = state.pattern.searcher();
          const std::vector<Symbol> window = searcher.symbols().translate(bytes);
          stream_find_feed(
              searcher, state.carry, window, *pool_, options_,
              [&buffers, p](const Match& match) { buffers[p].push_back(match); },
              static_cast<std::uint32_t>(p), gov, state.reverse);
        },
        gov);
    consumed_ += bytes.size();

    // Merge, serialized per window: per-pattern buffers arrive ascending
    // (end, begin) already, so one sort by the global order is cheap and
    // deterministic (at most one match per (pattern, end) — no ties).
    fault::maybe_throw("mpstream.merge");
    std::vector<Match> merged;
    std::size_t total = 0;
    for (const std::vector<Match>& buffer : buffers) total += buffer.size();
    merged.reserve(total);
    for (std::vector<Match>& buffer : buffers)
      merged.insert(merged.end(), buffer.begin(), buffer.end());
    std::sort(merged.begin(), merged.end(), [](const Match& a, const Match& b) {
      if (a.end != b.end) return a.end < b.end;
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.pattern_id < b.pattern_id;
    });
    for (const Match& match : merged) sink(match);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

std::vector<Match> MultiStreamSession::take_matches() {
  std::vector<Match> taken = std::move(pending_);
  pending_.clear();
  return taken;
}

std::uint64_t MultiStreamSession::matches() const {
  std::uint64_t total = 0;
  for (const PatternState& state : states_) total += state.carry.matches;
  return total;
}

std::uint64_t MultiStreamSession::transitions() const {
  std::uint64_t total = 0;
  for (const PatternState& state : states_) total += state.carry.transitions;
  return total;
}

void MultiStreamSession::reset() {
  for (PatternState& state : states_) state.carry = FindCarry{};
  pending_.clear();
  consumed_ = 0;
  poisoned_ = false;
}

}  // namespace rispar
