// rispar::Engine — the single entry point of the query API.
//
// One Pattern compiles a language once; an Engine binds it to a thread
// pool and exposes every query shape the paper's tool supports through one
// options surface (QueryOptions) and one result type (QueryResult):
//
//   Engine engine(Pattern::compile("(ab|ba)*"));
//   engine.recognize("abba");                       // parallel yes/no
//   engine.count("..abba..abba..");                 // occurrences of p
//   auto session = engine.stream();                 // window-by-window
//   engine.match_all(texts);                        // many texts, one pool
//
// All entry points accept raw bytes (std::string_view) and translate
// internally; span<const Symbol> overloads exist for callers that translate
// once and query many times (the bench drivers). The four devices — DFA,
// NFA, RID, SFA — sit behind the polymorphic Device registry; options a
// device cannot honor raise QueryError instead of being silently ignored.
//
// Concurrency: read-only queries (recognize/count/find/find_all/match_all)
// are safe from concurrent threads on one shared Engine — the compiled
// machines are immutable (lazy builds are call_once) and the pool
// serializes external reach batches, so concurrent callers queue rather
// than corrupt each other (ConcurrentQueries smoke tests in
// tests/test_find_all.cpp). For reach-phase parallelism ACROSS queries,
// compile one Pattern and give each querying thread its own Engine.
// StreamSessions remain single-threaded: feed each session from one thread,
// in order.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "engine/pattern.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

class StreamSession;
class CompileCache;

struct EngineConfig {
  /// Worker threads of the owned pool (0 = hardware concurrency).
  unsigned threads = 0;
  /// SFA construction budget for Variant::kSfa (mappings interned before
  /// giving up — the explosion guard, see core/sfa.hpp).
  std::int32_t sfa_budget = 1 << 16;
  /// Subset-construction budget for the lazily built Σ*p searcher that
  /// count()/find() use, ON TOP of the Pattern's own
  /// PatternLimits::max_subset_states (the tighter wins; 0 = just the
  /// pattern's). A blow-up regex trips ResourceExhausted("subset
  /// construction", ...) at the first count/find instead of consuming
  /// unbounded memory; the searcher stays unbuilt, so retrying through an
  /// Engine with a bigger budget still works.
  std::int32_t subset_budget = 0;
  /// Admission control of the owned pool: bound the external injection
  /// queue and pick the overload response (reject with ResourceExhausted,
  /// or block — see parallel/thread_pool.hpp). Default: unbounded.
  PoolAdmission admission{};
  /// Run on THIS pool instead of owning one. A multi-tenant fleet of
  /// Engines (one per pattern, the rispard serving catalog) shares one
  /// work-stealing pool this way — N tenants, hardware-many workers, one
  /// admission gate — instead of N× oversubscribed worker sets. When set,
  /// `threads` and `admission` are ignored (the shared pool was already
  /// built with its own); the pool must outlive every Engine holding it,
  /// which shared ownership guarantees.
  std::shared_ptr<ThreadPool> shared_pool{};
  /// Memoize Pattern compilation through THIS cache
  /// (engine/compile_cache.hpp). Consulted by the compile-from-source entry
  /// points that accept an EngineConfig — PatternSet::compile and rispard's
  /// build_catalog — so repeated sources (hot reloads, repeated manifest
  /// lines, unchanged .rpb bundles) are shared_ptr bumps instead of fresh
  /// subset constructions. nullptr = compile every time.
  std::shared_ptr<CompileCache> compile_cache{};
};

class Engine {
 public:
  explicit Engine(Pattern pattern, EngineConfig config = {});

  /// Not movable: StreamSessions and device references point into this
  /// object, and a moved-from Engine would leave them dangling. Engines
  /// are cheap to build from a shared Pattern — construct one where you
  /// need it (or heap-allocate for containers).
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  const Pattern& pattern() const { return pattern_; }
  ThreadPool& pool() const { return *pool_; }

  /// The device answering for `variant`. kSfa is built lazily with the
  /// configured budget; throws QueryError when its construction explodes.
  const Device& device(Variant variant) const;
  /// Same, but nullptr instead of a throw for an unbuildable device.
  const Device* try_device(Variant variant) const;

  /// Whole-input parallel recognition with options.variant's device.
  QueryResult recognize(std::string_view text, const QueryOptions& options = {}) const;
  QueryResult recognize(std::span<const Symbol> input,
                        const QueryOptions& options = {}) const;

  /// Occurrences of the pattern in `text` (prefixes ending a match, overlaps
  /// counted) via the lazily built Σ*p searcher. Counting has exactly one
  /// deterministic device, so options.variant is not consulted; chunks and
  /// convergence are honored, anything else raises QueryError. Byte-level
  /// only: the searcher runs on its own all-bytes SymbolMap, NOT the
  /// pattern's, so symbols from translate() would be misinterpreted —
  /// callers holding pre-translated searcher symbols use
  /// count_matches(searcher(), ...) directly.
  QueryResult count(std::string_view text, const QueryOptions& options = {}) const;

  /// Positioned occurrences of the pattern in `text` (one Match per prefix
  /// ending an occurrence, overlaps counted — find(t).matches always equals
  /// count(t).matches, and Match semantics are documented in query.hpp).
  /// Runs the position-emitting parallel kernel over the same Σ*p searcher
  /// as count(): options.variant is not consulted; chunks, convergence,
  /// kernel and offset/limit paging are honored, anything else raises
  /// QueryError. Offsets in the returned Match records are byte offsets
  /// into `text`.
  QueryResult find(std::string_view text, const QueryOptions& options = {}) const;

  /// Convenience over find(): just the positions payload.
  std::vector<Match> find_all(std::string_view text,
                              const QueryOptions& options = {}) const;

  /// Opens a byte-level streaming session on options.variant's device: feed
  /// windows of any size, in order; the decision always equals one-shot
  /// recognition of the concatenation (property-tested). With
  /// options.positions the session is a STREAMING FIND: every feed also
  /// emits the pattern's occurrences incrementally with absolute byte
  /// offsets, equal to find_all of the concatenation under any window
  /// segmentation (fuzz-tested) — drain with take_matches() or a MatchSink
  /// feed. The session borrows this Engine — it must not outlive it.
  StreamSession stream(const QueryOptions& options = {}) const;

  /// Reopens a streaming session from a StreamSession::checkpoint() blob,
  /// continuing BYTE-EXACT from the checkpointed position: feeding the
  /// resumed session the remaining stream yields the same decision and the
  /// same match list as the uninterrupted session and the serial oracle
  /// (fuzz-tested, engine/checkpoint.hpp). `options` must request the same
  /// session shape the checkpoint was taken under — variant, positions,
  /// begin_mode — and the blob must belong to THIS pattern (validated via a
  /// content fingerprint); any mismatch, corruption or truncation throws
  /// ValidationError. Works across Engines and processes: only the pattern
  /// must match, not the Engine instance.
  StreamSession resume_stream(std::string_view blob,
                              const QueryOptions& options = {}) const;

  /// Batch recognition: every text translated and recognized on the shared
  /// pool (texts in parallel, chunks within a text inline), one QueryResult
  /// per text in input order.
  std::vector<QueryResult> match_all(std::span<const std::string_view> texts,
                                     const QueryOptions& options = {}) const;

  /// The counting machine (see Pattern::searcher()), built under this
  /// Engine's subset_budget — throws ResourceExhausted when it trips.
  const Dfa& searcher() const { return pattern_.searcher(config_.subset_budget); }

  /// Translates byte text with the pattern's SymbolMap.
  std::vector<Symbol> translate(std::string_view text) const {
    return pattern_.translate(text);
  }

  /// Serial ground truth (minimal-DFA run from its initial state).
  bool accepts(std::span<const Symbol> input) const;
  bool accepts(std::string_view text) const;

 private:
  Pattern pattern_;
  EngineConfig config_;
  mutable std::shared_ptr<ThreadPool> pool_;  ///< owned, or config_.shared_pool
  DfaDevice dfa_device_;
  NfaDevice nfa_device_;
  RidDevice rid_device_;
};

/// A byte-level streaming session (texts larger than memory, fed window by
/// window). Between windows only the device's PLAS carry survives — plus,
/// on positions sessions, the searcher's one-state find carry — so the
/// footprint is one window plus O(|carry|) plus any undrained matches.
/// Obtained from Engine::stream(); not thread-safe — feed from one thread,
/// in order.
///
/// Streaming find (sessions opened with QueryOptions::positions): every
/// byte feed also advances the Σ*p searcher and emits Match records with
/// ABSOLUTE byte offsets into the concatenation of everything fed. Two
/// drain shapes:
///   * feed(bytes) then take_matches() — the session buffers the window's
///     matches until taken (unbounded if never drained — drain per window);
///   * feed(bytes, sink) — the sink sees each match as the window joins;
///     nothing accumulates in the session.
/// A match's begin may point into an EARLIER window: under the default
/// BeginMode::kSeparator it is the carried separator (a left BOUND, same
/// semantics as one-shot find — see Match in engine/query.hpp); under
/// BeginMode::kExact it is the true leftmost start, resolved through the
/// reverse DFA over the carried history tail (begins cross window
/// boundaries exactly). Callers that slice text around matches must retain
/// bytes accordingly. Symbol-span feeds cannot serve finding (the searcher
/// translates raw bytes with its own map) and REJECT on positions sessions.
///
/// Governance and poisoning: QueryOptions::{deadline, cancel} apply PER
/// FEED — each feed's governor starts at the feed call. A trip (or any
/// other failure escaping a feed) leaves the carry mid-window, so the
/// session is POISONED: further feeds throw ValidationError
/// deterministically until reset(). Matches already buffered remain
/// drainable through take_matches(), accepted()/dead()/the counters stay
/// readable (they describe the last consistent join), and destruction is
/// always clean. Precondition rejects (wrong feed shape for the session)
/// never poison — nothing ran.
class StreamSession {
 public:
  /// Consumes the next window (may be empty — a no-op). On positions
  /// sessions the window's matches are buffered for take_matches().
  void feed(std::string_view bytes);
  /// Consumes the next window, draining its matches through `sink` instead
  /// of buffering. QueryError unless the session was opened with positions.
  void feed(std::string_view bytes, const MatchSink& sink);
  /// Device-symbol window (callers that translate once). QueryError on a
  /// positions session — finding needs the raw bytes.
  void feed(std::span<const Symbol> window);

  /// Decision over everything fed so far (callable repeatedly; feed() may
  /// continue afterwards).
  bool accepted() const { return device_->stream_accepted(carry_); }

  /// True when no DECISION run survives — every extension is rejected too,
  /// so a caller that only wants the decision can stop reading early. The
  /// find side of a positions session never dies on byte input: matches
  /// keep flowing after the decision is dead (substring occurrences outlive
  /// whole-stream membership), so streaming-find callers keep feeding.
  bool dead() const { return !carry_.at_start && carry_.states.empty(); }

  /// Takes the matches buffered since the last take (positions sessions;
  /// QueryError otherwise). Ascending (end, begin); absolute byte offsets.
  std::vector<Match> take_matches();

  /// Total occurrences emitted so far (buffered + drained + taken).
  std::uint64_t matches() const { return carry_.find.matches; }
  /// Whether this session emits positions (opened with
  /// QueryOptions::positions).
  bool finds_positions() const { return options_.positions; }

  Variant variant() const { return device_->variant(); }
  std::uint64_t transitions() const { return carry_.transitions; }
  std::uint64_t windows() const { return carry_.windows; }
  /// Bytes consumed by the find side so far (positions sessions).
  std::uint64_t bytes_consumed() const { return carry_.find.consumed; }

  /// True once a feed failed part-way (deadline, cancellation, injected
  /// fault): the carry is mid-window and further feeds reject until
  /// reset(). See the class comment.
  bool poisoned() const { return poisoned_; }

  /// Serializes the session's full between-window state — decision carry,
  /// find carry, counters, the kExact history tail — into a versioned,
  /// checksummed blob for Engine::resume_stream (engine/checkpoint.hpp has
  /// the format). Callable between feeds, repeatedly; the session stays
  /// usable. Two rejects (ValidationError, nothing encoded): a POISONED
  /// session (its carry is mid-window — there is no consistent state to
  /// save) and UNDRAINED buffered matches (checkpoints never carry match
  /// payloads, so take_matches() first — resuming would otherwise silently
  /// drop them).
  std::string checkpoint() const;

  /// Forgets all input; the next feed() starts from the initial state again.
  /// Also clears poisoning — the session is reusable after a tripped feed.
  void reset() {
    carry_ = StreamCarry{};
    pending_.clear();
    poisoned_ = false;
  }

 private:
  friend class Engine;
  StreamSession(const Device& device, Pattern pattern, ThreadPool& pool,
                QueryOptions options)
      : device_(&device), pattern_(std::move(pattern)), pool_(&pool),
        options_(std::move(options)) {}

  /// Throws ValidationError when the session is poisoned (call before any
  /// feed runs — preconditions that reject BEFORE this never poison).
  void ensure_live() const;

  const Device* device_;
  Pattern pattern_;  ///< shared ownership keeps the automata alive
  ThreadPool* pool_;
  QueryOptions options_;
  StreamCarry carry_;
  std::vector<Match> pending_;  ///< buffered matches awaiting take_matches()
  bool poisoned_ = false;  ///< a feed failed mid-window; see class comment
};

}  // namespace rispar
