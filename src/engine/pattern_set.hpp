// PatternSet — N compiled patterns, one pool, one pass over the text.
//
// The production scanners the paper motivates (grep over a ruleset, log
// triage, DPI signature sets) rarely serve a single regex: they hold a
// fleet of compiled patterns and answer "which patterns match this text,
// and where" for every document that arrives. PatternSet is that
// dispatcher, built on the same query vocabulary as Engine:
//
//   PatternSet set = PatternSet::compile({"ERROR", "timeout", "oom-kill"});
//   for (const Match& m : set.find_all(log_line))        // tagged by pattern_id
//     report(set.pattern(m.pattern_id), m.begin, m.end);
//   auto reports = set.find_all(documents);              // text × pattern fan-out
//
// Every pattern compiles once (searchers pre-warmed in parallel at
// construction); queries fan out text×pattern tasks over ONE shared
// ThreadPool — the per-pattern chunk runs nest inline on the same pool
// (ThreadPool reentrancy), so the sharding unit is the (text, pattern)
// pair. Results merge per text into one ascending (end, begin, pattern_id)
// stream of Match records; QueryOptions::offset/limit page the MERGED
// stream, the way a server caps a response, while `matches` still reports
// the total across all patterns.
//
// Concurrency: like Engine, a PatternSet is safe for concurrent read-only
// callers — the compiled machines are immutable and the pool serializes
// external batches (queries from different threads queue; each still runs
// with full parallelism).
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pattern.hpp"
#include "parallel/match_count.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

class MultiStreamSession;

class PatternSet {
 public:
  /// Takes ownership of already-compiled patterns (shared-ownership copies
  /// are cheap — the same Pattern may live in an Engine too). Pattern ids
  /// in emitted Match records are indices into this vector. Searchers are
  /// pre-warmed in parallel on the owned pool. Of EngineConfig `threads`
  /// and `admission` apply (the owned pool); finding runs the one
  /// deterministic searcher per pattern, so there is no SFA and
  /// `sfa_budget` has nothing to govern, and the patterns arrive already
  /// compiled so `subset_budget` does not either (set
  /// PatternLimits::max_subset_states at compile time instead).
  explicit PatternSet(std::vector<Pattern> patterns, EngineConfig config = {});

  /// Compiles one regex per entry. Throws RegexError on the first bad one.
  static PatternSet compile(std::span<const std::string_view> regexes,
                            EngineConfig config = {});
  static PatternSet compile(std::initializer_list<std::string_view> regexes,
                            EngineConfig config = {});

  /// Not movable, like Engine: the pool is referenced by in-flight queries.
  PatternSet(PatternSet&&) = delete;
  PatternSet& operator=(PatternSet&&) = delete;

  std::size_t size() const { return patterns_.size(); }
  const Pattern& pattern(std::size_t id) const { return patterns_[id]; }
  ThreadPool& pool() const { return *pool_; }

  /// Positioned occurrences of EVERY pattern in `text`, merged ascending by
  /// (end, begin, pattern_id) and windowed by options.offset/limit;
  /// `matches` totals all patterns' occurrences (equal to the sum of N
  /// independent Engine::find runs, property-tested). Honors chunks,
  /// convergence, kernel and paging; anything else raises QueryError.
  /// `transitions`/`matches` sum over the patterns' scans; `reach_seconds`/
  /// `join_seconds`/`chunks` report the maximum, since the scans overlap on
  /// the pool. `died` is true when any pattern's consistent run died.
  QueryResult find(std::string_view text, const QueryOptions& options = {}) const;

  /// Convenience over find(): just the merged positions payload.
  std::vector<Match> find_all(std::string_view text,
                              const QueryOptions& options = {}) const;

  /// Batch serving: every (text, pattern) pair is one pool task, one merged
  /// QueryResult per text in input order — match_all-shaped, but positioned
  /// and tagged.
  std::vector<QueryResult> find_all(std::span<const std::string_view> texts,
                                    const QueryOptions& options = {}) const;

  /// Opens a multi-pattern streaming-find session: ONE byte feed advances
  /// every pattern's searcher carry and emits the merged tagged match
  /// stream (see MultiStreamSession). Honors chunks, convergence, kernel
  /// and begin_mode; anything else raises QueryError at open. The session
  /// borrows this set's pool — it must not outlive the PatternSet.
  MultiStreamSession stream_find(const QueryOptions& options = {}) const;

  /// Reopens a multi-pattern session from a MultiStreamSession::checkpoint()
  /// blob, continuing byte-exact (the Engine::resume_stream analogue —
  /// engine/checkpoint.hpp). The blob must have been taken against the SAME
  /// fleet in the SAME order (validated via a combined content fingerprint)
  /// and `options` must request the same shape; any mismatch, corruption or
  /// truncation throws ValidationError.
  MultiStreamSession resume_stream(std::string_view blob,
                                   const QueryOptions& options = {}) const;

 private:
  std::vector<Pattern> patterns_;
  std::unique_ptr<ThreadPool> pool_;
};

/// N patterns, one byte stream, one merged match stream — the streaming
/// face of PatternSet::find_all (and of the rispard multi-pattern sessions
/// built directly from a serving catalog). Each feed fans one
/// stream_find_feed task per pattern over the shared pool (per-pattern
/// chunk runs nest inline — ThreadPool reentrancy), then merges the
/// window's matches ascending by (end, begin, pattern_id) — feeding a text
/// in any segmentation emits exactly the merged one-shot find_all list,
/// which in turn equals N independent single-pattern sessions
/// (fuzz-tested). Offsets are absolute byte offsets into the concatenation
/// of everything fed; Match::pattern_id indexes the construction vector.
///
/// Begin modes follow QueryOptions::begin_mode exactly like StreamSession:
/// kSeparator carries per-pattern last separators, kExact additionally
/// holds each pattern's reverse-DFA artifact and history tail (built and
/// pre-warmed at open).
///
/// Governance and poisoning mirror StreamSession: deadline/cancel apply PER
/// FEED (one governor covers all N pattern scans of the window); a feed
/// that fails part-way (deadline, cancellation, injected fault) leaves
/// SOME patterns advanced and others not, so the session POISONS — further
/// feeds throw ValidationError until reset(). Matches already buffered stay
/// drainable; counters describe the last consistent merge. Not
/// thread-safe: feed from one thread, in order.
class MultiStreamSession {
 public:
  /// Validates `options` against the streaming-find capability set (throws
  /// QueryError), pre-warms every searcher — and, under begin_mode=kExact,
  /// every reverse artifact — at open, never inside a feed. The pool must
  /// outlive the session (PatternSet::stream_find guarantees it; direct
  /// construction — the rispard catalog path — makes the caller
  /// responsible).
  MultiStreamSession(std::vector<Pattern> patterns, ThreadPool& pool,
                     QueryOptions options);

  /// Resume form: opens exactly like the plain constructor, then installs
  /// the carries decoded from `checkpoint` (a MultiStreamSession::
  /// checkpoint() blob taken against the same fleet in the same order).
  /// ValidationError on any mismatch, corruption or truncation — the
  /// session is never half-resumed. rispard's RESUME_SESSION path for
  /// multi-pattern sessions; PatternSet::resume_stream is the convenience.
  MultiStreamSession(std::vector<Pattern> patterns, ThreadPool& pool,
                     QueryOptions options, std::string_view checkpoint);

  /// Consumes the next window, buffering the merged matches for
  /// take_matches(). Empty windows are no-ops.
  void feed(std::string_view bytes);
  /// Consumes the next window, draining the merged matches through `sink`
  /// in (end, begin, pattern_id) order instead of buffering.
  void feed(std::string_view bytes, const MatchSink& sink);

  /// Takes the matches buffered since the last take; ascending
  /// (end, begin, pattern_id), absolute byte offsets.
  std::vector<Match> take_matches();

  /// Total occurrences emitted so far, summed over all patterns.
  std::uint64_t matches() const;
  /// True when any pattern matched anywhere in the stream — the CLOSED
  /// accounting of a server session.
  bool accepted() const { return matches() > 0; }
  std::uint64_t bytes_consumed() const { return consumed_; }
  /// Searcher transitions executed so far, summed over all patterns.
  std::uint64_t transitions() const;
  std::size_t patterns() const { return states_.size(); }
  const Pattern& pattern(std::size_t id) const { return states_[id].pattern; }

  /// True once a feed failed part-way; see the class comment.
  bool poisoned() const { return poisoned_; }

  /// Serializes every pattern's carry plus the shared byte count into a
  /// versioned, checksummed blob for the resume constructor /
  /// PatternSet::resume_stream. Same contract as StreamSession::
  /// checkpoint(): callable between feeds, rejects (ValidationError) on a
  /// poisoned session and on undrained buffered matches — take_matches()
  /// first.
  std::string checkpoint() const;

  /// Forgets all input; the next feed() starts every pattern from its
  /// initial state again. Also clears poisoning.
  void reset();

 private:
  struct PatternState {
    Pattern pattern;
    /// The pattern's cached reverse artifact under kExact (address stable —
    /// it lives in the shared Compiled block); nullptr under kSeparator.
    const ReverseBegins* reverse = nullptr;
    FindCarry carry;
  };

  void feed_merged(std::string_view bytes, const MatchSink& sink);
  void ensure_live() const;

  std::vector<PatternState> states_;
  ThreadPool* pool_;
  QueryOptions options_;
  std::uint64_t consumed_ = 0;
  std::vector<Match> pending_;  ///< buffered matches awaiting take_matches()
  bool poisoned_ = false;
};

}  // namespace rispar
