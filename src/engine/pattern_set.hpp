// PatternSet — N compiled patterns, one pool, one pass over the text.
//
// The production scanners the paper motivates (grep over a ruleset, log
// triage, DPI signature sets) rarely serve a single regex: they hold a
// fleet of compiled patterns and answer "which patterns match this text,
// and where" for every document that arrives. PatternSet is that
// dispatcher, built on the same query vocabulary as Engine:
//
//   PatternSet set = PatternSet::compile({"ERROR", "timeout", "oom-kill"});
//   for (const Match& m : set.find_all(log_line))        // tagged by pattern_id
//     report(set.pattern(m.pattern_id), m.begin, m.end);
//   auto reports = set.find_all(documents);              // text × pattern fan-out
//
// Every pattern compiles once (searchers pre-warmed in parallel at
// construction); queries fan out text×pattern tasks over ONE shared
// ThreadPool — the per-pattern chunk runs nest inline on the same pool
// (ThreadPool reentrancy), so the sharding unit is the (text, pattern)
// pair. Results merge per text into one ascending (end, begin, pattern_id)
// stream of Match records; QueryOptions::offset/limit page the MERGED
// stream, the way a server caps a response, while `matches` still reports
// the total across all patterns.
//
// Concurrency: like Engine, a PatternSet is safe for concurrent read-only
// callers — the compiled machines are immutable and the pool serializes
// external batches (queries from different threads queue; each still runs
// with full parallelism).
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pattern.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

class PatternSet {
 public:
  /// Takes ownership of already-compiled patterns (shared-ownership copies
  /// are cheap — the same Pattern may live in an Engine too). Pattern ids
  /// in emitted Match records are indices into this vector. Searchers are
  /// pre-warmed in parallel on the owned pool. Of EngineConfig `threads`
  /// and `admission` apply (the owned pool); finding runs the one
  /// deterministic searcher per pattern, so there is no SFA and
  /// `sfa_budget` has nothing to govern, and the patterns arrive already
  /// compiled so `subset_budget` does not either (set
  /// PatternLimits::max_subset_states at compile time instead).
  explicit PatternSet(std::vector<Pattern> patterns, EngineConfig config = {});

  /// Compiles one regex per entry. Throws RegexError on the first bad one.
  static PatternSet compile(std::span<const std::string_view> regexes,
                            EngineConfig config = {});
  static PatternSet compile(std::initializer_list<std::string_view> regexes,
                            EngineConfig config = {});

  /// Not movable, like Engine: the pool is referenced by in-flight queries.
  PatternSet(PatternSet&&) = delete;
  PatternSet& operator=(PatternSet&&) = delete;

  std::size_t size() const { return patterns_.size(); }
  const Pattern& pattern(std::size_t id) const { return patterns_[id]; }
  ThreadPool& pool() const { return *pool_; }

  /// Positioned occurrences of EVERY pattern in `text`, merged ascending by
  /// (end, begin, pattern_id) and windowed by options.offset/limit;
  /// `matches` totals all patterns' occurrences (equal to the sum of N
  /// independent Engine::find runs, property-tested). Honors chunks,
  /// convergence, kernel and paging; anything else raises QueryError.
  /// `transitions`/`matches` sum over the patterns' scans; `reach_seconds`/
  /// `join_seconds`/`chunks` report the maximum, since the scans overlap on
  /// the pool. `died` is true when any pattern's consistent run died.
  QueryResult find(std::string_view text, const QueryOptions& options = {}) const;

  /// Convenience over find(): just the merged positions payload.
  std::vector<Match> find_all(std::string_view text,
                              const QueryOptions& options = {}) const;

  /// Batch serving: every (text, pattern) pair is one pool task, one merged
  /// QueryResult per text in input order — match_all-shaped, but positioned
  /// and tagged.
  std::vector<QueryResult> find_all(std::span<const std::string_view> texts,
                                    const QueryOptions& options = {}) const;

 private:
  std::vector<Pattern> patterns_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace rispar
