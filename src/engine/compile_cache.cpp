#include "engine/compile_cache.hpp"

#include <sys/stat.h>

#include <utility>

namespace rispar {

CompileCache::CompileCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::string CompileCache::regex_key(std::string_view regex,
                                    std::int32_t max_subset_states) {
  std::string key = "re:";
  key += std::to_string(max_subset_states);
  key += ':';
  key += regex;
  return key;
}

std::string CompileCache::bundle_key(const std::string& path,
                                     std::uint32_t index) {
  std::string key = "rpb:";
  key += path;
  key += '#';
  key += std::to_string(index);
  key += '@';
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    key += std::to_string(st.st_mtime);
    key += ':';
    key += std::to_string(st.st_size);
  } else {
    // Unstattable file: still a valid key — the load itself will throw, and
    // nothing gets cached under it.
    key += "unstattable";
  }
  return key;
}

Pattern CompileCache::get_or_compile(const std::string& key,
                                     const std::function<Pattern()>& make) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->pattern;
    }
    ++misses_;
  }

  Pattern pattern = make();  // outside the lock: a slow compile blocks nobody
  const std::size_t pattern_bytes = pattern.approx_bytes();

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a double-compile race; the first insert wins, ours is discarded.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->pattern;
  }
  lru_.push_front(Entry{key, std::move(pattern), pattern_bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += pattern_bytes;
  while (bytes_ > capacity_ && lru_.size() > 1) {  // newest always survives
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().pattern;
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CompileCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace rispar
