// Session checkpoints — the durable-session layer (ISSUE 10 tentpole a).
//
// A checkpoint is a versioned, checksummed binary image of everything a
// streaming session carries between windows: the device's decision states,
// the Σ*p searcher's find carry (state, consumed/last_sep/matches counters,
// the kExact history tail), and — for multi-pattern sessions — the N
// per-pattern carries plus the shared byte count. A client (or the rispard
// server on its behalf) takes one with StreamSession::checkpoint() /
// MultiStreamSession::checkpoint(), stores the opaque blob anywhere, and
// resumes byte-exact with Engine::resume_stream() /
// PatternSet::resume_stream() — on the same Engine, a fresh one, or a
// different process entirely: the resumed session's match stream equals the
// uninterrupted session's and the serial oracle's under every window
// segmentation (CheckpointFuzz in tests/test_fuzz.cpp).
//
// Blob layout (all integers little-endian, unaligned):
//
//   u32 magic "RSCK" | u32 version | u8 kind | u8 variant | u8 positions |
//   u8 begin_mode | u64 fingerprint | body | u64 checksum64(everything
//   before the trailer)
//
//   body (kind = kSingleStream):  u8 at_start | u64 transitions |
//     u64 windows | u32 nstates | nstates x u32 state | find-carry image
//     (parallel/match_count.hpp encode_find_carry)
//   body (kind = kMultiStream):   u64 consumed | u32 npatterns |
//     npatterns x find-carry image
//
// The fingerprint is a checksum64 over the minimal DFA's content (shape,
// initial state, finals, transition table, byte→symbol map) — canonical for
// the language, so resuming against a different pattern (or a reordered
// fleet) rejects with ValidationError instead of silently producing garbage
// offsets, and the same source recompiled elsewhere fingerprints equal. The
// trailing checksum64 (the bundle layer's 4-lane FNV-1a, src/bundle/
// format.hpp) makes corruption and truncation a typed error, never a wild
// read: every truncation and random byte flip of a blob throws (fuzzed).
//
// What a checkpoint does NOT carry: buffered-but-untaken matches (drain
// take_matches() first — checkpoint() rejects otherwise, so nothing is
// silently lost) and the speculative-start scratch set (refilled lazily).
// Poisoned sessions cannot checkpoint — their carry is mid-window.
//
// Fault-injection sites: "checkpoint.encode" / "checkpoint.decode"
// (util/fault_inject.hpp; swept in tests/test_fault_inject.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/device.hpp"
#include "engine/pattern.hpp"
#include "engine/query.hpp"

namespace rispar::checkpoint {

inline constexpr std::uint32_t kMagic = 0x4b435352u;  // "RSCK" as u32le
inline constexpr std::uint32_t kVersion = 1;

enum class Kind : std::uint8_t {
  kSingleStream = 1,  ///< StreamSession (one pattern, decision + find carry)
  kMultiStream = 2,   ///< MultiStreamSession (N find carries, no decision)
};

/// Stable identity of one compiled pattern for resume validation: a
/// checksum64 over the minimal DFA's content (shape, initial state, finals,
/// transition table, byte→symbol map). Identical for the same source
/// recompiled in another process — the property the rispard RESUME_SESSION
/// path relies on across restarts.
std::uint64_t pattern_fingerprint(const Pattern& pattern);

/// Combined ordered-fleet fingerprint of a multi-pattern session: mixes
/// every pattern's fingerprint with its position, so a reordered or
/// resubset fleet rejects at resume.
std::uint64_t fleet_fingerprint(std::span<const Pattern> patterns);

/// Serializes a single-pattern session's whole carry under the envelope
/// described above. Fault site "checkpoint.encode".
std::string encode_stream(const StreamCarry& carry, Variant variant,
                          const QueryOptions& options, std::uint64_t fingerprint);

/// Validates and decodes an encode_stream blob. Throws ValidationError on
/// ANY mismatch: magic/version/checksum (corruption, truncation), kind,
/// variant, positions/begin_mode against `options`, fingerprint against
/// the resuming pattern. Fault site "checkpoint.decode".
StreamCarry decode_stream(std::string_view blob, Variant variant,
                          const QueryOptions& options, std::uint64_t fingerprint);

/// Serializes a multi-pattern session's N carries + shared byte count.
/// Fault site "checkpoint.encode".
std::string encode_multi(const std::vector<const FindCarry*>& carries,
                         std::uint64_t consumed, const QueryOptions& options,
                         std::uint64_t fingerprint);

/// What decode_multi returns: the shared byte count and one carry per
/// pattern, in fleet order.
struct MultiImage {
  std::uint64_t consumed = 0;
  std::vector<FindCarry> carries;
};

/// Validates and decodes an encode_multi blob; `expected_patterns` is the
/// resuming fleet's size (a blob with a different carry count rejects).
/// Error taxonomy identical to decode_stream. Fault site
/// "checkpoint.decode".
MultiImage decode_multi(std::string_view blob, std::size_t expected_patterns,
                        const QueryOptions& options, std::uint64_t fingerprint);

}  // namespace rispar::checkpoint
