#include "engine/query.hpp"

namespace rispar {

const char* begin_mode_name(BeginMode mode) {
  switch (mode) {
    case BeginMode::kSeparator: return "separator";
    case BeginMode::kExact: return "exact";
  }
  return "?";
}

const char* variant_name(Variant variant) {
  switch (variant) {
    case Variant::kDfa: return "DFA";
    case Variant::kNfa: return "NFA";
    case Variant::kRid: return "RID";
    case Variant::kSfa: return "SFA";
  }
  return "?";
}

void validate_query(const QueryOptions& options, const DeviceCaps& caps,
                    const std::string& context) {
  const auto reject = [&](const char* knob) {
    throw ValidationError(context + " cannot honor '" + knob + "'");
  };
  if (options.convergence && !caps.convergence) reject("convergence");
  if (options.kernel != DetKernel::kFused && !caps.kernel_select) reject("kernel");
  if (options.lookback > 0 && !caps.lookback) reject("lookback");
  if (options.tree_join && !caps.tree_join) reject("tree_join");
  if ((options.offset != 0 || options.limit != QueryOptions::kNoLimit) && !caps.paging)
    reject("offset/limit");
  if (options.positions && !caps.positions) reject("positions");
  if (options.begin_mode == BeginMode::kExact && !caps.exact_begins)
    reject("begin_mode=exact");
}

std::string device_context(const char* what, Variant variant) {
  return std::string("the ") + variant_name(variant) + " device (" + what + ")";
}

}  // namespace rispar
