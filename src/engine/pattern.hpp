// Pattern — one language, compiled once, shared everywhere.
//
// A Pattern owns (with shared ownership — copying is a cheap shared_ptr
// bump) every machine the query devices need: the ε-free Glushkov/cleaned
// NFA (the source of truth), the minimal DFA, the interface-minimized
// RI-DFA, and, built lazily on first demand, the SFA comparator and the
// Σ*p "searcher" DFA that powers occurrence counting. Packed transition
// tables are pre-warmed at compile time so no pool worker ever pays the
// build. Engines, stream sessions, and user code can all hold copies of
// one Pattern; the compiled machines outlive them all together.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "automata/searcher.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"
#include "parallel/csdpa.hpp"

namespace rispar::bundle {
class MappedBundle;
}

namespace rispar {

/// Construction budgets of a Pattern. The compile-time guard against
/// pathological inputs: a regex whose powerset construction explodes fails
/// with ResourceExhausted instead of consuming unbounded memory.
struct PatternLimits {
  /// Max interned subsets per determinization (the minimal DFA at compile
  /// time and the lazily built Σ*p searcher); 0 = unbounded. Exceeding it
  /// throws ResourceExhausted("subset construction", ...).
  std::int32_t max_subset_states = 0;
};

class Pattern {
 public:
  /// Compiles a regular expression via Glushkov (ε-free by construction).
  /// Throws RegexError on a malformed pattern and ResourceExhausted when a
  /// construction budget in `limits` trips.
  static Pattern compile(std::string_view regex, PatternLimits limits = {});

  /// Takes ownership of an NFA (ε-removed and trimmed internally).
  /// `source` is an optional display name recorded in saved bundles ("" =
  /// none); it is NOT a regex (compile() records the regex itself).
  static Pattern from_nfa(Nfa nfa, PatternLimits limits = {},
                          std::string_view source = "");

  /// Parses a Timbuk-format automaton (interchange with other tools).
  static Pattern from_timbuk(const std::string& text, PatternLimits limits = {});

  /// Serializes the compiled pattern — byte classes (bytemap), ε-free NFA
  /// (the source of truth) and minimal DFA — as concatenated sections of
  /// the line-oriented automata/serialize.* format. For ahead-of-time
  /// compiled fleets: deserialize() skips regex parsing AND the subset
  /// construction/minimization of the DFA (the RI-DFA and the lazy
  /// artifacts — SFA, Σ*p searcher — are rebuilt on demand). Round-trip is
  /// exact: symbol numbering, state numbering of the DFA, and every query
  /// result are preserved (property-tested in tests/test_serialize.cpp).
  std::string serialize() const;

  /// Rebuilds a pattern from serialize() output. Throws std::runtime_error
  /// on malformed input. The bundle is trusted: the DFA section is used as
  /// the minimal DFA without re-deriving it from the NFA.
  static Pattern deserialize(const std::string& text);

  // --- binary bundles (src/bundle/, docs/api.md "Bundles and the compile
  // --- cache"): the zero-copy deployment path ---

  /// Saves this pattern as a one-pattern .rpb bundle (atomic replace).
  /// Forces the lazy artifacts first — the searcher always, the SFA with
  /// the default budget — so the bundle ships the full machine family and a
  /// mapped consumer never derives anything. Throws std::system_error on
  /// I/O failure.
  void save_bundle(const std::string& path) const;

  /// Multi-pattern bundle: one .rpb holding every pattern in order —
  /// load_mapped(path, i) restores patterns[i].
  static void save_bundle_many(const std::string& path,
                               std::span<const Pattern> patterns);

  /// The bundle image as bytes (what save_bundle writes) — for tests and
  /// the in-memory fuzz harness.
  static std::string bundle_image(std::span<const Pattern> patterns);

  /// Maps a .rpb bundle and restores pattern `index` zero-copy: NO regex
  /// parse, NO subset construction, NO table re-pack — the packed tables
  /// every kernel reads are adopted in place as views into the mapping.
  /// The mapping is shared: fleet processes loading the same bundle share
  /// page-cache pages, and every machine copied out of the pattern co-owns
  /// it. Throws ValidationError on a corrupt or malformed bundle and
  /// std::system_error when the file cannot be mapped.
  static Pattern load_mapped(const std::string& path, std::uint32_t index = 0);

  /// load_mapped over an already-open bundle (one map, many patterns).
  static Pattern from_bundle(std::shared_ptr<const bundle::MappedBundle> bundle,
                             std::uint32_t index = 0);

  /// The mapping this pattern was loaded from (nullptr when compiled or
  /// text-deserialized).
  const std::shared_ptr<const bundle::MappedBundle>& mapped_bundle() const;

  /// The recorded source: the regex for compile()d patterns (see
  /// source_is_regex()), the display name given to from_nfa, or "" —
  /// persisted through bundles.
  std::string_view source() const;
  bool source_is_regex() const;

  /// Rough resident footprint of the compiled machines (dense + packed
  /// headroom), WITHOUT forcing any lazy artifact — the byte-capacity
  /// accounting unit of engine/compile_cache.hpp.
  std::size_t approx_bytes() const;

  const Nfa& nfa() const;
  const Dfa& min_dfa() const;
  const Ridfa& ridfa() const;
  const SymbolMap& symbols() const;

  /// Translates byte text with the shared SymbolMap (alien bytes become
  /// SymbolMap::kUnmapped, which every device treats as an immediate dead
  /// transition — never UB).
  std::vector<Symbol> translate(std::string_view text) const;

  /// The Σ*p occurrence-counting machine: final after exactly the prefixes
  /// ending an occurrence of the pattern. Derived from the NFA by adding a
  /// Σ-self-loop start state over an alphabet extended to cover ALL bytes
  /// (text between occurrences is arbitrary), then determinizing and
  /// minimizing. Built lazily on first use, then cached and shared.
  /// NOTE: translate counting input with searcher().symbols(), not the
  /// pattern's own map — Engine::count does this internally.
  ///
  /// `max_subset_states` bounds the searcher's determinization on top of
  /// the pattern's own limit (0 = just the pattern's limit); the FIRST
  /// caller's budget wins, like sfa(). A tripped budget throws
  /// ResourceExhausted and leaves the searcher unbuilt, so a later call
  /// with a bigger (or no) budget may still succeed.
  const Dfa& searcher(std::int32_t max_subset_states = 0) const;

  /// The reverse-DFA confirmation artifact powering BeginMode::kExact
  /// (automata/searcher.hpp): the reversed minimal pattern DFA over the
  /// searcher's byte-complete alphabet plus the separator-soundness
  /// certificate. Built lazily on first exact-begin query, then cached and
  /// shared; budget semantics identical to searcher(). NOT persisted in
  /// .rpb bundles — a mapped pattern rebuilds it on demand.
  const ReverseBegins& reverse_begins(std::int32_t max_subset_states = 0) const;

  /// The SFA device (speculation-free comparator), built lazily with the
  /// given construction budget. Returns nullptr when the SFA explodes past
  /// `max_states` mappings — the trade-off the paper reports. The first
  /// call's budget wins; later calls return the cached outcome.
  const SfaDevice* sfa_device(std::int32_t max_states = 1 << 16) const;

  /// The lazily built SFA itself (nullptr when exploded); see sfa_device().
  const Sfa* sfa(std::int32_t max_states = 1 << 16) const;

  /// The budget the SFA probe actually ran with (0 when not yet probed) —
  /// later callers with a different configured budget get the cached
  /// outcome, and error messages must name this value, not theirs.
  std::int32_t sfa_probe_budget() const;

  /// The construction budgets this pattern was compiled with.
  const PatternLimits& limits() const;

 private:
  struct Compiled;
  explicit Pattern(std::shared_ptr<const Compiled> compiled);

  std::shared_ptr<const Compiled> compiled_;
};

}  // namespace rispar
