#include "engine/pattern.hpp"

#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/searcher.hpp"
#include "automata/serialize.hpp"
#include "automata/subset.hpp"
#include "automata/timbuk.hpp"
#include "bundle/mapped_bundle.hpp"
#include "bundle/reader.hpp"
#include "bundle/writer.hpp"
#include "core/interface_min.hpp"
#include "regex/parser.hpp"

namespace rispar {

struct Pattern::Compiled {
  /// First member so it is destroyed LAST: adopted packed views co-own the
  /// mapping independently, but keeping the declaration order honest makes
  /// the lifetime story local. nullptr unless loaded via from_bundle.
  std::shared_ptr<const bundle::MappedBundle> bundle;
  std::string source;          ///< regex (source_is_regex) or display name
  bool source_is_regex = false;
  Nfa nfa;
  Dfa min_dfa;
  Ridfa ridfa;
  PatternLimits limits;

  // Lazily built artifacts, shared by every copy of the Pattern. call_once
  // keeps concurrent first uses safe; the structs live behind the shared_ptr
  // so their addresses are stable for the devices that reference them.
  mutable std::once_flag searcher_once;
  mutable std::optional<Dfa> searcher;

  mutable std::once_flag reverse_once;
  mutable std::optional<ReverseBegins> reverse;

  mutable std::once_flag sfa_once;
  mutable std::optional<Sfa> sfa;
  mutable std::optional<SfaDevice> sfa_dev;
  mutable std::int32_t sfa_probe_budget = 0;  ///< 0 = never probed
};

namespace {

/// The tighter of the caller's and the pattern's own subset budget (0 =
/// none) — shared by the lazy searcher/reverse builds.
std::int32_t tighter_budget(std::int32_t own, std::int32_t requested) {
  std::int32_t budget = own;
  if (requested > 0 && (budget <= 0 || requested < budget)) budget = requested;
  return budget;
}

}  // namespace

Pattern::Pattern(std::shared_ptr<const Compiled> compiled)
    : compiled_(std::move(compiled)) {}

Pattern Pattern::compile(std::string_view regex, PatternLimits limits) {
  Pattern pattern = from_nfa(glushkov_nfa(parse_regex(std::string(regex))), limits);
  // Safe: the Compiled block has no other owner yet.
  auto& c = const_cast<Compiled&>(*pattern.compiled_);
  c.source = std::string(regex);
  c.source_is_regex = true;
  return pattern;
}

Pattern Pattern::from_nfa(Nfa nfa, PatternLimits limits, std::string_view source) {
  Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : std::move(nfa);
  Nfa trimmed = trim_unreachable(eps_free);
  Dfa min_dfa = minimize_dfa(determinize_bounded(trimmed, limits.max_subset_states));
  Ridfa ridfa = build_minimized_ridfa(trimmed);
  // Pre-warm the packed tables once, before any device or pool sees them.
  min_dfa.packed();
  ridfa.dfa().packed();
  auto compiled = std::make_shared<Compiled>();
  compiled->source = std::string(source);
  compiled->nfa = std::move(trimmed);
  compiled->min_dfa = std::move(min_dfa);
  compiled->ridfa = std::move(ridfa);
  compiled->limits = limits;
  return Pattern(std::move(compiled));
}

Pattern Pattern::from_timbuk(const std::string& text, PatternLimits limits) {
  return from_nfa(timbuk_from_string(text), limits);
}

std::string Pattern::serialize() const {
  std::ostringstream out;
  out << "# rispar compiled pattern (docs/api.md, 'Ahead-of-time compiled fleets')\n";
  out << "pattern 1\n";
  save_symbol_map(out, symbols());
  save_nfa(out, nfa());
  save_dfa(out, min_dfa());
  return out.str();
}

Pattern Pattern::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    std::int32_t version = 0;
    fields >> kind >> version;
    if (kind != "pattern" || version != 1)
      throw std::runtime_error(
          "malformed pattern file: expected 'pattern 1' header, got '" + line + "'");
    saw_header = true;
    break;
  }
  if (!saw_header) throw std::runtime_error("malformed pattern file: missing header");

  const SymbolMap map = load_symbol_map(in);
  Nfa nfa = load_nfa(in, map);
  Dfa min_dfa = load_dfa(in, map);

  // The serialized NFA was ε-free and trimmed, but hand-edited bundles get
  // the same normalization a fresh compile would.
  Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : std::move(nfa);
  Nfa trimmed = trim_unreachable(eps_free);
  Ridfa ridfa = build_minimized_ridfa(trimmed);
  // Deliberately NO packed() pre-warm here: a fleet deserializing hundreds
  // of patterns should pay the pack on first use, not at load time (the
  // devices warm it in their constructors anyway). Same laziness as the
  // mmap'd bundle path, which never packs at all.
  auto compiled = std::make_shared<Compiled>();
  compiled->nfa = std::move(trimmed);
  compiled->min_dfa = std::move(min_dfa);
  compiled->ridfa = std::move(ridfa);
  return Pattern(std::move(compiled));
}

const Nfa& Pattern::nfa() const { return compiled_->nfa; }
const Dfa& Pattern::min_dfa() const { return compiled_->min_dfa; }
const Ridfa& Pattern::ridfa() const { return compiled_->ridfa; }
const SymbolMap& Pattern::symbols() const { return compiled_->nfa.symbols(); }

std::vector<Symbol> Pattern::translate(std::string_view text) const {
  return symbols().translate(text);
}

const Dfa& Pattern::searcher(std::int32_t max_subset_states) const {
  const Compiled& c = *compiled_;
  // A throw (ResourceExhausted, or an injected bad_alloc) leaves the once
  // flag unset, so a later call may retry — possibly with a bigger budget.
  const std::int32_t budget =
      tighter_budget(c.limits.max_subset_states, max_subset_states);
  std::call_once(c.searcher_once,
                 [&] { c.searcher.emplace(build_searcher_dfa(c.nfa, budget)); });
  return *c.searcher;
}

const ReverseBegins& Pattern::reverse_begins(std::int32_t max_subset_states) const {
  const Compiled& c = *compiled_;
  const std::int32_t budget =
      tighter_budget(c.limits.max_subset_states, max_subset_states);
  std::call_once(c.reverse_once,
                 [&] { c.reverse.emplace(build_reverse_begins(c.nfa, budget)); });
  return *c.reverse;
}

const Sfa* Pattern::sfa(std::int32_t max_states) const {
  const Compiled& c = *compiled_;
  std::call_once(c.sfa_once, [&] {
    c.sfa_probe_budget = max_states;
    c.sfa = try_build_sfa(c.min_dfa, max_states);
    if (c.sfa.has_value()) c.sfa_dev.emplace(*c.sfa, c.min_dfa);
  });
  return c.sfa.has_value() ? &*c.sfa : nullptr;
}

std::int32_t Pattern::sfa_probe_budget() const { return compiled_->sfa_probe_budget; }

const PatternLimits& Pattern::limits() const { return compiled_->limits; }

const SfaDevice* Pattern::sfa_device(std::int32_t max_states) const {
  sfa(max_states);  // force the lazy build (same once_flag)
  return compiled_->sfa_dev.has_value() ? &*compiled_->sfa_dev : nullptr;
}

// --- binary bundles ---

namespace {

/// Assembles the writer's view of one pattern, forcing the lazy artifacts
/// so the bundle ships the full family (an exploded SFA stays absent — the
/// mapped pattern keeps the same nullptr outcome lazily).
bundle::PatternSections sections_of(const Pattern& pattern) {
  bundle::PatternSections s;
  s.source = pattern.source();
  s.source_is_regex = pattern.source_is_regex();
  s.max_subset_states = pattern.limits().max_subset_states;
  s.nfa = &pattern.nfa();
  s.min_dfa = &pattern.min_dfa();
  s.ridfa = &pattern.ridfa();
  s.searcher = &pattern.searcher();
  s.sfa = pattern.sfa();
  s.sfa_probe_budget = pattern.sfa_probe_budget();
  return s;
}

std::vector<bundle::PatternSections> sections_of_all(
    std::span<const Pattern> patterns) {
  std::vector<bundle::PatternSections> sections;
  sections.reserve(patterns.size());
  for (const Pattern& pattern : patterns) sections.push_back(sections_of(pattern));
  return sections;
}

}  // namespace

void Pattern::save_bundle(const std::string& path) const {
  save_bundle_many(path, std::span<const Pattern>(this, 1));
}

void Pattern::save_bundle_many(const std::string& path,
                               std::span<const Pattern> patterns) {
  bundle::write_bundle_file(path, sections_of_all(patterns));
}

std::string Pattern::bundle_image(std::span<const Pattern> patterns) {
  return bundle::write_bundle(sections_of_all(patterns));
}

Pattern Pattern::from_bundle(std::shared_ptr<const bundle::MappedBundle> bundle,
                             std::uint32_t index) {
  bundle::LoadedPattern loaded = bundle::load_pattern(bundle, index);
  auto compiled = std::make_shared<Compiled>();
  compiled->bundle = std::move(bundle);
  compiled->source = std::move(loaded.source);
  compiled->source_is_regex = loaded.source_is_regex;
  compiled->limits.max_subset_states = loaded.max_subset_states;
  compiled->nfa = std::move(loaded.nfa);
  compiled->min_dfa = std::move(loaded.min_dfa);
  compiled->ridfa = std::move(loaded.ridfa);
  // Pre-seed the lazy artifacts the bundle shipped: consuming the once_flag
  // now means searcher()/sfa() hand back the mapped machines instead of
  // rebuilding them. A bundle WITHOUT these sections leaves the flags
  // unconsumed — the artifacts rebuild lazily, like a text-loaded pattern.
  if (loaded.searcher.has_value()) {
    std::call_once(compiled->searcher_once,
                   [&] { compiled->searcher = std::move(loaded.searcher); });
  }
  if (loaded.sfa.has_value()) {
    std::call_once(compiled->sfa_once, [&] {
      compiled->sfa_probe_budget = loaded.sfa_probe_budget;
      compiled->sfa = std::move(loaded.sfa);
      compiled->sfa_dev.emplace(*compiled->sfa, compiled->min_dfa);
    });
  }
  return Pattern(std::move(compiled));
}

Pattern Pattern::load_mapped(const std::string& path, std::uint32_t index) {
  return from_bundle(bundle::MappedBundle::open(path), index);
}

const std::shared_ptr<const bundle::MappedBundle>& Pattern::mapped_bundle() const {
  return compiled_->bundle;
}

std::string_view Pattern::source() const { return compiled_->source; }
bool Pattern::source_is_regex() const { return compiled_->source_is_regex; }

std::size_t Pattern::approx_bytes() const {
  const Compiled& c = *compiled_;
  std::size_t bytes = sizeof(Compiled) + c.source.size();
  bytes += c.nfa.num_edges() * sizeof(NfaEdge) +
           static_cast<std::size_t>(c.nfa.num_states()) * 32;
  bytes += c.min_dfa.table().size() * sizeof(State);
  bytes += c.ridfa.dfa().table().size() * sizeof(State);
  for (State p = 0; p < c.ridfa.num_states(); ++p)
    bytes += c.ridfa.contents(p).size() * sizeof(State) + sizeof(std::vector<State>);
  bytes += static_cast<std::size_t>(c.ridfa.num_nfa_states()) * 2 * sizeof(State);
  // ×2 headroom stands in for the packed copies and the lazy artifacts —
  // deliberately NOT forcing packed()/searcher()/sfa() here (the cache must
  // be able to account for a pattern without materializing it).
  return bytes * 2;
}

}  // namespace rispar
