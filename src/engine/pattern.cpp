#include "engine/pattern.hpp"

#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/serialize.hpp"
#include "automata/subset.hpp"
#include "automata/timbuk.hpp"
#include "core/interface_min.hpp"
#include "regex/parser.hpp"

namespace rispar {

struct Pattern::Compiled {
  Nfa nfa;
  Dfa min_dfa;
  Ridfa ridfa;
  PatternLimits limits;

  // Lazily built artifacts, shared by every copy of the Pattern. call_once
  // keeps concurrent first uses safe; the structs live behind the shared_ptr
  // so their addresses are stable for the devices that reference them.
  mutable std::once_flag searcher_once;
  mutable std::optional<Dfa> searcher;

  mutable std::once_flag sfa_once;
  mutable std::optional<Sfa> sfa;
  mutable std::optional<SfaDevice> sfa_dev;
  mutable std::int32_t sfa_probe_budget = 0;  ///< 0 = never probed
};

namespace {

/// The Σ*p machine of an ε-free NFA: a new start state that loops on every
/// symbol of an alphabet extended to cover all 256 bytes (occurrences sit
/// inside arbitrary text) and mirrors the old initial state's out-edges.
Dfa build_searcher(const Nfa& nfa, std::int32_t max_subset_states) {
  const SymbolMap& map = nfa.symbols();
  const std::int32_t k = map.num_symbols();

  // Re-derive the byte partition and add the uncovered bytes as one class,
  // so every byte translates to a real symbol for the searcher.
  std::vector<ByteSet> classes(static_cast<std::size_t>(k));
  ByteSet uncovered;
  for (int b = 0; b < 256; ++b) {
    const std::int32_t s = map.symbol_of(static_cast<unsigned char>(b));
    if (s == SymbolMap::kUnmapped)
      uncovered.set(static_cast<std::size_t>(b));
    else
      classes[static_cast<std::size_t>(s)].set(static_cast<std::size_t>(b));
  }
  if (uncovered.any()) classes.push_back(uncovered);
  const SymbolMap full = SymbolMap::build(classes);

  // Old symbol ids → the (possibly renumbered) ids of the full map.
  std::vector<Symbol> remap(static_cast<std::size_t>(k));
  for (std::int32_t s = 0; s < k; ++s)
    remap[static_cast<std::size_t>(s)] = full.symbol_of(map.representative(s));

  Nfa searcher(full.num_symbols(), full);
  const State loop = searcher.add_state(nfa.is_final(nfa.initial()));
  std::vector<State> copy(static_cast<std::size_t>(nfa.num_states()));
  for (State q = 0; q < nfa.num_states(); ++q)
    copy[static_cast<std::size_t>(q)] = searcher.add_state(nfa.is_final(q));
  for (State q = 0; q < nfa.num_states(); ++q)
    for (const NfaEdge& edge : nfa.edges(q))
      searcher.add_edge(copy[static_cast<std::size_t>(q)],
                        remap[static_cast<std::size_t>(edge.symbol)],
                        copy[static_cast<std::size_t>(edge.target)]);
  for (Symbol a = 0; a < full.num_symbols(); ++a) searcher.add_edge(loop, a, loop);
  for (const NfaEdge& edge : nfa.edges(nfa.initial()))
    searcher.add_edge(loop, remap[static_cast<std::size_t>(edge.symbol)],
                      copy[static_cast<std::size_t>(edge.target)]);
  searcher.set_initial(loop);

  Dfa dfa = minimize_dfa(determinize_bounded(searcher, max_subset_states));
  dfa.packed();  // pre-warm like every other query machine
  return dfa;
}

}  // namespace

Pattern::Pattern(std::shared_ptr<const Compiled> compiled)
    : compiled_(std::move(compiled)) {}

Pattern Pattern::compile(std::string_view regex, PatternLimits limits) {
  return from_nfa(glushkov_nfa(parse_regex(std::string(regex))), limits);
}

Pattern Pattern::from_nfa(Nfa nfa, PatternLimits limits) {
  Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : std::move(nfa);
  Nfa trimmed = trim_unreachable(eps_free);
  Dfa min_dfa = minimize_dfa(determinize_bounded(trimmed, limits.max_subset_states));
  Ridfa ridfa = build_minimized_ridfa(trimmed);
  // Pre-warm the packed tables once, before any device or pool sees them.
  min_dfa.packed();
  ridfa.dfa().packed();
  auto compiled = std::make_shared<Compiled>();
  compiled->nfa = std::move(trimmed);
  compiled->min_dfa = std::move(min_dfa);
  compiled->ridfa = std::move(ridfa);
  compiled->limits = limits;
  return Pattern(std::move(compiled));
}

Pattern Pattern::from_timbuk(const std::string& text, PatternLimits limits) {
  return from_nfa(timbuk_from_string(text), limits);
}

std::string Pattern::serialize() const {
  std::ostringstream out;
  out << "# rispar compiled pattern (docs/api.md, 'Ahead-of-time compiled fleets')\n";
  out << "pattern 1\n";
  save_symbol_map(out, symbols());
  save_nfa(out, nfa());
  save_dfa(out, min_dfa());
  return out.str();
}

Pattern Pattern::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    std::int32_t version = 0;
    fields >> kind >> version;
    if (kind != "pattern" || version != 1)
      throw std::runtime_error(
          "malformed pattern file: expected 'pattern 1' header, got '" + line + "'");
    saw_header = true;
    break;
  }
  if (!saw_header) throw std::runtime_error("malformed pattern file: missing header");

  const SymbolMap map = load_symbol_map(in);
  Nfa nfa = load_nfa(in, map);
  Dfa min_dfa = load_dfa(in, map);

  // The serialized NFA was ε-free and trimmed, but hand-edited bundles get
  // the same normalization a fresh compile would.
  Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : std::move(nfa);
  Nfa trimmed = trim_unreachable(eps_free);
  Ridfa ridfa = build_minimized_ridfa(trimmed);
  min_dfa.packed();  // pre-warm like from_nfa
  ridfa.dfa().packed();
  auto compiled = std::make_shared<Compiled>();
  compiled->nfa = std::move(trimmed);
  compiled->min_dfa = std::move(min_dfa);
  compiled->ridfa = std::move(ridfa);
  return Pattern(std::move(compiled));
}

const Nfa& Pattern::nfa() const { return compiled_->nfa; }
const Dfa& Pattern::min_dfa() const { return compiled_->min_dfa; }
const Ridfa& Pattern::ridfa() const { return compiled_->ridfa; }
const SymbolMap& Pattern::symbols() const { return compiled_->nfa.symbols(); }

std::vector<Symbol> Pattern::translate(std::string_view text) const {
  return symbols().translate(text);
}

const Dfa& Pattern::searcher(std::int32_t max_subset_states) const {
  const Compiled& c = *compiled_;
  // The tighter of the caller's and the pattern's own budget (0 = none). A
  // throw (ResourceExhausted, or an injected bad_alloc) leaves the once
  // flag unset, so a later call may retry — possibly with a bigger budget.
  std::int32_t budget = c.limits.max_subset_states;
  if (max_subset_states > 0 && (budget <= 0 || max_subset_states < budget))
    budget = max_subset_states;
  std::call_once(c.searcher_once,
                 [&] { c.searcher.emplace(build_searcher(c.nfa, budget)); });
  return *c.searcher;
}

const Sfa* Pattern::sfa(std::int32_t max_states) const {
  const Compiled& c = *compiled_;
  std::call_once(c.sfa_once, [&] {
    c.sfa_probe_budget = max_states;
    c.sfa = try_build_sfa(c.min_dfa, max_states);
    if (c.sfa.has_value()) c.sfa_dev.emplace(*c.sfa, c.min_dfa);
  });
  return c.sfa.has_value() ? &*c.sfa : nullptr;
}

std::int32_t Pattern::sfa_probe_budget() const { return compiled_->sfa_probe_budget; }

const PatternLimits& Pattern::limits() const { return compiled_->limits; }

const SfaDevice* Pattern::sfa_device(std::int32_t max_states) const {
  sfa(max_states);  // force the lazy build (same once_flag)
  return compiled_->sfa_dev.has_value() ? &*compiled_->sfa_dev : nullptr;
}

}  // namespace rispar
