// CompileCache — memoized Pattern compilation for fleets that see the same
// sources repeatedly.
//
// rispard's hot reload recompiles its WHOLE manifest to build a new catalog
// generation, even when one line changed — with a cache, the unchanged
// lines are shared_ptr bumps. The same applies to multi-tenant manifests
// that repeat patterns, and to .rpb bundle entries (keyed with the file's
// identity stamp so a republished bundle misses cleanly).
//
// Semantics: an LRU keyed by an opaque string (regex_key/bundle_key build
// the canonical shapes), bounded by approximate resident BYTES rather than
// entry count — Pattern::approx_bytes() is the accounting unit, so a
// handful of pathological patterns cannot pin unbounded memory behind a
// generous entry budget. Thread-safe; compilation runs OUTSIDE the lock
// (a slow compile never blocks hits), and a concurrent double compile is
// resolved first-insert-wins.
//
// Patterns are returned BY VALUE (shared-ownership copies): an eviction
// never invalidates a Pattern someone already holds — it just drops the
// cache's own reference.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "engine/pattern.hpp"

namespace rispar {

struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< sum of approx_bytes over resident entries
};

class CompileCache {
 public:
  /// `capacity_bytes` bounds the summed approx_bytes of resident entries
  /// (the newest entry is always retained, even when it alone exceeds the
  /// capacity — a cache that cannot hold the pattern it just compiled
  /// would thrash on every call).
  explicit CompileCache(std::size_t capacity_bytes = kDefaultCapacityBytes);

  static constexpr std::size_t kDefaultCapacityBytes = 64u << 20;

  /// Key of a regex compile under the given subset budget (the budget is
  /// part of the key: the same regex under a different PatternLimits is a
  /// different Pattern).
  static std::string regex_key(std::string_view regex,
                               std::int32_t max_subset_states);

  /// Key of pattern `index` inside the .rpb bundle at `path`, stamped with
  /// the file's (mtime, size) identity so republishing the bundle under the
  /// same name misses instead of serving stale machines.
  static std::string bundle_key(const std::string& path, std::uint32_t index);

  /// The cached Pattern for `key`, or `make()`'s result, inserted. `make`
  /// runs without the lock held; its exceptions propagate and insert
  /// nothing. When two threads miss the same key concurrently, the first
  /// insert wins and the loser adopts it (one compile is discarded — never
  /// two live copies of one key).
  Pattern get_or_compile(const std::string& key,
                         const std::function<Pattern()>& make);

  CompileCacheStats stats() const;
  void clear();
  std::size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    Pattern pattern;
    std::size_t bytes;
  };

  mutable std::mutex mutex_;
  const std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace rispar
