// Input segmentation x = y_1 y_2 ... y_c (paper Sect. 2: every chunk must be
// non-empty, y_i ∈ Σ+).
#pragma once

#include <cstddef>
#include <vector>

namespace rispar {

struct ChunkSpan {
  std::size_t begin = 0;
  std::size_t length = 0;

  bool operator==(const ChunkSpan&) const = default;
};

/// Splits [0, n) into `requested` balanced non-empty spans. When requested
/// exceeds n, the chunk count is clamped to n (paper's Σ+ requirement);
/// n == 0 yields no chunks. Sizes differ by at most one.
std::vector<ChunkSpan> split_chunks(std::size_t n, std::size_t requested);

}  // namespace rispar
