// Streaming recognition: texts larger than memory, fed window by window.
//
// Each window is recognized with the RID scheme (parallel reach over c
// chunks, serial join); between windows only the PLAS set is carried, so
// the memory footprint is one window plus O(|interface|). The first chunk
// of the first window starts in {q0}; the first chunk of every later
// window starts speculatively from the interface image of the carried
// PLAS — exactly the paper's join condition applied at window granularity,
// so feeding a text in any segmentation yields the same decision as the
// one-shot recognizer (property-tested).
#pragma once

#include <span>
#include <vector>

#include "core/ridfa.hpp"
#include "parallel/csdpa.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

class StreamingRecognizer {
 public:
  /// `ridfa` and `pool` must outlive the recognizer.
  StreamingRecognizer(const Ridfa& ridfa, ThreadPool& pool, DeviceOptions options);

  /// Consumes the next window (may be empty — a no-op). Not thread-safe;
  /// call from one thread, windows in order.
  void feed(std::span<const Symbol> window);

  /// Decision over everything fed so far (callable repeatedly; feed() may
  /// continue afterwards).
  bool accepted() const;

  /// True when no run survives — every extension is rejected too, so a
  /// caller can stop reading early.
  bool dead() const { return !at_start_ && plas_.empty(); }

  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t windows() const { return windows_; }

  /// Forgets all input; the next feed() starts from {q0} again.
  void reset();

 private:
  const Ridfa& ridfa_;
  ThreadPool& pool_;
  DeviceOptions options_;
  std::vector<State> plas_;  ///< CA states after the last fed window
  bool at_start_ = true;     ///< nothing fed yet
  std::uint64_t transitions_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace rispar
