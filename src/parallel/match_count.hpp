// Parallel occurrence counting — the paper's motivating applications
// (pattern matching in books, biological data, log files) usually want
// "how many matches", not just yes/no.
//
// Build the DFA of Σ*p (Engine::count derives it from any Pattern): a
// prefix x[0..j] ends an occurrence of p iff the DFA is in a final state
// after j. Counting those positions parallelizes with the same speculative
// scheme as recognition: each chunk runs from every state recording
// (end, hits); the join walks the single consistent path from the initial
// state and sums the hit counters. Correct for any *total-on-the-text*
// DFA; if the true run dies, the count up to the death point is returned
// and `died` is set.
//
// Counting takes the unified QueryOptions: `chunks` as everywhere, and
// `convergence` enables a run-convergence counting kernel — runs that land
// in the same state at the same position share all future hits, so merged
// runs execute (and count) as one from the merge point on, with per-start
// totals reconstructed through the merge tree at the end. Knobs counting
// cannot honor (lookback, tree_join, a kernel choice) raise QueryError.
// Transition accounting follows the convention of parallel/ca_run.hpp.
//
// ## Finding (positions, not just totals)
//
// find_matches extends the same speculative scheme to emit WHERE the
// occurrences are (Match — semantics documented on the struct in
// engine/query.hpp). Each chunk run records, per hit, the chunk-local end
// position and the run's *last separator* (the last position at which its
// state was the searcher's initial state again, i.e. no partial occurrence
// pending); the join walks the consistent path, resolves separators that
// predate a chunk (or a convergence merge) through the carried/global
// tracker, and pages the emitted list with QueryOptions::offset/limit while
// still counting every occurrence in `matches`.
//
// Finding honors the full kernel vocabulary: `convergence` shares hit
// LISTS through the merge tree (per-start lists reconstructed lazily, only
// for the one consistent start per chunk, at join time), and `kernel`
// selects between the fused lockstep loop on the width-packed table
// (kFused, the default serving path), the vector-gather lockstep with
// branch-light flag-extract hit recording (kSimd — AVX2 or the portable
// unrolled fallback, runtime-picked; see util/simd_gather.hpp), and a
// plain row-table stepping loop (kReference) — with find_matches_serial as
// the one-scan oracle above all three (property-tested equal across every
// combination).
#pragma once

#include <cstdint>
#include <span>

#include "automata/dfa.hpp"
#include "automata/searcher.hpp"
#include "engine/query.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

/// What counting honors of the unified options, and the validate_query
/// context naming it — shared with Engine::count so it can reject a bad
/// query up front, before the searcher build and text translation.
inline constexpr DeviceCaps kCountingCaps{.convergence = true};
inline constexpr const char* kCountingContext =
    "count (the one deterministic counting kernel; it honors chunks and "
    "convergence)";

/// Serial reference: one scan, counting final-state positions. The empty
/// prefix is not counted (an occurrence needs at least the position after
/// its last byte), matching the parallel version. Fills matches/died/
/// transitions/chunks of the unified result; accepted = matches > 0.
QueryResult count_matches_serial(const Dfa& dfa, std::span<const Symbol> input);

/// Parallel counting over options.chunks chunks on the pool; equals the
/// serial count on every input, with convergence on or off
/// (property-tested). Throws QueryError for knobs counting cannot honor.
/// `governor` overrides the one built from options.deadline/cancel (a
/// streaming device passes its per-feed governor so the whole feed shares
/// one clock); null = build from the options.
QueryResult count_matches(const Dfa& dfa, std::span<const Symbol> input,
                          ThreadPool& pool, const QueryOptions& options,
                          const QueryGovernor* governor = nullptr);

/// What finding honors of the unified options (chunks, convergence, kernel,
/// offset/limit paging) — shared with Engine::find / PatternSet so they can
/// reject a bad query before the searcher build and text translation.
inline constexpr DeviceCaps kFindingCaps{.convergence = true,
                                         .kernel_select = true,
                                         .paging = true,
                                         .positions = true,
                                         .exact_begins = true};
inline constexpr const char* kFindingContext =
    "find (the position-emitting counting kernel; it honors chunks, "
    "convergence, kernel, begin_mode and offset/limit)";

/// Serial reference oracle for finding: one scan of `input` emitting a
/// Match per final-state position (begin = the scan's last separator; see
/// engine/query.hpp). With `exact_reverse` (the pattern's ReverseBegins
/// DFA), every hit's begin is instead pinned by a backward reverse-DFA scan
/// to the leftmost exact start — the BeginMode::kExact oracle. Fills
/// positions/matches/died/transitions/chunks; accepted = matches > 0. No
/// paging — the full list, for the property tests.
QueryResult find_matches_serial(const Dfa& dfa, std::span<const Symbol> input,
                                std::uint32_t pattern_id = 0,
                                const Dfa* exact_reverse = nullptr);

/// Parallel position finding over options.chunks chunks on the pool; the
/// positions equal the serial oracle's on every input for every
/// (convergence, kernel) combination (property-tested), then windowed by
/// options.offset/limit (`matches` still counts all). Throws QueryError for
/// knobs finding cannot honor. Every emitted Match carries `pattern_id`.
/// Under options.begin_mode == BeginMode::kExact, `reverse` (the pattern's
/// cached artifact) is REQUIRED — each joined hit's begin is resolved by a
/// backward scan from its end (floored at the approximate begin when the
/// artifact certifies separators sound, at the text start otherwise).
QueryResult find_matches(const Dfa& dfa, std::span<const Symbol> input,
                         ThreadPool& pool, const QueryOptions& options,
                         std::uint32_t pattern_id = 0,
                         const QueryGovernor* governor = nullptr,
                         const ReverseBegins* reverse = nullptr);

/// The find side of a streaming session's carry. The Σ*p searcher is
/// deterministic, so between windows only one state plus absolute-offset
/// bookkeeping survives — the streaming analogue of the (end, last-
/// separator) tracking the one-shot join carries across chunks. `last_sep`
/// is the absolute position of the searcher's last separator (see Match in
/// engine/query.hpp); a hit whose chunk-local separator predates its window
/// resolves through it, which is how cross-window begins stay exact.
struct FindCarry {
  State state = kDeadState;    ///< searcher state after the consumed prefix
  bool at_start = true;        ///< nothing fed yet
  bool died = false;           ///< the searcher run left the automaton
  std::uint64_t consumed = 0;  ///< absolute bytes consumed so far
  std::uint64_t last_sep = 0;  ///< absolute last-separator position
  std::uint64_t matches = 0;   ///< total occurrences emitted so far
  std::uint64_t transitions = 0;
  /// Cached speculative start set (all searcher states), filled on the
  /// first window that fans out to more than one chunk and reused across
  /// windows — the per-feed analogue of the devices' constructor-time
  /// all_states_ members. Session-scoped scratch, not semantic state.
  std::vector<State> speculative_starts;
  /// BeginMode::kExact only: retained window symbols the backward
  /// reverse-DFA scan resolves cross-window begins over. `history_base` is
  /// the absolute position of history[0]; the retained tail always covers
  /// [history_base, consumed). When the reverse artifact certifies
  /// separators sound, each feed truncates the tail to the post-join last
  /// separator (a match can never start before it); otherwise the session
  /// retains from the stream start — the price of exactness on patterns
  /// whose separators are unsound (docs/api.md, "Begin modes"). Untouched
  /// (empty) under kSeparator.
  std::vector<Symbol> history;
  std::uint64_t history_base = 0;
};

/// Appends `carry`'s SEMANTIC state — searcher state, flags, the absolute
/// counters and the kExact history tail — to `out` as a little-endian
/// binary image. `speculative_starts` is session-scoped scratch and is
/// NOT encoded (a resumed session refills it lazily). This is the
/// per-pattern payload unit of the session checkpoints; the versioned,
/// checksummed envelope around it lives in engine/checkpoint.hpp.
void encode_find_carry(const FindCarry& carry, std::string& out);

/// Decodes an encode_find_carry image from `image` starting at `pos`,
/// advancing `pos` past it. Throws ValidationError on truncation and on
/// fields violating the carry invariants (history covers exactly
/// [history_base, consumed) when retained; last_sep <= consumed; a fresh
/// carry has nothing consumed) — a corrupted or forged image surfaces as
/// a typed error, never as an inconsistent session.
FindCarry decode_find_carry(std::string_view image, std::size_t& pos);

/// What streaming find honors (chunks, convergence, kernel — no paging: an
/// unbounded stream has no total to page against, so offset/limit REJECT),
/// and the validate_query context naming it.
inline constexpr DeviceCaps kStreamFindingCaps{.convergence = true,
                                               .kernel_select = true,
                                               .positions = true,
                                               .exact_begins = true};
inline constexpr const char* kStreamFindingContext =
    "streaming find (the window-fed position-emitting kernel; it honors "
    "chunks, convergence, kernel and begin_mode)";

/// Consumes one window of a streamed input on the Σ*p searcher `dfa`,
/// updating `carry` in place and emitting every occurrence ending inside
/// the window through `sink` with ABSOLUTE offsets (begin may predate the
/// window — the carried separator). Windows of any size: large windows fan
/// out over options.chunks finding-kernel runs (the window's first chunk
/// continues from the carried state, later chunks speculate from every
/// searcher state), with the join serialized per window. Feeding a text in
/// any segmentation emits exactly the one-shot find_matches/serial-oracle
/// list (property- and fuzz-tested). Empty windows are no-ops.
/// Under options.begin_mode == BeginMode::kExact, `reverse` is REQUIRED and
/// the carry retains window history (FindCarry::history) so begins crossing
/// feed boundaries resolve exactly — segmentation-invariant like the rest
/// of the carry.
void stream_find_feed(const Dfa& dfa, FindCarry& carry, std::span<const Symbol> window,
                      ThreadPool& pool, const QueryOptions& options,
                      const MatchSink& sink, std::uint32_t pattern_id = 0,
                      const QueryGovernor* governor = nullptr,
                      const ReverseBegins* reverse = nullptr);

}  // namespace rispar
