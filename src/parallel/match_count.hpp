// Parallel occurrence counting — the paper's motivating applications
// (pattern matching in books, biological data, log files) usually want
// "how many matches", not just yes/no.
//
// Build the DFA of Σ*p (Engine::count derives it from any Pattern): a
// prefix x[0..j] ends an occurrence of p iff the DFA is in a final state
// after j. Counting those positions parallelizes with the same speculative
// scheme as recognition: each chunk runs from every state recording
// (end, hits); the join walks the single consistent path from the initial
// state and sums the hit counters. Correct for any *total-on-the-text*
// DFA; if the true run dies, the count up to the death point is returned
// and `died` is set.
//
// Counting takes the unified QueryOptions: `chunks` as everywhere, and
// `convergence` enables a run-convergence counting kernel — runs that land
// in the same state at the same position share all future hits, so merged
// runs execute (and count) as one from the merge point on, with per-start
// totals reconstructed through the merge tree at the end. Knobs counting
// cannot honor (lookback, tree_join, a kernel choice) raise QueryError.
// Transition accounting follows the convention of parallel/ca_run.hpp.
#pragma once

#include <cstdint>
#include <span>

#include "automata/dfa.hpp"
#include "engine/query.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

/// What counting honors of the unified options, and the validate_query
/// context naming it — shared with Engine::count so it can reject a bad
/// query up front, before the searcher build and text translation.
inline constexpr DeviceCaps kCountingCaps{.convergence = true};
inline constexpr const char* kCountingContext =
    "count (the one deterministic counting kernel; it honors chunks and "
    "convergence)";

/// Serial reference: one scan, counting final-state positions. The empty
/// prefix is not counted (an occurrence needs at least the position after
/// its last byte), matching the parallel version. Fills matches/died/
/// transitions/chunks of the unified result; accepted = matches > 0.
QueryResult count_matches_serial(const Dfa& dfa, std::span<const Symbol> input);

/// Parallel counting over options.chunks chunks on the pool; equals the
/// serial count on every input, with convergence on or off
/// (property-tested). Throws QueryError for knobs counting cannot honor.
QueryResult count_matches(const Dfa& dfa, std::span<const Symbol> input,
                          ThreadPool& pool, const QueryOptions& options);

}  // namespace rispar
