// Parallel occurrence counting — the paper's motivating applications
// (pattern matching in books, biological data, log files) usually want
// "how many matches", not just yes/no.
//
// Build the DFA of Σ*p (".*pattern" in this library's syntax): a prefix
// x[0..j] ends an occurrence of p iff the DFA is in a final state after j.
// Counting those positions parallelizes with the same speculative scheme
// as recognition: each chunk runs from every state recording (end, hits);
// the join walks the single consistent path from the initial state and
// sums the hit counters. Correct for any *total-on-the-text* DFA; if the
// true run dies, the count up to the death point is returned and `died`
// is set.
#pragma once

#include <cstdint>
#include <span>

#include "automata/dfa.hpp"
#include "parallel/csdpa.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

struct MatchCount {
  std::uint64_t matches = 0;   ///< prefixes ending in a final state
  bool died = false;           ///< the run left the automaton (partial count)
  std::uint64_t chunks = 0;
};

/// Serial reference: one scan, counting final-state positions. The empty
/// prefix is not counted (an occurrence needs at least the position after
/// its last byte), matching the parallel version.
MatchCount count_matches_serial(const Dfa& dfa, std::span<const Symbol> input);

/// Parallel counting over `chunks` chunks on the pool; equals the serial
/// count on every input (property-tested).
MatchCount count_matches(const Dfa& dfa, std::span<const Symbol> input,
                         ThreadPool& pool, std::size_t chunks);

}  // namespace rispar
