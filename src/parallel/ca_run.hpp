// Reach-phase kernels: the speculative chunk runs of the three CSDPA
// variants (paper Sect. 2 and 3.2).
//
// Each kernel consumes one chunk of the symbol stream from a set of starting
// states and returns the partial mapping λ_i = { (start, end) : the run from
// `start` survives the whole chunk }, together with the executed-transition
// count. Runs that die early simply do not appear in λ.
//
// ## Transition accounting (the convention, stated once)
//
// `transitions` is the paper's primary overhead metric (Fig. 1: min-DFA 15 /
// NFA 14 / RI-DFA 9 on "aabcab" in two chunks). Everything that reports a
// transition count — these kernels, the serial oracles in core/serial_match,
// and the devices in parallel/csdpa that sum them — follows one convention:
//
//  * deterministic machines count ONE transition per consumed symbol per
//    live run; a run that dies after j symbols contributes exactly j, and
//    the symbol it dies on is NOT counted (the lookup that returns dead is
//    work saved, not work done);
//  * under run convergence, merged runs count as ONE live run from the
//    merge point on (that is the saving being measured);
//  * an out-of-alphabet symbol kills every run without being counted;
//  * the NFA frontier simulation counts every edge traversal (each element
//    of ρ(s, a) applied to each frontier member);
//  * look-back probe runs (csdpa.cpp) are real speculative work and are
//    added to the chunk's count.
//
// ## Kernel implementations
//
// The deterministic kernels exist in three implementations, selected by
// DetChunkOptions::kernel and proven equivalent by property tests:
//
//  * kFused (default) — single pass over the chunk for ALL starts.
//    Non-convergent mode runs lockstep over a compacted SoA state array
//    (one symbol load, N table lookups with the hot rows shared in cache);
//    convergent mode replaces the per-symbol hash probes of the seed with
//    an epoch-stamped dense state→group array and splices member lists
//    through a flat next-pointer scheme, so group merging never allocates.
//    Both run on the width-specialized packed table (automata/
//    packed_table.hpp) and validate the chunk's symbols once up front
//    (first_invalid_symbol) instead of per step.
//  * kSimd — the same lockstep structure, but each symbol advances the
//    whole live block through ONE vector gather over the packed column
//    (util/simd_gather.hpp: AVX2 vpgatherdd with i32-widened indices for
//    the u8/u16 widths, or the portable unrolled fallback — picked once at
//    runtime by util/cpuid.hpp, so kSimd runs everywhere and never
//    rejects). Dead runs are compacted out of the index vector after every
//    symbol so the gather block stays dense; convergent mode gathers the
//    group states and reuses the epoch-stamped merge bookkeeping on the
//    gathered buffer. Results are bit-identical to kFused/kReference.
//  * kReference — the seed implementations (start-at-a-time independent
//    runs; unordered_map convergence), kept as the oracle for the property
//    tests and for A/B benchmarks.
//
// Run convergence itself (merging runs that land in the same state at the
// same position — the Mytkowicz-style optimization the paper lists as
// compatible, Sect. 5) remains OFF by default: the paper's baselines
// execute the |I| runs independently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "util/bitset.hpp"
#include "util/governance.hpp"

namespace rispar {

struct DetChunkResult {
  /// (start, end) pairs of surviving runs, in `starts` order.
  std::vector<std::pair<State, State>> lambda;
  /// Distinct end states of the surviving runs, in group-creation order —
  /// populated by the CONVERGENT kernels only (where the surviving groups
  /// carry exactly this set for free). Consumers that need the deduplicated
  /// λ image (e.g. the look-back path of DfaDevice) read it directly
  /// instead of re-sorting lambda.
  std::vector<State> distinct_ends;
  std::uint64_t transitions = 0;
};

enum class DetKernel : std::uint8_t {
  kFused,      ///< lockstep SoA / epoch-stamped convergence on packed tables
  kReference,  ///< seed implementations (test oracle, A/B baseline)
  kSimd,       ///< vector-gather lockstep (AVX2 or portable, runtime-picked)
};

/// "fused" / "reference" / "simd" — CLI values and bench labels.
const char* kernel_name(DetKernel kernel);

struct DetChunkOptions {
  bool convergence = false;
  DetKernel kernel = DetKernel::kFused;
  /// Cooperative governance checkpoints (deadline/cancellation): polled
  /// roughly every kGovernorStride consumed symbols inside every kernel
  /// implementation. Null or inactive = zero per-symbol cost (the kernels
  /// normalize to nullptr up front). The pointer must outlive the call; it
  /// is shared read-only across the pool's chunk tasks.
  const QueryGovernor* governor = nullptr;
};

/// Advances every state in `starts` over `chunk`. See the header comment
/// for accounting and implementation selection.
DetChunkResult run_chunk_det(const Dfa& dfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const DetChunkOptions& options = {});

struct NfaChunkResult {
  /// Per start (in `starts` order): the frontier set δ(start, chunk); an
  /// entry is present only when that set is non-empty.
  std::vector<std::pair<State, Bitset>> lambda;
  std::uint64_t transitions = 0;  ///< NFA edge traversals (see header)
};

/// Runs the NFA frontier simulation once per starting state. `governor`
/// adds the same cooperative per-stride checkpoints as the deterministic
/// kernels (null = ungoverned).
NfaChunkResult run_chunk_nfa(const Nfa& nfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const QueryGovernor* governor = nullptr);

/// One frontier simulation seeded with ALL of `starts` at once: the union
/// λ image without per-start attribution, reported as a single lambda
/// entry (starts.front(), union). For consumers that only need the union —
/// the NFA streaming path's first chunk, whose carried states are all kept
/// verbatim by the join — this replaces |starts| full chunk scans with one.
NfaChunkResult run_chunk_nfa_union(const Nfa& nfa, std::span<const Symbol> chunk,
                                   std::span<const State> starts,
                                   const QueryGovernor* governor = nullptr);

}  // namespace rispar
