// Reach-phase kernels: the speculative chunk runs of the three CSDPA
// variants (paper Sect. 2 and 3.2).
//
// Each kernel consumes one chunk of the symbol stream from a set of starting
// states and returns the partial mapping λ_i = { (start, end) : the run from
// `start` survives the whole chunk }, together with the executed-transition
// count (the paper's primary overhead metric). Runs that die early simply do
// not appear in λ.
//
// The deterministic kernel optionally applies *run convergence* (merging
// runs that land in the same state at the same position — the Mytkowicz-
// style optimization the paper lists as compatible, Sect. 5). It is OFF by
// default: the paper's baselines execute the |I| runs independently.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "util/bitset.hpp"

namespace rispar {

struct DetChunkResult {
  /// (start, end) pairs of surviving runs, in `starts` order.
  std::vector<std::pair<State, State>> lambda;
  std::uint64_t transitions = 0;
};

struct DetChunkOptions {
  bool convergence = false;
};

/// Runs `dfa` over `chunk` once per state in `starts`.
DetChunkResult run_chunk_det(const Dfa& dfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const DetChunkOptions& options = {});

struct NfaChunkResult {
  /// Per start (in `starts` order): the frontier set δ(start, chunk); an
  /// entry is present only when that set is non-empty.
  std::vector<std::pair<State, Bitset>> lambda;
  std::uint64_t transitions = 0;  ///< NFA edge traversals (Fig. 1 convention)
};

/// Runs the NFA frontier simulation once per starting state.
NfaChunkResult run_chunk_nfa(const Nfa& nfa, std::span<const Symbol> chunk,
                             std::span<const State> starts);

}  // namespace rispar
