#include "parallel/ca_run.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "automata/packed_table.hpp"
#include "automata/symbol_map.hpp"
#include "util/simd_gather.hpp"

namespace rispar {

namespace {

// ---------------------------------------------------------------------------
// Reference kernels — the seed implementations, kept verbatim as the oracle
// for the fused kernels (property-tested equivalence) and as the baseline of
// the A/B microbenchmarks. See the header for the accounting convention.
// ---------------------------------------------------------------------------

DetChunkResult reference_independent(const Dfa& dfa, std::span<const Symbol> chunk,
                                     std::span<const State> starts,
                                     const QueryGovernor* gov) {
  DetChunkResult result;
  result.lambda.reserve(starts.size());
  GovPoll poll(gov);
  for (const State start : starts) {
    State state = start;
    std::uint64_t steps = 0;
    for (const Symbol symbol : chunk) {
      poll.step();
      if (symbol < 0 || symbol >= dfa.num_symbols()) {
        state = kDeadState;
        break;
      }
      state = dfa.row(state)[symbol];
      if (state == kDeadState) break;
      ++steps;
    }
    result.transitions += steps;
    if (state != kDeadState) result.lambda.emplace_back(start, state);
  }
  return result;
}

DetChunkResult reference_convergent(const Dfa& dfa, std::span<const Symbol> chunk,
                                    std::span<const State> starts,
                                    const QueryGovernor* gov) {
  DetChunkResult result;
  // group_state[g] = current state of merged group g; members[g] = starts.
  std::vector<State> group_state;
  std::vector<std::vector<State>> members;
  {
    std::unordered_map<State, std::size_t> seen;
    for (const State start : starts) {
      const auto [it, inserted] = seen.emplace(start, group_state.size());
      if (inserted) {
        group_state.push_back(start);
        members.push_back({start});
      } else {
        members[it->second].push_back(start);
      }
    }
  }

  std::unordered_map<State, std::size_t> collide;
  GovPoll poll(gov);
  for (const Symbol symbol : chunk) {
    poll.step();
    if (group_state.empty()) break;
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      group_state.clear();
      break;
    }
    collide.clear();
    std::size_t write = 0;
    for (std::size_t g = 0; g < group_state.size(); ++g) {
      const State next = dfa.row(group_state[g])[symbol];
      if (next == kDeadState) continue;  // whole group dies (not counted)
      ++result.transitions;  // one executed transition per surviving group
      const auto [it, inserted] = collide.emplace(next, write);
      if (inserted) {
        group_state[write] = next;
        if (write != g) members[write] = std::move(members[g]);
        ++write;
      } else {
        auto& sink = members[it->second];
        sink.insert(sink.end(), members[g].begin(), members[g].end());
      }
    }
    group_state.resize(write);
    members.resize(write);
  }

  result.distinct_ends = group_state;
  // Emit λ in `starts` order for deterministic output.
  std::unordered_map<State, State> end_of;
  for (std::size_t g = 0; g < group_state.size(); ++g)
    for (const State start : members[g]) end_of.emplace(start, group_state[g]);
  for (const State start : starts)
    if (const auto it = end_of.find(start); it != end_of.end())
      result.lambda.emplace_back(start, it->second);
  return result;
}

// ---------------------------------------------------------------------------
// Fused kernels — one pass over the chunk for all starts, on the packed
// width-specialized table. Symbol validity is checked once up front, so the
// inner loops perform unchecked lookups.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kNoMember = std::numeric_limits<std::uint32_t>::max();

// Symbols are validated in windows of this size immediately before the
// unchecked inner loops consume them, so a chunk whose runs all die early
// never pays for validating its tail.
constexpr std::size_t kValidateBlock = 512;

// Validates chunk[pos, min(pos + kValidateBlock, size)) and returns
// {valid_end, block_end}: symbols in [pos, valid_end) are in range, and
// valid_end < block_end means chunk[valid_end] is an alien symbol.
std::pair<std::size_t, std::size_t> validated_prefix(std::span<const Symbol> chunk,
                                                     std::size_t pos,
                                                     std::int32_t num_symbols) {
  const std::size_t block_end = std::min(pos + kValidateBlock, chunk.size());
  const std::size_t valid_end =
      pos + first_invalid_symbol(chunk.subspan(pos, block_end - pos), num_symbols);
  return {valid_end, block_end};
}

// Scalar fast path for a single speculative start (chunk 1 of every device
// and the serial ablations): run_packed_single, no SoA bookkeeping. Under
// governance the chunk is consumed in kGovernorStride slices with a poll
// between them — the ungoverned path keeps the one-call hot loop intact.
template <typename T>
DetChunkResult fused_single(const PackedTable& table, std::span<const Symbol> chunk,
                            State start, const QueryGovernor* gov) {
  DetChunkResult result;
  if (gov == nullptr) {
    const PackedRun run = run_packed_single<T>(table, start, chunk.data(), chunk.size());
    result.transitions = run.consumed;
    if (run.end != kDeadState) result.lambda.emplace_back(start, run.end);
    return result;
  }
  State state = start;
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    gov->poll();
    const std::size_t len = std::min(kGovernorStride, chunk.size() - pos);
    const PackedRun run = run_packed_single<T>(table, state, chunk.data() + pos, len);
    result.transitions += run.consumed;
    if (run.end == kDeadState) return result;  // died; killing symbol uncounted
    state = run.end;
    pos += len;
  }
  result.lambda.emplace_back(start, state);
  return result;
}

// Lockstep SoA kernel (independent-run semantics): every live run advances
// one symbol per round; dead runs are compacted out so the per-symbol cost
// is O(live). The chunk is streamed exactly once regardless of |starts|.
template <typename T>
DetChunkResult fused_lockstep(const PackedTable& table, std::span<const Symbol> chunk,
                              std::span<const State> starts,
                              const QueryGovernor* gov) {
  if (starts.size() == 1) return fused_single<T>(table, chunk, starts[0], gov);

  constexpr T kDead = PackedDead<T>::value;
  const T* entries = table.data<T>();
  const auto n = static_cast<std::size_t>(table.num_states());

  DetChunkResult result;
  std::vector<T> state(starts.size());
  std::vector<std::uint32_t> origin(starts.size());  // index into starts
  for (std::size_t i = 0; i < starts.size(); ++i) {
    state[i] = static_cast<T>(starts[i]);
    origin[i] = static_cast<std::uint32_t>(i);
  }

  std::size_t live = starts.size();
  std::size_t pos = 0;
  std::size_t next_poll = kGovernorStride;  // governance checkpoint position
  while (pos < chunk.size() && live > 0) {
    if (gov != nullptr && pos >= next_poll) {
      gov->poll();
      next_poll = pos + kGovernorStride;
    }
    if (live == 1) {
      // Lone survivor: finish with the scalar loop (no SoA bookkeeping).
      DetChunkResult tail = fused_single<T>(table, chunk.subspan(pos),
                                            static_cast<State>(state[0]), gov);
      result.transitions += tail.transitions;
      if (!tail.lambda.empty())
        result.lambda.emplace_back(starts[origin[0]], tail.lambda.front().second);
      return result;
    }
    const auto [valid_end, block_end] = validated_prefix(chunk, pos, table.num_symbols());
    for (; pos < valid_end && live > 1; ++pos) {
      // Symbol-major layout: one column base per symbol, no per-run multiply.
      const T* col = entries + static_cast<std::size_t>(chunk[pos]) * n;
      std::size_t write = 0;
      for (std::size_t i = 0; i < live; ++i) {
        const T next = col[state[i]];
        if (next == kDead) continue;
        state[write] = next;
        origin[write] = origin[i];
        ++write;
      }
      result.transitions += write;  // one per run surviving this symbol
      live = write;
    }
    if (live > 1 && pos == valid_end && valid_end < block_end)
      return result;  // alien symbol at pos: every run dies uncounted
  }

  result.lambda.reserve(live);
  // Compaction preserves relative order, so origin[] ascends = starts order.
  for (std::size_t i = 0; i < live; ++i)
    result.lambda.emplace_back(starts[origin[i]], static_cast<State>(state[i]));
  return result;
}

// Epoch-stamped convergent kernel. Collision detection per symbol uses a
// dense state→group stamp array (the epoch counter makes clearing free) and
// group membership is a flat head/tail/next-pointer scheme over start
// indices, so merging two groups is a constant-time splice — no hashing, no
// allocation anywhere in the loop.
template <typename T>
DetChunkResult fused_convergent(const PackedTable& table, std::span<const Symbol> chunk,
                                std::span<const State> starts,
                                const QueryGovernor* gov) {
  constexpr T kDead = PackedDead<T>::value;
  const T* entries = table.data<T>();
  const auto num_states = static_cast<std::size_t>(table.num_states());

  DetChunkResult result;
  // Per-group SoA: current state, and the member list as [head, tail] into
  // next_member (members are indices into `starts`).
  std::vector<T> group_state(starts.size());
  std::vector<std::uint32_t> head(starts.size());
  std::vector<std::uint32_t> tail(starts.size());
  std::vector<std::uint32_t> next_member(starts.size(), kNoMember);

  // stamp[s] == epoch ⇔ state s already owns a group this round; group_at[s]
  // is that group's index. Epochs start at 1 so the zero-filled array means
  // "unseen"; 64-bit so one increment per symbol can never wrap.
  std::vector<std::uint64_t> stamp(num_states, 0);
  std::vector<std::uint32_t> group_at(num_states);
  std::uint64_t epoch = 1;

  std::size_t groups = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const auto s = static_cast<std::size_t>(starts[i]);
    if (stamp[s] == epoch) {
      const std::uint32_t g = group_at[s];
      next_member[tail[g]] = static_cast<std::uint32_t>(i);
      tail[g] = static_cast<std::uint32_t>(i);
    } else {
      stamp[s] = epoch;
      group_at[s] = static_cast<std::uint32_t>(groups);
      group_state[groups] = static_cast<T>(starts[i]);
      head[groups] = tail[groups] = static_cast<std::uint32_t>(i);
      ++groups;
    }
  }

  std::size_t pos = 0;
  std::size_t next_poll = kGovernorStride;  // governance checkpoint position
  while (pos < chunk.size() && groups > 0) {
    if (gov != nullptr && pos >= next_poll) {
      gov->poll();
      next_poll = pos + kGovernorStride;
    }
    if (groups == 1) {
      // All runs converged: finish with the scalar loop and scatter the one
      // end state over the group's members.
      DetChunkResult tail = fused_single<T>(table, chunk.subspan(pos),
                                            static_cast<State>(group_state[0]), gov);
      result.transitions += tail.transitions;
      if (tail.lambda.empty()) return result;  // the merged run died
      const State end = tail.lambda.front().second;
      result.distinct_ends.push_back(end);
      std::vector<State> end_of(starts.size(), kDeadState);
      for (std::uint32_t i = head[0]; i != kNoMember; i = next_member[i]) end_of[i] = end;
      for (std::size_t i = 0; i < starts.size(); ++i)
        if (end_of[i] != kDeadState) result.lambda.emplace_back(starts[i], end_of[i]);
      return result;
    }
    const auto [valid_end, block_end] = validated_prefix(chunk, pos, table.num_symbols());
    for (; pos < valid_end && groups > 1; ++pos) {
      const T* col = entries + static_cast<std::size_t>(chunk[pos]) * num_states;
      ++epoch;
      std::size_t write = 0;
      for (std::size_t g = 0; g < groups; ++g) {
        const T next = col[group_state[g]];
        if (next == kDead) continue;  // whole group dies (not counted)
        ++result.transitions;         // one executed transition per live group
        const auto ns = static_cast<std::size_t>(next);
        if (stamp[ns] == epoch) {
          // Collision: splice g's member list onto the owning group's tail.
          const std::uint32_t dst = group_at[ns];
          next_member[tail[dst]] = head[g];
          tail[dst] = tail[g];
        } else {
          stamp[ns] = epoch;
          group_at[ns] = static_cast<std::uint32_t>(write);
          group_state[write] = next;  // write <= g: slot already consumed
          head[write] = head[g];
          tail[write] = tail[g];
          ++write;
        }
      }
      groups = write;
    }
    if (groups > 0 && pos == valid_end && valid_end < block_end)
      return result;  // alien symbol at pos: every run dies uncounted
  }

  result.distinct_ends.reserve(groups);
  // Emit λ in `starts` order: scatter each group's end over its members.
  std::vector<State> end_of(starts.size(), kDeadState);
  for (std::size_t g = 0; g < groups; ++g) {
    const auto end = static_cast<State>(group_state[g]);
    result.distinct_ends.push_back(end);
    for (std::uint32_t i = head[g]; i != kNoMember; i = next_member[i]) end_of[i] = end;
  }
  result.lambda.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i)
    if (end_of[i] != kDeadState) result.lambda.emplace_back(starts[i], end_of[i]);
  return result;
}

template <typename T>
DetChunkResult run_fused(const PackedTable& table, std::span<const Symbol> chunk,
                         std::span<const State> starts, bool convergence,
                         const QueryGovernor* gov) {
  return convergence ? fused_convergent<T>(table, chunk, starts, gov)
                     : fused_lockstep<T>(table, chunk, starts, gov);
}

// ---------------------------------------------------------------------------
// SIMD kernels — the lockstep structure of the fused kernels, but every
// symbol advances the whole live block through one vector gather
// (util/simd_gather.hpp) instead of N dependent scalar column loads. States
// live in an i32 SoA vector (the gather index type), dead runs are
// compacted out after every symbol so the gather block stays dense, and the
// scalar single-run tail is shared with the fused kernels — accounting and
// λ emission are bit-identical across all three implementations.
// ---------------------------------------------------------------------------

// Lockstep gather kernel (independent-run semantics). Mirrors
// fused_lockstep symbol for symbol; the whole inner loop over a validated
// symbol window — column gathers, survivor tests, dead-run compaction,
// transition accounting — is one backend call (simd::AdvanceSpanFn), so
// per-symbol work never crosses the dispatch boundary.
template <typename T>
DetChunkResult simd_lockstep(const PackedTable& table, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const QueryGovernor* gov) {
  if (starts.size() == 1) return fused_single<T>(table, chunk, starts[0], gov);

  const simd::AdvanceSpanFn advance = simd::advance_span_fn<T>(simd::gather_ops());
  const T* entries = table.data<T>();
  const auto n = static_cast<std::size_t>(table.num_states());

  DetChunkResult result;
  std::vector<std::int32_t> state(starts.size());
  std::vector<std::uint32_t> origin(starts.size());  // index into starts
  for (std::size_t i = 0; i < starts.size(); ++i) {
    state[i] = starts[i];
    origin[i] = static_cast<std::uint32_t>(i);
  }

  std::size_t live = starts.size();
  std::size_t pos = 0;
  std::size_t next_poll = kGovernorStride;  // governance checkpoint position
  while (pos < chunk.size() && live > 0) {
    if (gov != nullptr && pos >= next_poll) {
      gov->poll();
      next_poll = pos + kGovernorStride;
    }
    if (live == 1) {
      // Lone survivor: finish with the scalar loop (no SoA bookkeeping).
      DetChunkResult tail = fused_single<T>(table, chunk.subspan(pos),
                                            static_cast<State>(state[0]), gov);
      result.transitions += tail.transitions;
      if (!tail.lambda.empty())
        result.lambda.emplace_back(starts[origin[0]], tail.lambda.front().second);
      return result;
    }
    const auto [valid_end, block_end] = validated_prefix(chunk, pos, table.num_symbols());
    pos += advance(entries, n, chunk.data() + pos, valid_end - pos, state.data(),
                   origin.data(), live, result.transitions);
    if (live > 1 && pos == valid_end && valid_end < block_end)
      return result;  // alien symbol at pos: every run dies uncounted
  }

  result.lambda.reserve(live);
  // Compaction preserves relative order, so origin[] ascends = starts order.
  for (std::size_t i = 0; i < live; ++i)
    result.lambda.emplace_back(starts[origin[i]], static_cast<State>(state[i]));
  return result;
}

// Gather-fed convergent kernel: the per-symbol advance of all live groups
// is one vector gather IN PLACE over the group-state vector (the gather
// contract allows out == idx); the epoch-stamped merge bookkeeping of
// fused_convergent then runs over the advanced states. Group order, member
// splice order and the emitted λ are identical to the fused kernel.
template <typename T>
DetChunkResult simd_convergent(const PackedTable& table, std::span<const Symbol> chunk,
                               std::span<const State> starts,
                               const QueryGovernor* gov) {
  constexpr std::int32_t kDeadWide = PackedWideDead<T>;
  const simd::GatherFn gather = simd::gather_fn<T>(simd::gather_ops());
  const T* entries = table.data<T>();
  const auto num_states = static_cast<std::size_t>(table.num_states());

  DetChunkResult result;
  std::vector<std::int32_t> group_state(starts.size());
  std::vector<std::uint32_t> head(starts.size());
  std::vector<std::uint32_t> tail(starts.size());
  std::vector<std::uint32_t> next_member(starts.size(), kNoMember);

  std::vector<std::uint64_t> stamp(num_states, 0);
  std::vector<std::uint32_t> group_at(num_states);
  std::uint64_t epoch = 1;

  std::size_t groups = 0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const auto s = static_cast<std::size_t>(starts[i]);
    if (stamp[s] == epoch) {
      const std::uint32_t g = group_at[s];
      next_member[tail[g]] = static_cast<std::uint32_t>(i);
      tail[g] = static_cast<std::uint32_t>(i);
    } else {
      stamp[s] = epoch;
      group_at[s] = static_cast<std::uint32_t>(groups);
      group_state[groups] = starts[i];
      head[groups] = tail[groups] = static_cast<std::uint32_t>(i);
      ++groups;
    }
  }

  std::size_t pos = 0;
  std::size_t next_poll = kGovernorStride;  // governance checkpoint position
  while (pos < chunk.size() && groups > 0) {
    if (gov != nullptr && pos >= next_poll) {
      gov->poll();
      next_poll = pos + kGovernorStride;
    }
    if (groups == 1) {
      // All runs converged: finish with the scalar loop and scatter the one
      // end state over the group's members.
      DetChunkResult scalar_tail = fused_single<T>(
          table, chunk.subspan(pos), static_cast<State>(group_state[0]), gov);
      result.transitions += scalar_tail.transitions;
      if (scalar_tail.lambda.empty()) return result;  // the merged run died
      const State end = scalar_tail.lambda.front().second;
      result.distinct_ends.push_back(end);
      std::vector<State> end_of(starts.size(), kDeadState);
      for (std::uint32_t i = head[0]; i != kNoMember; i = next_member[i]) end_of[i] = end;
      for (std::size_t i = 0; i < starts.size(); ++i)
        if (end_of[i] != kDeadState) result.lambda.emplace_back(starts[i], end_of[i]);
      return result;
    }
    const auto [valid_end, block_end] = validated_prefix(chunk, pos, table.num_symbols());
    for (; pos < valid_end && groups > 1; ++pos) {
      const T* col = entries + static_cast<std::size_t>(chunk[pos]) * num_states;
      gather(col, group_state.data(), groups, group_state.data());
      ++epoch;
      // The merge loop reads group_state[g] (the advanced value) before any
      // write to slot g: write <= g throughout, and the write at g is the
      // value itself.
      std::size_t write = 0;
      for (std::size_t g = 0; g < groups; ++g) {
        const std::int32_t value = group_state[g];
        if (value == kDeadWide) continue;  // whole group dies (not counted)
        ++result.transitions;              // one executed transition per live group
        const auto ns = static_cast<std::size_t>(value);
        if (stamp[ns] == epoch) {
          // Collision: splice g's member list onto the owning group's tail.
          const std::uint32_t dst = group_at[ns];
          next_member[tail[dst]] = head[g];
          tail[dst] = tail[g];
        } else {
          stamp[ns] = epoch;
          group_at[ns] = static_cast<std::uint32_t>(write);
          group_state[write] = value;  // write <= g: slot already consumed
          head[write] = head[g];
          tail[write] = tail[g];
          ++write;
        }
      }
      groups = write;
    }
    if (groups > 0 && pos == valid_end && valid_end < block_end)
      return result;  // alien symbol at pos: every run dies uncounted
  }

  result.distinct_ends.reserve(groups);
  // Emit λ in `starts` order: scatter each group's end over its members.
  std::vector<State> end_of(starts.size(), kDeadState);
  for (std::size_t g = 0; g < groups; ++g) {
    const auto end = static_cast<State>(group_state[g]);
    result.distinct_ends.push_back(end);
    for (std::uint32_t i = head[g]; i != kNoMember; i = next_member[i]) end_of[i] = end;
  }
  result.lambda.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i)
    if (end_of[i] != kDeadState) result.lambda.emplace_back(starts[i], end_of[i]);
  return result;
}

template <typename T>
DetChunkResult run_simd(const PackedTable& table, std::span<const Symbol> chunk,
                        std::span<const State> starts, bool convergence,
                        const QueryGovernor* gov) {
  return convergence ? simd_convergent<T>(table, chunk, starts, gov)
                     : simd_lockstep<T>(table, chunk, starts, gov);
}

}  // namespace

const char* kernel_name(DetKernel kernel) {
  switch (kernel) {
    case DetKernel::kFused: return "fused";
    case DetKernel::kReference: return "reference";
    case DetKernel::kSimd: return "simd";
  }
  return "?";
}

DetChunkResult run_chunk_det(const Dfa& dfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const DetChunkOptions& options) {
  // Normalize so the kernels only test a single pointer: inactive
  // governors (no deadline, no token) cost nothing inside the loops.
  const QueryGovernor* gov =
      options.governor != nullptr && options.governor->active() ? options.governor
                                                                : nullptr;
  if (options.kernel == DetKernel::kReference) {
    return options.convergence ? reference_convergent(dfa, chunk, starts, gov)
                               : reference_independent(dfa, chunk, starts, gov);
  }
  const PackedTable& table = dfa.packed();
  if (options.kernel == DetKernel::kSimd) {
    switch (table.width()) {
      case TableWidth::kU8:
        return run_simd<std::uint8_t>(table, chunk, starts, options.convergence, gov);
      case TableWidth::kU16:
        return run_simd<std::uint16_t>(table, chunk, starts, options.convergence, gov);
      case TableWidth::kI32:
        break;
    }
    return run_simd<std::int32_t>(table, chunk, starts, options.convergence, gov);
  }
  switch (table.width()) {
    case TableWidth::kU8:
      return run_fused<std::uint8_t>(table, chunk, starts, options.convergence, gov);
    case TableWidth::kU16:
      return run_fused<std::uint16_t>(table, chunk, starts, options.convergence, gov);
    case TableWidth::kI32:
      break;
  }
  return run_fused<std::int32_t>(table, chunk, starts, options.convergence, gov);
}

NfaChunkResult run_chunk_nfa(const Nfa& nfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const QueryGovernor* governor) {
  NfaChunkResult result;
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier(universe);
  Bitset next(universe);
  GovPoll poll(governor);
  for (const State start : starts) {
    frontier.clear();
    frontier.set(static_cast<std::size_t>(start));
    for (const Symbol symbol : chunk) {
      poll.step();
      if (symbol < 0 || symbol >= nfa.num_symbols()) {
        frontier.clear();
        break;
      }
      next.clear();
      for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s)) {
        for (const auto& edge : nfa.edges(static_cast<State>(s), symbol)) {
          ++result.transitions;
          next.set(static_cast<std::size_t>(edge.target));
        }
      }
      std::swap(frontier, next);
      if (frontier.empty()) break;
    }
    if (!frontier.empty()) result.lambda.emplace_back(start, frontier);
  }
  return result;
}

NfaChunkResult run_chunk_nfa_union(const Nfa& nfa, std::span<const Symbol> chunk,
                                   std::span<const State> starts,
                                   const QueryGovernor* governor) {
  NfaChunkResult result;
  if (starts.empty()) return result;
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier(universe);
  Bitset next(universe);
  GovPoll poll(governor);
  for (const State start : starts) frontier.set(static_cast<std::size_t>(start));
  for (const Symbol symbol : chunk) {
    poll.step();
    if (symbol < 0 || symbol >= nfa.num_symbols()) {
      frontier.clear();
      break;
    }
    next.clear();
    for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s)) {
      for (const auto& edge : nfa.edges(static_cast<State>(s), symbol)) {
        ++result.transitions;
        next.set(static_cast<std::size_t>(edge.target));
      }
    }
    std::swap(frontier, next);
    if (frontier.empty()) break;
  }
  if (!frontier.empty()) result.lambda.emplace_back(starts.front(), frontier);
  return result;
}

}  // namespace rispar
