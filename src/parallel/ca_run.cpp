#include "parallel/ca_run.hpp"

#include <unordered_map>

namespace rispar {

namespace {

DetChunkResult run_chunk_det_independent(const Dfa& dfa, std::span<const Symbol> chunk,
                                         std::span<const State> starts) {
  DetChunkResult result;
  result.lambda.reserve(starts.size());
  for (const State start : starts) {
    State state = start;
    std::uint64_t steps = 0;
    for (const Symbol symbol : chunk) {
      if (symbol < 0 || symbol >= dfa.num_symbols()) {
        state = kDeadState;
        break;
      }
      state = dfa.row(state)[symbol];
      if (state == kDeadState) break;
      ++steps;
    }
    result.transitions += steps;
    if (state != kDeadState) result.lambda.emplace_back(start, state);
  }
  return result;
}

// Lockstep variant: all runs advance one symbol per round; runs that collide
// on the same current state are merged (they can never diverge again in a
// deterministic machine), so each distinct state pays one transition per
// symbol from the merge point on.
DetChunkResult run_chunk_det_convergent(const Dfa& dfa, std::span<const Symbol> chunk,
                                        std::span<const State> starts) {
  DetChunkResult result;
  // group_state[g] = current state of merged group g; members[g] = starts.
  std::vector<State> group_state;
  std::vector<std::vector<State>> members;
  {
    std::unordered_map<State, std::size_t> seen;
    for (const State start : starts) {
      const auto [it, inserted] = seen.emplace(start, group_state.size());
      if (inserted) {
        group_state.push_back(start);
        members.push_back({start});
      } else {
        members[it->second].push_back(start);
      }
    }
  }

  std::unordered_map<State, std::size_t> collide;
  for (const Symbol symbol : chunk) {
    if (group_state.empty()) break;
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      group_state.clear();
      break;
    }
    collide.clear();
    std::size_t write = 0;
    for (std::size_t g = 0; g < group_state.size(); ++g) {
      const State next = dfa.row(group_state[g])[symbol];
      if (next == kDeadState) continue;  // whole group dies (not counted,
                                         // matching the independent kernel)
      ++result.transitions;  // one executed transition per surviving group
      const auto [it, inserted] = collide.emplace(next, write);
      if (inserted) {
        group_state[write] = next;
        if (write != g) members[write] = std::move(members[g]);
        ++write;
      } else {
        auto& sink = members[it->second];
        sink.insert(sink.end(), members[g].begin(), members[g].end());
      }
    }
    group_state.resize(write);
    members.resize(write);
  }

  // Emit λ in `starts` order for deterministic output.
  std::unordered_map<State, State> end_of;
  for (std::size_t g = 0; g < group_state.size(); ++g)
    for (const State start : members[g]) end_of.emplace(start, group_state[g]);
  for (const State start : starts)
    if (const auto it = end_of.find(start); it != end_of.end())
      result.lambda.emplace_back(start, it->second);
  return result;
}

}  // namespace

DetChunkResult run_chunk_det(const Dfa& dfa, std::span<const Symbol> chunk,
                             std::span<const State> starts,
                             const DetChunkOptions& options) {
  // The dead-transition accounting differs between the two paths only in
  // how much work is *saved*; surviving λ pairs are identical (tested).
  return options.convergence ? run_chunk_det_convergent(dfa, chunk, starts)
                             : run_chunk_det_independent(dfa, chunk, starts);
}

NfaChunkResult run_chunk_nfa(const Nfa& nfa, std::span<const Symbol> chunk,
                             std::span<const State> starts) {
  NfaChunkResult result;
  const auto universe = static_cast<std::size_t>(nfa.num_states());
  Bitset frontier(universe);
  Bitset next(universe);
  for (const State start : starts) {
    frontier.clear();
    frontier.set(static_cast<std::size_t>(start));
    for (const Symbol symbol : chunk) {
      if (symbol < 0 || symbol >= nfa.num_symbols()) {
        frontier.clear();
        break;
      }
      next.clear();
      for (std::size_t s = frontier.first(); s != Bitset::npos; s = frontier.next(s)) {
        for (const auto& edge : nfa.edges(static_cast<State>(s), symbol)) {
          ++result.transitions;
          next.set(static_cast<std::size_t>(edge.target));
        }
      }
      std::swap(frontier, next);
      if (frontier.empty()) break;
    }
    if (!frontier.empty()) result.lambda.emplace_back(start, frontier);
  }
  return result;
}

}  // namespace rispar
