// Work-stealing worker pool for the reach phase.
//
// The paper's runtime structure (Sect. 4) needs a barrier between reach and
// join, but nothing says the pool may only hold ONE batch: chunk counts ≫
// threads, PatternSet text×pattern fan-outs and concurrent Engine callers
// all want their tasks interleaved instead of queueing on a single batch
// slot. This pool schedules with per-worker Chase-Lev deques:
//
//  * every worker owns a deque (LIFO push/pop at the bottom, lock-free
//    FIFO steals at the top — the classic Chase-Lev protocol, in the
//    weak-memory formulation of Lê et al.);
//  * a nested run() from inside a task pushes its batch onto the CALLING
//    worker's own deque — the tasks are immediately stealable by idle
//    workers, so nesting parallelizes instead of executing inline;
//  * run() from an external thread submits through a small mutex-guarded
//    injection queue and then PARTICIPATES: it claims tasks (its own
//    batch's or anyone's) until its batch completes, so concurrent Engine
//    callers drain each other instead of serializing;
//  * idle workers sleep on a condition variable behind an epoch counter
//    (every submission bumps the epoch under the sleep mutex, so the
//    probe-then-sleep race cannot lose a wakeup).
//
// run(count, fn) is still a blocking barrier FOR ITS CALLER — batch, task
// array and fn live on the caller's stack — but batches from any number of
// callers are in flight concurrently. Completion is an atomic per-batch
// counter; the finishing thread nudges the pool-wide done CV only when some
// caller advertised it went to sleep. All chunk state stays task-owned; the
// pool is the only shared mutable object (Core Guidelines CP.3).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/governance.hpp"

namespace rispar {

/// What to do when a bounded injection queue is full (admission control on
/// the EXTERNAL submission path; nested run() calls from workers go through
/// the deques and are never bounded — they are continuations of work
/// already admitted).
enum class OverloadPolicy : std::uint8_t {
  kReject,  ///< throw ResourceExhausted("pool admission", ...) immediately
  kBlock,   ///< wait for the queue to drain, up to block_timeout (then throw)
};

/// Admission configuration of a pool. The default (max_injected = 0) is
/// unbounded — exactly the pre-admission behavior.
struct PoolAdmission {
  /// Upper bound on queued external tasks; 0 = unbounded. A batch is
  /// admitted whole (all-or-nothing): when the queue is EMPTY a batch of
  /// any size is admitted (a single oversized batch must never deadlock),
  /// otherwise the whole batch must fit under the bound.
  std::size_t max_injected = 0;
  OverloadPolicy policy = OverloadPolicy::kReject;
  /// kBlock: how long a submitter may wait for space before the overload
  /// surfaces as ResourceExhausted anyway. 0 = wait forever.
  std::chrono::nanoseconds block_timeout{0};
};

/// Snapshot of the pool's observability counters (the first server hook:
/// rispard's /stats will serve exactly this). Counters are monotone over
/// the pool's lifetime except `queued`, which is the instantaneous
/// injection-queue depth. Relaxed atomics — a snapshot is approximate by
/// nature, never used for synchronization.
struct PoolStats {
  std::size_t queued = 0;     ///< external tasks currently waiting
  std::size_t running = 0;    ///< tasks executing right now
  std::uint64_t executed = 0; ///< tasks completed since construction
  std::uint64_t stolen = 0;   ///< tasks claimed via deque steals
  std::uint64_t rejected = 0; ///< batches refused by admission control
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1)
  /// with the given admission policy for external submissions.
  explicit ThreadPool(unsigned threads = 0, PoolAdmission admission = {});

  /// Joins all workers (any in-flight run() must have completed).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Blocks until fn has been applied to every index in [0, count), each
  /// exactly once. The caller participates in executing tasks — its own
  /// batch's and, while waiting, anyone else's.
  ///
  /// A task that throws fails its batch: the remaining tasks still run
  /// (the barrier always completes, so no stack-owned batch state is ever
  /// abandoned with claims outstanding), and the FIRST captured exception
  /// is rethrown from run() on the submitting caller's thread. Under the
  /// old pool a throwing worker task terminated the process; now it
  /// surfaces where the query was issued.
  ///
  /// Reentrant calls — run() on the SAME pool from inside one of its
  /// tasks — are legal and PARALLEL: the nested batch is pushed onto the
  /// calling worker's deque, where idle workers steal from it while the
  /// caller drains it. (A task executed by an EXTERNAL participant's
  /// thread has no deque; its nested calls go through the injection queue,
  /// which is just as parallel.)
  ///
  /// Concurrent run() calls from different threads interleave: each
  /// batch's tasks spread over the deques and every participant works on
  /// whatever is claimable. This is what makes a shared Engine/PatternSet
  /// scale under concurrent read-only queries instead of queueing them
  /// (see tests/test_thread_pool.cpp and the ConcurrentQueries tests in
  /// tests/test_find_all.cpp). Cross-pool nesting needs no lock ordering:
  /// submission holds no lock while executing, so tasks on pool A may call
  /// B.run() and vice versa concurrently.
  void run(std::size_t count, std::function<void(std::size_t)> fn);

  /// run() with a governor: an external submission that must block for
  /// admission (OverloadPolicy::kBlock) polls `governor` while waiting, so
  /// a deadline/cancellation trips a queued query before it ever runs.
  /// Null governor = plain admission wait.
  void run(std::size_t count, std::function<void(std::size_t)> fn,
           const QueryGovernor* governor);

  /// Observability snapshot (see PoolStats).
  PoolStats stats() const;

  const PoolAdmission& admission() const { return admission_; }

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> completed{0};
    /// First-wins capture of a throwing task (see execute()): `error` is
    /// written by whichever executor claims `error_claimed`, strictly
    /// before that task's completed increment, so the submitting caller —
    /// who only looks after observing completed == count — reads it
    /// race-free and rethrows after the barrier.
    std::atomic<bool> error_claimed{false};
    std::exception_ptr error;
  };

  /// One claimable unit: fn(index) of a batch. Tasks live in the
  /// submitting run()'s stack frame; a pointer is claimed exactly once
  /// (deque protocol / injection pop), and the frame outlives every claim
  /// because run() returns only after all its tasks completed.
  struct Task {
    Batch* batch;
    std::size_t index;
  };

  /// Chase-Lev deque of Task pointers. push/pop are owner-only; steal is
  /// safe from any thread. Grows by buffer doubling; retired buffers stay
  /// alive until destruction because thieves may still hold them.
  class Deque {
   public:
    explicit Deque(std::int64_t capacity = 256);

    void push(Task* task);  ///< owner only
    Task* pop();            ///< owner only (bottom, LIFO)
    Task* steal();          ///< any thread (top, FIFO); nullptr on miss/race

   private:
    struct Buffer {
      explicit Buffer(std::int64_t n) : capacity(n), slots(new std::atomic<Task*>[n]) {}
      std::int64_t capacity;
      std::unique_ptr<std::atomic<Task*>[]> slots;
    };

    Buffer* grow(Buffer* old, std::int64_t top, std::int64_t bottom);

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_;
    std::vector<std::unique_ptr<Buffer>> buffers_;  ///< owner-only; keeps retired alive
  };

  /// Executes one claimed task and publishes its completion. After the
  /// final fetch_add the batch may be destroyed by its returning caller,
  /// so everything read afterwards is pool state, never batch state.
  void execute(const Task& task);

  /// Claims one task: own deque (workers only) → injection queue → one
  /// steal sweep over all worker deques. nullptr when nothing was
  /// claimable this sweep.
  Task* find_task(Deque* own);

  Task* take_injected();

  /// Bumps the wake epoch and wakes sleeping workers; called after every
  /// submission.
  void signal_work();

  /// Caller side of run(): claim-and-execute until `batch` completes,
  /// sleeping on done_cv_ when nothing is claimable anywhere.
  void drain(Batch& batch, Deque* own);

  void worker_loop(unsigned id);

  /// External-path admission: enqueues all `count` tasks, enforcing
  /// admission_ (reject or block per policy). Throws ResourceExhausted on
  /// overload; on success every task is queued.
  void inject(std::vector<Task>& tasks, const QueryGovernor* governor);

  std::vector<std::unique_ptr<Deque>> deques_;  ///< one per worker, fixed
  const PoolAdmission admission_;
  std::mutex injection_mutex_;
  std::deque<Task*> injected_;  ///< external submissions, FIFO
  /// kBlock submitters wait here (on injection_mutex_) for queue space;
  /// notified by take_injected() pops when the queue is bounded.
  std::condition_variable admission_cv_;

  /// Sleep/wake state. wake_epoch_ is written under sleep_mutex_ so the
  /// record-epoch → probe → wait-for-new-epoch protocol in worker_loop
  /// cannot miss a submission; sleeping_callers_ lets task epilogues skip
  /// the done notification entirely while nobody is blocked on it.
  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t wake_epoch_ = 0;  // guarded by sleep_mutex_
  bool stopping_ = false;         // guarded by sleep_mutex_
  std::atomic<std::uint64_t> sleeping_callers_{0};

  std::atomic<std::uint32_t> steal_seed_{0x9e3779b9u};
  std::atomic<std::size_t> injected_size_{0};  ///< lock-free empty probe

  /// Observability counters (PoolStats). Relaxed: they feed a snapshot,
  /// not synchronization.
  std::atomic<std::size_t> running_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> rejected_{0};

  std::vector<std::thread> workers_;

  /// Which pool's worker this thread is (and its deque). Lets run() detect
  /// "I am on one of this pool's workers" and push to that worker's own
  /// deque; any other thread — external callers, workers of OTHER pools —
  /// takes the injection path.
  struct Tls {
    const ThreadPool* pool = nullptr;
    Deque* deque = nullptr;
  };
  static thread_local Tls tls_;
};

}  // namespace rispar
