// Fixed-size worker pool for the reach phase.
//
// Mirrors the paper's runtime structure (Sect. 4: a thread pool started via
// an executor, reach runs one task per chunk, the join is serial — the only
// synchronization point is the barrier between the two phases). Tasks pull
// indices from an atomic cursor, so `run(count, fn)` executes fn(0..count-1)
// with parallelism min(count, size() + 1): the calling thread participates
// in draining the batch instead of sleeping, which usually lets it observe
// completion on the atomic counter without ever touching the mutex or the
// condition variable (see thread_pool.cpp for the completion protocol).
// All chunk state is task-owned; the pool itself is the only shared mutable
// object (Core Guidelines CP.3).
//
// Each run() allocates an immutable Batch shared by the participating
// workers; a worker that wakes late simply drains an already-exhausted
// batch, so batches from different generations can never alias each other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rispar {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers (any in-flight run() must have completed).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Blocks until fn has been applied to every index in [0, count).
  /// The caller participates in executing tasks. Reentrant calls — run()
  /// on the SAME pool from inside one of its tasks — are legal and execute
  /// their batch inline on the calling thread, serially: they never
  /// deadlock, but they also do not parallelize. Calling into a different
  /// pool from inside a task dispatches normally and stays parallel.
  ///
  /// Concurrent run() calls from DIFFERENT threads are safe: the batch slot
  /// is single-entry, so callers serialize on an internal mutex and each
  /// batch still executes with full parallelism. This is what makes a
  /// shared Engine/PatternSet safe for concurrent read-only queries —
  /// their reach phases queue rather than corrupt each other (see
  /// tests/test_thread_pool.cpp and the ConcurrentQueries smoke tests in
  /// tests/test_find_all.cpp).
  ///
  /// Lock-ordering caveat: a task on pool A calling B.run() while another
  /// thread's task on pool B calls A.run() can deadlock on the two caller
  /// mutexes (as any unordered two-lock acquisition would). Nest distinct
  /// pools in one consistent direction; same-pool nesting is always safe
  /// (inline, no mutex).
  void run(std::size_t count, std::function<void(std::size_t)> fn);

 private:
  struct Batch {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> completed{0};
    /// Set (under mutex_) only when the caller gives up spinning and goes
    /// to sleep on done_cv_; workers skip the mutex entirely while it is
    /// false. seq_cst pairing with `completed` prevents a lost wakeup.
    std::atomic<bool> caller_sleeping{false};
  };

  /// Pulls indices until the batch's cursor is exhausted; adds the credit
  /// to batch.completed and returns the new total.
  std::size_t drain(Batch& batch);

  void worker_loop();

  /// Serializes external run() callers (the batch slot is single-entry).
  /// Taken only on the non-reentrant path, so nested same-pool run() calls
  /// from inside tasks still execute inline without touching it.
  std::mutex callers_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // guarded by mutex_
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rispar
