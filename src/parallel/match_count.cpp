#include "parallel/match_count.hpp"

#include "parallel/chunking.hpp"
#include "util/simd_gather.hpp"
#include "util/stopwatch.hpp"

namespace rispar {

QueryResult count_matches_serial(const Dfa& dfa, std::span<const Symbol> input) {
  QueryResult result;
  result.chunks = input.empty() ? 0 : 1;
  State state = dfa.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      result.died = true;
      return result;
    }
    state = dfa.row(state)[symbol];
    if (state == kDeadState) {
      result.died = true;
      return result;
    }
    ++result.transitions;
    if (dfa.is_final(state)) {
      ++result.matches;
      result.accepted = true;
    }
  }
  return result;
}

namespace {

/// One chunk's counting runs: per start (chunk 1 has a single start, the
/// initial state; later chunks one per DFA state, indexed by state id), the
/// end state of the run (kDeadState if it died) and its total hits.
struct CountChunk {
  std::vector<State> end;
  std::vector<std::uint64_t> hits;
  std::uint64_t transitions = 0;
};

/// The seed implementation: every start runs independently.
CountChunk count_chunk_independent(const Dfa& dfa, std::span<const Symbol> span,
                                   std::span<const State> starts,
                                   const QueryGovernor* gov) {
  CountChunk chunk;
  chunk.end.resize(starts.size());
  chunk.hits.assign(starts.size(), 0);
  GovPoll poll(gov);
  for (std::size_t s = 0; s < starts.size(); ++s) {
    State state = starts[s];
    for (const Symbol symbol : span) {
      poll.step();
      if (symbol < 0 || symbol >= dfa.num_symbols()) {
        state = kDeadState;
        break;
      }
      state = dfa.row(state)[symbol];
      if (state == kDeadState) break;
      ++chunk.transitions;
      if (dfa.is_final(state)) ++chunk.hits[s];
    }
    chunk.end[s] = state;
  }
  return chunk;
}

/// Run-convergence counting: runs that land in the same state at the same
/// position share all future hits, so the merged run executes (and counts
/// transitions) once from the merge point on. Each merged run freezes its
/// own hit counter and remembers (parent, parent's hits at merge); the
/// per-start totals are reconstructed through that merge tree at the end —
/// total(r) = local(r) + (total(parent) - parent_base(r)), because
/// everything the parent chain accrues after the merge is shared.
CountChunk count_chunk_convergent(const Dfa& dfa, std::span<const Symbol> span,
                                  std::span<const State> starts,
                                  const QueryGovernor* gov) {
  struct Node {
    State state;
    std::uint64_t hits = 0;
    std::int32_t parent = -1;
    std::uint64_t parent_base = 0;
    bool dead = false;
  };
  CountChunk chunk;
  std::vector<Node> nodes(starts.size());
  std::vector<std::int32_t> active;
  active.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    nodes[s].state = starts[s];  // starts are distinct states — no merges yet
    active.push_back(static_cast<std::int32_t>(s));
  }

  std::vector<std::int32_t> owner(static_cast<std::size_t>(dfa.num_states()), -1);
  std::vector<State> touched;
  GovPoll poll(gov);
  for (const Symbol symbol : span) {
    poll.step();
    if (active.empty()) break;
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      // Alien symbol: every run dies without the symbol being counted.
      for (const std::int32_t idx : active)
        nodes[static_cast<std::size_t>(idx)].dead = true;
      active.clear();
      break;
    }
    touched.clear();
    std::size_t write = 0;
    for (const std::int32_t idx : active) {
      Node& node = nodes[static_cast<std::size_t>(idx)];
      const State next = dfa.row(node.state)[symbol];
      if (next == kDeadState) {
        node.dead = true;  // the dying symbol is not counted
        continue;
      }
      ++chunk.transitions;
      node.state = next;
      if (dfa.is_final(next)) ++node.hits;
      std::int32_t& claim = owner[static_cast<std::size_t>(next)];
      if (claim == -1) {
        claim = idx;
        touched.push_back(next);
        active[write++] = idx;
      } else {
        // Merge: idx's run is identical to claim's from here on.
        node.parent = claim;
        node.parent_base = nodes[static_cast<std::size_t>(claim)].hits;
      }
    }
    active.resize(write);
    for (const State s : touched) owner[static_cast<std::size_t>(s)] = -1;
  }

  chunk.end.resize(starts.size());
  chunk.hits.resize(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    std::size_t root = s;
    while (nodes[root].parent != -1) root = static_cast<std::size_t>(nodes[root].parent);
    chunk.end[s] = nodes[root].dead ? kDeadState : nodes[root].state;
    std::uint64_t total = nodes[s].hits;
    std::int32_t parent = nodes[s].parent;
    std::uint64_t base = nodes[s].parent_base;
    while (parent != -1) {
      const Node& up = nodes[static_cast<std::size_t>(parent)];
      total += up.hits - base;
      base = up.parent_base;
      parent = up.parent;
    }
    chunk.hits[s] = total;
  }
  return chunk;
}

/// One recorded occurrence of a chunk run: `pos` is the chunk-local end
/// position (1-based: after consuming `pos` symbols) and `sep` the run's
/// last separator at that moment — chunk-local, or -1 when the run has not
/// passed through the initial state since the chunk began (the begin then
/// resolves through the join's carried tracker).
struct FindHit {
  std::uint64_t pos;
  std::int64_t sep;
};

/// One chunk run of the finding kernels. While a run leads (no parent) it
/// records its own hits and separator tracker; when convergence merges it
/// into `parent` at `merge_pos`, everything from the parent's hit list at
/// index >= parent_base on is shared, with `last_sep` frozen as the run's
/// own history up to the merge. Reconstruction happens at JOIN time, only
/// for the one consistent start per chunk — per-start hit lists are never
/// materialized.
struct FindNode {
  State state = kDeadState;
  std::vector<FindHit> hits;
  std::int64_t last_sep = -1;
  std::int32_t parent = -1;
  std::size_t parent_base = 0;
  std::int64_t merge_pos = 0;
  bool dead = false;
};

struct FindChunk {
  std::vector<FindNode> nodes;  ///< one per start, in `starts` order
  std::uint64_t transitions = 0;
};

/// Step policy of the reference finding kernel: plain row-table lookups
/// with the per-symbol range check, the oracle-side implementation.
struct RowStep {
  const Dfa& dfa;
  Symbol symbol = 0;

  bool prepare(Symbol a) {
    symbol = a;
    return a >= 0 && a < dfa.num_symbols();
  }
  State advance(State state) const { return dfa.row(state)[symbol]; }
};

/// Step policy of the fused finding kernel: the width-packed symbol-major
/// table, one column base per symbol hoisted out of the per-run loop
/// (same mechanism as the lockstep kernels in ca_run.cpp).
template <typename T>
struct PackedStep {
  const PackedTable& table;
  const T* column = nullptr;

  bool prepare(Symbol a) {
    if (static_cast<std::uint32_t>(a) >=
        static_cast<std::uint32_t>(table.num_symbols()))
      return false;
    column = table.column<T>(a);
    return true;
  }
  State advance(State state) const {
    const T next = column[static_cast<std::size_t>(state)];
    return next == PackedDead<T>::value ? kDeadState : static_cast<State>(next);
  }
};

/// The one finding kernel: lockstep over the live runs (dead runs compacted
/// out), recording (end, last-separator) per hit. With kConvergent, runs
/// landing in the same state at the same position merge exactly like the
/// counting kernel — but instead of reconstructing per-start totals here,
/// the merge forest itself is returned and the join resolves only the
/// consistent start's chain.
template <bool kConvergent, typename Step>
FindChunk find_chunk(const Dfa& dfa, std::span<const Symbol> span,
                     std::span<const State> starts, Step step,
                     const QueryGovernor* gov) {
  const State initial = dfa.initial();
  FindChunk chunk;
  chunk.nodes.resize(starts.size());
  std::vector<std::int32_t> active;
  active.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    FindNode& node = chunk.nodes[s];
    node.state = starts[s];  // starts are distinct states — no merges yet
    if (starts[s] == initial) node.last_sep = 0;
    active.push_back(static_cast<std::int32_t>(s));
  }

  std::vector<std::int32_t> owner;
  std::vector<State> touched;
  if constexpr (kConvergent)
    owner.assign(static_cast<std::size_t>(dfa.num_states()), -1);

  std::int64_t pos = 0;
  GovPoll poll(gov);
  for (const Symbol symbol : span) {
    poll.step();
    if (active.empty()) break;
    if (!step.prepare(symbol)) {
      // Alien symbol: every run dies without the symbol being counted.
      for (const std::int32_t idx : active)
        chunk.nodes[static_cast<std::size_t>(idx)].dead = true;
      active.clear();
      break;
    }
    ++pos;
    if constexpr (kConvergent) touched.clear();
    std::size_t write = 0;
    for (const std::int32_t idx : active) {
      FindNode& node = chunk.nodes[static_cast<std::size_t>(idx)];
      const State next = step.advance(node.state);
      if (next == kDeadState) {
        node.dead = true;  // the dying symbol is not counted
        continue;
      }
      ++chunk.transitions;
      node.state = next;
      if (next == initial) node.last_sep = pos;
      if (dfa.is_final(next))
        node.hits.push_back({static_cast<std::uint64_t>(pos), node.last_sep});
      if constexpr (kConvergent) {
        std::int32_t& claim = owner[static_cast<std::size_t>(next)];
        if (claim == -1) {
          claim = idx;
          touched.push_back(next);
          active[write++] = idx;
        } else {
          // Merge: idx's run is identical to claim's from here on. The
          // claiming run was advanced earlier this round, so its hit list
          // already holds this position's hit — sharing starts after it.
          node.parent = claim;
          node.parent_base = chunk.nodes[static_cast<std::size_t>(claim)].hits.size();
          node.merge_pos = pos;
        }
      } else {
        active[write++] = idx;
      }
    }
    active.resize(write);
    if constexpr (kConvergent)
      for (const State s : touched) owner[static_cast<std::size_t>(s)] = -1;
  }
  return chunk;
}

/// Joins one batch of finding-kernel chunk runs: walks the consistent
/// start's chain through each chunk's merge forest, resolving every hit's
/// begin and emitting (begin, end) as ABSOLUTE positions (`origin` is the
/// absolute offset of runs[0]'s first symbol; chunk 0 must have run from
/// the single start `state`, later chunks from all states, indexed by state
/// id). `state` enters as the consistent run's state before the batch and
/// leaves as its state after it; `carried_sep` is the absolute last
/// separator and advances with the walk — which is exactly the state a
/// streaming caller keeps between windows. Shared by the one-shot
/// find_matches (origin 0, one batch) and stream_find_feed (one batch per
/// window). Within a chunk a hit whose separator predates the chunk (or,
/// under convergence, predates a merge in its chain) falls back first to
/// the chain's own earlier tracker and ultimately to `carried_sep`.
template <typename Emit>
void join_find_chunks(std::span<const FindChunk> runs, std::span<const ChunkSpan> chunks,
                      std::uint64_t origin, State& state, std::uint64_t& carried_sep,
                      bool& died, Emit&& emit) {
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const FindChunk& run = runs[i];
    const std::uint64_t base = origin + chunks[i].begin;
    // Walk the consistent start's chain through the merge forest. `floor`
    // is the position where the previous chain node merged into the current
    // one — separators recorded before it belong to the current node's own
    // history, not the consistent run's, and substitute through `sub`.
    std::size_t node_index = i == 0 ? 0 : static_cast<std::size_t>(state);
    std::size_t hit_base = 0;
    std::int64_t floor = 0;
    std::int64_t sub = -1;
    while (true) {
      const FindNode& node = run.nodes[node_index];
      for (std::size_t h = hit_base; h < node.hits.size(); ++h) {
        const FindHit& hit = node.hits[h];
        const std::int64_t sep = hit.sep >= floor ? hit.sep : sub;
        emit(sep >= 0 ? base + static_cast<std::uint64_t>(sep) : carried_sep,
             base + hit.pos);
      }
      if (node.parent == -1) {
        const std::int64_t final_sep = node.last_sep >= floor ? node.last_sep : sub;
        if (final_sep >= 0) carried_sep = base + static_cast<std::uint64_t>(final_sep);
        if (node.dead) {
          died = true;
        } else {
          state = node.state;
        }
        break;
      }
      sub = node.last_sep >= floor ? node.last_sep : sub;
      floor = node.merge_pos;
      hit_base = node.parent_base;
      node_index = static_cast<std::size_t>(node.parent);
    }
    if (died) break;
  }
}

/// The SIMD finding kernel: the same lockstep/merge bookkeeping as
/// find_chunk, but each symbol advances ALL active runs through one vector
/// gather over the packed column (util/simd_gather.hpp) into a buffer the
/// scalar bookkeeping then consumes. Hit recording is branch-light: a
/// per-state flag byte (final | initial) is extracted from the gathered
/// next state, the separator update is a conditional move, and the only
/// branch left on the common path is the rare hit push. Emits node fields,
/// accounting and merge forests bit-identical to the scalar kernels.
template <bool kConvergent, typename T>
FindChunk find_chunk_simd(const Dfa& dfa, const PackedTable& table,
                          std::span<const Symbol> span,
                          std::span<const State> starts,
                          const QueryGovernor* gov) {
  constexpr std::int32_t kDeadWide = PackedWideDead<T>;
  const simd::GatherFn gather = simd::gather_fn<T>(simd::gather_ops());
  const T* entries = table.data<T>();
  const auto n = static_cast<std::size_t>(table.num_states());
  const auto limit = static_cast<std::uint32_t>(table.num_symbols());
  const State initial = dfa.initial();

  // flag[s]: bit 0 = final (record a hit), bit 1 = initial (new separator).
  std::vector<std::uint8_t> flags(n, 0);
  for (State s = 0; s < dfa.num_states(); ++s)
    flags[static_cast<std::size_t>(s)] = static_cast<std::uint8_t>(
        (dfa.is_final(s) ? 1u : 0u) | (s == initial ? 2u : 0u));

  FindChunk chunk;
  chunk.nodes.resize(starts.size());
  std::vector<std::int32_t> active;  // node indices, in `starts` order
  std::vector<std::int32_t> astate;  // i32 gather indices, parallel to active
  active.reserve(starts.size());
  astate.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    FindNode& node = chunk.nodes[s];
    node.state = starts[s];  // starts are distinct states — no merges yet
    if (starts[s] == initial) node.last_sep = 0;
    active.push_back(static_cast<std::int32_t>(s));
    astate.push_back(starts[s]);
  }

  std::vector<std::int32_t> owner;
  std::vector<State> touched;
  if constexpr (kConvergent) owner.assign(n, -1);

  std::int64_t pos = 0;
  GovPoll poll(gov);
  for (const Symbol symbol : span) {
    poll.step();
    if (active.empty()) break;
    if (static_cast<std::uint32_t>(symbol) >= limit) {
      // Alien symbol: every run dies without the symbol being counted.
      for (const std::int32_t idx : active)
        chunk.nodes[static_cast<std::size_t>(idx)].dead = true;
      active.clear();
      break;
    }
    const T* col = entries + static_cast<std::size_t>(symbol) * n;
    // In-place gather (the contract allows out == idx): astate[a] becomes
    // the advanced state; the bookkeeping below reads slot a before the
    // compaction writes slot `write` <= a.
    gather(col, astate.data(), active.size(), astate.data());
    ++pos;
    if constexpr (kConvergent) touched.clear();
    std::size_t write = 0;
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::int32_t idx = active[a];
      FindNode& node = chunk.nodes[static_cast<std::size_t>(idx)];
      const std::int32_t value = astate[a];
      if (value == kDeadWide) {
        node.dead = true;  // the dying symbol is not counted
        continue;
      }
      ++chunk.transitions;
      node.state = static_cast<State>(value);
      const std::uint8_t flag = flags[static_cast<std::size_t>(value)];
      node.last_sep = (flag & 2) != 0 ? pos : node.last_sep;
      if ((flag & 1) != 0)
        node.hits.push_back({static_cast<std::uint64_t>(pos), node.last_sep});
      if constexpr (kConvergent) {
        std::int32_t& claim = owner[static_cast<std::size_t>(value)];
        if (claim == -1) {
          claim = idx;
          touched.push_back(static_cast<State>(value));
          active[write] = idx;
          astate[write] = value;
          ++write;
        } else {
          // Merge: idx's run is identical to claim's from here on (see
          // find_chunk — the claiming run already holds this position's
          // hit, so sharing starts after it).
          node.parent = claim;
          node.parent_base = chunk.nodes[static_cast<std::size_t>(claim)].hits.size();
          node.merge_pos = pos;
        }
      } else {
        active[write] = idx;
        astate[write] = value;
        ++write;
      }
    }
    active.resize(write);
    astate.resize(write);
    if constexpr (kConvergent)
      for (const State s : touched) owner[static_cast<std::size_t>(s)] = -1;
  }
  return chunk;
}

FindChunk run_find_chunk(const Dfa& dfa, std::span<const Symbol> span,
                         std::span<const State> starts, const QueryOptions& options,
                         const QueryGovernor* gov) {
  // A gather block is 8 lanes; below that kSimd would pay one dispatch
  // call per symbol for a pure scalar tail, so small start sets take the
  // fused step policy instead (bit-identical results either way).
  if (options.kernel == DetKernel::kSimd && starts.size() >= 8) {
    const PackedTable& table = dfa.packed();
    switch (table.width()) {
      case TableWidth::kU8:
        return options.convergence
                   ? find_chunk_simd<true, std::uint8_t>(dfa, table, span, starts, gov)
                   : find_chunk_simd<false, std::uint8_t>(dfa, table, span, starts, gov);
      case TableWidth::kU16:
        return options.convergence
                   ? find_chunk_simd<true, std::uint16_t>(dfa, table, span, starts, gov)
                   : find_chunk_simd<false, std::uint16_t>(dfa, table, span, starts, gov);
      case TableWidth::kI32:
        break;
    }
    return options.convergence
               ? find_chunk_simd<true, std::int32_t>(dfa, table, span, starts, gov)
               : find_chunk_simd<false, std::int32_t>(dfa, table, span, starts, gov);
  }
  if (options.kernel == DetKernel::kReference) {
    return options.convergence
               ? find_chunk<true>(dfa, span, starts, RowStep{dfa}, gov)
               : find_chunk<false>(dfa, span, starts, RowStep{dfa}, gov);
  }
  const PackedTable& table = dfa.packed();
  switch (table.width()) {
    case TableWidth::kU8:
      return options.convergence
                 ? find_chunk<true>(dfa, span, starts, PackedStep<std::uint8_t>{table},
                                    gov)
                 : find_chunk<false>(dfa, span, starts, PackedStep<std::uint8_t>{table},
                                     gov);
    case TableWidth::kU16:
      return options.convergence
                 ? find_chunk<true>(dfa, span, starts, PackedStep<std::uint16_t>{table},
                                    gov)
                 : find_chunk<false>(dfa, span, starts, PackedStep<std::uint16_t>{table},
                                     gov);
    case TableWidth::kI32:
      break;
  }
  return options.convergence
             ? find_chunk<true>(dfa, span, starts, PackedStep<std::int32_t>{table}, gov)
             : find_chunk<false>(dfa, span, starts, PackedStep<std::int32_t>{table},
                                 gov);
}

/// Resolves the governor an entry point runs under: an explicit one from
/// the caller (a streaming device sharing its per-feed clock), else one
/// built from the options — normalized to nullptr when inactive so the
/// kernels and the per-task polls stay free.
const QueryGovernor* resolve_governor(const QueryGovernor* provided,
                                      const QueryGovernor& own) {
  const QueryGovernor* gov = provided != nullptr ? provided : &own;
  return gov->active() ? gov : nullptr;
}

/// BeginMode::kExact confirmation pass: runs the reversed pattern DFA
/// backwards from `end` over `text` down to `floor`, returning the SMALLEST
/// b with text[b..end) ∈ L(p). The forward searcher guaranteed some
/// occurrence ends at `end`, and the floor is sound (the approximate begin
/// under a separators_sound certificate, the text/history start otherwise),
/// so a final state is always visited; `fallback` only guards a corrupt
/// artifact. Positions are indices into `text` — the caller maps absolute
/// offsets onto it.
std::uint64_t resolve_exact_begin(const Dfa& rev, std::span<const Symbol> text,
                                  std::uint64_t end, std::uint64_t floor,
                                  std::uint64_t fallback) {
  State state = rev.initial();
  std::uint64_t best = fallback;
  if (rev.is_final(state)) best = end;  // ε ∈ L(p): the empty occurrence at end
  for (std::uint64_t b = end; b > floor; --b) {
    const Symbol symbol = text[static_cast<std::size_t>(b - 1)];
    if (symbol < 0 || symbol >= rev.num_symbols()) break;
    state = rev.row(state)[symbol];
    if (state == kDeadState) break;
    if (rev.is_final(state)) best = b - 1;
  }
  return best;
}

/// The validation shared by the exact-begin entry points: the knob needs
/// the pattern's cached artifact threaded in.
void require_reverse(const ReverseBegins* reverse, const char* context) {
  if (reverse == nullptr)
    throw ValidationError(std::string(context) +
                          ": begin_mode=exact requires the pattern's "
                          "reverse-begins artifact");
}

}  // namespace

QueryResult count_matches(const Dfa& dfa, std::span<const Symbol> input,
                          ThreadPool& pool, const QueryOptions& options,
                          const QueryGovernor* governor) {
  validate_query(options, kCountingCaps, kCountingContext);
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = resolve_governor(governor, own);
  QueryResult result;
  if (input.empty()) return result;

  const auto chunks = split_chunks(input.size(), options.chunks);
  result.chunks = chunks.size();

  // Reach: per chunk, one counting run per possible start (chunk 1 only
  // from the initial state).
  Stopwatch reach_clock;
  std::vector<State> all_states;
  all_states.reserve(static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s) all_states.push_back(s);
  const std::vector<State> first_start{dfa.initial()};

  std::vector<CountChunk> runs(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary: the universal checkpoint
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(all_states);
    runs[i] = options.convergence ? count_chunk_convergent(dfa, span, starts, gov)
                                  : count_chunk_independent(dfa, span, starts, gov);
  });
  result.reach_seconds = reach_clock.seconds();

  // Join: walk the unique consistent path and sum the counters. All chunks'
  // transitions are speculative work actually executed, so they count even
  // when the true path dies early (convention: parallel/ca_run.hpp).
  Stopwatch join_clock;
  for (const CountChunk& run : runs) result.transitions += run.transitions;
  State state = dfa.initial();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const CountChunk& run = runs[i];
    const std::size_t index = i == 0 ? 0 : static_cast<std::size_t>(state);
    result.matches += run.hits[index];
    if (run.end[index] == kDeadState) {
      result.died = true;
      break;
    }
    state = run.end[index];
  }
  result.accepted = result.matches > 0;
  result.join_seconds = join_clock.seconds();
  return result;
}

QueryResult find_matches_serial(const Dfa& dfa, std::span<const Symbol> input,
                                std::uint32_t pattern_id, const Dfa* exact_reverse) {
  QueryResult result;
  result.chunks = input.empty() ? 0 : 1;
  const State initial = dfa.initial();
  State state = initial;
  std::uint64_t pos = 0;
  std::uint64_t last_sep = 0;  // position 0: the scan starts in the initial state
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      result.died = true;
      break;
    }
    state = dfa.row(state)[symbol];
    if (state == kDeadState) {
      result.died = true;
      break;
    }
    ++result.transitions;
    ++pos;
    if (state == initial) last_sep = pos;
    if (dfa.is_final(state)) {
      ++result.matches;
      // Oracle-side exactness deliberately ignores the separator floor and
      // rescans from the text start — the dumbest correct implementation,
      // so the property tests catch a parallel-side floor that is too
      // aggressive rather than inheriting it.
      const std::uint64_t begin =
          exact_reverse != nullptr
              ? resolve_exact_begin(*exact_reverse, input, pos, 0, last_sep)
              : last_sep;
      result.positions.push_back({pattern_id, begin, pos});
    }
  }
  result.accepted = result.matches > 0;
  return result;
}

QueryResult find_matches(const Dfa& dfa, std::span<const Symbol> input,
                         ThreadPool& pool, const QueryOptions& options,
                         std::uint32_t pattern_id, const QueryGovernor* governor,
                         const ReverseBegins* reverse) {
  validate_query(options, kFindingCaps, kFindingContext);
  const bool exact = options.begin_mode == BeginMode::kExact;
  if (exact) require_reverse(reverse, "find");
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = resolve_governor(governor, own);
  QueryResult result;
  if (input.empty()) return result;

  const auto chunks = split_chunks(input.size(), options.chunks);
  result.chunks = chunks.size();

  // Reach: per chunk, one finding run per possible start (chunk 1 only from
  // the initial state), exactly like counting.
  Stopwatch reach_clock;
  std::vector<State> all_states;
  all_states.reserve(static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s) all_states.push_back(s);
  const std::vector<State> first_start{dfa.initial()};

  std::vector<FindChunk> runs(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary: the universal checkpoint
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(all_states);
    runs[i] = run_find_chunk(dfa, span, starts, options, gov);
  });
  result.reach_seconds = reach_clock.seconds();

  // Join: walk the unique consistent path, resolving each hit's begin
  // (join_find_chunks). Paging trims the emitted window but never the
  // count. Transition accounting: parallel/ca_run.hpp.
  Stopwatch join_clock;
  for (const FindChunk& run : runs) result.transitions += run.transitions;
  State state = dfa.initial();
  std::uint64_t carried_sep = 0;  // global: position 0 is always a separator
  join_find_chunks(runs, chunks, 0, state, carried_sep, result.died,
                   [&](std::uint64_t begin, std::uint64_t end) {
                     if (result.matches >= options.offset &&
                         result.positions.size() < options.limit) {
                       // Exact begins: confirm backwards from the end. The
                       // approximate begin is a sound scan floor only when
                       // the artifact certifies separators pure; otherwise
                       // the occurrence may straddle it and the scan runs
                       // to the text start.
                       if (exact)
                         begin = resolve_exact_begin(
                             reverse->dfa, input, end,
                             reverse->separators_sound ? begin : 0, begin);
                       result.positions.push_back({pattern_id, begin, end});
                     }
                     ++result.matches;
                   });
  result.accepted = result.matches > 0;
  result.join_seconds = join_clock.seconds();
  return result;
}

void stream_find_feed(const Dfa& dfa, FindCarry& carry, std::span<const Symbol> window,
                      ThreadPool& pool, const QueryOptions& options,
                      const MatchSink& sink, std::uint32_t pattern_id,
                      const QueryGovernor* governor, const ReverseBegins* reverse) {
  validate_query(options, kStreamFindingCaps, kStreamFindingContext);
  const bool exact = options.begin_mode == BeginMode::kExact;
  if (exact) require_reverse(reverse, "streaming find");
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = resolve_governor(governor, own);
  if (window.empty()) return;
  // The exact-begin memory bound: the cap is on PEAK retention (carried
  // tail + the incoming window), checked BEFORE any carry mutation so the
  // throw leaves the carry consistent — the session-level poisoning that
  // follows is a policy choice, not a necessity. A died carry retains
  // nothing, so the cap has nothing to bound there.
  if (exact && !carry.died && options.max_history_bytes != 0 &&
      carry.history.size() + window.size() > options.max_history_bytes)
    throw ResourceExhausted(
        "exact-begin history",
        static_cast<std::int64_t>(options.max_history_bytes),
        static_cast<std::int64_t>(carry.history.size() + window.size()));
  const std::uint64_t origin = carry.consumed;
  carry.consumed += window.size();
  if (carry.died) return;  // the run already left the automaton — nothing
                           // downstream can match, only the offset advances
  if (carry.at_start) {
    carry.state = dfa.initial();
    carry.last_sep = 0;  // position 0: the stream starts in the initial state
    carry.at_start = false;
  }
  if (exact)  // history invariant: covers [history_base, consumed)
    carry.history.insert(carry.history.end(), window.begin(), window.end());

  // Reach: exactly the one-shot fan-out, except the window's first chunk
  // continues from the CARRIED state instead of the initial one; later
  // chunks speculate from every searcher state. The speculative start set
  // is filled once per session (first multi-chunk window) and reused —
  // single-chunk windows, the tailing hot path, never build it.
  const auto chunks = split_chunks(window.size(), options.chunks);
  if (chunks.size() > 1 && carry.speculative_starts.empty()) {
    carry.speculative_starts.reserve(static_cast<std::size_t>(dfa.num_states()));
    for (State s = 0; s < dfa.num_states(); ++s) carry.speculative_starts.push_back(s);
  }
  const std::vector<State> first_start{carry.state};

  std::vector<FindChunk> runs(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // window/chunk boundary checkpoint
    const auto span = window.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(carry.speculative_starts);
    runs[i] = run_find_chunk(dfa, span, starts, options, gov);
  });

  // Join, serialized per window: the carried (state, last separator) enter
  // the walk and leave updated for the next window; hits emit through the
  // sink with absolute offsets.
  for (const FindChunk& run : runs) carry.transitions += run.transitions;
  join_find_chunks(runs, chunks, origin, carry.state, carry.last_sep, carry.died,
                   [&](std::uint64_t begin, std::uint64_t end) {
                     if (exact) {
                       // Confirm backwards over the retained history. Every
                       // separator a hit can carry postdates the last
                       // truncation point, so the floor never leaves the
                       // tail; positions map through history_base.
                       const std::uint64_t floor =
                           reverse->separators_sound ? begin : carry.history_base;
                       begin = carry.history_base +
                               resolve_exact_begin(
                                   reverse->dfa, carry.history,
                                   end - carry.history_base,
                                   floor - carry.history_base,
                                   begin - carry.history_base);
                     }
                     ++carry.matches;
                     sink(Match{pattern_id, begin, end});
                   });

  if (exact) {
    if (carry.died) {
      // Nothing downstream can match — drop the tail outright.
      carry.history.clear();
      carry.history.shrink_to_fit();
      carry.history_base = carry.consumed;
    } else if (reverse->separators_sound && carry.last_sep > carry.history_base) {
      // No future match can start before the last separator: truncate the
      // carried tail to it. Unsound-separator patterns keep the full
      // history (the documented memory cost of exactness on such shapes).
      carry.history.erase(carry.history.begin(),
                          carry.history.begin() +
                              static_cast<std::ptrdiff_t>(carry.last_sep -
                                                          carry.history_base));
      carry.history_base = carry.last_sep;
    }
  }
}

// --------------------------------------------------------- carry (de)coding

namespace {

void carry_put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void carry_put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

[[noreturn]] void carry_malformed(const char* what) {
  throw ValidationError(std::string("checkpoint: malformed find carry — ") + what);
}

std::uint64_t carry_get_u64(std::string_view image, std::size_t& pos) {
  if (image.size() - pos < 8) carry_malformed("truncated");
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(image[pos++])) << shift;
  return v;
}

std::uint32_t carry_get_u32(std::string_view image, std::size_t& pos) {
  if (image.size() - pos < 4) carry_malformed("truncated");
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(image[pos++])) << shift;
  return v;
}

std::uint8_t carry_get_u8(std::string_view image, std::size_t& pos) {
  if (image.size() - pos < 1) carry_malformed("truncated");
  return static_cast<std::uint8_t>(image[pos++]);
}

}  // namespace

void encode_find_carry(const FindCarry& carry, std::string& out) {
  carry_put_u32(out, static_cast<std::uint32_t>(carry.state));
  out.push_back(static_cast<char>(carry.at_start ? 1 : 0));
  out.push_back(static_cast<char>(carry.died ? 1 : 0));
  carry_put_u64(out, carry.consumed);
  carry_put_u64(out, carry.last_sep);
  carry_put_u64(out, carry.matches);
  carry_put_u64(out, carry.transitions);
  carry_put_u64(out, carry.history_base);
  carry_put_u64(out, carry.history.size());
  for (const Symbol symbol : carry.history)
    carry_put_u32(out, static_cast<std::uint32_t>(symbol));
}

FindCarry decode_find_carry(std::string_view image, std::size_t& pos) {
  FindCarry carry;
  carry.state = static_cast<State>(carry_get_u32(image, pos));
  const std::uint8_t at_start = carry_get_u8(image, pos);
  const std::uint8_t died = carry_get_u8(image, pos);
  if (at_start > 1 || died > 1) carry_malformed("flag byte is not 0/1");
  carry.at_start = at_start != 0;
  carry.died = died != 0;
  carry.consumed = carry_get_u64(image, pos);
  carry.last_sep = carry_get_u64(image, pos);
  carry.matches = carry_get_u64(image, pos);
  carry.transitions = carry_get_u64(image, pos);
  carry.history_base = carry_get_u64(image, pos);
  const std::uint64_t history_size = carry_get_u64(image, pos);
  // The length is validated against the REMAINING image before any
  // allocation — a forged length cannot reserve gigabytes off a short blob.
  if (history_size > (image.size() - pos) / 4) carry_malformed("truncated history");
  if (carry.state < kDeadState) carry_malformed("state below the dead sentinel");
  if (carry.last_sep > carry.consumed) carry_malformed("last_sep past consumed");
  if (carry.history_base > carry.consumed) carry_malformed("history_base past consumed");
  if (carry.at_start &&
      (carry.consumed != 0 || carry.died || history_size != 0))
    carry_malformed("fresh carry with consumed input");
  // The tail invariant: when retained, history covers [history_base,
  // consumed) exactly (stream_find_feed maintains it every feed).
  if (history_size != 0 && carry.history_base + history_size != carry.consumed)
    carry_malformed("history does not cover [history_base, consumed)");
  carry.history.reserve(history_size);
  for (std::uint64_t i = 0; i < history_size; ++i)
    carry.history.push_back(static_cast<Symbol>(carry_get_u32(image, pos)));
  return carry;
}

}  // namespace rispar
