#include "parallel/match_count.hpp"

#include "parallel/chunking.hpp"
#include "util/stopwatch.hpp"

namespace rispar {

QueryResult count_matches_serial(const Dfa& dfa, std::span<const Symbol> input) {
  QueryResult result;
  result.chunks = input.empty() ? 0 : 1;
  State state = dfa.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      result.died = true;
      return result;
    }
    state = dfa.row(state)[symbol];
    if (state == kDeadState) {
      result.died = true;
      return result;
    }
    ++result.transitions;
    if (dfa.is_final(state)) {
      ++result.matches;
      result.accepted = true;
    }
  }
  return result;
}

namespace {

/// One chunk's counting runs: per start (chunk 1 has a single start, the
/// initial state; later chunks one per DFA state, indexed by state id), the
/// end state of the run (kDeadState if it died) and its total hits.
struct CountChunk {
  std::vector<State> end;
  std::vector<std::uint64_t> hits;
  std::uint64_t transitions = 0;
};

/// The seed implementation: every start runs independently.
CountChunk count_chunk_independent(const Dfa& dfa, std::span<const Symbol> span,
                                   std::span<const State> starts) {
  CountChunk chunk;
  chunk.end.resize(starts.size());
  chunk.hits.assign(starts.size(), 0);
  for (std::size_t s = 0; s < starts.size(); ++s) {
    State state = starts[s];
    for (const Symbol symbol : span) {
      if (symbol < 0 || symbol >= dfa.num_symbols()) {
        state = kDeadState;
        break;
      }
      state = dfa.row(state)[symbol];
      if (state == kDeadState) break;
      ++chunk.transitions;
      if (dfa.is_final(state)) ++chunk.hits[s];
    }
    chunk.end[s] = state;
  }
  return chunk;
}

/// Run-convergence counting: runs that land in the same state at the same
/// position share all future hits, so the merged run executes (and counts
/// transitions) once from the merge point on. Each merged run freezes its
/// own hit counter and remembers (parent, parent's hits at merge); the
/// per-start totals are reconstructed through that merge tree at the end —
/// total(r) = local(r) + (total(parent) - parent_base(r)), because
/// everything the parent chain accrues after the merge is shared.
CountChunk count_chunk_convergent(const Dfa& dfa, std::span<const Symbol> span,
                                  std::span<const State> starts) {
  struct Node {
    State state;
    std::uint64_t hits = 0;
    std::int32_t parent = -1;
    std::uint64_t parent_base = 0;
    bool dead = false;
  };
  CountChunk chunk;
  std::vector<Node> nodes(starts.size());
  std::vector<std::int32_t> active;
  active.reserve(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    nodes[s].state = starts[s];  // starts are distinct states — no merges yet
    active.push_back(static_cast<std::int32_t>(s));
  }

  std::vector<std::int32_t> owner(static_cast<std::size_t>(dfa.num_states()), -1);
  std::vector<State> touched;
  for (const Symbol symbol : span) {
    if (active.empty()) break;
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      // Alien symbol: every run dies without the symbol being counted.
      for (const std::int32_t idx : active) nodes[static_cast<std::size_t>(idx)].dead = true;
      active.clear();
      break;
    }
    touched.clear();
    std::size_t write = 0;
    for (const std::int32_t idx : active) {
      Node& node = nodes[static_cast<std::size_t>(idx)];
      const State next = dfa.row(node.state)[symbol];
      if (next == kDeadState) {
        node.dead = true;  // the dying symbol is not counted
        continue;
      }
      ++chunk.transitions;
      node.state = next;
      if (dfa.is_final(next)) ++node.hits;
      std::int32_t& claim = owner[static_cast<std::size_t>(next)];
      if (claim == -1) {
        claim = idx;
        touched.push_back(next);
        active[write++] = idx;
      } else {
        // Merge: idx's run is identical to claim's from here on.
        node.parent = claim;
        node.parent_base = nodes[static_cast<std::size_t>(claim)].hits;
      }
    }
    active.resize(write);
    for (const State s : touched) owner[static_cast<std::size_t>(s)] = -1;
  }

  chunk.end.resize(starts.size());
  chunk.hits.resize(starts.size());
  for (std::size_t s = 0; s < starts.size(); ++s) {
    std::size_t root = s;
    while (nodes[root].parent != -1) root = static_cast<std::size_t>(nodes[root].parent);
    chunk.end[s] = nodes[root].dead ? kDeadState : nodes[root].state;
    std::uint64_t total = nodes[s].hits;
    std::int32_t parent = nodes[s].parent;
    std::uint64_t base = nodes[s].parent_base;
    while (parent != -1) {
      const Node& up = nodes[static_cast<std::size_t>(parent)];
      total += up.hits - base;
      base = up.parent_base;
      parent = up.parent;
    }
    chunk.hits[s] = total;
  }
  return chunk;
}

}  // namespace

QueryResult count_matches(const Dfa& dfa, std::span<const Symbol> input,
                          ThreadPool& pool, const QueryOptions& options) {
  validate_query(options, kCountingCaps, kCountingContext);
  QueryResult result;
  if (input.empty()) return result;

  const auto chunks = split_chunks(input.size(), options.chunks);
  result.chunks = chunks.size();

  // Reach: per chunk, one counting run per possible start (chunk 1 only
  // from the initial state).
  Stopwatch reach_clock;
  std::vector<State> all_states;
  all_states.reserve(static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s) all_states.push_back(s);
  const std::vector<State> first_start{dfa.initial()};

  std::vector<CountChunk> runs(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(all_states);
    runs[i] = options.convergence ? count_chunk_convergent(dfa, span, starts)
                                  : count_chunk_independent(dfa, span, starts);
  });
  result.reach_seconds = reach_clock.seconds();

  // Join: walk the unique consistent path and sum the counters. All chunks'
  // transitions are speculative work actually executed, so they count even
  // when the true path dies early (convention: parallel/ca_run.hpp).
  Stopwatch join_clock;
  for (const CountChunk& run : runs) result.transitions += run.transitions;
  State state = dfa.initial();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const CountChunk& run = runs[i];
    const std::size_t index = i == 0 ? 0 : static_cast<std::size_t>(state);
    result.matches += run.hits[index];
    if (run.end[index] == kDeadState) {
      result.died = true;
      break;
    }
    state = run.end[index];
  }
  result.accepted = result.matches > 0;
  result.join_seconds = join_clock.seconds();
  return result;
}

}  // namespace rispar
