#include "parallel/match_count.hpp"

#include "parallel/chunking.hpp"

namespace rispar {

MatchCount count_matches_serial(const Dfa& dfa, std::span<const Symbol> input) {
  MatchCount result;
  State state = dfa.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= dfa.num_symbols()) {
      result.died = true;
      return result;
    }
    state = dfa.row(state)[symbol];
    if (state == kDeadState) {
      result.died = true;
      return result;
    }
    if (dfa.is_final(state)) ++result.matches;
  }
  result.chunks = input.empty() ? 0 : 1;
  return result;
}

namespace {

struct CountingRun {
  State end = kDeadState;
  std::uint64_t hits = 0;
  std::uint64_t survived = 0;  ///< symbols consumed before death (for died runs)
};

}  // namespace

MatchCount count_matches(const Dfa& dfa, std::span<const Symbol> input,
                         ThreadPool& pool, std::size_t chunks_requested) {
  MatchCount result;
  if (input.empty()) return result;

  const auto chunks = split_chunks(input.size(), chunks_requested);
  result.chunks = chunks.size();

  // Reach: per chunk, one counting run per possible start (chunk 1 only
  // from the initial state).
  const auto n = static_cast<std::size_t>(dfa.num_states());
  std::vector<std::vector<CountingRun>> runs(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::size_t starts = (i == 0) ? 1 : n;
    runs[i].resize(starts);
    for (std::size_t s = 0; s < starts; ++s) {
      State state = (i == 0) ? dfa.initial() : static_cast<State>(s);
      CountingRun& run = runs[i][s];
      for (const Symbol symbol : span) {
        if (symbol < 0 || symbol >= dfa.num_symbols()) {
          state = kDeadState;
          break;
        }
        state = dfa.row(state)[symbol];
        if (state == kDeadState) break;
        ++run.survived;
        if (dfa.is_final(state)) ++run.hits;
      }
      run.end = state;
    }
  });

  // Join: walk the unique consistent path and sum the counters.
  State state = dfa.initial();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const CountingRun& run = runs[i][i == 0 ? 0 : static_cast<std::size_t>(state)];
    result.matches += run.hits;
    if (run.end == kDeadState) {
      result.died = true;
      return result;
    }
    state = run.end;
  }
  return result;
}

}  // namespace rispar
