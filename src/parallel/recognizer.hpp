// High-level facade: builds all three chunk automata for one language and
// exposes uniform parallel recognition — the "tool" of the paper's Sect. 4
// (generator + parallel recognizer + test driver feed off this type).
#pragma once

#include <string>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "core/interface_min.hpp"
#include "core/ridfa.hpp"
#include "parallel/csdpa.hpp"

namespace rispar {

enum class Variant {
  kDfa,  ///< classic CSDPA over the minimal DFA
  kNfa,  ///< classic CSDPA over the NFA
  kRid,  ///< the paper's RID over the interface-minimized RI-DFA
};

const char* variant_name(Variant variant);

/// One language, three engines. The NFA is the source of truth; the minimal
/// DFA and the (minimized) RI-DFA are derived from it, so all three devices
/// recognize exactly the same language (property-tested).
class LanguageEngines {
 public:
  /// Compiles via Glushkov (ε-free by construction).
  static LanguageEngines from_regex(const std::string& pattern);

  /// Takes ownership of an NFA (ε-removed and trimmed internally).
  static LanguageEngines from_nfa(Nfa nfa);

  const Nfa& nfa() const { return nfa_; }
  const Dfa& min_dfa() const { return min_dfa_; }
  const Ridfa& ridfa() const { return ridfa_; }
  const SymbolMap& symbols() const { return nfa_.symbols(); }

  /// Translates byte text with the shared SymbolMap.
  std::vector<Symbol> translate(const std::string& text) const {
    return symbols().translate(text);
  }

  /// Parallel recognition with the chosen chunk automaton.
  RecognitionStats recognize(Variant variant, std::span<const Symbol> input,
                             ThreadPool& pool, const DeviceOptions& options) const;

  /// Serial ground truth (minimal-DFA run from its initial state).
  bool accepts(std::span<const Symbol> input) const;

 private:
  LanguageEngines(Nfa nfa, Dfa min_dfa, Ridfa ridfa);

  Nfa nfa_;
  Dfa min_dfa_;
  Ridfa ridfa_;
  DfaDevice dfa_device_;
  NfaDevice nfa_device_;
  RidDevice rid_device_;
};

}  // namespace rispar
