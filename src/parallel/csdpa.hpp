// The three speculative data-parallel recognition devices.
//
//  * DfaDevice — classic CSDPA with a (minimal) DFA chunk automaton: every
//    DFA state is a speculative start (paper Sect. 2).
//  * NfaDevice — classic CSDPA with an NFA chunk automaton: one frontier
//    simulation per NFA state (Sect. 2, "NFA variant").
//  * RidDevice — the paper's contribution (Sect. 3): RI-DFA chunk automaton
//    whose speculative starts are only the interface states, joined through
//    the interface function if / if_min.
//
// All devices share the same two-phase structure: a parallel *reach* phase
// (one task per chunk on a ThreadPool; chunk 1 starts in the real initial
// state only) and a serial *join* phase computing
//     PLAS_i = λ_i( map(PLAS_{i-1}) ∩ PIS_i ),
// where map is the identity for DFA/NFA and the interface function for RID.
// Acceptance: PLAS_c contains a final state. Recognize() returns the
// decision plus the overhead metrics the paper reports (transition counts,
// per-phase wall times).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"
#include "parallel/ca_run.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

struct RecognitionStats {
  bool accepted = false;
  std::uint64_t transitions = 0;     ///< total over all chunks (reach phase)
  std::uint64_t chunks = 0;          ///< actual chunk count after clamping
  double reach_seconds = 0.0;
  double join_seconds = 0.0;

  double total_seconds() const { return reach_seconds + join_seconds; }
};

struct DeviceOptions {
  /// Requested chunk count c; clamped to the input length. c <= 1 means
  /// serial execution (single chunk, no speculation).
  std::size_t chunks = 1;
  /// Run-convergence optimization in the deterministic kernels (ablation).
  bool convergence = false;
  /// Look-back state speculation (paper Sect. 5, Yang & Prasanna [28]
  /// flavour), DFA device only: before the speculative runs of chunk i>=2,
  /// all starts are advanced over the `lookback` symbols preceding the
  /// chunk boundary; only the (deduplicated) survivors start real runs.
  /// Sound because the true boundary state is the image of *some* state
  /// over that window. 0 disables.
  std::size_t lookback = 0;
  /// Parallel tree-reduction join (DFA device only): chunk mappings are
  /// total functions Q → Q ∪ {dead}, whose composition is associative, so
  /// the join can reduce pairwise on the pool in O(log c) rounds instead of
  /// serially. The paper keeps the join serial because it is <1% of the
  /// time (Sect. 4.4) — this mode exists to *measure* that claim.
  bool tree_join = false;
};

class DfaDevice {
 public:
  /// `dfa` must stay alive while the device is used; typically the minimal
  /// DFA of the language.
  explicit DfaDevice(const Dfa& dfa);

  RecognitionStats recognize(std::span<const Symbol> input, ThreadPool& pool,
                             const DeviceOptions& options) const;

 private:
  const Dfa& dfa_;
  std::vector<State> all_states_;  ///< speculative start set = Q
};

class NfaDevice {
 public:
  /// Requires an ε-free NFA (the chunk kernels do not apply closures).
  explicit NfaDevice(const Nfa& nfa);

  RecognitionStats recognize(std::span<const Symbol> input, ThreadPool& pool,
                             const DeviceOptions& options) const;

 private:
  const Nfa& nfa_;
  std::vector<State> all_states_;
};

class RidDevice {
 public:
  explicit RidDevice(const Ridfa& ridfa);

  RecognitionStats recognize(std::span<const Symbol> input, ThreadPool& pool,
                             const DeviceOptions& options) const;

 private:
  const Ridfa& ridfa_;
};

/// The speculation-free comparator (paper Sect. 1, SFA [25]): one SFA run
/// per chunk computes the whole start→end mapping, the join composes the
/// mappings. Exactly n transitions total, at the cost of the SFA's state
/// explosion during construction (see core/sfa.hpp).
class SfaDevice {
 public:
  /// `chunk_automaton` is the DFA the SFA was built from (its initial and
  /// final states decide acceptance). Both must outlive the device.
  SfaDevice(const Sfa& sfa, const Dfa& chunk_automaton);

  RecognitionStats recognize(std::span<const Symbol> input, ThreadPool& pool,
                             const DeviceOptions& options) const;

 private:
  const Sfa& sfa_;
  const Dfa& ca_;
};

}  // namespace rispar
