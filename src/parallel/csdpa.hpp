// The four speculative data-parallel recognition devices, behind the
// polymorphic Device interface (engine/device.hpp).
//
//  * DfaDevice — classic CSDPA with a (minimal) DFA chunk automaton: every
//    DFA state is a speculative start (paper Sect. 2).
//  * NfaDevice — classic CSDPA with an NFA chunk automaton: one frontier
//    simulation per NFA state (Sect. 2, "NFA variant").
//  * RidDevice — the paper's contribution (Sect. 3): RI-DFA chunk automaton
//    whose speculative starts are only the interface states, joined through
//    the interface function if / if_min.
//  * SfaDevice — the speculation-free comparator (Sect. 1, SFA [25]).
//
// The first three share the same two-phase structure: a parallel *reach*
// phase (one task per chunk on a ThreadPool; chunk 1 starts in the real
// initial state only) and a serial *join* phase computing
//     PLAS_i = λ_i( map(PLAS_{i-1}) ∩ PIS_i ),
// where map is the identity for DFA/NFA and the interface function for RID.
// Acceptance: PLAS_c contains a final state. The SFA instead runs one
// mapping-valued chunk automaton per chunk and composes the mappings.
// recognize() returns the decision plus the overhead metrics the paper
// reports (transition counts, per-phase wall times); stream_feed() applies
// the same join condition at window granularity so texts larger than
// memory recognize window by window with O(|PLAS|) carry-over.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "core/ridfa.hpp"
#include "core/sfa.hpp"
#include "engine/device.hpp"
#include "parallel/ca_run.hpp"
#include "parallel/thread_pool.hpp"

namespace rispar {

class DfaDevice : public Device {
 public:
  /// `dfa` must stay alive while the device is used; typically the minimal
  /// DFA of the language.
  explicit DfaDevice(const Dfa& dfa);

  Variant variant() const override { return Variant::kDfa; }
  DeviceCaps capabilities() const override {
    return {.convergence = true, .kernel_select = true, .lookback = true,
            .tree_join = true};
  }

  QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                        const QueryOptions& options) const override;
  bool stream_accepted(const StreamCarry& carry) const override;

 protected:
  void stream_window(StreamCarry& carry, std::span<const Symbol> window,
                     ThreadPool& pool, const QueryOptions& options,
                     const QueryGovernor* governor) const override;

 private:
  const Dfa& dfa_;
  std::vector<State> all_states_;  ///< speculative start set = Q
};

class NfaDevice : public Device {
 public:
  /// Requires an ε-free NFA (the chunk kernels do not apply closures).
  explicit NfaDevice(const Nfa& nfa);

  Variant variant() const override { return Variant::kNfa; }
  DeviceCaps capabilities() const override { return {}; }

  QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                        const QueryOptions& options) const override;
  bool stream_accepted(const StreamCarry& carry) const override;

 protected:
  void stream_window(StreamCarry& carry, std::span<const Symbol> window,
                     ThreadPool& pool, const QueryOptions& options,
                     const QueryGovernor* governor) const override;

 private:
  const Nfa& nfa_;
  std::vector<State> all_states_;
};

class RidDevice : public Device {
 public:
  explicit RidDevice(const Ridfa& ridfa);

  Variant variant() const override { return Variant::kRid; }
  DeviceCaps capabilities() const override {
    return {.convergence = true, .kernel_select = true};
  }

  QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                        const QueryOptions& options) const override;
  bool stream_accepted(const StreamCarry& carry) const override;

 protected:
  void stream_window(StreamCarry& carry, std::span<const Symbol> window,
                     ThreadPool& pool, const QueryOptions& options,
                     const QueryGovernor* governor) const override;

 private:
  const Ridfa& ridfa_;
};

/// The speculation-free comparator (paper Sect. 1, SFA [25]): one SFA run
/// per chunk computes the whole start→end mapping, the join composes the
/// mappings. Exactly n transitions total, at the cost of the SFA's state
/// explosion during construction (see core/sfa.hpp).
class SfaDevice : public Device {
 public:
  /// `chunk_automaton` is the DFA the SFA was built from (its initial and
  /// final states decide acceptance). Both must outlive the device.
  SfaDevice(const Sfa& sfa, const Dfa& chunk_automaton);

  Variant variant() const override { return Variant::kSfa; }
  DeviceCaps capabilities() const override { return {}; }

  QueryResult recognize(std::span<const Symbol> input, ThreadPool& pool,
                        const QueryOptions& options) const override;
  bool stream_accepted(const StreamCarry& carry) const override;

 protected:
  void stream_window(StreamCarry& carry, std::span<const Symbol> window,
                     ThreadPool& pool, const QueryOptions& options,
                     const QueryGovernor* governor) const override;

 private:
  /// Arrival SFA state of one chunk; kDeadState when the chunk contains an
  /// alien symbol and the all-dead mapping was never interned (total chunk
  /// automaton) — the composition must still die.
  State run_chunk(std::span<const Symbol> chunk, std::uint64_t& transitions) const;

  const Sfa& sfa_;
  const Dfa& ca_;
};

}  // namespace rispar
