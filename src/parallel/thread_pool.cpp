#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/fault_inject.hpp"

namespace rispar {

namespace {

// How long a run() caller polls its batch's completion counter before
// advertising itself on sleeping_callers_ and blocking on the done CV.
// In-flight stragglers are one task long, so a short spin almost always
// observes completion without any mutex traffic.
constexpr int kCallerSpinIterations = 2048;

// Idle steal sweeps a worker makes before entering the sleep protocol —
// enough to ride out transient steal races and back-to-back batches.
constexpr int kWorkerIdleSweeps = 64;

}  // namespace

thread_local ThreadPool::Tls ThreadPool::tls_;

// ---------------------------------------------------------------------------
// Chase-Lev deque (weak-memory formulation of Lê, Pop, Cohen, Zappa
// Nardelli, "Correct and Efficient Work-Stealing for Weak Memory Models").
// The owner pushes and pops at the bottom; thieves CAS the top. A slot is
// claimed exactly once, which is what makes the Task pointers safe: a
// claimed task's batch is by definition not yet complete, so the stack
// frame owning the Task is still alive.
// ---------------------------------------------------------------------------

ThreadPool::Deque::Deque(std::int64_t capacity) {
  auto initial = std::make_unique<Buffer>(capacity);
  buffer_.store(initial.get(), std::memory_order_relaxed);
  buffers_.push_back(std::move(initial));
}

ThreadPool::Deque::Buffer* ThreadPool::Deque::grow(Buffer* old, std::int64_t top,
                                                   std::int64_t bottom) {
  auto fresh = std::make_unique<Buffer>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i)
    fresh->slots[i % fresh->capacity].store(
        old->slots[i % old->capacity].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  Buffer* raw = fresh.get();
  // The old buffer stays in buffers_: a thief that loaded its pointer may
  // still read a slot from it (never written again — pushes go to `raw`).
  buffers_.push_back(std::move(fresh));
  buffer_.store(raw, std::memory_order_release);
  return raw;
}

void ThreadPool::Deque::push(Task* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buffer = buffer_.load(std::memory_order_relaxed);
  if (b - t >= buffer->capacity) buffer = grow(buffer, t, b);
  buffer->slots[b % buffer->capacity].store(task, std::memory_order_relaxed);
  // Publish with a release STORE on bottom_, not the fence+relaxed-store of
  // the Lê et al. paper: semantically identical (everything written before
  // this store — the Task fields and the slot — is visible to a thief whose
  // acquire load of bottom_ observes it), but standalone fences are opaque
  // to ThreadSanitizer, which would report the thief's Task read as a race.
  bottom_.store(b + 1, std::memory_order_release);
}

ThreadPool::Task* ThreadPool::Deque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buffer = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  Task* task = nullptr;
  if (t <= b) {
    task = buffer->slots[b % buffer->capacity].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it through the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        task = nullptr;
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

ThreadPool::Task* ThreadPool::Deque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Buffer* buffer = buffer_.load(std::memory_order_acquire);
  Task* task = buffer->slots[t % buffer->capacity].load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return nullptr;  // lost the race (to the owner's pop or another thief)
  return task;
}

// ------------------------------------------------------------------- pool

ThreadPool::ThreadPool(unsigned threads, PoolAdmission admission)
    : admission_(admission) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::execute(const Task& task) {
  Batch* batch = task.batch;
  const std::size_t count = batch->count;
  running_.fetch_add(1, std::memory_order_relaxed);
  try {
    fault::maybe_throw("pool.task");  // injected task failure (tests only)
    (*batch->fn)(task.index);
  } catch (...) {
    // First throwing task wins; the write to `error` happens before this
    // task's completed increment, so the caller (who reads only after the
    // barrier) sees it without a race. The batch still completes — run()
    // must never unwind while unclaimed tasks of its batch sit in queues.
    if (!batch->error_claimed.exchange(true, std::memory_order_acq_rel))
      batch->error = std::current_exception();
  }
  running_.fetch_sub(1, std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  // The moment this fetch_add reaches `count` the submitting run() may
  // return and destroy the batch — everything after it touches only pool
  // state. The seq_cst pairing with the caller's sleeping_callers_
  // increment (drain) makes the notification race-free: either this load
  // sees the sleeper and notifies, or the sleeper's predicate sees the
  // final count.
  const std::size_t done =
      batch->completed.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (done == count && sleeping_callers_.load(std::memory_order_seq_cst) != 0) {
    // Empty critical section: the notify must not slip into the window
    // between a sleeper's predicate check and its wait.
    { std::lock_guard lock(sleep_mutex_); }
    done_cv_.notify_all();
  }
}

ThreadPool::Task* ThreadPool::take_injected() {
  if (injected_size_.load(std::memory_order_acquire) == 0) return nullptr;
  Task* task = nullptr;
  {
    std::lock_guard lock(injection_mutex_);
    if (injected_.empty()) return nullptr;
    task = injected_.front();
    injected_.pop_front();
    injected_size_.store(injected_.size(), std::memory_order_release);
  }
  // Bounded blocking admission: a pop frees queue space, so wake waiters.
  if (admission_.max_injected != 0 && admission_.policy == OverloadPolicy::kBlock)
    admission_cv_.notify_all();
  return task;
}

ThreadPool::Task* ThreadPool::find_task(Deque* own) {
  if (own != nullptr)
    if (Task* task = own->pop()) return task;
  if (Task* task = take_injected()) return task;
  // One sweep over the worker deques from a rotating start, so concurrent
  // thieves fan out over victims instead of convoying on deque 0.
  const std::uint32_t seed =
      steal_seed_.fetch_add(0x9e3779b9u, std::memory_order_relaxed);
  const std::size_t n = deques_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Deque* victim = deques_[(seed + i) % n].get();
    if (victim == own) continue;
    if (Task* task = victim->steal()) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::signal_work() {
  {
    std::lock_guard lock(sleep_mutex_);
    ++wake_epoch_;
  }
  work_cv_.notify_all();
}

void ThreadPool::run(std::size_t count, std::function<void(std::size_t)> fn) {
  run(count, std::move(fn), nullptr);
}

void ThreadPool::run(std::size_t count, std::function<void(std::size_t)> fn,
                     const QueryGovernor* governor) {
  if (count == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.count = count;
  std::vector<Task> tasks(count);
  for (std::size_t i = 0; i < count; ++i) tasks[i] = {&batch, i};

  Deque* own = tls_.pool == this ? tls_.deque : nullptr;
  if (own != nullptr) {
    // On one of this pool's workers (a nested run): the worker's own deque
    // makes the batch immediately stealable while this thread drains it.
    // Pushed in reverse so the LIFO pop hands the caller index 0 first and
    // thieves start from the high indices. Never admission-bounded: nested
    // batches are continuations of already-admitted work.
    for (std::size_t i = count; i-- > 0;) own->push(&tasks[i]);
  } else {
    inject(tasks, governor);  // throws ResourceExhausted on overload
  }
  signal_work();
  drain(batch, own);
  if (batch.error_claimed.load(std::memory_order_acquire) && batch.error)
    std::rethrow_exception(batch.error);
}

void ThreadPool::inject(std::vector<Task>& tasks, const QueryGovernor* governor) {
  const std::size_t count = tasks.size();
  std::unique_lock lock(injection_mutex_);
  if (admission_.max_injected != 0) {
    // Admission rule: an empty queue admits ANY batch (one oversized batch
    // must make progress, never deadlock); otherwise the whole batch must
    // fit under the bound.
    const auto admissible = [&] {
      return injected_.empty() || injected_.size() + count <= admission_.max_injected;
    };
    if (!admissible()) {
      if (admission_.policy == OverloadPolicy::kReject) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw ResourceExhausted("pool admission",
                                static_cast<std::int64_t>(admission_.max_injected),
                                static_cast<std::int64_t>(injected_.size() + count));
      }
      // kBlock: wait for workers to drain the queue, in short slices so a
      // governed submitter notices its own deadline/cancellation while
      // queued. block_timeout 0 = wait forever (minus governance).
      const auto started = std::chrono::steady_clock::now();
      while (!admissible()) {
        const auto slice = std::chrono::milliseconds(5);
        admission_cv_.wait_for(lock, slice);
        if (governor != nullptr) {
          lock.unlock();
          try {
            governor->poll();  // throws on deadline/cancel while queued
          } catch (...) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            throw;
          }
          lock.lock();
        }
        if (admission_.block_timeout.count() > 0 &&
            std::chrono::steady_clock::now() - started >= admission_.block_timeout &&
            !admissible()) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          throw ResourceExhausted(
              "pool admission (block timeout)",
              static_cast<std::int64_t>(admission_.max_injected),
              static_cast<std::int64_t>(injected_.size() + count));
        }
      }
    }
  }
  for (std::size_t i = 0; i < count; ++i) injected_.push_back(&tasks[i]);
  injected_size_.store(injected_.size(), std::memory_order_release);
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.queued = injected_size_.load(std::memory_order_relaxed);
  stats.running = running_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::drain(Batch& batch, Deque* own) {
  const std::size_t count = batch.count;
  while (batch.completed.load(std::memory_order_acquire) != count) {
    if (Task* task = find_task(own)) {
      execute(*task);
      continue;
    }
    // Nothing claimable anywhere. The caller's own submissions are exact
    // (own pop / injection are race-free for their owner), so every
    // remaining task of THIS batch is already executing on another thread.
    // Spin briefly — stragglers are one task long — then sleep.
    bool completed = false;
    for (int spin = 0; spin < kCallerSpinIterations; ++spin) {
      if (spin % 64 == 63) std::this_thread::yield();
      if (batch.completed.load(std::memory_order_acquire) == count) {
        completed = true;
        break;
      }
    }
    if (completed) return;
    sleeping_callers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock lock(sleep_mutex_);
      done_cv_.wait(lock, [&] {
        return batch.completed.load(std::memory_order_seq_cst) == count;
      });
    }
    sleeping_callers_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
}

void ThreadPool::worker_loop(unsigned id) {
  tls_.pool = this;
  tls_.deque = deques_[id].get();
  while (true) {
    if (Task* task = find_task(tls_.deque)) {
      execute(*task);
      continue;
    }
    // Idle: a few yielding sweeps (steal races resolve, back-to-back
    // batches arrive), then the epoch-guarded sleep. Recording the epoch
    // BEFORE the final probe closes the probe-then-sleep race: a submitter
    // bumps the epoch after publishing its tasks, so either the probe sees
    // the tasks or the wait predicate sees the new epoch.
    bool found = false;
    for (int sweep = 0; sweep < kWorkerIdleSweeps && !found; ++sweep) {
      std::this_thread::yield();
      if (Task* task = find_task(tls_.deque)) {
        execute(*task);
        found = true;
      }
    }
    if (found) continue;
    std::uint64_t seen = 0;
    {
      std::lock_guard lock(sleep_mutex_);
      if (stopping_) break;
      seen = wake_epoch_;
    }
    if (Task* task = find_task(tls_.deque)) {
      execute(*task);
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    work_cv_.wait(lock, [&] { return stopping_ || wake_epoch_ != seen; });
    if (stopping_) break;
  }
  tls_ = {};
}

}  // namespace rispar
