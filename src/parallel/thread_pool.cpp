#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace rispar {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run(std::size_t count, std::function<void(std::size_t)> fn) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->fn = std::move(fn);
  batch->count = count;

  std::unique_lock lock(mutex_);
  batch_ = batch;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == batch->count;
  });
  batch_.reset();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stopping_ || generation_ != seen_generation; });
    if (stopping_) return;
    seen_generation = generation_;
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();

    if (batch) {
      std::size_t done_here = 0;
      while (true) {
        const std::size_t index = batch->cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= batch->count) break;
        batch->fn(index);
        ++done_here;
      }
      if (done_here > 0) {
        const std::size_t total =
            batch->completed.fetch_add(done_here, std::memory_order_acq_rel) + done_here;
        if (total == batch->count) {
          // Lock so the notify cannot race ahead of run()'s predicate check.
          std::lock_guard done_lock(mutex_);
          done_cv_.notify_all();
        }
      }
    }
    lock.lock();
  }
}

}  // namespace rispar
