#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace rispar {

namespace {

// The pool whose batch this thread is currently executing a task of (null
// outside tasks); run() uses it to detect reentrant calls on the SAME pool
// and execute them inline instead of deadlocking on the single batch slot.
// Calls into a *different* pool dispatch normally and stay parallel.
thread_local const void* current_pool = nullptr;

// How long the caller polls the completion counter before sleeping on the
// condition variable. In-flight stragglers are one task long, so a short
// spin almost always observes completion without any mutex traffic.
constexpr int kSpinIterations = 2048;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::drain(Batch& batch) {
  // Save/restore (RAII, so a throwing task cannot corrupt it): restoring
  // the previous value keeps cross-pool nesting working — a task on pool A
  // draining a batch of pool B is "inside" B for the duration.
  struct PoolScope {
    const void* saved = current_pool;
    explicit PoolScope(const void* pool) { current_pool = pool; }
    ~PoolScope() { current_pool = saved; }
  };
  std::size_t done_here = 0;
  {
    PoolScope scope(this);
    while (true) {
      const std::size_t index = batch.cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= batch.count) break;
      batch.fn(index);
      ++done_here;
    }
  }
  if (done_here == 0) return batch.completed.load(std::memory_order_seq_cst);
  // seq_cst: must be ordered against the caller's `caller_sleeping` store —
  // see the completion protocol in run().
  return batch.completed.fetch_add(done_here, std::memory_order_seq_cst) + done_here;
}

void ThreadPool::run(std::size_t count, std::function<void(std::size_t)> fn) {
  if (count == 0) return;
  if (current_pool == this) {
    // Reentrant call from inside one of this pool's own tasks: execute
    // inline, serially. The batch slot is single-entry, so handing this to
    // the pool would deadlock the draining thread against itself.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // External callers serialize here: one batch owns the pool at a time,
  // concurrent querying threads queue instead of clobbering each other's
  // batch slot. Reentrant calls returned above, so a caller never waits on
  // its own lock.
  std::lock_guard callers_lock(callers_mutex_);

  auto batch = std::make_shared<Batch>();
  batch->fn = std::move(fn);
  batch->count = count;
  {
    std::lock_guard lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates: with fewer tasks than threads it often drains
  // the whole batch itself and never blocks.
  std::size_t total = drain(*batch);

  // Completion fast path: poll the counter briefly — in-flight stragglers
  // finish in one task's time — so neither caller nor workers touch the
  // mutex on the overwhelmingly common path.
  for (int spin = 0; total != count && spin < kSpinIterations; ++spin) {
    if (spin % 64 == 63) std::this_thread::yield();
    total = batch->completed.load(std::memory_order_acquire);
  }

  if (total != count) {
    // Slow path: publish that we are about to sleep, then wait. The seq_cst
    // store below and the seq_cst fetch_add in drain() form the classic
    // store/load pairing: either the finishing worker sees
    // caller_sleeping == true and notifies under the mutex, or this thread's
    // predicate (checked under the mutex after the store) already sees the
    // final count — a lost wakeup would require both loads to read stale
    // values, which the seq_cst total order forbids.
    std::unique_lock lock(mutex_);
    batch->caller_sleeping.store(true, std::memory_order_seq_cst);
    done_cv_.wait(lock, [&] {
      return batch->completed.load(std::memory_order_seq_cst) == batch->count;
    });
  }

  std::lock_guard lock(mutex_);
  batch_.reset();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stopping_ || generation_ != seen_generation; });
    if (stopping_) return;
    seen_generation = generation_;
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();

    if (batch) {
      const std::size_t total = drain(*batch);
      if (total == batch->count &&
          batch->caller_sleeping.load(std::memory_order_seq_cst)) {
        // The caller is (about to be) asleep. Take the mutex before
        // notifying so the notify cannot slip into the window between the
        // caller's predicate check and its wait.
        { std::lock_guard done_lock(mutex_); }
        done_cv_.notify_all();
      }
    }
    lock.lock();
  }
}

}  // namespace rispar
