#include "parallel/streaming.hpp"

#include "parallel/ca_run.hpp"
#include "parallel/chunking.hpp"
#include "util/bitset.hpp"

namespace rispar {

StreamingRecognizer::StreamingRecognizer(const Ridfa& ridfa, ThreadPool& pool,
                                         DeviceOptions options)
    : ridfa_(ridfa), pool_(pool), options_(options) {
  ridfa.dfa().packed();  // warm the cache so pool workers never pay the build
}

void StreamingRecognizer::reset() {
  plas_.clear();
  at_start_ = true;
  transitions_ = 0;
  windows_ = 0;
}

void StreamingRecognizer::feed(std::span<const Symbol> window) {
  if (window.empty()) return;
  ++windows_;
  if (dead()) return;  // every run already died; input length still grows

  const Dfa& ca = ridfa_.dfa();
  const auto chunks = split_chunks(window.size(), options_.chunks);

  // Reach phase: the window's first chunk continues from the carried PLAS
  // (through the interface function), later chunks speculate as usual.
  const std::vector<State> continuation =
      at_start_ ? std::vector<State>{ridfa_.start_state()}
                : ridfa_.interface_image(plas_);

  std::vector<DetChunkResult> results(chunks.size());
  const DetChunkOptions run_options{options_.convergence};
  pool_.run(chunks.size(), [&](std::size_t i) {
    const auto span = window.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(continuation)
                 : std::span<const State>(ridfa_.initial_states());
    results[i] = run_chunk_det(ca, span, starts, run_options);
  });

  // Join within the window. The first chunk's survivors are kept verbatim
  // (their starts were already filtered through the carried PLAS); later
  // chunks filter through the interface image as in RidDevice.
  std::vector<State> plas;
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    transitions_ += chunk_result.transitions;
    std::vector<State> next;
    if (first_chunk) {
      for (const auto& [start, end] : chunk_result.lambda) {
        (void)start;
        next.push_back(end);
      }
    } else {
      const std::vector<State> image = ridfa_.interface_image(plas);
      Bitset allowed(static_cast<std::size_t>(ca.num_states()));
      for (const State p : image) allowed.set(static_cast<std::size_t>(p));
      for (const auto& [start, end] : chunk_result.lambda)
        if (allowed.test(static_cast<std::size_t>(start))) next.push_back(end);
    }
    plas = std::move(next);
    first_chunk = false;
  }
  plas_ = std::move(plas);
  at_start_ = false;
}

bool StreamingRecognizer::accepted() const {
  if (at_start_) return ridfa_.is_final(ridfa_.start_state());
  for (const State p : plas_)
    if (ridfa_.is_final(p)) return true;
  return false;
}

}  // namespace rispar
