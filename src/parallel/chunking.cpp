#include "parallel/chunking.hpp"

#include <algorithm>

namespace rispar {

std::vector<ChunkSpan> split_chunks(std::size_t n, std::size_t requested) {
  if (n == 0) return {};
  const std::size_t c = std::clamp<std::size_t>(requested, 1, n);
  std::vector<ChunkSpan> chunks(c);
  const std::size_t base = n / c;
  const std::size_t extra = n % c;  // first `extra` chunks get one more
  std::size_t offset = 0;
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t length = base + (i < extra ? 1 : 0);
    chunks[i] = ChunkSpan{offset, length};
    offset += length;
  }
  return chunks;
}

}  // namespace rispar
