#include "parallel/csdpa.hpp"

#include <cassert>

#include "parallel/chunking.hpp"
#include "util/stopwatch.hpp"

namespace rispar {

namespace {

// Empty input: no chunks run; acceptance is a pure initial/final check.
QueryResult empty_input_result(bool initial_is_final) {
  QueryResult stats;
  stats.accepted = initial_is_final;
  return stats;
}

DetChunkOptions kernel_options(const QueryOptions& options,
                               const QueryGovernor* governor) {
  return DetChunkOptions{.convergence = options.convergence,
                         .kernel = options.kernel,
                         .governor = governor};
}

// Per-query governor shared by every chunk task of a recognize() call.
// Normalized to nullptr when inactive so the kernels' fast paths never
// even branch on the pointer.
const QueryGovernor* normalize(const QueryGovernor& own) {
  return own.active() ? &own : nullptr;
}

// Prologue shared by every stream_feed: empty windows are no-ops; a dead
// carry only grows the window count. Returns true when the window runs.
bool stream_window_begins(StreamCarry& carry, std::span<const Symbol> window) {
  if (window.empty()) return false;
  ++carry.windows;
  return carry.at_start || !carry.states.empty();
}

// Fan-out shared by every stream_feed: the window's first chunk continues
// from `continuation` (run receives first = true), later chunks speculate
// from `speculative`.
template <typename Result, typename Run>
std::vector<Result> run_window_chunks(std::span<const Symbol> window,
                                      ThreadPool& pool, std::size_t chunks_requested,
                                      std::span<const State> continuation,
                                      std::span<const State> speculative,
                                      const QueryGovernor* governor, Run&& run) {
  const auto chunks = split_chunks(window.size(), chunks_requested);
  std::vector<Result> results(chunks.size());
  pool.run(chunks.size(), [&](std::size_t i) {
    // Chunk boundary: the universal checkpoint every window shape honors.
    if (governor != nullptr) governor->poll();
    results[i] = run(window.subspan(chunks[i].begin, chunks[i].length),
                     i == 0 ? continuation : speculative, i == 0);
  }, governor);
  return results;
}

// Join fold shared by the DFA/NFA streaming paths, which both track the
// PLAS as a bitset: the first chunk's survivors are kept verbatim (their
// starts were exactly the carried PLAS), later chunks filter through the
// previous PLAS. `accumulate(next, entry)` adds one surviving λ entry.
template <typename Result, typename Accumulate>
void join_window_into_carry(StreamCarry& carry, const std::vector<Result>& results,
                            std::int32_t num_states, Accumulate&& accumulate) {
  Bitset plas(static_cast<std::size_t>(num_states));
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    carry.transitions += chunk_result.transitions;
    Bitset next(static_cast<std::size_t>(num_states));
    for (const auto& entry : chunk_result.lambda) {
      if (first_chunk || plas.test(static_cast<std::size_t>(entry.first)))
        accumulate(next, entry);
    }
    plas = std::move(next);
    first_chunk = false;
  }
  carry.states.clear();
  for (State s = 0; s < num_states; ++s)
    if (plas.test(static_cast<std::size_t>(s))) carry.states.push_back(s);
  carry.at_start = false;
}

}  // namespace

// ---------------------------------------------------------------- DfaDevice

DfaDevice::DfaDevice(const Dfa& dfa) : dfa_(dfa) {
  dfa.packed();  // warm the cache so pool workers never pay the build
  all_states_.reserve(static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s) all_states_.push_back(s);
}

QueryResult DfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                 const QueryOptions& options) const {
  validate_query(options, capabilities(), device_context("recognize", variant()));
  if (input.empty()) return empty_input_result(dfa_.is_final(dfa_.initial()));

  const auto chunks = split_chunks(input.size(), options.chunks);
  QueryResult stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<DetChunkResult> results(chunks.size());
  const std::vector<State> first_start{dfa_.initial()};
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = normalize(own);
  const DetChunkOptions run_options = kernel_options(options, gov);
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    if (i == 0) {
      // Chunk 1 knows its start.
      results[i] = run_chunk_det(dfa_, span, first_start, run_options);
      return;
    }
    if (options.lookback == 0) {
      // Classic CSDPA: speculate on all of Q.
      results[i] = run_chunk_det(dfa_, span, all_states_, run_options);
      return;
    }
    // Look-back: advance every state over the window preceding the
    // boundary (convergent kernel — survivors collapse quickly), then
    // speculate only from the surviving groups' end states, which the
    // convergent kernel hands over deduplicated in distinct_ends.
    const std::size_t window_len = std::min(options.lookback, chunks[i].begin);
    const auto window = input.subspan(chunks[i].begin - window_len, window_len);
    const DetChunkResult probe = run_chunk_det(
        dfa_, window, all_states_,
        DetChunkOptions{.convergence = true, .kernel = options.kernel,
                        .governor = gov});
    results[i] = run_chunk_det(dfa_, span, probe.distinct_ends, run_options);
    // The probe work is real speculative overhead; account for it
    // (accounting convention: parallel/ca_run.hpp).
    results[i].transitions += probe.transitions;
  }, gov);
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  for (const auto& chunk_result : results) stats.transitions += chunk_result.transitions;

  if (options.tree_join) {
    // Each λ_i as a dense function Q → Q ∪ {dead}; compose pairwise.
    const auto n = static_cast<std::size_t>(dfa_.num_states());
    std::vector<std::vector<State>> maps(results.size());
    pool.run(results.size(), [&](std::size_t i) {
      if (gov != nullptr) gov->poll();
      maps[i].assign(n, kDeadState);
      for (const auto& [start, end] : results[i].lambda)
        maps[i][static_cast<std::size_t>(start)] = end;
    }, gov);
    while (maps.size() > 1) {
      const std::size_t pairs = maps.size() / 2;
      std::vector<std::vector<State>> folded(pairs + (maps.size() % 2));
      pool.run(pairs, [&](std::size_t p) {
        if (gov != nullptr) gov->poll();
        const auto& first = maps[2 * p];
        const auto& second = maps[2 * p + 1];
        auto& out = folded[p];
        out.assign(n, kDeadState);
        for (std::size_t q = 0; q < n; ++q) {
          const State mid = first[q];
          out[q] = mid == kDeadState ? kDeadState
                                     : second[static_cast<std::size_t>(mid)];
        }
      }, gov);
      if (maps.size() % 2) folded.back() = std::move(maps.back());
      maps = std::move(folded);
    }
    const State end = maps.front()[static_cast<std::size_t>(dfa_.initial())];
    stats.accepted = end != kDeadState && dfa_.is_final(end);
    stats.join_seconds = join_clock.seconds();
    return stats;
  }

  // Serial join (the paper's): PLAS as a bitset over DFA states; λ_i
  // entries filter-and-map it.
  Bitset plas(static_cast<std::size_t>(dfa_.num_states()));
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    Bitset next(static_cast<std::size_t>(dfa_.num_states()));
    for (const auto& [start, end] : chunk_result.lambda) {
      if (first_chunk || plas.test(static_cast<std::size_t>(start)))
        next.set(static_cast<std::size_t>(end));
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = plas.intersects(dfa_.finals());
  stats.join_seconds = join_clock.seconds();
  return stats;
}

void DfaDevice::stream_window(StreamCarry& carry, std::span<const Symbol> window,
                              ThreadPool& pool, const QueryOptions& options,
                              const QueryGovernor* governor) const {
  if (!stream_window_begins(carry, window)) return;

  const std::vector<State> continuation =
      carry.at_start ? std::vector<State>{dfa_.initial()} : carry.states;
  const DetChunkOptions run_options = kernel_options(options, governor);
  const auto results = run_window_chunks<DetChunkResult>(
      window, pool, options.chunks, continuation, all_states_, governor,
      [&](std::span<const Symbol> span, std::span<const State> starts, bool) {
        return run_chunk_det(dfa_, span, starts, run_options);
      });
  join_window_into_carry(carry, results, dfa_.num_states(),
                         [](Bitset& next, const std::pair<State, State>& entry) {
                           next.set(static_cast<std::size_t>(entry.second));
                         });
}

bool DfaDevice::stream_accepted(const StreamCarry& carry) const {
  if (carry.at_start) return dfa_.is_final(dfa_.initial());
  for (const State s : carry.states)
    if (dfa_.is_final(s)) return true;
  return false;
}

// ---------------------------------------------------------------- NfaDevice

NfaDevice::NfaDevice(const Nfa& nfa) : nfa_(nfa) {
  assert(!nfa.has_epsilon() && "NfaDevice requires an eps-free NFA");
  all_states_.reserve(static_cast<std::size_t>(nfa.num_states()));
  for (State s = 0; s < nfa.num_states(); ++s) all_states_.push_back(s);
}

QueryResult NfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                 const QueryOptions& options) const {
  validate_query(options, capabilities(), device_context("recognize", variant()));
  if (input.empty()) return empty_input_result(nfa_.is_final(nfa_.initial()));

  const auto chunks = split_chunks(input.size(), options.chunks);
  QueryResult stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<NfaChunkResult> results(chunks.size());
  const std::vector<State> first_start{nfa_.initial()};
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = normalize(own);
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(all_states_);
    results[i] = run_chunk_nfa(nfa_, span, starts, gov);
  }, gov);
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // PLAS as a set of NFA states; λ_i(q) is itself a state set, so joining
  // unions the images of the surviving starts.
  Bitset plas(static_cast<std::size_t>(nfa_.num_states()));
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    stats.transitions += chunk_result.transitions;
    Bitset next(static_cast<std::size_t>(nfa_.num_states()));
    for (const auto& [start, ends] : chunk_result.lambda) {
      if (first_chunk || plas.test(static_cast<std::size_t>(start))) next |= ends;
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = plas.intersects(nfa_.finals());
  stats.join_seconds = join_clock.seconds();
  return stats;
}

void NfaDevice::stream_window(StreamCarry& carry, std::span<const Symbol> window,
                              ThreadPool& pool, const QueryOptions& options,
                              const QueryGovernor* governor) const {
  if (!stream_window_begins(carry, window)) return;

  const std::vector<State> continuation =
      carry.at_start ? std::vector<State>{nfa_.initial()} : carry.states;
  const auto results = run_window_chunks<NfaChunkResult>(
      window, pool, options.chunks, continuation, all_states_, governor,
      [&](std::span<const Symbol> span, std::span<const State> starts, bool first) {
        // The first chunk's survivors are all kept verbatim by the join, so
        // only the UNION of its end sets matters — one frontier simulation
        // seeded with the whole carry instead of |carry| full chunk scans.
        return first ? run_chunk_nfa_union(nfa_, span, starts, governor)
                     : run_chunk_nfa(nfa_, span, starts, governor);
      });
  join_window_into_carry(carry, results, nfa_.num_states(),
                         [](Bitset& next, const std::pair<State, Bitset>& entry) {
                           next |= entry.second;
                         });
}

bool NfaDevice::stream_accepted(const StreamCarry& carry) const {
  if (carry.at_start) return nfa_.is_final(nfa_.initial());
  for (const State s : carry.states)
    if (nfa_.is_final(s)) return true;
  return false;
}

// ---------------------------------------------------------------- RidDevice

RidDevice::RidDevice(const Ridfa& ridfa) : ridfa_(ridfa) {
  ridfa.dfa().packed();  // warm the cache so pool workers never pay the build
}

QueryResult RidDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                 const QueryOptions& options) const {
  validate_query(options, capabilities(), device_context("recognize", variant()));
  const Dfa& ca = ridfa_.dfa();
  if (input.empty()) return empty_input_result(ridfa_.is_final(ridfa_.start_state()));

  const auto chunks = split_chunks(input.size(), options.chunks);
  QueryResult stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<DetChunkResult> results(chunks.size());
  const std::vector<State> first_start{ridfa_.start_state()};
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = normalize(own);
  const DetChunkOptions run_options = kernel_options(options, gov);
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    // Only the interface states are speculative starts — this is the whole
    // point of the RI-DFA (|I_B| = |Q_N| or less after minimization).
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start)
                 : std::span<const State>(ridfa_.initial_states());
    results[i] = run_chunk_det(ca, span, starts, run_options);
  }, gov);
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // PLAS as an explicit CA-state list: between chunks it passes through the
  // interface function (Sect. 3.2 / 3.4), which maps each contained NFA
  // state to its (delegated) initial CA state.
  std::vector<State> plas;
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    stats.transitions += chunk_result.transitions;
    std::vector<State> next;
    if (first_chunk) {
      for (const auto& [start, end] : chunk_result.lambda) {
        (void)start;
        next.push_back(end);
      }
    } else {
      const std::vector<State> image = ridfa_.interface_image(plas);
      Bitset allowed(static_cast<std::size_t>(ca.num_states()));
      for (const State p : image) allowed.set(static_cast<std::size_t>(p));
      for (const auto& [start, end] : chunk_result.lambda)
        if (allowed.test(static_cast<std::size_t>(start))) next.push_back(end);
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = false;
  for (const State p : plas)
    if (ridfa_.is_final(p)) {
      stats.accepted = true;
      break;
    }
  stats.join_seconds = join_clock.seconds();
  return stats;
}

void RidDevice::stream_window(StreamCarry& carry, std::span<const Symbol> window,
                              ThreadPool& pool, const QueryOptions& options,
                              const QueryGovernor* governor) const {
  if (!stream_window_begins(carry, window)) return;

  const Dfa& ca = ridfa_.dfa();
  // Reach phase: the window's first chunk continues from the carried PLAS
  // (through the interface function), later chunks speculate as usual.
  const std::vector<State> continuation =
      carry.at_start ? std::vector<State>{ridfa_.start_state()}
                     : ridfa_.interface_image(carry.states);
  const DetChunkOptions run_options = kernel_options(options, governor);
  const auto results = run_window_chunks<DetChunkResult>(
      window, pool, options.chunks, continuation, ridfa_.initial_states(), governor,
      [&](std::span<const Symbol> span, std::span<const State> starts, bool) {
        return run_chunk_det(ca, span, starts, run_options);
      });

  // Join within the window. The first chunk's survivors are kept verbatim
  // (their starts were already filtered through the carried PLAS); later
  // chunks filter through the interface image as in one-shot recognition.
  // The PLAS stays an explicit CA-state list (the interface function
  // consumes it), so this join does not share the bitset fold above.
  std::vector<State> plas;
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    carry.transitions += chunk_result.transitions;
    std::vector<State> next;
    if (first_chunk) {
      for (const auto& [start, end] : chunk_result.lambda) {
        (void)start;
        next.push_back(end);
      }
    } else {
      const std::vector<State> image = ridfa_.interface_image(plas);
      Bitset allowed(static_cast<std::size_t>(ca.num_states()));
      for (const State p : image) allowed.set(static_cast<std::size_t>(p));
      for (const auto& [start, end] : chunk_result.lambda)
        if (allowed.test(static_cast<std::size_t>(start))) next.push_back(end);
    }
    plas = std::move(next);
    first_chunk = false;
  }
  carry.states = std::move(plas);
  carry.at_start = false;
}

bool RidDevice::stream_accepted(const StreamCarry& carry) const {
  if (carry.at_start) return ridfa_.is_final(ridfa_.start_state());
  for (const State p : carry.states)
    if (ridfa_.is_final(p)) return true;
  return false;
}

// ---------------------------------------------------------------- SfaDevice

SfaDevice::SfaDevice(const Sfa& sfa, const Dfa& chunk_automaton)
    : sfa_(sfa), ca_(chunk_automaton) {}

State SfaDevice::run_chunk(std::span<const Symbol> chunk,
                           std::uint64_t& transitions) const {
  // Validate up front: an alien symbol kills every run. When the chunk
  // automaton is total its all-dead mapping was never interned as an SFA
  // state, so Sfa::run alone cannot express the death — return kDeadState
  // and let the join treat the whole composition as dead. (The symbols
  // before the alien one were real work and are counted; the alien one is
  // not — the accounting convention of parallel/ca_run.hpp.)
  const std::size_t valid = first_invalid_symbol(chunk, sfa_.num_symbols());
  if (valid == chunk.size()) return sfa_.run(chunk.data(), chunk.size(), transitions);
  // Alien present: consume the valid prefix (real work, counted), then the
  // whole chunk dies regardless of start.
  sfa_.run(chunk.data(), valid, transitions);
  return sfa_.all_dead_state().value_or(kDeadState);
}

QueryResult SfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                 const QueryOptions& options) const {
  validate_query(options, capabilities(), device_context("recognize", variant()));
  if (input.empty()) return empty_input_result(ca_.is_final(ca_.initial()));

  const auto chunks = split_chunks(input.size(), options.chunks);
  QueryResult stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  // One SFA run per chunk, from the identity mapping — no speculation.
  // Governance is chunk-boundary only: Sfa::run is an opaque packed scan
  // with no start parameter, so there is no mid-chunk resume point worth a
  // finer stride (raise options.chunks for tighter trip latency).
  const QueryGovernor own(options.deadline, options.cancel);
  const QueryGovernor* gov = normalize(own);
  std::vector<State> arrivals(chunks.size());
  std::vector<std::uint64_t> counts(chunks.size(), 0);
  pool.run(chunks.size(), [&](std::size_t i) {
    if (gov != nullptr) gov->poll();  // chunk boundary
    arrivals[i] = run_chunk(input.subspan(chunks[i].begin, chunks[i].length), counts[i]);
  }, gov);
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // Compose: thread the CA start state through each chunk's mapping.
  State state = ca_.initial();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    stats.transitions += counts[i];
    if (state == kDeadState) continue;
    state = arrivals[i] == kDeadState
                ? kDeadState
                : sfa_.mapping_entry(arrivals[i], state);
  }
  stats.accepted = state != kDeadState && ca_.is_final(state);
  stats.join_seconds = join_clock.seconds();
  return stats;
}

void SfaDevice::stream_window(StreamCarry& carry, std::span<const Symbol> window,
                              ThreadPool& pool, const QueryOptions& options,
                              const QueryGovernor* governor) const {
  if (!stream_window_begins(carry, window)) return;

  const auto chunks = split_chunks(window.size(), options.chunks);
  std::vector<State> arrivals(chunks.size());
  std::vector<std::uint64_t> counts(chunks.size(), 0);
  pool.run(chunks.size(), [&](std::size_t i) {
    if (governor != nullptr) governor->poll();  // chunk boundary (see recognize)
    arrivals[i] = run_chunk(window.subspan(chunks[i].begin, chunks[i].length), counts[i]);
  }, governor);

  State state = carry.at_start ? ca_.initial() : carry.states.front();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    carry.transitions += counts[i];
    if (state == kDeadState) continue;
    state = arrivals[i] == kDeadState
                ? kDeadState
                : sfa_.mapping_entry(arrivals[i], state);
  }
  carry.states.clear();
  if (state != kDeadState) carry.states.push_back(state);
  carry.at_start = false;
}

bool SfaDevice::stream_accepted(const StreamCarry& carry) const {
  if (carry.at_start) return ca_.is_final(ca_.initial());
  return !carry.states.empty() && ca_.is_final(carry.states.front());
}

}  // namespace rispar
