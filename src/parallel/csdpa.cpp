#include "parallel/csdpa.hpp"

#include <cassert>

#include "parallel/chunking.hpp"
#include "util/stopwatch.hpp"

namespace rispar {

namespace {

// Empty input: no chunks run; acceptance is a pure initial/final check.
template <typename IsFinal>
RecognitionStats empty_input_result(bool initial_is_final, IsFinal&&) {
  RecognitionStats stats;
  stats.accepted = initial_is_final;
  return stats;
}

}  // namespace

DfaDevice::DfaDevice(const Dfa& dfa) : dfa_(dfa) {
  dfa.packed();  // warm the cache so pool workers never pay the build
  all_states_.reserve(static_cast<std::size_t>(dfa.num_states()));
  for (State s = 0; s < dfa.num_states(); ++s) all_states_.push_back(s);
}

RecognitionStats DfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                      const DeviceOptions& options) const {
  if (input.empty())
    return empty_input_result(dfa_.is_final(dfa_.initial()), nullptr);

  const auto chunks = split_chunks(input.size(), options.chunks);
  RecognitionStats stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<DetChunkResult> results(chunks.size());
  const std::vector<State> first_start{dfa_.initial()};
  const DetChunkOptions run_options{options.convergence};
  pool.run(chunks.size(), [&](std::size_t i) {
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    if (i == 0) {
      // Chunk 1 knows its start.
      results[i] = run_chunk_det(dfa_, span, first_start, run_options);
      return;
    }
    if (options.lookback == 0) {
      // Classic CSDPA: speculate on all of Q.
      results[i] = run_chunk_det(dfa_, span, all_states_, run_options);
      return;
    }
    // Look-back: advance every state over the window preceding the
    // boundary (convergent kernel — survivors collapse quickly), then
    // speculate only from the surviving groups' end states, which the
    // convergent kernel hands over deduplicated in distinct_ends.
    const std::size_t window_len = std::min(options.lookback, chunks[i].begin);
    const auto window = input.subspan(chunks[i].begin - window_len, window_len);
    const DetChunkResult probe = run_chunk_det(
        dfa_, window, all_states_, DetChunkOptions{.convergence = true});
    results[i] = run_chunk_det(dfa_, span, probe.distinct_ends, run_options);
    // The probe work is real speculative overhead; account for it
    // (accounting convention: parallel/ca_run.hpp).
    results[i].transitions += probe.transitions;
  });
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  for (const auto& chunk_result : results) stats.transitions += chunk_result.transitions;

  if (options.tree_join) {
    // Each λ_i as a dense function Q → Q ∪ {dead}; compose pairwise.
    const auto n = static_cast<std::size_t>(dfa_.num_states());
    std::vector<std::vector<State>> maps(results.size());
    pool.run(results.size(), [&](std::size_t i) {
      maps[i].assign(n, kDeadState);
      for (const auto& [start, end] : results[i].lambda)
        maps[i][static_cast<std::size_t>(start)] = end;
    });
    while (maps.size() > 1) {
      const std::size_t pairs = maps.size() / 2;
      std::vector<std::vector<State>> folded(pairs + (maps.size() % 2));
      pool.run(pairs, [&](std::size_t p) {
        const auto& first = maps[2 * p];
        const auto& second = maps[2 * p + 1];
        auto& out = folded[p];
        out.assign(n, kDeadState);
        for (std::size_t q = 0; q < n; ++q) {
          const State mid = first[q];
          out[q] = mid == kDeadState ? kDeadState
                                     : second[static_cast<std::size_t>(mid)];
        }
      });
      if (maps.size() % 2) folded.back() = std::move(maps.back());
      maps = std::move(folded);
    }
    const State end = maps.front()[static_cast<std::size_t>(dfa_.initial())];
    stats.accepted = end != kDeadState && dfa_.is_final(end);
    stats.join_seconds = join_clock.seconds();
    return stats;
  }

  // Serial join (the paper's): PLAS as a bitset over DFA states; λ_i
  // entries filter-and-map it.
  Bitset plas(static_cast<std::size_t>(dfa_.num_states()));
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    Bitset next(static_cast<std::size_t>(dfa_.num_states()));
    for (const auto& [start, end] : chunk_result.lambda) {
      if (first_chunk || plas.test(static_cast<std::size_t>(start)))
        next.set(static_cast<std::size_t>(end));
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = plas.intersects(dfa_.finals());
  stats.join_seconds = join_clock.seconds();
  return stats;
}

NfaDevice::NfaDevice(const Nfa& nfa) : nfa_(nfa) {
  assert(!nfa.has_epsilon() && "NfaDevice requires an eps-free NFA");
  all_states_.reserve(static_cast<std::size_t>(nfa.num_states()));
  for (State s = 0; s < nfa.num_states(); ++s) all_states_.push_back(s);
}

RecognitionStats NfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                      const DeviceOptions& options) const {
  if (input.empty())
    return empty_input_result(nfa_.is_final(nfa_.initial()), nullptr);

  const auto chunks = split_chunks(input.size(), options.chunks);
  RecognitionStats stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<NfaChunkResult> results(chunks.size());
  const std::vector<State> first_start{nfa_.initial()};
  pool.run(chunks.size(), [&](std::size_t i) {
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    const std::span<const State> starts =
        (i == 0) ? std::span<const State>(first_start) : std::span<const State>(all_states_);
    results[i] = run_chunk_nfa(nfa_, span, starts);
  });
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // PLAS as a set of NFA states; λ_i(q) is itself a state set, so joining
  // unions the images of the surviving starts.
  Bitset plas(static_cast<std::size_t>(nfa_.num_states()));
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    stats.transitions += chunk_result.transitions;
    Bitset next(static_cast<std::size_t>(nfa_.num_states()));
    for (const auto& [start, ends] : chunk_result.lambda) {
      if (first_chunk || plas.test(static_cast<std::size_t>(start))) next |= ends;
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = plas.intersects(nfa_.finals());
  stats.join_seconds = join_clock.seconds();
  return stats;
}

RidDevice::RidDevice(const Ridfa& ridfa) : ridfa_(ridfa) {
  ridfa.dfa().packed();  // warm the cache so pool workers never pay the build
}

RecognitionStats RidDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                      const DeviceOptions& options) const {
  const Dfa& ca = ridfa_.dfa();
  if (input.empty())
    return empty_input_result(ridfa_.is_final(ridfa_.start_state()), nullptr);

  const auto chunks = split_chunks(input.size(), options.chunks);
  RecognitionStats stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  std::vector<DetChunkResult> results(chunks.size());
  const std::vector<State> first_start{ridfa_.start_state()};
  const DetChunkOptions run_options{options.convergence};
  pool.run(chunks.size(), [&](std::size_t i) {
    const auto span = input.subspan(chunks[i].begin, chunks[i].length);
    // Only the interface states are speculative starts — this is the whole
    // point of the RI-DFA (|I_B| = |Q_N| or less after minimization).
    const std::span<const State> starts = (i == 0)
                                              ? std::span<const State>(first_start)
                                              : std::span<const State>(ridfa_.initial_states());
    results[i] = run_chunk_det(ca, span, starts, run_options);
  });
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // PLAS as an explicit CA-state list: between chunks it passes through the
  // interface function (Sect. 3.2 / 3.4), which maps each contained NFA
  // state to its (delegated) initial CA state.
  std::vector<State> plas;
  bool first_chunk = true;
  for (const auto& chunk_result : results) {
    stats.transitions += chunk_result.transitions;
    std::vector<State> next;
    if (first_chunk) {
      for (const auto& [start, end] : chunk_result.lambda) {
        (void)start;
        next.push_back(end);
      }
    } else {
      const std::vector<State> image = ridfa_.interface_image(plas);
      Bitset allowed(static_cast<std::size_t>(ca.num_states()));
      for (const State p : image) allowed.set(static_cast<std::size_t>(p));
      for (const auto& [start, end] : chunk_result.lambda)
        if (allowed.test(static_cast<std::size_t>(start))) next.push_back(end);
    }
    plas = std::move(next);
    first_chunk = false;
  }
  stats.accepted = false;
  for (const State p : plas)
    if (ridfa_.is_final(p)) {
      stats.accepted = true;
      break;
    }
  stats.join_seconds = join_clock.seconds();
  return stats;
}

SfaDevice::SfaDevice(const Sfa& sfa, const Dfa& chunk_automaton)
    : sfa_(sfa), ca_(chunk_automaton) {}

RecognitionStats SfaDevice::recognize(std::span<const Symbol> input, ThreadPool& pool,
                                      const DeviceOptions& options) const {
  if (input.empty())
    return empty_input_result(ca_.is_final(ca_.initial()), nullptr);

  const auto chunks = split_chunks(input.size(), options.chunks);
  RecognitionStats stats;
  stats.chunks = chunks.size();

  Stopwatch reach_clock;
  // One SFA run per chunk, from the identity mapping — no speculation.
  std::vector<State> arrivals(chunks.size());
  std::vector<std::uint64_t> counts(chunks.size(), 0);
  pool.run(chunks.size(), [&](std::size_t i) {
    arrivals[i] = sfa_.run(input.data() + chunks[i].begin, chunks[i].length, counts[i]);
  });
  stats.reach_seconds = reach_clock.seconds();

  Stopwatch join_clock;
  // Compose: thread the CA start state through each chunk's mapping.
  State state = ca_.initial();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    stats.transitions += counts[i];
    if (state != kDeadState) state = sfa_.mapping(arrivals[i])[static_cast<std::size_t>(state)];
  }
  stats.accepted = state != kDeadState && ca_.is_final(state);
  stats.join_seconds = join_clock.seconds();
  return stats;
}

}  // namespace rispar
