#include "parallel/recognizer.hpp"

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/subset.hpp"
#include "regex/parser.hpp"

namespace rispar {

const char* variant_name(Variant variant) {
  switch (variant) {
    case Variant::kDfa: return "DFA";
    case Variant::kNfa: return "NFA";
    case Variant::kRid: return "RID";
  }
  return "?";
}

LanguageEngines::LanguageEngines(Nfa nfa, Dfa min_dfa, Ridfa ridfa)
    : nfa_(std::move(nfa)),
      min_dfa_(std::move(min_dfa)),
      ridfa_(std::move(ridfa)),
      dfa_device_(min_dfa_),
      nfa_device_(nfa_),
      rid_device_(ridfa_) {}

LanguageEngines LanguageEngines::from_regex(const std::string& pattern) {
  return from_nfa(glushkov_nfa(parse_regex(pattern)));
}

LanguageEngines LanguageEngines::from_nfa(Nfa nfa) {
  Nfa eps_free = nfa.has_epsilon() ? remove_epsilon(nfa) : std::move(nfa);
  Nfa trimmed = trim_unreachable(eps_free);
  Dfa min_dfa = minimize_dfa(determinize(trimmed));
  Ridfa ridfa = build_minimized_ridfa(trimmed);
  return LanguageEngines(std::move(trimmed), std::move(min_dfa), std::move(ridfa));
}

RecognitionStats LanguageEngines::recognize(Variant variant, std::span<const Symbol> input,
                                            ThreadPool& pool,
                                            const DeviceOptions& options) const {
  switch (variant) {
    case Variant::kDfa: return dfa_device_.recognize(input, pool, options);
    case Variant::kNfa: return nfa_device_.recognize(input, pool, options);
    case Variant::kRid: return rid_device_.recognize(input, pool, options);
  }
  return {};
}

bool LanguageEngines::accepts(std::span<const Symbol> input) const {
  State state = min_dfa_.initial();
  for (const Symbol symbol : input) {
    if (symbol < 0 || symbol >= min_dfa_.num_symbols()) return false;
    state = min_dfa_.step(state, symbol);
    if (state == kDeadState) return false;
  }
  return min_dfa_.is_final(state);
}

}  // namespace rispar
