// rispar — command-line front end to the rispar::Engine query API.
//
//   rispar compile <pattern>                  automata statistics for an RE
//   rispar match   <pattern> <file|->         parallel recognition of a file
//          [--variant dfa|nfa|rid|sfa|all] [--chunks N] [--threads N]
//          [--convergence]
//   rispar count   <pattern> <file|->         occurrences of pattern
//          [--chunks N] [--convergence]
//   rispar find    <pattern|--patterns FILE> <file|->   positioned matches
//          [--positions] [--chunks N] [--threads N] [--convergence]
//          [--offset N] [--limit N]
//   rispar export  <pattern> [--machine nfa|dfa|ridfa] [--format native|timbuk]
//   rispar gen     <benchmark> <bytes> [--seed N]     workload text to stdout
//   rispar bench-list                         the five paper workloads
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "automata/serialize.hpp"
#include "automata/timbuk.hpp"
#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "regex/parser.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

namespace {

const char* const kUsage =
    "usage:\n"
    "  rispar compile <pattern>\n"
    "  rispar match <pattern> <file|-> [--variant dfa|nfa|rid|sfa|all]\n"
    "               [--chunks N] [--threads N] [--convergence]\n"
    "               [--kernel fused|simd|reference] [--timeout-ms N]\n"
    "  rispar count <pattern> <file|-> [--chunks N] [--convergence]\n"
    "               [--timeout-ms N]\n"
    "  rispar find <pattern> <file|-> [--positions] [--chunks N] [--threads N]\n"
    "              [--convergence] [--kernel fused|simd|reference]\n"
    "              [--offset N] [--limit N] [--timeout-ms N] [--exact-begins]\n"
    "  rispar find --patterns <patterns-file> <file|-> [same flags]\n"
    "  rispar find <pattern|--patterns FILE> <file|-> --stream\n"
    "              [--window BYTES] [--positions] [--chunks N] [--threads N]\n"
    "              [--convergence] [--kernel fused|simd|reference]\n"
    "              [--timeout-ms N] [--exact-begins]\n"
    "  rispar export <pattern> [--machine nfa|dfa|ridfa] [--format native|timbuk]\n"
    "  rispar gen <benchmark> <bytes> [--seed N]\n"
    "  rispar bench-list\n"
    "\n"
    "find reports positioned occurrences. --positions prints one grep-style\n"
    "line per match, 'offset:length:slice': the smallest region guaranteed\n"
    "to contain the match ending there (its start is the scan's last\n"
    "restart point, so when overlapping partial matches chain — e.g. 'aa'\n"
    "in 'aaaa' — the region extends left of the match; for patterns that\n"
    "cannot chain, offset/length are exact). --exact-begins runs the\n"
    "reverse-DFA confirmation pass instead, pinning every offset to the\n"
    "true leftmost start of the match ending there (one extra backward\n"
    "scan per match; see docs/api.md). With --patterns a leading\n"
    "'id:' gives the pattern's 0-based index among the patterns actually\n"
    "loaded (blank lines and lines starting with '#' are skipped and not\n"
    "counted). Without --positions, a per-pattern summary is printed.\n"
    "--offset/--limit page the match list server-style: the printed window\n"
    "moves, the reported total does not. A patterns file holds one regex\n"
    "per line.\n"
    "\n"
    "--kernel picks the deterministic chunk-kernel implementation: 'fused'\n"
    "(default) is the scalar lockstep loop on the width-packed tables,\n"
    "'simd' advances all live runs per symbol through vector gathers (AVX2\n"
    "when the CPU has it, a portable unrolled loop otherwise — detected at\n"
    "runtime, so 'simd' works on any machine), and 'reference' is the seed\n"
    "oracle implementation. All three return identical results; variants\n"
    "that run no deterministic kernel (nfa, sfa) reject a non-default\n"
    "choice. count has one counting kernel and takes no --kernel.\n"
    "\n"
    "--stream reads the input in windows of at most --window bytes (default\n"
    "64 KiB) through a streaming-find session: at no point does the whole\n"
    "input exist in memory, matches print as each window is joined, and\n"
    "offsets are absolute positions in the stream. The log-tailing shape:\n"
    "pipe an unbounded source to stdin ('-') — a slow pipe feeds whatever\n"
    "has arrived instead of waiting for a full window. With --positions\n"
    "each match prints as 'offset:length' (no slice: its begin may lie in\n"
    "a window already scrolled away). --offset/--limit do not apply to\n"
    "streams (an unbounded input has no total to page against) and are\n"
    "rejected. --stream --patterns FILE opens ONE multi-pattern session:\n"
    "every pattern scans the same byte feed and matches print merged in\n"
    "(end, begin, id) order as 'id:offset:length' — the streaming face of\n"
    "the one-shot --patterns fan-out (identical match lists, any window\n"
    "segmentation).\n"
    "\n"
    "--timeout-ms bounds the query's wall-clock budget: the kernels poll a\n"
    "deadline cooperatively (sub-millisecond granularity) and a query that\n"
    "overruns exits with status 4 instead of running away. On --stream the\n"
    "budget applies PER WINDOW — each feed must complete within it.\n"
    "\n"
    "exit status (grep semantics):\n"
    "  0  match / count / find found at least one match (or the command has\n"
    "     no match notion: compile, export, gen, bench-list succeeded)\n"
    "  1  the input was searched cleanly but nothing matched\n"
    "  2  error: bad usage, bad pattern, unsupported option combination\n"
    "     (QueryError), or unreadable input\n"
    "  4  resource governance tripped: --timeout-ms elapsed before the query\n"
    "     finished (DeadlineExceeded) or a construction/admission budget ran\n"
    "     out (ResourceExhausted)\n";

int usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

std::string flag_value(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  for (int i = 0; i < argc - 1; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// Parses --timeout-ms into a deadline (0 / absent = ungoverned). A tripped
/// deadline surfaces as DeadlineExceeded, mapped to exit 4 in main().
std::chrono::nanoseconds parse_timeout_flag(int argc, char** argv) {
  const std::string value = flag_value(argc, argv, "--timeout-ms", "0");
  return std::chrono::milliseconds(std::strtoull(value.c_str(), nullptr, 10));
}

/// Parses --kernel (default: fused). Returns false after printing the
/// error when the value is unknown. 'simd' is always accepted — hardware
/// without AVX2 runs the portable fallback, picked at runtime.
bool parse_kernel_flag(int argc, char** argv, DetKernel& kernel) {
  const std::string value = flag_value(argc, argv, "--kernel", "fused");
  if (value == "fused") {
    kernel = DetKernel::kFused;
  } else if (value == "simd") {
    kernel = DetKernel::kSimd;
  } else if (value == "reference") {
    kernel = DetKernel::kReference;
  } else {
    std::fprintf(stderr, "rispar: unknown kernel '%s' (fused|simd|reference)\n",
                 value.c_str());
    return false;
  }
  return true;
}

int cmd_compile(const std::string& pattern_text) {
  const Pattern pattern = Pattern::compile(pattern_text);
  std::printf("pattern              : %s\n", pattern_text.c_str());
  std::printf("symbol classes       : %d\n", pattern.symbols().num_symbols());
  std::printf("NFA states           : %d (%zu edges)\n", pattern.nfa().num_states(),
              pattern.nfa().num_edges());
  std::printf("minimal DFA states   : %d\n", pattern.min_dfa().num_states());
  std::printf("RI-DFA states        : %d\n", pattern.ridfa().num_states());
  std::printf("RI-DFA interface     : %d initial states\n",
              pattern.ridfa().initial_count());
  return 0;
}

std::string read_input(const std::string& path, bool& ok) {
  ok = true;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "rispar: cannot open '%s'\n", path.c_str());
    ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int cmd_match(const std::string& pattern_text, const std::string& path, int argc,
              char** argv) {
  bool ok = false;
  const std::string text = read_input(path, ok);
  if (!ok) return 2;

  const std::string variant_name_arg = flag_value(argc, argv, "--variant", "rid");
  const auto chunks = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "--chunks", "16").c_str(), nullptr, 10));
  const auto threads = static_cast<unsigned>(
      std::strtoul(flag_value(argc, argv, "--threads", "0").c_str(), nullptr, 10));
  const bool convergence = flag_present(argc, argv, "--convergence");
  DetKernel kernel = DetKernel::kFused;
  if (!parse_kernel_flag(argc, argv, kernel)) return 2;

  const Engine engine(Pattern::compile(pattern_text), {.threads = threads});
  const std::vector<Symbol> input = engine.translate(text);

  std::vector<Variant> variants;
  if (variant_name_arg == "all") {
    variants = {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa};
  } else if (variant_name_arg == "dfa") {
    variants = {Variant::kDfa};
  } else if (variant_name_arg == "nfa") {
    variants = {Variant::kNfa};
  } else if (variant_name_arg == "rid") {
    variants = {Variant::kRid};
  } else if (variant_name_arg == "sfa") {
    variants = {Variant::kSfa};
  } else {
    std::fprintf(stderr, "rispar: unknown variant '%s'\n", variant_name_arg.c_str());
    return 2;
  }

  const bool sweeping_all = variant_name_arg == "all";
  bool accepted = false;
  for (const Variant variant : variants) {
    if (engine.try_device(variant) == nullptr) {
      if (!sweeping_all) {
        // The one requested device cannot run: surface the typed
        // ResourceExhausted (exit 4 in main), not a no-match (exit 1).
        (void)engine.device(variant);  // throws with the probed budget
      }
      std::printf("%-4s: unavailable (SFA construction exceeded its budget)\n",
                  variant_name(variant));
      continue;
    }
    QueryOptions options{.variant = variant, .chunks = chunks,
                         .convergence = convergence, .kernel = kernel};
    options.deadline = parse_timeout_flag(argc, argv);
    // A single requested variant that cannot honor --convergence or
    // --kernel rejects (QueryError, exit 2). In the `all` sweep, drop the
    // knob per variant with an explicit note so rows are never silently
    // mislabeled.
    if (convergence && sweeping_all &&
        !engine.device(variant).capabilities().convergence) {
      std::fprintf(stderr, "rispar: note: %s does not support --convergence; "
                           "running it without\n",
                   variant_name(variant));
      options.convergence = false;
    }
    if (kernel != DetKernel::kFused && sweeping_all &&
        !engine.device(variant).capabilities().kernel_select) {
      std::fprintf(stderr,
                   "rispar: note: %s runs no deterministic kernel; ignoring "
                   "--kernel %s for it\n",
                   variant_name(variant), kernel_name(kernel));
      options.kernel = DetKernel::kFused;
    }
    Stopwatch clock;
    const QueryResult result = engine.recognize(input, options);
    std::printf("%-4s: %-8s %9.3f ms, %llu transitions, c=%llu\n",
                variant_name(variant), result.accepted ? "MATCH" : "no-match",
                clock.millis(), static_cast<unsigned long long>(result.transitions),
                static_cast<unsigned long long>(result.chunks));
    accepted = result.accepted;
  }
  return accepted ? 0 : 1;
}

int cmd_count(const std::string& pattern_text, const std::string& path, int argc,
              char** argv) {
  bool ok = false;
  const std::string text = read_input(path, ok);
  if (!ok) return 2;

  const auto chunks = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "--chunks", "16").c_str(), nullptr, 10));
  const Engine engine(Pattern::compile(pattern_text));
  QueryOptions options{.chunks = chunks,
                       .convergence = flag_present(argc, argv, "--convergence")};
  options.deadline = parse_timeout_flag(argc, argv);
  Stopwatch clock;
  const QueryResult counted = engine.count(text, options);
  std::printf("%llu occurrence%s in %zu bytes (%.3f ms%s)\n",
              static_cast<unsigned long long>(counted.matches),
              counted.matches == 1 ? "" : "s", text.size(), clock.millis(),
              counted.died ? "; scan aborted on foreign byte" : "");
  return counted.matches > 0 ? 0 : 1;
}

/// Loads one regex per line ('#' comments and blank lines skipped, CRLF
/// tolerated). Returns false after printing the error.
bool read_patterns_file(const char* path, std::vector<std::string>& out) {
  std::ifstream patterns_file(path);
  if (!patterns_file) {
    std::fprintf(stderr, "rispar: cannot open patterns file '%s'\n", path);
    return false;
  }
  std::string line;
  while (std::getline(patterns_file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF rulesets
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  if (out.empty()) {
    std::fprintf(stderr, "rispar: patterns file '%s' holds no patterns\n", path);
    return false;
  }
  return true;
}

int cmd_find_stream(const std::vector<std::string>& pattern_texts, bool multi,
                    const std::string& path, int argc, char** argv) {
  QueryOptions options;
  options.positions = true;
  options.chunks = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "--chunks", "16").c_str(), nullptr, 10));
  options.convergence = flag_present(argc, argv, "--convergence");
  if (!parse_kernel_flag(argc, argv, options.kernel)) return 2;
  if (flag_present(argc, argv, "--exact-begins"))
    options.begin_mode = BeginMode::kExact;
  // Per-feed deadline: each window must join within the budget.
  options.deadline = parse_timeout_flag(argc, argv);
  // Paging knobs pass through so the session REJECTS them (QueryError,
  // exit 2) instead of this front end silently dropping them.
  options.offset = static_cast<std::size_t>(
      std::strtoull(flag_value(argc, argv, "--offset", "0").c_str(), nullptr, 10));
  const std::string limit_flag = flag_value(argc, argv, "--limit", "");
  if (!limit_flag.empty())
    options.limit =
        static_cast<std::size_t>(std::strtoull(limit_flag.c_str(), nullptr, 10));
  const auto threads = static_cast<unsigned>(
      std::strtoul(flag_value(argc, argv, "--threads", "0").c_str(), nullptr, 10));
  const auto window_bytes = static_cast<std::size_t>(std::strtoull(
      flag_value(argc, argv, "--window", "65536").c_str(), nullptr, 10));
  if (window_bytes == 0) {
    std::fprintf(stderr, "rispar: --window must be positive\n");
    return 2;
  }

  // One of the two session kinds, behind optionals because neither owner
  // (Engine, PatternSet) is movable. QueryError at open -> exit 2 either way.
  std::optional<Engine> engine;
  std::optional<StreamSession> stream;
  std::optional<PatternSet> set;
  std::optional<MultiStreamSession> multi_stream;
  if (multi) {
    std::vector<Pattern> patterns;
    patterns.reserve(pattern_texts.size());
    for (const std::string& pattern_text : pattern_texts)
      patterns.push_back(Pattern::compile(pattern_text));
    set.emplace(std::move(patterns), EngineConfig{.threads = threads});
    multi_stream = set->stream_find(options);
  } else {
    engine.emplace(Pattern::compile(pattern_texts.front()),
                   EngineConfig{.threads = threads});
    stream = engine->stream(options);
  }

  std::ifstream file;
  if (path != "-") {
    file.open(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "rispar: cannot open '%s'\n", path.c_str());
      return 2;
    }
  }

  const bool print_positions = flag_present(argc, argv, "--positions");
  const MatchSink sink = [&](const Match& m) {
    if (!print_positions) return;
    if (multi) std::printf("%u:", m.pattern_id);
    std::printf("%llu:%llu\n", static_cast<unsigned long long>(m.begin),
                static_cast<unsigned long long>(m.end - m.begin));
  };

  // A tailing consumer reads matches as they happen: line-buffer stdout
  // even when it is a pipe (block buffering would sit on matches for ages).
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  Stopwatch clock;
  std::string buffer(window_bytes, '\0');
  while (true) {
    std::size_t got = 0;
    if (path == "-") {
      // POSIX read on the stdin fd: returns as soon as SOME bytes are
      // available on a pipe — the tailing shape. istream::read would block
      // until a full window accumulated, stalling slow sources for hours.
      const ssize_t n = ::read(STDIN_FILENO, buffer.data(), buffer.size());
      if (n < 0) {
        std::fprintf(stderr, "rispar: read error on stdin\n");
        return 2;
      }
      got = static_cast<std::size_t>(n);
    } else {
      file.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      got = static_cast<std::size_t>(file.gcount());
    }
    if (got == 0) break;
    const std::string_view window(buffer.data(), got);
    if (multi)
      multi_stream->feed(window, sink);
    else
      stream->feed(window, sink);
  }
  if (multi) {
    std::fprintf(stderr,
                 "rispar: %llu match%s across %zu patterns in %llu bytes (%.3f ms)\n",
                 static_cast<unsigned long long>(multi_stream->matches()),
                 multi_stream->matches() == 1 ? "" : "es", multi_stream->patterns(),
                 static_cast<unsigned long long>(multi_stream->bytes_consumed()),
                 clock.millis());
    return multi_stream->matches() > 0 ? 0 : 1;
  }
  std::fprintf(stderr,
               "rispar: %llu match%s in %llu bytes over %llu windows (%.3f ms)\n",
               static_cast<unsigned long long>(stream->matches()),
               stream->matches() == 1 ? "" : "es",
               static_cast<unsigned long long>(stream->bytes_consumed()),
               static_cast<unsigned long long>(stream->windows()), clock.millis());
  return stream->matches() > 0 ? 0 : 1;
}

int cmd_find(int argc, char** argv) {
  // Grammar: find <pattern> <file|->  |  find --patterns <file> <file|->
  //          |  find <pattern> <file|-> --stream.
  if (flag_present(argc, argv, "--stream")) {
    if (std::strcmp(argv[2], "--patterns") == 0) {
      if (argc < 5) return usage();
      std::vector<std::string> pattern_texts;
      if (!read_patterns_file(argv[3], pattern_texts)) return 2;
      return cmd_find_stream(pattern_texts, /*multi=*/true, argv[4], argc, argv);
    }
    return cmd_find_stream({argv[2]}, /*multi=*/false, argv[3], argc, argv);
  }
  std::vector<std::string> pattern_texts;
  std::string input_path;
  bool from_file = false;
  if (std::strcmp(argv[2], "--patterns") == 0) {
    if (argc < 5) return usage();
    from_file = true;
    if (!read_patterns_file(argv[3], pattern_texts)) return 2;
    input_path = argv[4];
  } else {
    pattern_texts.emplace_back(argv[2]);
    input_path = argv[3];
  }

  bool ok = false;
  const std::string text = read_input(input_path, ok);
  if (!ok) return 2;

  QueryOptions options;
  options.chunks = static_cast<std::size_t>(
      std::strtoul(flag_value(argc, argv, "--chunks", "16").c_str(), nullptr, 10));
  options.convergence = flag_present(argc, argv, "--convergence");
  if (!parse_kernel_flag(argc, argv, options.kernel)) return 2;
  if (flag_present(argc, argv, "--exact-begins"))
    options.begin_mode = BeginMode::kExact;
  options.deadline = parse_timeout_flag(argc, argv);
  options.offset = static_cast<std::size_t>(
      std::strtoull(flag_value(argc, argv, "--offset", "0").c_str(), nullptr, 10));
  const std::string limit_flag = flag_value(argc, argv, "--limit", "");
  if (!limit_flag.empty())
    options.limit =
        static_cast<std::size_t>(std::strtoull(limit_flag.c_str(), nullptr, 10));
  const auto threads = static_cast<unsigned>(
      std::strtoul(flag_value(argc, argv, "--threads", "0").c_str(), nullptr, 10));

  std::vector<Pattern> patterns;
  patterns.reserve(pattern_texts.size());
  for (const std::string& pattern_text : pattern_texts)
    patterns.push_back(Pattern::compile(pattern_text));
  const PatternSet set(std::move(patterns), {.threads = threads});

  Stopwatch clock;
  const QueryResult result = set.find(text, options);
  const double millis = clock.millis();

  if (flag_present(argc, argv, "--positions")) {
    for (const Match& m : result.positions) {
      if (from_file) std::printf("%u:", m.pattern_id);
      std::printf("%llu:%llu:%.*s\n", static_cast<unsigned long long>(m.begin),
                  static_cast<unsigned long long>(m.end - m.begin),
                  static_cast<int>(m.end - m.begin), text.data() + m.begin);
    }
    if (result.matches > result.positions.size())
      std::fprintf(stderr, "rispar: showing %zu of %llu matches (--offset/--limit)\n",
                   result.positions.size(),
                   static_cast<unsigned long long>(result.matches));
  } else {
    std::printf("%llu match%s across %zu pattern%s in %zu bytes (%.3f ms%s)\n",
                static_cast<unsigned long long>(result.matches),
                result.matches == 1 ? "" : "es", set.size(),
                set.size() == 1 ? "" : "s", text.size(), millis,
                result.died ? "; a scan aborted on foreign byte" : "");
    if (set.size() > 1) {
      std::vector<std::uint64_t> per_pattern(set.size(), 0);
      for (const Match& m : result.positions) ++per_pattern[m.pattern_id];
      for (std::size_t p = 0; p < set.size(); ++p)
        std::printf("  pattern %zu '%s': %llu in window\n", p,
                    pattern_texts[p].c_str(),
                    static_cast<unsigned long long>(per_pattern[p]));
    }
  }
  return result.matches > 0 ? 0 : 1;
}

int cmd_export(const std::string& pattern_text, int argc, char** argv) {
  const std::string machine = flag_value(argc, argv, "--machine", "nfa");
  const std::string format = flag_value(argc, argv, "--format", "native");
  const Pattern pattern = Pattern::compile(pattern_text);
  if (machine == "nfa") {
    if (format == "timbuk")
      save_timbuk(std::cout, pattern.nfa());
    else
      save_nfa(std::cout, pattern.nfa());
  } else if (machine == "dfa") {
    if (format == "timbuk")
      save_timbuk(std::cout, dfa_to_nfa(pattern.min_dfa()));
    else
      save_dfa(std::cout, pattern.min_dfa());
  } else if (machine == "ridfa") {
    // The RI-DFA exports as its underlying DFA plus an interface comment.
    std::cout << "# RI-DFA: initial interface states:";
    for (const State p : pattern.ridfa().initial_states()) std::cout << ' ' << p;
    std::cout << '\n';
    save_dfa(std::cout, pattern.ridfa().dfa());
  } else {
    std::fprintf(stderr, "rispar: unknown machine '%s'\n", machine.c_str());
    return 2;
  }
  return 0;
}

int cmd_gen(const std::string& name, std::size_t bytes, std::uint64_t seed) {
  for (const auto& spec : benchmark_suite()) {
    if (spec.name != name) continue;
    Prng prng(seed);
    std::cout << spec.text(bytes, prng);
    return 0;
  }
  std::fprintf(stderr, "rispar: unknown benchmark '%s' (try bench-list)\n",
               name.c_str());
  return 2;
}

int cmd_bench_list() {
  for (const auto& spec : benchmark_suite())
    std::printf("%-8s %-8s paper max text %.2f MB\n", spec.name.c_str(),
                spec.winning ? "winning" : "even",
                static_cast<double>(spec.paper_bytes) / (1 << 20));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    if (command == "compile" && argc >= 3) return cmd_compile(argv[2]);
    if (command == "match" && argc >= 4)
      return cmd_match(argv[2], argv[3], argc, argv);
    if (command == "count" && argc >= 4)
      return cmd_count(argv[2], argv[3], argc, argv);
    if (command == "find" && argc >= 4) return cmd_find(argc, argv);
    if (command == "export" && argc >= 3) return cmd_export(argv[2], argc, argv);
    if (command == "gen" && argc >= 4)
      return cmd_gen(argv[2], std::strtoul(argv[3], nullptr, 10),
                     std::strtoul(flag_value(argc, argv, "--seed", "1").c_str(),
                                  nullptr, 10));
    if (command == "bench-list") return cmd_bench_list();
  } catch (const RegexError& error) {
    std::fprintf(stderr, "rispar: bad pattern: %s\n", error.what());
    return 2;
  } catch (const DeadlineExceeded& error) {
    // Governance trips get their own exit status (documented above): a
    // timeout is not a bad query — the caller's retry policy differs.
    std::fprintf(stderr, "rispar: %s\n", error.what());
    return 4;
  } catch (const ResourceExhausted& error) {
    std::fprintf(stderr, "rispar: %s\n", error.what());
    return 4;
  } catch (const QueryError& error) {
    std::fprintf(stderr, "rispar: bad query: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "rispar: %s\n", error.what());
    return 2;
  }
  return usage();
}
