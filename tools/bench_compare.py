#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on throughput regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                        [--series fused,simd]

The guarded series are the production kernels (benchmark labels containing
"fused" or "simd" by default); the reference/oracle series are informational
only, so a slow oracle never blocks a PR. Benchmarks are matched by
name+label; entries present on only one side are reported and skipped (new
benchmarks have no baseline yet, retired ones no longer matter). The metric
is bytes_per_second when both sides report it, else 1/real_time. Entries
that carry one of the LOWER_IS_BETTER side metrics — "p99_ms" tail latency
(the rispard serving sweep) or the "load_ms"/"reload_ms" bundle timings (the
BENCH_bundle_load cold-start sweep) — are additionally gated on each, with
the regression direction flipped, at the same threshold: a serving path can
lose a PR on p99 growth even when aggregate throughput held, and the
zero-copy loader can lose one on load-time growth.

A missing or unreadable baseline file exits 0 with a note: the very first CI
run (and any run after artifact expiry) has nothing to compare against —
this script is the gate only once a trajectory exists.
"""

import argparse
import json
import sys

# Per-entry side metrics gated lower-is-better (latency-shaped), unlike the
# higher-is-better throughput headline. Benchmark counters surface as
# top-level fields of each entry in google-benchmark JSON, so adding a
# counter with one of these names to any benchmark opts it into the gate.
LOWER_IS_BETTER = ("p99_ms", "load_ms", "reload_ms")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return error


def series_key(entry):
    # name already encodes the Args; the label carries the human series tag
    # (e.g. "independent/simd"), which distinguishes relabeled runs.
    return (entry.get("name", ""), entry.get("label", ""))


def metric(entry):
    """Higher-is-better throughput figure for one benchmark entry."""
    bps = entry.get("bytes_per_second")
    if bps:
        return float(bps), "bytes_per_second"
    real = float(entry.get("real_time", 0.0))
    return (1.0 / real if real > 0 else 0.0), "1/real_time"


def guarded(entry, tags):
    haystack = (entry.get("label", "") + " " + entry.get("name", "")).lower()
    return any(tag in haystack for tag in tags)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="maximum allowed fractional throughput drop "
                             "in a guarded series (default 0.15)")
    parser.add_argument("--series", default="fused,simd",
                        help="comma-separated substrings of guarded series "
                             "labels (default: fused,simd)")
    args = parser.parse_args()
    tags = [tag.strip().lower() for tag in args.series.split(",") if tag.strip()]

    baseline = load(args.baseline)
    if isinstance(baseline, Exception):
        print(f"bench_compare: no usable baseline ({args.baseline}: {baseline}); "
              "nothing to compare — first run records the trajectory.")
        return 0
    current = load(args.current)
    if isinstance(current, Exception):
        print(f"bench_compare: cannot read current results {args.current}: "
              f"{current}", file=sys.stderr)
        return 2

    old = {series_key(e): e for e in baseline.get("benchmarks", [])}
    new = {series_key(e): e for e in current.get("benchmarks", [])}

    regressions = []
    compared = 0
    for key, entry in sorted(new.items()):
        if not guarded(entry, tags):
            continue
        if key not in old:
            print(f"  new (no baseline): {key[0]} [{key[1]}]")
            continue
        new_value, how = metric(entry)
        old_value, old_how = metric(old[key])
        if how != old_how:
            # A bench gained/lost SetBytesProcessed: the ratio would compare
            # different units. Treat as a fresh baseline, not a result.
            print(f"  metric changed ({old_how} -> {how}): {key[0]} [{key[1]}]")
            continue
        if old_value <= 0:
            continue
        compared += 1
        change = new_value / old_value - 1.0
        marker = "REGRESSION" if change < -args.threshold else "ok"
        print(f"  {marker:>10}: {key[0]} [{key[1]}] {change:+.1%} ({how})")
        if change < -args.threshold:
            regressions.append((key, change))

        # Lower-is-better side metrics, where reported (tail latency, bundle
        # load/reload timings): the regression direction flips relative to
        # throughput.
        for field in LOWER_IS_BETTER:
            old_side = float(old[key].get(field, 0.0))
            new_side = float(entry.get(field, 0.0))
            if old_side > 0 and new_side > 0:
                side_change = new_side / old_side - 1.0
                marker = "REGRESSION" if side_change > args.threshold else "ok"
                print(f"  {marker:>10}: {key[0]} [{key[1]}] "
                      f"{side_change:+.1%} ({field})")
                if side_change > args.threshold:
                    regressions.append((key, side_change))

    for key in sorted(set(old) - set(new)):
        if guarded(old[key], tags):
            print(f"  retired (in baseline only): {key[0]} [{key[1]}]")

    if regressions:
        print(f"bench_compare: {len(regressions)} guarded series regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for key, change in regressions:
            print(f"  {key[0]} [{key[1]}]: {change:+.1%}", file=sys.stderr)
        return 1
    print(f"bench_compare: {compared} guarded series compared, none regressed "
          f"more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
