// rispard — the streaming query server binary (src/server/).
//
// Serves a manifest of patterns over the length-prefixed TCP protocol of
// server/protocol.hpp: thousands of connections, each multiplexing
// streaming-find sessions with per-feed deadlines, typed error frames,
// admission-controlled overload and hot pattern reload (RELOAD frames or
// SIGHUP re-reading the manifest). docs/rispard.md documents the protocol
// and deployment notes; tools/rispard_loadgen drives it under load.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "server/catalog.hpp"
#include "server/server.hpp"

using namespace rispar;
using namespace rispar::rispard;

namespace {

int usage(const char* argv0, int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--manifest FILE | --pattern RE ...] [options]\n"
               "\n"
               "Serves streaming-find sessions over TCP (docs/rispard.md).\n"
               "\n"
               "  --manifest FILE      pattern manifest (one regex per line, #\n"
               "                       comments); SIGHUP and empty RELOAD frames\n"
               "                       re-read it\n"
               "  --pattern RE         add one pattern (repeatable; ids in order;\n"
               "                       combined after the manifest's patterns)\n"
               "  --bind ADDR          bind address (default 127.0.0.1)\n"
               "  --port N             TCP port; 0 = ephemeral, printed on stdout\n"
               "                       (default 7542)\n"
               "  --threads N          query-pool workers (default: hardware)\n"
               "  --feed-workers N     concurrent governed feeds (default 2)\n"
               "  --max-injected N     pool admission bound (default unbounded)\n"
               "  --admission POLICY   reject|block when the bound trips\n"
               "                       (default reject)\n"
               "  --max-deadline-ms N  cap on client-requested per-feed deadlines\n"
               "  --drain-deadline-ms N  grace period for in-flight feeds when a\n"
               "                       SIGTERM/drain stops the server; 0 waits\n"
               "                       forever (default 5000)\n"
               "  --idle-timeout-ms N  checkpoint and close connections idle this\n"
               "                       long; 0 = never (default 0)\n"
               "  --max-history-bytes N  per-session cap on the exact-begin\n"
               "                       history tail; 0 = unlimited\n"
               "                       (default 2097152)\n"
               "  --help               this text\n",
               argv0);
  return exit_code;
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.port = 7542;
  config.handle_sighup = true;
  config.handle_sigterm = true;  // SIGTERM drains: checkpoints every session
  std::vector<std::string> patterns;
  std::string manifest_path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rispard: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--manifest") {
      manifest_path = value();
    } else if (arg == "--pattern") {
      patterns.emplace_back(value());
    } else if (arg == "--bind") {
      config.bind_address = value();
    } else if (arg == "--port") {
      std::size_t port = 0;
      if (!parse_size(value(), port) || port > 65535) return usage(argv[0], 2);
      config.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--threads") {
      std::size_t threads = 0;
      if (!parse_size(value(), threads)) return usage(argv[0], 2);
      config.pool_threads = static_cast<unsigned>(threads);
    } else if (arg == "--feed-workers") {
      std::size_t workers = 0;
      if (!parse_size(value(), workers)) return usage(argv[0], 2);
      config.feed_workers = static_cast<unsigned>(workers);
    } else if (arg == "--max-injected") {
      if (!parse_size(value(), config.admission.max_injected))
        return usage(argv[0], 2);
    } else if (arg == "--admission") {
      const std::string_view policy = value();
      if (policy == "reject") {
        config.admission.policy = OverloadPolicy::kReject;
      } else if (policy == "block") {
        config.admission.policy = OverloadPolicy::kBlock;
      } else {
        std::fprintf(stderr, "rispard: unknown --admission %s\n",
                     std::string(policy).c_str());
        return 2;
      }
    } else if (arg == "--max-deadline-ms") {
      std::size_t ms = 0;
      if (!parse_size(value(), ms)) return usage(argv[0], 2);
      config.max_feed_deadline_ns = static_cast<std::uint64_t>(ms) * 1000000ull;
    } else if (arg == "--drain-deadline-ms") {
      std::size_t ms = 0;
      if (!parse_size(value(), ms)) return usage(argv[0], 2);
      config.drain_deadline_ms = ms;
    } else if (arg == "--idle-timeout-ms") {
      std::size_t ms = 0;
      if (!parse_size(value(), ms)) return usage(argv[0], 2);
      config.idle_timeout_ms = ms;
    } else if (arg == "--max-history-bytes") {
      std::size_t bytes = 0;
      if (!parse_size(value(), bytes)) return usage(argv[0], 2);
      config.max_history_bytes = bytes;
    } else {
      std::fprintf(stderr, "rispard: unknown argument %s\n",
                   std::string(arg).c_str());
      return usage(argv[0], 2);
    }
  }

  if (!manifest_path.empty()) {
    std::ifstream file(manifest_path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "rispard: cannot read manifest %s\n",
                   manifest_path.c_str());
      return 2;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::vector<std::string> from_manifest = parse_manifest(content.str());
    patterns.insert(patterns.begin(), from_manifest.begin(), from_manifest.end());
    config.manifest_path = manifest_path;
  }
  if (patterns.empty()) {
    std::fprintf(stderr, "rispard: no patterns (--manifest or --pattern)\n");
    return 2;
  }

  // Thousands of connections need thousands of descriptors; lift the soft
  // cap to the hard cap so the default 1024 does not masquerade as a
  // protocol bug under load.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
  }

  try {
    Server server(patterns, config);
    std::printf(
        "rispard: serving %zu patterns on %s:%u (SIGHUP reloads%s, "
        "SIGTERM drains)\n",
        patterns.size(), config.bind_address.c_str(),
        static_cast<unsigned>(server.port()),
        config.manifest_path.empty() ? " inline manifests only" : "");
    std::fflush(stdout);
    server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rispard: %s\n", e.what());
    return 1;
  }
  return 0;
}
