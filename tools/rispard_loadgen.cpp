// rispard_loadgen — the serving-path load generator and fourth gated bench.
//
// Sweeps connections × patterns × feed sizes against a rispard server (an
// in-process one on an ephemeral port by default, or --connect HOST:PORT),
// with every connection running one streaming-find session at pipeline
// depth 1: send FEED, await the FED ack, repeat. Reported per sweep point:
//
//   * p50 / p99 feed latency (send -> ack, measured per feed),
//   * aggregate feed throughput (bytes acked / wall time, all connections),
//   * dropped connections and error frames — both must be ZERO; any drop
//     fails the run (exit 1), which is the CI acceptance bar for "overload
//     surfaces as typed frames, never as resets".
//
// Results land in BENCH_rispard.json in google-benchmark JSON shape, so
// tools/bench_compare.py gates the trajectory exactly like the other three
// artifacts (>15% throughput loss or p99 growth in the "rispard" series
// fails CI; docs/perf.md, "The serving path").
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/prng.hpp"

using namespace rispar;
using namespace rispar::rispard;
using Clock = std::chrono::steady_clock;

namespace {

struct SweepPoint {
  std::size_t connections;
  std::size_t feed_bytes;
  std::size_t feeds_per_connection;
  std::size_t chunks;
  bool multi = false;  ///< whole-catalog multi-pattern sessions (--multi-pattern)
};

// The multi-tenant serving set; sessions round-robin over it.
const std::vector<std::string> kPatterns = {
    "level=(ERROR|FATAL) code=",
    "timeout=[0-9]+ms",
    "(GET|POST) /api/",
};

std::string synthetic_window(std::size_t bytes) {
  static const char* kUnits[] = {"disk", "net", "auth", "sched"};
  Prng prng(11);
  std::string text;
  std::size_t line = 0;
  while (text.size() < bytes) {
    text += "t=" + std::to_string(1000000 + line++) + " unit=";
    text += kUnits[prng.next_below(4)];
    switch (prng.next_below(24)) {
      case 0: text += " level=ERROR code=7"; break;
      case 1: text += " GET /api/users 200"; break;
      case 2: text += " timeout=250ms retrying"; break;
      default: text += " level=info ok"; break;
    }
    text += '\n';
  }
  text.resize(bytes);
  return text;
}

struct ClientConn {
  int fd = -1;
  FrameReader reader;
  std::string out;            // unsent request bytes
  std::size_t out_pos = 0;
  bool awaiting_ack = false;
  Clock::time_point sent_at{};
  std::size_t acks = 0;
  std::uint64_t matches = 0;
};

struct ThreadResult {
  std::vector<double> latencies_ms;
  std::uint64_t matches = 0;
  std::uint64_t errors = 0;
  std::uint64_t drops = 0;
};

int connect_blocking(std::uint16_t port) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    ::close(fd);
    // Transient refusals under a full accept backlog: back off and retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * (attempt + 1)));
  }
  return -1;
}

void queue_feed(ClientConn& conn, const std::string& window) {
  conn.out = make_feed(/*session_id=*/1, window);
  conn.out_pos = 0;
  conn.awaiting_ack = true;
  conn.sent_at = Clock::now();
}

/// Drives one thread's share of connections through the feed rounds:
/// depth-1 pipelining per connection, poll()-multiplexed, latency sampled
/// per FED ack.
void feed_phase(std::vector<ClientConn>& conns, const std::string& window,
                std::size_t rounds, ThreadResult& result) {
  std::size_t outstanding = 0;
  for (ClientConn& conn : conns) {
    queue_feed(conn, window);
    ++outstanding;
  }
  std::vector<pollfd> fds(conns.size());
  while (outstanding > 0) {
    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i].fd;
      fds[i].events = static_cast<short>(
          (conns[i].fd >= 0 && conns[i].awaiting_ack ? POLLIN : 0) |
          (conns[i].fd >= 0 && conns[i].out_pos < conns[i].out.size() ? POLLOUT
                                                                      : 0));
      fds[i].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), 10000) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.fd < 0) continue;
      const auto drop = [&] {
        ::close(conn.fd);
        conn.fd = -1;
        ++result.drops;
        if (conn.awaiting_ack) --outstanding;
      };
      if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
        drop();
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) {
        while (conn.out_pos < conn.out.size()) {
          const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                                   conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            break;
          }
          conn.out_pos += static_cast<std::size_t>(n);
        }
      }
      if ((fds[i].revents & POLLIN) != 0) {
        char chunk[65536];
        const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          drop();
          continue;
        }
        if (n > 0) conn.reader.append(chunk, static_cast<std::size_t>(n));
        Frame frame;
        while (conn.fd >= 0 && conn.reader.next(frame)) {
          if (frame.type == FrameType::kMatches) {
            PayloadReader payload(frame.payload);
            payload.get_u32();
            result.matches += payload.get_u32();
          } else if (frame.type == FrameType::kFed) {
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          conn.sent_at)
                    .count();
            result.latencies_ms.push_back(ms);
            conn.awaiting_ack = false;
            --outstanding;
            if (++conn.acks < rounds) {
              queue_feed(conn, window);
              ++outstanding;
            }
          } else if (frame.type == FrameType::kError) {
            ++result.errors;
            conn.awaiting_ack = false;
            --outstanding;
          }
        }
      }
    }
  }
}

double percentile(std::vector<double>& values, double fraction) {
  if (values.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      fraction * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + index, values.end());
  return values[index];
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool multi_pattern = false;
  std::string out_path = "BENCH_rispard.json";
  std::string connect_spec;
  unsigned client_threads = std::min(8u, std::thread::hardware_concurrency());
  if (client_threads == 0) client_threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--multi-pattern") {
      multi_pattern = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--client-threads" && i + 1 < argc) {
      client_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--multi-pattern] [--out FILE] "
                   "[--connect HOST:PORT] [--client-threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  // 1000 connections client-side + 1000 server-side in one process: lift
  // the descriptor soft cap before it masquerades as dropped connections.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
  }

  std::vector<SweepPoint> sweep =
      quick ? std::vector<SweepPoint>{{64, 4096, 16, 1}, {1000, 4096, 6, 1}}
            : std::vector<SweepPoint>{{64, 4096, 64, 1},
                                      {256, 16384, 24, 4},
                                      {1000, 8192, 12, 2}};
  if (multi_pattern) {
    // Whole-catalog multi-pattern sessions: every connection matches all N
    // catalog patterns in one feed. A NEW JSON series ("/multi" names), so
    // bench_compare.py reports it without gating against the single-pattern
    // baseline — the expected cost is ~N searcher scans per window sharing
    // one merge.
    if (quick)
      sweep.push_back({64, 4096, 16, 1, /*multi=*/true});
    else
      sweep.push_back({256, 8192, 24, 2, /*multi=*/true});
  }

  std::unique_ptr<Server> server;
  std::thread server_thread;
  std::uint16_t port = 0;
  if (connect_spec.empty()) {
    ServerConfig config;
    config.feed_workers = 3;
    server = std::make_unique<Server>(kPatterns, config);
    port = server->port();
    server_thread = std::thread([&] { server->run(); });
  } else {
    const std::size_t colon = connect_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect needs HOST:PORT\n");
      return 2;
    }
    port = static_cast<std::uint16_t>(
        std::strtoul(connect_spec.c_str() + colon + 1, nullptr, 10));
  }

  struct PointResult {
    SweepPoint point;
    double wall_seconds = 0;
    double p50_ms = 0, p99_ms = 0, mean_ms = 0;
    std::uint64_t feeds = 0, matches = 0, errors = 0, drops = 0;
    std::size_t opened = 0;
  };
  std::vector<PointResult> results;
  bool failed = false;

  for (const SweepPoint& point : sweep) {
    PointResult pr;
    pr.point = point;
    const std::string window = synthetic_window(point.feed_bytes);

    // Connect + open (blocking): one session per connection, patterns
    // round-robin over the multi-tenant set.
    std::vector<ClientConn> conns(point.connections);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      conns[i].fd = connect_blocking(port);
      if (conns[i].fd < 0) {
        ++pr.drops;
        continue;
      }
      if (point.multi) {
        // Empty id list = subscribe the tenant's whole catalog.
        send_all(conns[i].fd,
                 make_open_session_multi(1, /*feed_deadline_ns=*/0,
                                         static_cast<std::uint32_t>(point.chunks),
                                         /*pattern_ids=*/{}));
      } else {
        const std::uint32_t pattern_id =
            static_cast<std::uint32_t>(i % kPatterns.size());
        send_all(conns[i].fd,
                 make_open_session(1, pattern_id, /*feed_deadline_ns=*/0,
                                   static_cast<std::uint32_t>(point.chunks)));
      }
    }
    for (ClientConn& conn : conns) {
      if (conn.fd < 0) continue;
      Frame frame;
      if (!recv_frame(conn.fd, conn.reader, frame) ||
          frame.type != FrameType::kOpened) {
        ::close(conn.fd);
        conn.fd = -1;
        ++pr.drops;
        continue;
      }
      set_nonblocking(conn.fd);
      ++pr.opened;
    }

    // Feed phase, thread-partitioned.
    const unsigned threads = std::max(1u, std::min<unsigned>(
        client_threads, static_cast<unsigned>(conns.size())));
    std::vector<ThreadResult> shares(threads);
    std::vector<std::thread> crew;
    const auto t0 = Clock::now();
    for (unsigned t = 0; t < threads; ++t) {
      crew.emplace_back([&, t] {
        const std::size_t lo = conns.size() * t / threads;
        const std::size_t hi = conns.size() * (t + 1) / threads;
        std::vector<ClientConn> share(std::make_move_iterator(conns.begin() + lo),
                                      std::make_move_iterator(conns.begin() + hi));
        feed_phase(share, window, point.feeds_per_connection, shares[t]);
        std::move(share.begin(), share.end(), conns.begin() + lo);
      });
    }
    for (std::thread& t : crew) t.join();
    pr.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    // Close phase (blocking) — drops here count too.
    for (ClientConn& conn : conns) {
      if (conn.fd < 0) continue;
      set_blocking(conn.fd);
      send_all(conn.fd, make_close(1));
      Frame frame;
      bool closed = false;
      while (recv_frame(conn.fd, conn.reader, frame)) {
        if (frame.type == FrameType::kClosed) {
          closed = true;
          break;
        }
      }
      if (!closed) ++pr.drops;
      ::close(conn.fd);
      conn.fd = -1;
    }

    std::vector<double> latencies;
    for (ThreadResult& share : shares) {
      latencies.insert(latencies.end(), share.latencies_ms.begin(),
                       share.latencies_ms.end());
      pr.matches += share.matches;
      pr.errors += share.errors;
      pr.drops += share.drops;
    }
    pr.feeds = latencies.size();
    pr.p50_ms = percentile(latencies, 0.50);
    pr.p99_ms = percentile(latencies, 0.99);
    if (!latencies.empty()) {
      double sum = 0;
      for (double ms : latencies) sum += ms;
      pr.mean_ms = sum / static_cast<double>(latencies.size());
    }

    const double throughput =
        pr.wall_seconds > 0
            ? static_cast<double>(pr.feeds) *
                  static_cast<double>(point.feed_bytes) / pr.wall_seconds
            : 0;
    std::printf(
        "conns=%4zu%s feed=%6zuB x%-3zu  opened=%4zu feeds=%6llu  "
        "p50=%7.3fms p99=%7.3fms  %8.1f MB/s  matches=%llu errors=%llu "
        "drops=%llu\n",
        point.connections, point.multi ? " (multi)" : "", point.feed_bytes,
        point.feeds_per_connection,
        pr.opened, static_cast<unsigned long long>(pr.feeds), pr.p50_ms,
        pr.p99_ms, throughput / 1e6, static_cast<unsigned long long>(pr.matches),
        static_cast<unsigned long long>(pr.errors),
        static_cast<unsigned long long>(pr.drops));
    if (pr.drops > 0 || pr.errors > 0 || pr.opened != point.connections ||
        pr.feeds != pr.opened * point.feeds_per_connection)
      failed = true;
    results.push_back(std::move(pr));
  }

  if (server != nullptr) {
    server->stop();
    server_thread.join();
  }

  // google-benchmark JSON shape: bench_compare.py gates bytes_per_second
  // (higher is better) and p99_ms (lower is better) of the rispard series.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\"executable\": \"rispard_loadgen\", "
                    "\"quick\": %s},\n  \"benchmarks\": [\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& pr = results[i];
    const double throughput =
        pr.wall_seconds > 0
            ? static_cast<double>(pr.feeds) *
                  static_cast<double>(pr.point.feed_bytes) / pr.wall_seconds
            : 0;
    std::fprintf(
        out,
        "    {\"name\": \"rispard_feed%s/conns:%zu/bytes:%zu\", "
        "\"label\": \"rispard/serving\", \"iterations\": %llu, "
        "\"real_time\": %.6f, \"time_unit\": \"ms\", "
        "\"bytes_per_second\": %.1f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
        "\"connections\": %zu, \"dropped_connections\": %llu, "
        "\"error_frames\": %llu}%s\n",
        pr.point.multi ? "_multi" : "", pr.point.connections,
        pr.point.feed_bytes,
        static_cast<unsigned long long>(pr.feeds), pr.mean_ms, throughput,
        pr.p50_ms, pr.p99_ms, pr.point.connections,
        static_cast<unsigned long long>(pr.drops),
        static_cast<unsigned long long>(pr.errors),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  if (failed) {
    std::fprintf(stderr,
                 "rispard_loadgen: FAILED — dropped connections, error frames "
                 "or missing acks (see above); the serving acceptance bar is "
                 "zero of each\n");
    return 1;
  }
  std::printf("rispard_loadgen: all connections served, zero drops — wrote %s\n",
              out_path.c_str());
  return 0;
}
