// rispard_loadgen — the serving-path load generator and fourth gated bench.
//
// Sweeps connections × patterns × feed sizes against a rispard server (an
// in-process one on an ephemeral port by default, or --connect HOST:PORT),
// with every connection running one streaming-find session at pipeline
// depth 1: send FEED, await the FED ack, repeat. Reported per sweep point:
//
//   * p50 / p99 feed latency (send -> ack, measured per feed),
//   * aggregate feed throughput (bytes acked / wall time, all connections),
//   * dropped connections and error frames — both must be ZERO; any drop
//     fails the run (exit 1), which is the CI acceptance bar for "overload
//     surfaces as typed frames, never as resets".
//
// Results land in BENCH_rispard.json in google-benchmark JSON shape, so
// tools/bench_compare.py gates the trajectory exactly like the other three
// artifacts (>15% throughput loss or p99 growth in the "rispard" series
// fails CI; docs/perf.md, "The serving path").
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/prng.hpp"

using namespace rispar;
using namespace rispar::rispard;
using Clock = std::chrono::steady_clock;

namespace {

struct SweepPoint {
  std::size_t connections;
  std::size_t feed_bytes;
  std::size_t feeds_per_connection;
  std::size_t chunks;
  bool multi = false;  ///< whole-catalog multi-pattern sessions (--multi-pattern)
};

// The multi-tenant serving set; sessions round-robin over it.
const std::vector<std::string> kPatterns = {
    "level=(ERROR|FATAL) code=",
    "timeout=[0-9]+ms",
    "(GET|POST) /api/",
};

std::string synthetic_window(std::size_t bytes) {
  static const char* kUnits[] = {"disk", "net", "auth", "sched"};
  Prng prng(11);
  std::string text;
  std::size_t line = 0;
  while (text.size() < bytes) {
    text += "t=" + std::to_string(1000000 + line++) + " unit=";
    text += kUnits[prng.next_below(4)];
    switch (prng.next_below(24)) {
      case 0: text += " level=ERROR code=7"; break;
      case 1: text += " GET /api/users 200"; break;
      case 2: text += " timeout=250ms retrying"; break;
      default: text += " level=info ok"; break;
    }
    text += '\n';
  }
  text.resize(bytes);
  return text;
}

struct ClientConn {
  int fd = -1;
  FrameReader reader;
  std::string out;            // unsent request bytes
  std::size_t out_pos = 0;
  bool awaiting_ack = false;
  Clock::time_point sent_at{};
  std::size_t acks = 0;
  std::uint64_t matches = 0;
};

struct ThreadResult {
  std::vector<double> latencies_ms;
  std::uint64_t matches = 0;
  std::uint64_t errors = 0;
  std::uint64_t drops = 0;
};

int connect_blocking(std::uint16_t port) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    ::close(fd);
    // Transient refusals under a full accept backlog: back off and retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * (attempt + 1)));
  }
  return -1;
}

void queue_feed(ClientConn& conn, const std::string& window) {
  conn.out = make_feed(/*session_id=*/1, window);
  conn.out_pos = 0;
  conn.awaiting_ack = true;
  conn.sent_at = Clock::now();
}

/// Drives one thread's share of connections through the feed rounds:
/// depth-1 pipelining per connection, poll()-multiplexed, latency sampled
/// per FED ack.
void feed_phase(std::vector<ClientConn>& conns, const std::string& window,
                std::size_t rounds, ThreadResult& result) {
  std::size_t outstanding = 0;
  for (ClientConn& conn : conns) {
    queue_feed(conn, window);
    ++outstanding;
  }
  std::vector<pollfd> fds(conns.size());
  while (outstanding > 0) {
    for (std::size_t i = 0; i < conns.size(); ++i) {
      fds[i].fd = conns[i].fd;
      fds[i].events = static_cast<short>(
          (conns[i].fd >= 0 && conns[i].awaiting_ack ? POLLIN : 0) |
          (conns[i].fd >= 0 && conns[i].out_pos < conns[i].out.size() ? POLLOUT
                                                                      : 0));
      fds[i].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), 10000) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.fd < 0) continue;
      const auto drop = [&] {
        ::close(conn.fd);
        conn.fd = -1;
        ++result.drops;
        if (conn.awaiting_ack) --outstanding;
      };
      if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
        drop();
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) {
        while (conn.out_pos < conn.out.size()) {
          const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                                   conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            break;
          }
          conn.out_pos += static_cast<std::size_t>(n);
        }
      }
      if ((fds[i].revents & POLLIN) != 0) {
        char chunk[65536];
        const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          drop();
          continue;
        }
        if (n > 0) conn.reader.append(chunk, static_cast<std::size_t>(n));
        Frame frame;
        while (conn.fd >= 0 && conn.reader.next(frame)) {
          if (frame.type == FrameType::kMatches) {
            PayloadReader payload(frame.payload);
            payload.get_u32();
            result.matches += payload.get_u32();
          } else if (frame.type == FrameType::kFed) {
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          conn.sent_at)
                    .count();
            result.latencies_ms.push_back(ms);
            conn.awaiting_ack = false;
            --outstanding;
            if (++conn.acks < rounds) {
              queue_feed(conn, window);
              ++outstanding;
            }
          } else if (frame.type == FrameType::kError) {
            ++result.errors;
            conn.awaiting_ack = false;
            --outstanding;
          }
        }
      }
    }
  }
}

double percentile(std::vector<double>& values, double fraction) {
  if (values.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      fraction * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + index, values.end());
  return values[index];
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

// ------------------------------------------------------------- chaos mode
//
// --chaos is the durable-session acceptance harness, not a benchmark: it
// kills and resumes connections mid-feed and drains a server under load,
// then checks BYTE-EXACT equivalence — the matches committed across every
// kill/resume must equal one uninterrupted session's, for both begin modes
// and the multi-pattern form, and a SIGTERM-style drain must lose zero
// acked feeds while handing every open session a resumable checkpoint.

struct WireMatch {
  std::uint32_t pattern = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool operator==(const WireMatch& o) const {
    return pattern == o.pattern && begin == o.begin && end == o.end;
  }
};

struct ChaosScenario {
  const char* label;
  bool multi = false;
  std::uint32_t pattern_id = 0;  ///< single form only
  std::uint8_t flags = 0;        ///< kOpenFlagExactBegins for exact begins
};

/// One durable client session: matches commit only on their FED ack, so a
/// kill discards exactly the un-acked tail — the committed list is what the
/// equivalence check compares.
struct ChaosClient {
  int fd = -1;
  FrameReader reader;
  std::vector<WireMatch> committed;
  std::vector<WireMatch> uncommitted;  ///< matches since the last FED
  std::uint64_t acked_bytes = 0;       ///< FED `consumed` — authoritative
  std::string blob;                    ///< freshest checkpoint
  bool drained = false;                ///< a DRAINING frame arrived
};

void chaos_absorb(ChaosClient& client, const Frame& frame) {
  if (frame.type == FrameType::kMatches) {
    PayloadReader payload(frame.payload);
    payload.get_u32();  // session id
    const std::uint32_t count = payload.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      WireMatch m;
      m.pattern = payload.get_u32();
      m.begin = payload.get_u64();
      m.end = payload.get_u64();
      client.uncommitted.push_back(m);
    }
  } else if (frame.type == FrameType::kFed) {
    PayloadReader payload(frame.payload);
    payload.get_u32();
    client.acked_bytes = payload.get_u64();
    client.committed.insert(client.committed.end(), client.uncommitted.begin(),
                            client.uncommitted.end());
    client.uncommitted.clear();
  } else if (frame.type == FrameType::kDraining) {
    PayloadReader payload(frame.payload);
    const std::uint32_t session = payload.get_u32();
    if (session != kNoSession) {
      payload.get_u32();  // pattern id
      client.blob = std::string(payload.rest());
    }
    client.drained = true;
  }
}

/// Blocking pump until `wanted` (absorbing MATCHES/FED/DRAINING along the
/// way). Returns false on ERROR frames, EOF, or DRAINING when it is not the
/// wanted type — callers watching for drain check client.drained instead.
bool chaos_await(ChaosClient& client, FrameType wanted, Frame& frame) {
  while (recv_frame(client.fd, client.reader, frame)) {
    if (frame.type == wanted) return true;
    chaos_absorb(client, frame);
    if (frame.type == FrameType::kError) return false;
    if (client.drained) return false;
  }
  return false;
}

std::string chaos_open_frame(const ChaosScenario& sc) {
  return sc.multi ? make_open_session_multi(1, 0, 2, {}, sc.flags)
                  : make_open_session(1, sc.pattern_id, 0, 2, sc.flags);
}

ResumeSpec chaos_resume_spec(const ChaosScenario& sc, const std::string& blob) {
  ResumeSpec spec;
  spec.session_id = 1;
  spec.pattern_id = sc.multi ? kMultiPattern : sc.pattern_id;
  spec.chunks = 2;
  spec.flags = sc.flags;
  spec.checkpoint = blob;
  return spec;
}

/// Vanishes (no CLOSE, mid-whatever) and comes back: RESUME from the last
/// checkpoint, or a fresh OPEN when nothing was ever acked.
bool chaos_kill_and_resume(ChaosClient& client, std::uint16_t port,
                           const ChaosScenario& sc) {
  ::close(client.fd);
  client.fd = -1;
  client.reader = FrameReader();
  client.uncommitted.clear();
  if (client.blob.empty()) {
    client.fd = connect_backoff(port);
    if (client.fd < 0) return false;
    if (!send_all(client.fd, chaos_open_frame(sc))) return false;
    Frame frame;
    return chaos_await(client, FrameType::kOpened, frame);
  }
  client.fd =
      reconnect_and_resume(port, chaos_resume_spec(sc, client.blob), client.reader);
  return client.fd >= 0;
}

/// Feeds every window on session 1, killing the connection at prng-chosen
/// points (mid-feed and between feeds) when `kill_dice` > 0; kill_dice == 0
/// is the uninterrupted oracle. A checkpoint is taken after every ack so the
/// blob always covers exactly the acked prefix.
bool chaos_run(std::uint16_t port, const ChaosScenario& sc,
               const std::vector<std::string>& windows, std::uint64_t seed,
               int kill_dice, std::vector<WireMatch>& out) {
  ChaosClient client;
  client.fd = connect_backoff(port);
  if (client.fd < 0) return false;
  if (!send_all(client.fd, chaos_open_frame(sc))) return false;
  Frame frame;
  if (!chaos_await(client, FrameType::kOpened, frame)) return false;
  Prng prng(seed);
  std::size_t i = 0;
  while (i < windows.size()) {
    const std::uint64_t dice =
        kill_dice > 0 ? prng.next_below(static_cast<std::uint64_t>(kill_dice)) : 2;
    if (dice == 0) {
      // Mid-feed kill: the FEED goes out, the ack never comes back. The
      // resumed session re-feeds this window from the acked offset.
      send_all(client.fd, make_feed(1, windows[i]));
      if (!chaos_kill_and_resume(client, port, sc)) return false;
      continue;
    }
    if (!send_all(client.fd, make_feed(1, windows[i]))) return false;
    if (!chaos_await(client, FrameType::kFed, frame)) return false;
    chaos_absorb(client, frame);
    if (!send_all(client.fd, make_checkpoint(1))) return false;
    if (!chaos_await(client, FrameType::kCheckpointed, frame)) return false;
    client.blob = frame.payload.substr(8);
    ++i;
    if (dice == 1 && i < windows.size() &&
        !chaos_kill_and_resume(client, port, sc))
      return false;
  }
  if (!send_all(client.fd, make_close(1))) return false;
  if (!chaos_await(client, FrameType::kClosed, frame)) return false;
  // CLOSED carries matches_total — the resumed carries preserved the count
  // across every kill, so it must equal the committed list exactly.
  PayloadReader payload(frame.payload);
  payload.get_u32();
  const std::uint64_t total = payload.get_u64();
  ::close(client.fd);
  if (total != client.committed.size()) {
    std::fprintf(stderr,
                 "chaos[%s]: CLOSED matches_total=%llu but %zu were acked\n",
                 sc.label, static_cast<unsigned long long>(total),
                 client.committed.size());
    return false;
  }
  out = std::move(client.committed);
  return true;
}

/// Drain under load: clients feed depth-1 while the server drains; each must
/// come away with a resumable checkpoint covering exactly its acked bytes,
/// and resuming on a SECOND server must complete the stream byte-exact.
bool chaos_drain_scenario(bool quick) {
  const std::size_t kClients = quick ? 6 : 12;
  const std::size_t kWindows = quick ? 48 : 160;
  const std::string text = synthetic_window(kWindows * 1024);
  ServerConfig config;
  config.feed_workers = 3;
  config.drain_deadline_ms = 20000;  // the test wants completion, not cancels
  auto first = std::make_unique<Server>(kPatterns, config);
  const std::uint16_t port = first->port();
  std::thread first_thread([&] { first->run(); });

  std::vector<ChaosScenario> shapes(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    shapes[c].label = "drain";
    shapes[c].multi = c % 3 == 2;
    shapes[c].pattern_id = static_cast<std::uint32_t>(c % kPatterns.size());
    shapes[c].flags = c % 2 == 1 ? kOpenFlagExactBegins : std::uint8_t{0};
  }
  std::vector<ChaosClient> clients(kClients);
  std::vector<char> ok(kClients, 1);
  std::vector<std::thread> crew;
  crew.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    crew.emplace_back([&, c] {
      ChaosClient& client = clients[c];
      client.fd = connect_backoff(port);
      if (client.fd < 0) {
        ok[c] = 0;
        return;
      }
      Frame frame;
      if (!send_all(client.fd, chaos_open_frame(shapes[c])) ||
          !chaos_await(client, FrameType::kOpened, frame)) {
        ok[c] = 0;
        return;
      }
      std::size_t offset = 0;
      while (offset < text.size() && !client.drained) {
        const std::size_t len = std::min<std::size_t>(1024, text.size() - offset);
        if (!send_all(client.fd, make_feed(1, text.substr(offset, len)))) break;
        if (!chaos_await(client, FrameType::kFed, frame)) break;
        chaos_absorb(client, frame);
        offset += len;
      }
      // Ride out the drain: absorb until the terminal DRAINING / EOF. The
      // session DRAINING frame (with the blob) lands in chaos_absorb.
      while (recv_frame(client.fd, client.reader, frame)) chaos_absorb(client, frame);
      ::close(client.fd);
      client.fd = -1;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 40 : 120));
  first->stop(true);  // the SIGTERM path: stop accepting, checkpoint, drain
  for (std::thread& t : crew) t.join();
  first_thread.join();
  const ServerCounters drained_counters = first->counters();
  first.reset();

  bool pass = drained_counters.draining;
  if (!pass) std::fprintf(stderr, "chaos[drain]: server never entered drain\n");
  // Finish every stream on a fresh server and hold it to the oracle.
  ServerConfig second_config;
  second_config.feed_workers = 3;
  auto second = std::make_unique<Server>(kPatterns, second_config);
  const std::uint16_t second_port = second->port();
  std::thread second_thread([&] { second->run(); });
  for (std::size_t c = 0; c < kClients; ++c) {
    ChaosClient& client = clients[c];
    if (ok[c] == 0 || client.blob.empty()) {
      std::fprintf(stderr,
                   "chaos[drain]: client %zu got no resumable checkpoint "
                   "(acked %llu bytes)\n",
                   c, static_cast<unsigned long long>(client.acked_bytes));
      pass = false;
      continue;
    }
    client.reader = FrameReader();
    client.uncommitted.clear();
    client.fd = reconnect_and_resume(second_port,
                                     chaos_resume_spec(shapes[c], client.blob),
                                     client.reader);
    if (client.fd < 0) {
      std::fprintf(stderr, "chaos[drain]: client %zu failed to resume\n", c);
      pass = false;
      continue;
    }
    Frame frame;
    bool finished = true;
    std::size_t offset = static_cast<std::size_t>(client.acked_bytes);
    while (offset < text.size()) {
      const std::size_t len = std::min<std::size_t>(4096, text.size() - offset);
      if (!send_all(client.fd, make_feed(1, text.substr(offset, len))) ||
          !chaos_await(client, FrameType::kFed, frame)) {
        finished = false;
        break;
      }
      chaos_absorb(client, frame);
      offset += len;
    }
    ::close(client.fd);
    client.fd = -1;
    if (!finished) {
      std::fprintf(stderr, "chaos[drain]: client %zu failed mid-resume\n", c);
      pass = false;
      continue;
    }
    std::vector<WireMatch> oracle;
    if (!chaos_run(second_port, shapes[c],
                   std::vector<std::string>{text}, /*seed=*/1, /*kill_dice=*/0,
                   oracle)) {
      std::fprintf(stderr, "chaos[drain]: oracle run %zu failed\n", c);
      pass = false;
      continue;
    }
    if (client.committed != oracle) {
      std::fprintf(stderr,
                   "chaos[drain]: client %zu diverged — %zu matches across the "
                   "drain vs %zu uninterrupted\n",
                   c, client.committed.size(), oracle.size());
      pass = false;
    }
  }
  second->stop();
  second_thread.join();
  std::printf("chaos[drain]: %zu clients, drained + resumed %s\n", kClients,
              pass ? "byte-exact" : "FAILED");
  return pass;
}

int run_chaos_suite(bool quick) {
  ServerConfig config;
  config.feed_workers = 3;
  auto server = std::make_unique<Server>(kPatterns, config);
  const std::uint16_t port = server->port();
  std::thread server_thread([&] { server->run(); });

  // Uneven windows so kills land at awkward offsets (mid-line, mid-match).
  const std::string text = synthetic_window(quick ? 24 * 1024 : 96 * 1024);
  Prng slicer(5);
  std::vector<std::string> windows;
  for (std::size_t at = 0; at < text.size();) {
    const std::size_t len =
        std::min<std::size_t>(1 + slicer.next_below(4096), text.size() - at);
    windows.push_back(text.substr(at, len));
    at += len;
  }

  const std::vector<ChaosScenario> scenarios = {
      {"single/separator", false, 1, 0},
      {"single/exact", false, 1, kOpenFlagExactBegins},
      {"multi/separator", true, 0, 0},
      {"multi/exact", true, 0, kOpenFlagExactBegins},
  };
  bool pass = true;
  const int seeds = quick ? 2 : 4;
  for (const ChaosScenario& sc : scenarios) {
    std::vector<WireMatch> oracle;
    if (!chaos_run(port, sc, windows, 1, /*kill_dice=*/0, oracle)) {
      std::fprintf(stderr, "chaos[%s]: oracle run failed\n", sc.label);
      pass = false;
      continue;
    }
    for (int seed = 0; seed < seeds; ++seed) {
      std::vector<WireMatch> survived;
      if (!chaos_run(port, sc, windows, 100 + static_cast<std::uint64_t>(seed),
                     /*kill_dice=*/4, survived)) {
        std::fprintf(stderr, "chaos[%s]: chaos run seed %d failed\n", sc.label,
                     seed);
        pass = false;
        continue;
      }
      if (survived != oracle) {
        std::fprintf(stderr,
                     "chaos[%s]: seed %d diverged — %zu matches vs %zu "
                     "uninterrupted\n",
                     sc.label, seed, survived.size(), oracle.size());
        pass = false;
      }
    }
    std::printf("chaos[%s]: %zu windows x %d seeds, %zu oracle matches %s\n",
                sc.label, windows.size(), seeds, oracle.size(),
                pass ? "ok" : "FAILED");
  }
  server->stop();
  server_thread.join();
  server.reset();

  if (!chaos_drain_scenario(quick)) pass = false;
  if (!pass) {
    std::fprintf(stderr,
                 "rispard_loadgen: CHAOS FAILED — kill/resume or drain broke "
                 "byte-exact equivalence (see above)\n");
    return 1;
  }
  std::printf("rispard_loadgen: chaos passed — resumed == uninterrupted, "
              "drain lost zero acked feeds\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool multi_pattern = false;
  bool chaos = false;
  std::string out_path = "BENCH_rispard.json";
  std::string connect_spec;
  unsigned client_threads = std::min(8u, std::thread::hardware_concurrency());
  if (client_threads == 0) client_threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--multi-pattern") {
      multi_pattern = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--client-threads" && i + 1 < argc) {
      client_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--multi-pattern] [--chaos] "
                   "[--out FILE] [--connect HOST:PORT] [--client-threads N]\n"
                   "  --chaos runs the kill/resume + drain equivalence "
                   "harness instead of the benchmark sweep\n",
                   argv[0]);
      return 2;
    }
  }
  if (chaos) {
    if (!connect_spec.empty()) {
      std::fprintf(stderr,
                   "rispard_loadgen: --chaos drives in-process servers (it "
                   "must drain them); drop --connect\n");
      return 2;
    }
    return run_chaos_suite(quick);
  }

  // 1000 connections client-side + 1000 server-side in one process: lift
  // the descriptor soft cap before it masquerades as dropped connections.
  rlimit nofile{};
  if (getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    setrlimit(RLIMIT_NOFILE, &nofile);
  }

  std::vector<SweepPoint> sweep =
      quick ? std::vector<SweepPoint>{{64, 4096, 16, 1}, {1000, 4096, 6, 1}}
            : std::vector<SweepPoint>{{64, 4096, 64, 1},
                                      {256, 16384, 24, 4},
                                      {1000, 8192, 12, 2}};
  if (multi_pattern) {
    // Whole-catalog multi-pattern sessions: every connection matches all N
    // catalog patterns in one feed. A NEW JSON series ("/multi" names), so
    // bench_compare.py reports it without gating against the single-pattern
    // baseline — the expected cost is ~N searcher scans per window sharing
    // one merge.
    if (quick)
      sweep.push_back({64, 4096, 16, 1, /*multi=*/true});
    else
      sweep.push_back({256, 8192, 24, 2, /*multi=*/true});
  }

  std::unique_ptr<Server> server;
  std::thread server_thread;
  std::uint16_t port = 0;
  if (connect_spec.empty()) {
    ServerConfig config;
    config.feed_workers = 3;
    server = std::make_unique<Server>(kPatterns, config);
    port = server->port();
    server_thread = std::thread([&] { server->run(); });
  } else {
    const std::size_t colon = connect_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect needs HOST:PORT\n");
      return 2;
    }
    port = static_cast<std::uint16_t>(
        std::strtoul(connect_spec.c_str() + colon + 1, nullptr, 10));
  }

  struct PointResult {
    SweepPoint point;
    double wall_seconds = 0;
    double p50_ms = 0, p99_ms = 0, mean_ms = 0;
    std::uint64_t feeds = 0, matches = 0, errors = 0, drops = 0;
    std::size_t opened = 0;
  };
  std::vector<PointResult> results;
  bool failed = false;

  for (const SweepPoint& point : sweep) {
    PointResult pr;
    pr.point = point;
    const std::string window = synthetic_window(point.feed_bytes);

    // Connect + open (blocking): one session per connection, patterns
    // round-robin over the multi-tenant set.
    std::vector<ClientConn> conns(point.connections);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      conns[i].fd = connect_blocking(port);
      if (conns[i].fd < 0) {
        ++pr.drops;
        continue;
      }
      if (point.multi) {
        // Empty id list = subscribe the tenant's whole catalog.
        send_all(conns[i].fd,
                 make_open_session_multi(1, /*feed_deadline_ns=*/0,
                                         static_cast<std::uint32_t>(point.chunks),
                                         /*pattern_ids=*/{}));
      } else {
        const std::uint32_t pattern_id =
            static_cast<std::uint32_t>(i % kPatterns.size());
        send_all(conns[i].fd,
                 make_open_session(1, pattern_id, /*feed_deadline_ns=*/0,
                                   static_cast<std::uint32_t>(point.chunks)));
      }
    }
    for (ClientConn& conn : conns) {
      if (conn.fd < 0) continue;
      Frame frame;
      if (!recv_frame(conn.fd, conn.reader, frame) ||
          frame.type != FrameType::kOpened) {
        ::close(conn.fd);
        conn.fd = -1;
        ++pr.drops;
        continue;
      }
      set_nonblocking(conn.fd);
      ++pr.opened;
    }

    // Feed phase, thread-partitioned.
    const unsigned threads = std::max(1u, std::min<unsigned>(
        client_threads, static_cast<unsigned>(conns.size())));
    std::vector<ThreadResult> shares(threads);
    std::vector<std::thread> crew;
    const auto t0 = Clock::now();
    for (unsigned t = 0; t < threads; ++t) {
      crew.emplace_back([&, t] {
        const std::size_t lo = conns.size() * t / threads;
        const std::size_t hi = conns.size() * (t + 1) / threads;
        std::vector<ClientConn> share(std::make_move_iterator(conns.begin() + lo),
                                      std::make_move_iterator(conns.begin() + hi));
        feed_phase(share, window, point.feeds_per_connection, shares[t]);
        std::move(share.begin(), share.end(), conns.begin() + lo);
      });
    }
    for (std::thread& t : crew) t.join();
    pr.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    // Close phase (blocking) — drops here count too.
    for (ClientConn& conn : conns) {
      if (conn.fd < 0) continue;
      set_blocking(conn.fd);
      send_all(conn.fd, make_close(1));
      Frame frame;
      bool closed = false;
      while (recv_frame(conn.fd, conn.reader, frame)) {
        if (frame.type == FrameType::kClosed) {
          closed = true;
          break;
        }
      }
      if (!closed) ++pr.drops;
      ::close(conn.fd);
      conn.fd = -1;
    }

    std::vector<double> latencies;
    for (ThreadResult& share : shares) {
      latencies.insert(latencies.end(), share.latencies_ms.begin(),
                       share.latencies_ms.end());
      pr.matches += share.matches;
      pr.errors += share.errors;
      pr.drops += share.drops;
    }
    pr.feeds = latencies.size();
    pr.p50_ms = percentile(latencies, 0.50);
    pr.p99_ms = percentile(latencies, 0.99);
    if (!latencies.empty()) {
      double sum = 0;
      for (double ms : latencies) sum += ms;
      pr.mean_ms = sum / static_cast<double>(latencies.size());
    }

    const double throughput =
        pr.wall_seconds > 0
            ? static_cast<double>(pr.feeds) *
                  static_cast<double>(point.feed_bytes) / pr.wall_seconds
            : 0;
    std::printf(
        "conns=%4zu%s feed=%6zuB x%-3zu  opened=%4zu feeds=%6llu  "
        "p50=%7.3fms p99=%7.3fms  %8.1f MB/s  matches=%llu errors=%llu "
        "drops=%llu\n",
        point.connections, point.multi ? " (multi)" : "", point.feed_bytes,
        point.feeds_per_connection,
        pr.opened, static_cast<unsigned long long>(pr.feeds), pr.p50_ms,
        pr.p99_ms, throughput / 1e6, static_cast<unsigned long long>(pr.matches),
        static_cast<unsigned long long>(pr.errors),
        static_cast<unsigned long long>(pr.drops));
    if (pr.drops > 0 || pr.errors > 0 || pr.opened != point.connections ||
        pr.feeds != pr.opened * point.feeds_per_connection)
      failed = true;
    results.push_back(std::move(pr));
  }

  if (server != nullptr) {
    server->stop();
    server_thread.join();
  }

  // google-benchmark JSON shape: bench_compare.py gates bytes_per_second
  // (higher is better) and p99_ms (lower is better) of the rispard series.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\"executable\": \"rispard_loadgen\", "
                    "\"quick\": %s},\n  \"benchmarks\": [\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& pr = results[i];
    const double throughput =
        pr.wall_seconds > 0
            ? static_cast<double>(pr.feeds) *
                  static_cast<double>(pr.point.feed_bytes) / pr.wall_seconds
            : 0;
    std::fprintf(
        out,
        "    {\"name\": \"rispard_feed%s/conns:%zu/bytes:%zu\", "
        "\"label\": \"rispard/serving\", \"iterations\": %llu, "
        "\"real_time\": %.6f, \"time_unit\": \"ms\", "
        "\"bytes_per_second\": %.1f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
        "\"connections\": %zu, \"dropped_connections\": %llu, "
        "\"error_frames\": %llu}%s\n",
        pr.point.multi ? "_multi" : "", pr.point.connections,
        pr.point.feed_bytes,
        static_cast<unsigned long long>(pr.feeds), pr.mean_ms, throughput,
        pr.p50_ms, pr.p99_ms, pr.point.connections,
        static_cast<unsigned long long>(pr.drops),
        static_cast<unsigned long long>(pr.errors),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  if (failed) {
    std::fprintf(stderr,
                 "rispard_loadgen: FAILED — dropped connections, error frames "
                 "or missing acks (see above); the serving acceptance bar is "
                 "zero of each\n");
    return 1;
  }
  std::printf("rispard_loadgen: all connections served, zero drops — wrote %s\n",
              out_path.c_str());
  return 0;
}
