// rispar_bundle — producer and inspector for .rpb pattern bundles.
//
//   rispar_bundle build --out set.rpb --regex "(ab|ba)*" --regex "a+b"
//   rispar_bundle build --out set.rpb --manifest patterns.txt
//   rispar_bundle build --out corpus.rpb --bench-corpus
//   rispar_bundle inspect set.rpb
//   rispar_bundle verify set.rpb [--deep]
//
// `build` compiles every source (regexes in order: --regex flags, then
// manifest lines, then the five paper workloads when --bench-corpus) and
// writes one bundle; pattern ids are that order. `verify` maps the bundle
// and restores every pattern (all checksums and structural checks run);
// --deep additionally recompiles each regex-sourced pattern from scratch
// and requires the mapped machines to be BIT-IDENTICAL through
// Pattern::serialize(). CI uses build+verify to prove a bundle built on
// the native leg loads on the portable one (docs/rispard.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/glushkov.hpp"
#include "bundle/format.hpp"
#include "bundle/mapped_bundle.hpp"
#include "engine/pattern.hpp"
#include "util/prng.hpp"
#include "workloads/suite.hpp"

namespace {

using rispar::Pattern;
using rispar::bundle::MappedBundle;
using rispar::bundle::SectionEntry;
using rispar::bundle::SectionType;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rispar_bundle build --out FILE [--regex RE]... [--manifest FILE]\n"
      "                      [--bench-corpus] [--max-subset-states N]\n"
      "  rispar_bundle inspect FILE\n"
      "  rispar_bundle verify FILE [--deep]\n");
  return 1;
}

std::vector<std::string> manifest_lines(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read manifest " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t");
    line = line.substr(start, end - start + 1);
    if (line.empty() || line.front() == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

int cmd_build(int argc, char** argv) {
  std::string out;
  std::vector<std::string> regexes;
  bool bench_corpus = false;
  rispar::PatternLimits limits;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--regex" && i + 1 < argc) {
      regexes.emplace_back(argv[++i]);
    } else if (arg == "--manifest" && i + 1 < argc) {
      for (std::string& line : manifest_lines(argv[++i]))
        regexes.push_back(std::move(line));
    } else if (arg == "--bench-corpus") {
      bench_corpus = true;
    } else if (arg == "--max-subset-states" && i + 1 < argc) {
      limits.max_subset_states = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "rispar_bundle build: bad argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (out.empty() || (regexes.empty() && !bench_corpus)) return usage();

  std::vector<Pattern> patterns;
  for (const std::string& regex : regexes) {
    std::fprintf(stderr, "compiling %s\n", regex.c_str());
    patterns.push_back(Pattern::compile(regex, limits));
  }
  if (bench_corpus) {
    // The five paper workloads ship as ASTs, not strings — compile via
    // from_nfa with the workload name as the recorded (non-regex) source.
    for (const rispar::WorkloadSpec& w : rispar::benchmark_suite()) {
      std::fprintf(stderr, "compiling workload %s\n", w.name.c_str());
      patterns.push_back(
          Pattern::from_nfa(rispar::glushkov_nfa(w.regex()), limits, w.name));
    }
  }
  Pattern::save_bundle_many(out, patterns);
  const auto bundle = MappedBundle::open(out);  // read back = self-check
  std::printf("%s: %u patterns, %llu bytes\n", out.c_str(),
              bundle->pattern_count(),
              static_cast<unsigned long long>(bundle->header().file_bytes));
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto bundle = MappedBundle::open(path);
  std::printf("%s: format v%u, %u patterns, %u sections, %llu bytes\n",
              path.c_str(), bundle->header().version, bundle->pattern_count(),
              bundle->header().section_count,
              static_cast<unsigned long long>(bundle->header().file_bytes));
  for (std::uint32_t i = 0; i < bundle->pattern_count(); ++i) {
    const std::string_view source = bundle->source(i);
    std::printf("pattern %u: %s%.*s%s\n", i,
                bundle->source_is_regex(i) ? "regex \"" : "\"",
                static_cast<int>(source.size()), source.data(), "\"");
    for (const SectionEntry& s : bundle->sections(i))
      std::printf("  %-16s offset %10llu  bytes %10llu\n",
                  rispar::bundle::section_type_name(
                      static_cast<SectionType>(s.type)),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.bytes));
  }
  return 0;
}

int cmd_verify(const std::string& path, bool deep) {
  const auto bundle = MappedBundle::open(path);  // checksums verified here
  for (std::uint32_t i = 0; i < bundle->pattern_count(); ++i) {
    const Pattern mapped = Pattern::from_bundle(bundle, i);
    std::string status = "load ok";
    if (deep) {
      if (mapped.source_is_regex()) {
        // The strongest cross-check: a fresh compile of the recorded regex
        // must serialize to the very same bytes as the mapped machines.
        const Pattern fresh = Pattern::compile(std::string(mapped.source()),
                                               mapped.limits());
        if (fresh.serialize() != mapped.serialize()) {
          std::fprintf(stderr,
                       "pattern %u: mapped machines differ from a fresh "
                       "compile of '%s'\n",
                       i, std::string(mapped.source()).c_str());
          return 2;
        }
        status = "deep ok (recompiled + bit-identical)";
      } else {
        // No regex recorded: round-trip through the text format instead.
        if (Pattern::deserialize(mapped.serialize()).serialize() !=
            mapped.serialize()) {
          std::fprintf(stderr, "pattern %u: text round-trip not stable\n", i);
          return 2;
        }
        status = "deep ok (text round-trip)";
      }
    }
    const std::string_view source = mapped.source();
    std::printf("pattern %u (%.*s): %s\n", i, static_cast<int>(source.size()),
                source.data(), status.c_str());
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  try {
    if (command == "build") return cmd_build(argc - 2, argv + 2);
    if (command == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (command == "verify" && (argc == 3 || argc == 4)) {
      const bool deep = argc == 4 && std::string_view(argv[3]) == "--deep";
      if (argc == 4 && !deep) return usage();
      return cmd_verify(argv[2], deep);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rispar_bundle: %s\n", e.what());
    return 2;
  }
  return usage();
}
