// Streaming validation of a log too large to hold in memory: a
// StreamSession from Engine::stream() consumes one window of raw bytes at
// a time, recognizing each window in parallel and carrying only the PLAS
// set across windows — the streaming corollary of the paper's join phase.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t total_mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t window_kb = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;

  const WorkloadSpec spec = traffic_workload();
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())));
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 16});

  // Simulate an unbounded source: generate and feed window-sized slabs —
  // at no point does the full text exist in memory, and the session takes
  // raw bytes (the translation happens inside).
  Prng prng(314159);
  Stopwatch clock;
  std::size_t fed = 0;
  while (fed < (total_mb << 20)) {
    const std::string slab = spec.text(window_kb << 10, prng);
    stream.feed(slab);
    fed += slab.size();
    if (stream.dead()) break;  // every run died — stop reading early
  }
  std::printf("streamed %.1f MB in %llu windows of ~%zu KB: %s\n",
              static_cast<double>(fed) / (1 << 20),
              static_cast<unsigned long long>(stream.windows()), window_kb,
              stream.accepted() ? "VALID" : "MALFORMED");
  std::printf("%.2f s, %.1f MB/s, %llu transitions (%.2fx input)\n",
              clock.seconds(),
              static_cast<double>(fed) / (1 << 20) / clock.seconds(),
              static_cast<unsigned long long>(stream.transitions()),
              static_cast<double>(stream.transitions()) / static_cast<double>(fed));
  std::puts("\nOnly the PLAS set crosses window boundaries — O(|interface|)");
  std::puts("carry-over, the streaming corollary of the paper's join phase.");
  return stream.accepted() ? 0 : 1;
}
