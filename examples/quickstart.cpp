// Quickstart: compile a regular expression, build the three chunk automata,
// and recognize a text in parallel with each CSDPA variant.
//
//   $ ./example_quickstart "(ab|ba)*" abbaabba
//
// With no arguments it runs a built-in demonstration.
#include <cstdio>
#include <string>

#include "parallel/recognizer.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::string pattern = argc > 1 ? argv[1] : "(ab|ba)*";
  std::string text = argc > 2 ? argv[2] : "";
  if (text.empty())
    for (int i = 0; i < 2000; ++i) text += (i % 3 == 0) ? "ba" : "ab";

  std::printf("pattern: %s\ntext   : %zu bytes\n\n", pattern.c_str(), text.size());

  // One call builds the NFA (Glushkov), the minimal DFA and the
  // interface-minimized RI-DFA for the language.
  const LanguageEngines engines = LanguageEngines::from_regex(pattern);
  std::printf("NFA states            : %d\n", engines.nfa().num_states());
  std::printf("minimal DFA states    : %d\n", engines.min_dfa().num_states());
  std::printf("RI-DFA states         : %d\n", engines.ridfa().num_states());
  std::printf("RI-DFA initial states : %d   <- the speculation interface\n\n",
              engines.ridfa().initial_count());

  const std::vector<Symbol> input = engines.translate(text);
  ThreadPool pool;  // hardware concurrency
  const DeviceOptions options{.chunks = 8, .convergence = false};

  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid}) {
    const RecognitionStats stats = engines.recognize(variant, input, pool, options);
    std::printf("%-4s variant: %s, %llu transitions, reach %.3f ms + join %.3f ms\n",
                variant_name(variant), stats.accepted ? "ACCEPTED" : "rejected",
                static_cast<unsigned long long>(stats.transitions),
                stats.reach_seconds * 1e3, stats.join_seconds * 1e3);
  }

  std::puts("\nThe RID variant speculates from the RI-DFA interface states only;");
  std::puts("the DFA variant must start a run from every DFA state per chunk.");
  return 0;
}
