// Quickstart: the rispar::Engine query API in one file.
//
//   $ ./example_quickstart "(ab|ba)*" abbaabba
//
// With no arguments it runs a built-in demonstration. The walkthrough:
//   1. Pattern::compile  — one compilation, every chunk automaton;
//   2. Engine::recognize — parallel recognition with any variant;
//   3. Engine::count     — occurrences of the pattern in arbitrary bytes;
//   4. Engine::find_all  — WHERE those occurrences sit (paged positions);
//   5. Engine::stream    — window-by-window recognition of unbounded input;
//   6. Engine::match_all — many texts batched over one shared pool.
// (For N patterns over one text, see examples/multi_pattern_scan.cpp.)
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::string pattern_text = argc > 1 ? argv[1] : "(ab|ba)*";
  std::string text = argc > 2 ? argv[2] : "";
  if (text.empty())
    for (int i = 0; i < 2000; ++i) text += (i % 3 == 0) ? "ba" : "ab";

  std::printf("pattern: %s\ntext   : %zu bytes\n\n", pattern_text.c_str(), text.size());

  // 1. Compile once. The Pattern owns (with shared ownership) the Glushkov
  //    NFA, the minimal DFA and the interface-minimized RI-DFA, with the
  //    packed transition tables pre-warmed.
  const Pattern pattern = Pattern::compile(pattern_text);
  std::printf("NFA states            : %d\n", pattern.nfa().num_states());
  std::printf("minimal DFA states    : %d\n", pattern.min_dfa().num_states());
  std::printf("RI-DFA states         : %d\n", pattern.ridfa().num_states());
  std::printf("RI-DFA initial states : %d   <- the speculation interface\n\n",
              pattern.ridfa().initial_count());

  // 2. Recognize with every device. The Engine owns the thread pool and
  //    translates raw bytes internally; options a device cannot honor
  //    raise QueryError instead of being silently ignored.
  const Engine engine(pattern);
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    if (engine.try_device(variant) == nullptr) {
      std::printf("%-4s variant: unavailable (SFA construction exploded)\n",
                  variant_name(variant));
      continue;
    }
    const QueryResult result =
        engine.recognize(text, {.variant = variant, .chunks = 8});
    std::printf("%-4s variant: %s, %llu transitions, reach %.3f ms + join %.3f ms\n",
                variant_name(variant), result.accepted ? "ACCEPTED" : "rejected",
                static_cast<unsigned long long>(result.transitions),
                result.reach_seconds * 1e3, result.join_seconds * 1e3);
  }

  // 3. Count occurrences (overlaps included) — any bytes may surround them.
  const QueryResult counted =
      engine.count("??" + text + "--" + text, {.chunks = 8, .convergence = true});
  std::printf("\ncount : %llu occurrences of the pattern in text+noise\n",
              static_cast<unsigned long long>(counted.matches));

  // 4. Positioned matches: one Match per counted end position (so
  //    find_all(t).size() == count(t).matches), offset/limit paging for
  //    response caps. Match::begin/end are byte offsets.
  const std::string noisy = "??" + text + "--" + text;
  const QueryResult found = engine.find(noisy, {.chunks = 8, .limit = 3});
  std::printf("find  : %llu total, first %zu at",
              static_cast<unsigned long long>(found.matches),
              found.positions.size());
  for (const Match& m : found.positions)
    std::printf(" [%llu,%llu)", static_cast<unsigned long long>(m.begin),
                static_cast<unsigned long long>(m.end));
  std::printf("\n");

  // 5. Stream the same text in 512-byte windows: same decision, bounded
  //    memory — only the PLAS carry crosses window boundaries.
  StreamSession session = engine.stream({.variant = Variant::kRid, .chunks = 4});
  for (std::size_t offset = 0; offset < text.size(); offset += 512)
    session.feed(std::string_view(text).substr(offset, 512));
  std::printf("stream: %s after %llu windows (%llu transitions)\n",
              session.accepted() ? "ACCEPTED" : "rejected",
              static_cast<unsigned long long>(session.windows()),
              static_cast<unsigned long long>(session.transitions()));

  // 6. Batch many texts over the one shared pool.
  const std::vector<std::string_view> batch{text, "ab", "ba", "abx", ""};
  const auto results = engine.match_all(batch, {.variant = Variant::kRid, .chunks = 4});
  std::size_t accepted = 0;
  for (const QueryResult& r : results) accepted += r.accepted ? 1 : 0;
  std::printf("batch : %zu/%zu texts accepted\n", accepted, batch.size());

  std::puts("\nThe RID variant speculates from the RI-DFA interface states only;");
  std::puts("the DFA variant must start a run from every DFA state per chunk.");
  return 0;
}
