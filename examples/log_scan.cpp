// Validating a system log against its line grammar — the paper's "traffic"
// scenario. A network appliance emits fixed-format records; the recognizer
// answers "is this whole file well-formed?" in parallel, which is the even
// benchmark group: the rigid format kills mis-speculated runs within one
// line, so the DFA and RID variants tie while NFA simulation lags.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t megabytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  const WorkloadSpec spec = traffic_workload();
  Prng prng(2026);
  std::printf("generating ~%zu MB of syslog records...\n", megabytes);
  const std::string log = spec.text(megabytes << 20, prng);

  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())));
  const Pattern& pattern = engine.pattern();
  std::printf("line grammar: NFA %d states, min DFA %d states, RI-DFA interface %d\n\n",
              pattern.nfa().num_states(), pattern.min_dfa().num_states(),
              pattern.ridfa().initial_count());

  const std::vector<Symbol> input = engine.translate(log);
  for (const std::size_t chunks : {1u, 8u, 32u}) {
    Stopwatch clock;
    const QueryResult stats =
        engine.recognize(input, {.variant = Variant::kRid, .chunks = chunks});
    std::printf("RID  c=%-3zu: %-8s  %7.2f ms   (%llu transitions)\n", chunks,
                stats.accepted ? "VALID" : "MALFORMED", clock.millis(),
                static_cast<unsigned long long>(stats.transitions));
  }

  // Corrupt one byte mid-file: the parallel recognizer must reject, and the
  // chunk containing the corruption reports it through the join phase.
  std::string corrupted = log;
  corrupted[corrupted.size() / 2] = '#';
  const QueryResult bad =
      engine.recognize(corrupted, {.variant = Variant::kRid, .chunks = 32});
  std::printf("\nafter corrupting one byte: %s\n",
              bad.accepted ? "VALID (unexpected!)" : "MALFORMED (as expected)");
  return bad.accepted ? 1 : 0;
}
