// A minimal blocking rispard client — the public wire protocol end to end.
//
// Opens one streaming-find session, feeds a file (or a synthetic log) in
// windows, prints the first few match offsets, and closes. Halfway through
// it also exercises the durable-session path: CHECKPOINT, drop the TCP
// connection outright, and reconnect_and_resume() onto a fresh one — the
// resumed session continues byte-exact, so the final totals still match.
// By default it SELF-SERVES: an in-process rispard Server binds an
// ephemeral port and the client talks to it over real TCP, so this example
// doubles as the CTest smoke test of the protocol — the server's matches
// are cross-checked against a local Engine::find_all oracle, and any drift
// in the framing or the session semantics fails CI. Point it at a live
// server with --connect HOST:PORT instead.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/prng.hpp"

using namespace rispar;
using namespace rispar::rispard;

namespace {

std::string synthetic_log(std::size_t kilobytes) {
  static const char* kUnits[] = {"disk", "net", "auth", "sched"};
  static const char* kAlerts[] = {"ERROR", "FATAL"};
  Prng prng(7);
  std::string log;
  std::size_t line = 0;
  while (log.size() < (kilobytes << 10)) {
    log += "t=" + std::to_string(1000000 + line++) + " unit=";
    log += kUnits[prng.next_below(4)];
    if (prng.next_below(16) == 0) {
      log += " level=";
      log += kAlerts[prng.next_below(2)];
      log += " code=" + std::to_string(prng.next_below(99));
    } else {
      log += " level=info ok";
    }
    log += '\n';
  }
  return log;
}

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string regex = "level=(ERROR|FATAL) code=";
  std::string file_path;
  std::string connect_spec;
  std::size_t demo_kb = 64;
  std::size_t window = 8192;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--demo-kb" && i + 1 < argc) {
      demo_kb = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help") {
      std::printf("usage: %s [REGEX [FILE]] [--connect HOST:PORT] "
                  "[--window N] [--demo-kb N]\n", argv[0]);
      return 0;
    } else if (regex == "level=(ERROR|FATAL) code=" && arg.front() != '-') {
      regex = arg;
      if (i + 1 < argc && argv[i + 1][0] != '-') file_path = argv[++i];
    }
  }

  std::string text;
  if (file_path.empty()) {
    text = synthetic_log(demo_kb);
    std::printf("feeding a synthetic %zu KB log for /%s/\n", demo_kb, regex.c_str());
  } else {
    std::ifstream file(file_path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", file_path.c_str());
      return 2;
    }
    std::ostringstream content;
    content << file.rdbuf();
    text = content.str();
  }

  // Self-serve unless --connect points elsewhere: a real server on an
  // ephemeral port, in this process, spoken to over real TCP.
  std::unique_ptr<Server> own_server;
  std::thread server_thread;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (connect_spec.empty()) {
    own_server = std::make_unique<Server>(std::vector<std::string>{regex},
                                          ServerConfig{});
    port = own_server->port();
    server_thread = std::thread([&] { own_server->run(); });
    std::printf("self-serving on 127.0.0.1:%u\n", static_cast<unsigned>(port));
  } else {
    const std::size_t colon = connect_spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect needs HOST:PORT\n");
      return 2;
    }
    host = connect_spec.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(connect_spec.c_str() + colon + 1, nullptr, 10));
  }
  const auto teardown = [&] {
    if (own_server != nullptr) {
      own_server->stop();
      server_thread.join();
    }
  };

  int fd = connect_to(host, port);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
    teardown();
    return 2;
  }

  // One session on pattern 0, fed window by window; MATCHES frames stream
  // back with ABSOLUTE byte offsets, FED acks carry the running totals.
  FrameReader reader;
  Frame frame;
  bool failed = false;
  bool resumed = false;
  std::uint64_t matches_total = 0;
  std::size_t printed = 0;
  send_all(fd, make_open_session(/*session_id=*/1, /*pattern_id=*/0,
                                 /*feed_deadline_ns=*/0, /*chunks=*/4));
  if (!recv_frame(fd, reader, frame) || frame.type != FrameType::kOpened) {
    std::fprintf(stderr, "OPEN_SESSION failed\n");
    failed = true;
  }
  for (std::size_t offset = 0; !failed && offset < text.size(); offset += window) {
    const std::string_view bytes =
        std::string_view(text).substr(offset, window);
    send_all(fd, make_feed(1, bytes));
    for (;;) {  // MATCHES* then the FED ack
      if (!recv_frame(fd, reader, frame)) {
        failed = true;
        break;
      }
      if (frame.type == FrameType::kMatches) {
        PayloadReader payload(frame.payload);
        payload.get_u32();  // session id
        const std::uint32_t count = payload.get_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          payload.get_u32();  // pattern id
          const std::uint64_t begin = payload.get_u64();
          const std::uint64_t end = payload.get_u64();
          if (printed < 5)
            std::printf("  match @ [%llu, %llu)%s\n",
                        static_cast<unsigned long long>(begin),
                        static_cast<unsigned long long>(end),
                        ++printed == 5 ? "  (further matches counted silently)"
                                       : "");
        }
        continue;
      }
      if (frame.type == FrameType::kFed) break;
      std::fprintf(stderr, "unexpected frame 0x%02x\n",
                   static_cast<unsigned>(frame.type));
      failed = true;
      break;
    }
    // Halfway through (loopback only — the helper reconnects to loopback):
    // checkpoint, vanish, resume. Everything acked so far rides in the blob.
    if (!failed && !resumed && host == "127.0.0.1" &&
        offset + window >= text.size() / 2) {
      resumed = true;
      send_all(fd, make_checkpoint(1));
      if (!recv_frame(fd, reader, frame) ||
          frame.type != FrameType::kCheckpointed) {
        std::fprintf(stderr, "CHECKPOINT failed\n");
        failed = true;
        break;
      }
      ResumeSpec spec;
      spec.session_id = 1;
      spec.pattern_id = 0;
      spec.chunks = 4;
      spec.checkpoint = frame.payload.substr(8);  // {session, pattern, blob}
      ::close(fd);
      reader = FrameReader();
      fd = reconnect_and_resume(port, spec, reader);
      if (fd < 0) {
        std::fprintf(stderr, "RESUME_SESSION failed\n");
        failed = true;
        break;
      }
      std::printf("  (checkpointed, dropped the connection, resumed "
                  "byte-exact at offset %zu)\n",
                  std::min(offset + window, text.size()));
    }
  }
  if (!failed) {
    send_all(fd, make_close(1));
    if (recv_frame(fd, reader, frame) && frame.type == FrameType::kClosed) {
      PayloadReader payload(frame.payload);
      payload.get_u32();
      matches_total = payload.get_u64();
    } else {
      failed = true;
    }
  }
  ::close(fd);
  teardown();
  if (failed) return 1;

  std::printf("server found %llu matches in %zu bytes\n",
              static_cast<unsigned long long>(matches_total), text.size());

  // Smoke-test oracle: the server must agree with a local one-shot find.
  const Engine oracle(Pattern::compile(regex));
  const std::size_t expected = oracle.find_all(text).size();
  if (matches_total != expected) {
    std::printf("MISMATCH: local oracle found %zu (bug!)\n", expected);
    return 1;
  }
  std::printf("matches agree with the local Engine::find_all oracle\n");
  return matches_total > 0 ? 0 : 1;
}
