// Scanning DNA data — the paper's "fasta" scenario. FASTA-shaped records
// carry a motif tag in their headers; the recognizer validates the whole
// archive against the record grammar in parallel and reports the per-
// variant speculation overhead.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t kilobytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 765;

  const WorkloadSpec spec = fasta_workload();
  Prng prng(1859);  // Darwin
  const std::string archive = spec.text(kilobytes << 10, prng);
  std::printf("FASTA archive: %zu bytes\n", archive.size());

  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())));
  const Pattern& pattern = engine.pattern();
  std::printf("record grammar: NFA %d states (paper Tab. 1: 29), min DFA %d, "
              "RI-DFA interface %d\n\n",
              pattern.nfa().num_states(), pattern.min_dfa().num_states(),
              pattern.ridfa().initial_count());

  const std::vector<Symbol> input = engine.translate(archive);

  std::puts("variant  decision  transitions   overhead vs serial n");
  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid}) {
    const QueryResult stats =
        engine.recognize(input, {.variant = variant, .chunks = 16});
    const double overhead =
        static_cast<double>(stats.transitions) / static_cast<double>(input.size());
    std::printf("%-7s  %-8s  %11llu   %.2fx\n", variant_name(variant),
                stats.accepted ? "VALID" : "invalid",
                static_cast<unsigned long long>(stats.transitions), overhead);
  }

  std::puts("\nfasta is an 'even' benchmark: mis-speculated runs die within a");
  std::puts("line for DFA and RI-DFA alike, so both overheads stay near 1x.");
  return 0;
}
