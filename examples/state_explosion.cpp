// The DFA state-explosion family [ab]*a[ab]{k} (the paper's "regexp"
// benchmark): the minimal DFA doubles with every k while the NFA — and
// therefore the RI-DFA interface — grows by one state. This example prints
// the growth table and shows the parallel recognizer surviving a k where
// the DFA variant drowns in speculation.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const int max_k = argc > 1 ? std::atoi(argv[1]) : 12;

  std::puts("k    NFA states   min DFA states   RI-DFA interface");
  for (int k = 2; k <= max_k; k += 2) {
    const Pattern pattern = Pattern::from_nfa(glushkov_nfa(regexp_workload(k).regex()));
    std::printf("%-3d  %-11d  %-15d  %d\n", k, pattern.nfa().num_states(),
                pattern.min_dfa().num_states(), pattern.ridfa().initial_count());
  }

  // Demonstrate the speculation gap at a moderate k.
  const int k = std::min(max_k, 10);
  const WorkloadSpec spec = regexp_workload(k);
  Prng prng(1961);  // Brzozowski
  const std::string text = spec.text(1u << 20, prng);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())));
  const std::vector<Symbol> input = engine.translate(text);

  std::printf("\nrecognizing %zu bytes with k = %d, c = 32 chunks:\n", text.size(), k);
  for (const Variant variant : {Variant::kDfa, Variant::kRid}) {
    Stopwatch clock;
    const QueryResult stats =
        engine.recognize(input, {.variant = variant, .chunks = 32});
    std::printf("  %-4s: %s in %7.2f ms, %llu transitions (%.1fx the input length)\n",
                variant_name(variant), stats.accepted ? "accepted" : "rejected",
                clock.millis(), static_cast<unsigned long long>(stats.transitions),
                static_cast<double>(stats.transitions) /
                    static_cast<double>(input.size()));
  }
  std::puts("\nThe paper's regexp benchmark (Fig. 7b, 8b, 8d) is exactly this race.");
  return 0;
}
