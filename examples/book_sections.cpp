// Recognizing an HTML manuscript with section headers — the paper's
// "bible" scenario and a *winning* case: the language's minimal DFA is
// several times larger than its NFA and never dies on ordinary text, so
// the RI-DFA interface slashes the speculation overhead.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t megabytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  const WorkloadSpec spec = bible_workload();
  Prng prng(1455);  // Gutenberg
  const std::string manuscript = spec.text(megabytes << 20, prng);
  std::printf("manuscript: %zu bytes\n", manuscript.size());

  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())));
  const Pattern& pattern = engine.pattern();
  const double state_ratio = static_cast<double>(pattern.min_dfa().num_states()) /
                             static_cast<double>(pattern.ridfa().initial_count());
  std::printf("grammar: NFA %d states, min DFA %d states, RI-DFA interface %d "
              "(DFA/interface = %.1fx)\n\n",
              pattern.nfa().num_states(), pattern.min_dfa().num_states(),
              pattern.ridfa().initial_count(), state_ratio);

  const std::vector<Symbol> input = engine.translate(manuscript);

  std::puts("chunks   DFA variant        RID variant        speedup");
  for (const std::size_t chunks : {8u, 16u, 32u}) {
    Stopwatch dfa_clock;
    const QueryResult dfa =
        engine.recognize(input, {.variant = Variant::kDfa, .chunks = chunks});
    const double dfa_ms = dfa_clock.millis();
    Stopwatch rid_clock;
    const QueryResult rid =
        engine.recognize(input, {.variant = Variant::kRid, .chunks = chunks});
    const double rid_ms = rid_clock.millis();
    std::printf("%-6zu  %8.2f ms (%s)  %8.2f ms (%s)   %.2fx\n", chunks, dfa_ms,
                dfa.accepted ? "ok" : "??", rid_ms, rid.accepted ? "ok" : "??",
                rid_ms > 0 ? dfa_ms / rid_ms : 0.0);
  }

  std::puts("\nEvery DFA state survives ordinary text (the language has Sigma*");
  std::puts("context), so the DFA variant pays |Q| runs per chunk; the RID pays");
  std::puts("only the interface. This is Fig. 7a / 8a territory.");
  return 0;
}
