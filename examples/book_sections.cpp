// Recognizing an HTML manuscript with section headers — the paper's
// "bible" scenario and a *winning* case: the language's minimal DFA is
// several times larger than its NFA and never dies on ordinary text, so
// the RI-DFA interface slashes the speculation overhead.
#include <cstdio>
#include <string>

#include "automata/glushkov.hpp"
#include "parallel/recognizer.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t megabytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  const WorkloadSpec spec = bible_workload();
  Prng prng(1455);  // Gutenberg
  const std::string manuscript = spec.text(megabytes << 20, prng);
  std::printf("manuscript: %zu bytes\n", manuscript.size());

  const LanguageEngines engines = LanguageEngines::from_nfa(glushkov_nfa(spec.regex()));
  const double state_ratio = static_cast<double>(engines.min_dfa().num_states()) /
                             static_cast<double>(engines.ridfa().initial_count());
  std::printf("grammar: NFA %d states, min DFA %d states, RI-DFA interface %d "
              "(DFA/interface = %.1fx)\n\n",
              engines.nfa().num_states(), engines.min_dfa().num_states(),
              engines.ridfa().initial_count(), state_ratio);

  const std::vector<Symbol> input = engines.translate(manuscript);
  ThreadPool pool;

  std::puts("chunks   DFA variant        RID variant        speedup");
  for (const std::size_t chunks : {8u, 16u, 32u}) {
    const DeviceOptions options{.chunks = chunks, .convergence = false};
    Stopwatch dfa_clock;
    const RecognitionStats dfa = engines.recognize(Variant::kDfa, input, pool, options);
    const double dfa_ms = dfa_clock.millis();
    Stopwatch rid_clock;
    const RecognitionStats rid = engines.recognize(Variant::kRid, input, pool, options);
    const double rid_ms = rid_clock.millis();
    std::printf("%-6zu  %8.2f ms (%s)  %8.2f ms (%s)   %.2fx\n", chunks, dfa_ms,
                dfa.accepted ? "ok" : "??", rid_ms, rid.accepted ? "ok" : "??",
                rid_ms > 0 ? dfa_ms / rid_ms : 0.0);
  }

  std::puts("\nEvery DFA state survives ordinary text (the language has Sigma*");
  std::puts("context), so the DFA variant pays |Q| runs per chunk; the RID pays");
  std::puts("only the interface. This is Fig. 7a / 8a territory.");
  return 0;
}
