// Surveys the synthetic automata collection (the Ondrik stand-in) through
// the full pipeline and prints a per-machine report — the "inspection"
// workflow a user runs before trusting Table-2-style aggregates. Optionally
// exports each NFA in Timbuk format for interchange with other tools.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "automata/timbuk.hpp"
#include "core/interface_min.hpp"
#include "workloads/collection.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 12;
  const char* export_dir = argc > 2 ? argv[2] : nullptr;

  CollectionConfig config;
  config.count = count;

  std::puts("idx  nfa  sym  edges  minDFA  ridfa  iface  downgraded  nfa/dfa");
  for (int i = 0; i < count; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    Ridfa ridfa = build_ridfa(nfa);
    const InterfaceMinStats reduction = minimize_interface(ridfa);
    std::printf("%-3d  %-3d  %-3d  %-5zu  %-6d  %-5d  %-5d  %-10d  %.2f\n", i,
                nfa.num_states(), nfa.num_symbols(), nfa.num_edges(),
                min_dfa.num_states(), ridfa.num_states(), ridfa.initial_count(),
                reduction.downgraded,
                static_cast<double>(nfa.num_states()) /
                    static_cast<double>(min_dfa.num_states()));

    if (export_dir != nullptr) {
      char path[512];
      std::snprintf(path, sizeof path, "%s/collection_%04d.tmb", export_dir, i);
      std::ofstream out(path);
      save_timbuk(out, nfa, "m" + std::to_string(i));
    }
  }
  if (export_dir != nullptr)
    std::printf("\nexported %d Timbuk files to %s\n", count, export_dir);
  std::puts("\ncolumns: iface = RI-DFA initial states after Sect. 3.4 reduction;");
  std::puts("nfa/dfa < 1 marks the succinct machines (paper Tab. 2's 96.4%).");
  return 0;
}
