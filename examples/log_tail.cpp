// Tailing a log for positioned hits — the streaming-find corollary of the
// ROADMAP's serving north star. A synthetic service log streams through a
// positions StreamSession window by window: the session recognizes nothing
// about the whole file (the decision side is irrelevant here) but emits
// every occurrence of the alert pattern incrementally, with ABSOLUTE byte
// offsets, while only one window plus the O(1) find carry is ever resident.
// Matches that straddle a window boundary are found exactly — the carried
// separator resolves their begin into the previous window.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

using namespace rispar;

namespace {

// One synthetic syslog-ish line; roughly 1 in 16 carries an alert.
std::string make_line(Prng& prng, std::size_t index) {
  static const char* kUnits[] = {"disk", "net", "auth", "sched"};
  static const char* kAlerts[] = {"ERROR", "FATAL"};
  std::string line = "t=" + std::to_string(1000000 + index);
  line += " unit=";
  line += kUnits[prng.pick_index(std::size(kUnits))];
  if (prng.pick_index(16) == 0) {
    line += " level=";
    line += kAlerts[prng.pick_index(std::size(kAlerts))];
    line += " code=";
    line += std::to_string(prng.pick_index(99));
  } else {
    line += " level=info ok";
  }
  line += '\n';
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t total_kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const std::size_t window_kb = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;

  // Occurrence search, not whole-file validation: the alert pattern.
  const Engine engine(Pattern::compile("level=(ERROR|FATAL) code="));
  StreamSession stream = engine.stream({.chunks = 4, .positions = true});

  // The sink fires as each window joins. Offsets are absolute, so they stay
  // meaningful long after the window that produced them is gone; the slice
  // is printed only when the match still lies inside the resident window.
  std::uint64_t window_base = 0;
  const std::string* resident = nullptr;
  std::vector<std::uint64_t> alert_offsets;
  const MatchSink sink = [&](const Match& m) {
    alert_offsets.push_back(m.begin);
    if (alert_offsets.size() > 5) return;  // print the first few, count the rest
    if (m.begin >= window_base && resident != nullptr) {
      const std::size_t local = static_cast<std::size_t>(m.begin - window_base);
      std::printf("  alert @ %-10llu %.*s\n", static_cast<unsigned long long>(m.begin),
                  static_cast<int>(m.end - m.begin), resident->data() + local);
    } else {
      std::printf("  alert @ %-10llu (begins in an already-scrolled window)\n",
                  static_cast<unsigned long long>(m.begin));
    }
  };

  Prng prng(42);
  Stopwatch clock;
  std::string window;
  std::size_t line_index = 0;
  std::uint64_t fed = 0;
  while (fed < (total_kb << 10)) {
    window.clear();
    while (window.size() < (window_kb << 10))
      window += make_line(prng, line_index++);
    window_base = fed;
    resident = &window;
    stream.feed(window, sink);  // nothing accumulates in the session
    fed += window.size();
  }

  std::printf("\ntailed %.1f KB in %llu windows of ~%zu KB: %llu alerts (%.2f ms)\n",
              static_cast<double>(fed) / 1024,
              static_cast<unsigned long long>(stream.windows()), window_kb,
              static_cast<unsigned long long>(stream.matches()), clock.millis());

  // Offsets must be strictly increasing ends — spot-check monotonic begins
  // as a smoke invariant (CTest runs this example).
  const bool sorted = std::is_sorted(alert_offsets.begin(), alert_offsets.end());
  std::printf("offsets monotone: %s\n", sorted ? "yes" : "NO (bug!)");
  std::puts("\nOnly one window plus the one-state find carry is ever resident —");
  std::puts("absolute offsets survive window scrolling (docs/api.md, Streaming find).");
  return stream.matches() > 0 && sorted ? 0 : 1;
}
