// Serving a signature set over a log stream — the multi-pattern scenario
// the production scanners the paper motivates actually run: N compiled
// patterns, one pool, one pass per document, positioned matches tagged by
// pattern. Builds a synthetic incident log, scans it with a PatternSet,
// prints where each signature fired, and cross-checks every reported
// position against naive substring search.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/pattern_set.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  const std::size_t lines = argc > 1 ? std::strtoul(argv[1], nullptr, 10) * 1000 : 50'000;

  // Synthetic incident log: mostly routine lines, a few carrying the
  // signatures we serve.
  const std::vector<std::string> signatures{"ERROR", "timeout", "oom-kill"};
  Prng prng(7);
  std::string log;
  std::vector<std::size_t> planted(signatures.size(), 0);
  for (std::size_t i = 0; i < lines; ++i) {
    log += "svc[" + std::to_string(i % 97) + "] ";
    const std::size_t roll = prng.pick_index(100);
    if (roll < 3) {
      log += "ERROR request failed";
      ++planted[0];
    } else if (roll < 5) {
      log += "upstream timeout after 30s";
      ++planted[1];
    } else if (roll == 5) {
      log += "worker reaped by oom-kill";
      ++planted[2];
    } else {
      log += "request served ok";
    }
    log += '\n';
  }
  std::printf("scanning %zu log lines (%zu bytes) for %zu signatures...\n", lines,
              log.size(), signatures.size());

  const PatternSet set =
      PatternSet::compile({"ERROR", "timeout", "oom-kill"}, {.threads = 0});
  Stopwatch clock;
  const QueryResult report = set.find(log, {.chunks = 32, .convergence = true});
  std::printf("%llu hits in %.2f ms (%llu transitions)\n\n",
              static_cast<unsigned long long>(report.matches), clock.millis(),
              static_cast<unsigned long long>(report.transitions));

  // Per-signature totals plus the first firing position of each, the shape
  // a triage dashboard renders.
  std::vector<std::size_t> counted(signatures.size(), 0);
  std::vector<const Match*> first(signatures.size(), nullptr);
  for (const Match& m : report.positions) {
    if (first[m.pattern_id] == nullptr) first[m.pattern_id] = &m;
    ++counted[m.pattern_id];
  }
  bool ok = true;
  for (std::size_t p = 0; p < signatures.size(); ++p) {
    std::printf("  %-8s: %6zu hits (planted %6zu)", signatures[p].c_str(), counted[p],
                planted[p]);
    if (first[p] != nullptr)
      std::printf("   first at byte %llu: \"%.*s\"",
                  static_cast<unsigned long long>(first[p]->begin),
                  static_cast<int>(first[p]->end - first[p]->begin),
                  log.data() + first[p]->begin);
    std::printf("\n");
    if (counted[p] != planted[p]) ok = false;
    // Literal signatures never chain partial occurrences across distinct
    // hits here, so every begin must be exact — verify against the text.
    for (const Match& m : report.positions)
      if (m.pattern_id == p &&
          log.compare(m.begin, signatures[p].size(), signatures[p]) != 0)
        ok = false;
  }

  // Paging, the server cap: first page of 5.
  const QueryResult page = set.find(log, {.chunks = 32, .limit = 5});
  std::printf("\nfirst page (limit 5 of %llu): ",
              static_cast<unsigned long long>(page.matches));
  for (const Match& m : page.positions)
    std::printf("[%llu,%llu) ", static_cast<unsigned long long>(m.begin),
                static_cast<unsigned long long>(m.end));
  std::printf("\n%s\n", ok ? "all positions verified against naive search"
                           : "POSITION MISMATCH (bug!)");
  return ok ? 0 : 1;
}
