#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/subset.hpp"
#include "automata/thompson.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"
#include "regex/simplify.hpp"

namespace rispar {
namespace {

TEST(Glushkov, EpsilonFreeByConstruction) {
  const Nfa nfa = glushkov_nfa(parse_regex("(a|b)*abb"));
  EXPECT_FALSE(nfa.has_epsilon());
}

TEST(Glushkov, StateCountIsPositionsPlusOne) {
  const RePtr re = parse_regex("(a|b)*a(a|b){3}");
  EXPECT_EQ(static_cast<std::size_t>(glushkov_nfa(re).num_states()),
            re_positions(re_expand_repeats(re)) + 1);
}

TEST(Glushkov, SimpleMembership) {
  const Nfa nfa = glushkov_nfa(parse_regex("(ab)*"));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("ab")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("abab")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("ba")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("aab")));
}

TEST(Glushkov, NullableRegexMakesInitialFinal) {
  EXPECT_TRUE(glushkov_nfa(parse_regex("a*")).is_final(0));
  EXPECT_FALSE(glushkov_nfa(parse_regex("a+")).is_final(0));
}

TEST(Glushkov, CharacterClassesShareSymbols) {
  // [ab] and [ab] should map onto one symbol class; a lone 'a' splits it.
  const Nfa one_class = glushkov_nfa(parse_regex("[ab][ab]"));
  EXPECT_EQ(one_class.num_symbols(), 1);
  const Nfa two_classes = glushkov_nfa(parse_regex("[ab]a"));
  EXPECT_EQ(two_classes.num_symbols(), 2);
}

TEST(Glushkov, EmptyLanguage) {
  const Nfa nfa = glushkov_nfa(re_empty());
  EXPECT_FALSE(nfa_accepts(nfa, std::string("")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("a")));
}

TEST(Glushkov, BoundedRepeatExpansion) {
  const Nfa nfa = glushkov_nfa(parse_regex("a{2,3}"));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("a")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("aa")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("aaa")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("aaaa")));
}

TEST(Thompson, HasEpsilonAndAccepts) {
  const Nfa nfa = thompson_nfa(parse_regex("(a|b)*abb"));
  EXPECT_TRUE(nfa.has_epsilon());
  EXPECT_TRUE(nfa_accepts(nfa, std::string("abb")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("aababb")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("ab")));
}

TEST(Thompson, EmptyLanguageFragmentDisconnected) {
  const Nfa nfa = thompson_nfa(re_empty());
  EXPECT_FALSE(nfa_accepts(nfa, std::string("")));
}

TEST(Thompson, EpsilonLanguage) {
  const Nfa nfa = thompson_nfa(re_epsilon());
  EXPECT_TRUE(nfa_accepts(nfa, std::string("")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("a")));
}

// The two constructions must define the same language for every RE.
class ConstructionAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstructionAgreement, GlushkovEqualsThompson) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 6 + static_cast<int>(prng.pick_index(18));
  const RePtr re = random_regex(prng, config);
  const Nfa glushkov = glushkov_nfa(re);
  const Nfa thompson = thompson_nfa(re);
  EXPECT_TRUE(nfa_equivalent(glushkov, thompson)) << regex_to_string(re);
}

TEST_P(ConstructionAgreement, MembershipMatchesOnRandomWords) {
  Prng prng(GetParam() ^ 0x5555);
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 10;
  const RePtr re = random_regex(prng, config);
  const Nfa glushkov = glushkov_nfa(re);
  const Nfa thompson = thompson_nfa(re);
  for (int i = 0; i < 30; ++i) {
    std::string word;
    const std::size_t length = prng.pick_index(12);
    for (std::size_t j = 0; j < length; ++j)
      word.push_back(prng.next_bool(0.5) ? 'a' : 'b');
    EXPECT_EQ(nfa_accepts(glushkov, word), nfa_accepts(thompson, word))
        << regex_to_string(re) << " on '" << word << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstructionAgreement,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(PaperAutomata, BenchmarkNfaSizesMatchTable1Ballpark) {
  // Tab. 1: bigdata 5, regexp k+2 (k=8 -> 10), bible 16, fasta 29, traffic 101.
  EXPECT_EQ(glushkov_nfa(parse_regex("(ab|ba)*")).num_states(), 5);
  // The class form [ab] keeps one Glushkov position per repetition, giving
  // the paper's k+2-ish NFA (k = 8 -> 10 positions + 1).
  EXPECT_EQ(glushkov_nfa(parse_regex("[ab]*a[ab]{8}")).num_states(), 11);
  const auto bible = glushkov_nfa(
      parse_regex(".*<h3>[a-z0-9 ]*[0-9][a-z0-9 ]{2}</h3>.*"));
  EXPECT_GE(bible.num_states(), 15);
  EXPECT_LE(bible.num_states(), 25);
  const auto fasta = glushkov_nfa(
      parse_regex("(>[a-z0-9]+ (GATTACA|CCGGTTAA|ACGTACGT) [0-9]+\n([ACGT]+\n)+)*"));
  EXPECT_GE(fasta.num_states(), 28);
  EXPECT_LE(fasta.num_states(), 36);
}

}  // namespace
}  // namespace rispar
