#include "regex/printer.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/subset.hpp"
#include "regex/parser.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(RegexPrinter, SimpleForms) {
  EXPECT_EQ(regex_to_string(parse_regex("abc")), "abc");
  EXPECT_EQ(regex_to_string(parse_regex("a|b|c")), "a|b|c");
}

TEST(RegexPrinter, QuantifiersPrint) {
  EXPECT_EQ(regex_to_string(parse_regex("a*")), "a*");
  EXPECT_EQ(regex_to_string(parse_regex("a+")), "a+");
  EXPECT_EQ(regex_to_string(parse_regex("a?")), "a?");
  EXPECT_EQ(regex_to_string(parse_regex("a{2,5}")), "a{2,5}");
  EXPECT_EQ(regex_to_string(parse_regex("a{2,}")), "a{2,}");
  EXPECT_EQ(regex_to_string(parse_regex("a{3}")), "a{3}");
}

TEST(RegexPrinter, GroupingPreservesStructure) {
  // (ab)* must not print as ab*.
  const std::string printed = regex_to_string(parse_regex("(ab)*"));
  EXPECT_EQ(printed, "(ab)*");
}

TEST(RegexPrinter, AlternationInsideConcat) {
  const std::string printed = regex_to_string(parse_regex("(a|b)c"));
  EXPECT_EQ(printed, "(a|b)c");
}

TEST(RegexPrinter, DotPrints) {
  EXPECT_EQ(regex_to_string(parse_regex(".")), ".");
}

TEST(RegexPrinter, ClassRanges) {
  EXPECT_EQ(regex_to_string(parse_regex("[a-c]")), "[a-c]");
  EXPECT_EQ(regex_to_string(parse_regex("[abx-z]")), "[abx-z]");
}

TEST(RegexPrinter, EscapedBytes) {
  EXPECT_EQ(regex_to_string(parse_regex("\\n")), "\\n");
  EXPECT_EQ(regex_to_string(parse_regex("\\.")), "\\.");
  EXPECT_EQ(regex_to_string(parse_regex("\\x01")), "\\x01");
}

TEST(RegexPrinter, ByteSetHelper) {
  ByteSet set;
  set.set('a');
  EXPECT_EQ(byteset_to_string(set), "a");
  set.set('b');
  set.set('c');
  EXPECT_EQ(byteset_to_string(set), "[a-c]");
}

// Round-trip property: print → parse yields the same language (checked via
// Glushkov + determinization + DFA equivalence).
class PrinterRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrinterRoundTrip, ParsePrintParsePreservesLanguage) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "abc";
  config.target_size = 10 + static_cast<int>(prng.pick_index(15));
  const RePtr original = random_regex(prng, config);
  const std::string printed = regex_to_string(original);

  RePtr reparsed;
  ASSERT_NO_THROW(reparsed = parse_regex(printed)) << "pattern: " << printed;

  const Dfa dfa_original = determinize(glushkov_nfa(original));
  const Dfa dfa_reparsed = determinize(glushkov_nfa(reparsed));
  EXPECT_TRUE(dfa_equivalent(dfa_original, dfa_reparsed)) << "pattern: " << printed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTrip, ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace rispar
