// End-to-end checks of the paper's worked examples: the transition totals
// of Fig. 1 (min-DFA 15 / NFA 14 / RI-DFA 9 on "aabcab" in two chunks), the
// CSDPA run of Fig. 2, the join of Fig. 4, and exact-begin (reverse-DFA)
// resolution on the Fig. 2 language with hand-computed leftmost offsets.
#include <gtest/gtest.h>

#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "core/ridfa.hpp"
#include "core/serial_match.hpp"
#include "engine/engine.hpp"
#include "helpers.hpp"
#include "parallel/csdpa.hpp"

namespace rispar {
namespace {

class PaperExamples : public ::testing::Test {
 protected:
  Nfa nfa_ = testing::fig1_nfa();
  Dfa min_dfa_ = minimize_dfa(determinize(nfa_));
  Ridfa ridfa_ = build_ridfa(nfa_);
  ThreadPool pool_{2};
  std::vector<Symbol> input_ = testing::fig1_string();  // a a b | c a b
  QueryOptions two_chunks_{.chunks = 2, .convergence = false};
};

TEST_F(PaperExamples, MinDfaHasFourStatesAndRidfaFive) {
  EXPECT_EQ(min_dfa_.num_states(), 4);
  EXPECT_EQ(ridfa_.num_states(), 5);
  EXPECT_EQ(ridfa_.initial_count(), 3);
}

TEST_F(PaperExamples, AllDevicesAcceptTheSampleString) {
  EXPECT_TRUE(DfaDevice(min_dfa_).recognize(input_, pool_, two_chunks_).accepted);
  EXPECT_TRUE(NfaDevice(nfa_).recognize(input_, pool_, two_chunks_).accepted);
  EXPECT_TRUE(RidDevice(ridfa_).recognize(input_, pool_, two_chunks_).accepted);
}

TEST_F(PaperExamples, Fig1TransitionCountDfaIs15) {
  const QueryResult stats =
      DfaDevice(min_dfa_).recognize(input_, pool_, two_chunks_);
  EXPECT_EQ(stats.transitions, 15u);
}

TEST_F(PaperExamples, Fig1TransitionCountNfaIs14) {
  const QueryResult stats =
      NfaDevice(nfa_).recognize(input_, pool_, two_chunks_);
  EXPECT_EQ(stats.transitions, 14u);
}

TEST_F(PaperExamples, Fig1TransitionCountRidfaIs9) {
  const QueryResult stats =
      RidDevice(ridfa_).recognize(input_, pool_, two_chunks_);
  EXPECT_EQ(stats.transitions, 9u);
}

TEST_F(PaperExamples, SerialDfaDoesExactlyNTransitions) {
  const QueryOptions serial{.chunks = 1, .convergence = false};
  const QueryResult stats = DfaDevice(min_dfa_).recognize(input_, pool_, serial);
  EXPECT_EQ(stats.transitions, input_.size());
  EXPECT_TRUE(stats.accepted);
}

TEST_F(PaperExamples, RejectionIsSharedByAllDevices) {
  // "aabcaa" is not in the language (swap last b for a).
  const std::vector<Symbol> bad{0, 0, 1, 2, 0, 0};
  EXPECT_FALSE(DfaDevice(min_dfa_).recognize(bad, pool_, two_chunks_).accepted);
  EXPECT_FALSE(NfaDevice(nfa_).recognize(bad, pool_, two_chunks_).accepted);
  EXPECT_FALSE(RidDevice(ridfa_).recognize(bad, pool_, two_chunks_).accepted);
}

// Fig. 2: CSDPA with the 2-state DFA on "bab|aaa": nine transitions total
// (chunk 1 runs once from q0 = 3; chunk 2 runs from both states = 6).
TEST(PaperFig2, NineTransitionsAndAccepted) {
  const Dfa dfa = testing::fig2_dfa();
  ThreadPool pool(2);
  const std::vector<Symbol> input{1, 0, 1, 0, 0, 0};  // b a b a a a
  const QueryOptions options{.chunks = 2, .convergence = false};
  const QueryResult stats = DfaDevice(dfa).recognize(input, pool, options);
  EXPECT_TRUE(stats.accepted);
  EXPECT_EQ(stats.transitions, 9u);
}

// Fig. 4: the interface function in the two-chunk join. After chunk 1
// ("aab"), PLAS = {{0,2}}; after chunk 2 ("cab") it is {{0,2}} again, which
// is final, so the input is accepted even though the run from {2} dies and
// the run from {1} is filtered out by if(PLAS1) ∩ PIS2 = {{0}}... the run
// from {1} DOES survive but {1} ∉ if(PLAS1) = {{0},{2}}.
TEST(PaperFig4, JoinFiltersThroughInterface) {
  const Nfa nfa = testing::fig1_nfa();
  const Ridfa ridfa = build_ridfa(nfa);
  // Manual reach phase for chunk 2 = "cab" from all three interface states.
  const std::vector<Symbol> chunk2{2, 0, 1};
  std::uint64_t transitions = 0;
  const State from0 = run_dfa_span(ridfa.dfa(), ridfa.singleton(0), chunk2.data(), 3,
                                   transitions);
  const State from1 = run_dfa_span(ridfa.dfa(), ridfa.singleton(1), chunk2.data(), 3,
                                   transitions);
  const State from2 = run_dfa_span(ridfa.dfa(), ridfa.singleton(2), chunk2.data(), 3,
                                   transitions);
  EXPECT_EQ(ridfa.contents(from0), (std::vector<State>{0, 2}));
  EXPECT_EQ(ridfa.contents(from1), (std::vector<State>{0, 2}));
  EXPECT_EQ(from2, kDeadState);  // {2} has no c-transition
  EXPECT_EQ(transitions, 6u);    // 3 + 3 + 0
}

// ------------------------------------------------ exact begins (ISSUE 9)
// Leftmost offsets below are hand-computed from the language definitions;
// the fuzz driver covers the same property at scale, these pin the paper's
// own examples as human-checkable regressions.

/// (begin, end) pairs of a find result, for terse literal comparisons.
std::vector<std::pair<std::uint64_t, std::uint64_t>> spans(const QueryResult& r) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const Match& m : r.positions) out.emplace_back(m.begin, m.end);
  return out;
}

// Fig. 2's language L = b*a(ab*a | b+a)* on its own sample string "babaaa".
// Matches end at 2, 4, 5 and 6; hand-derived leftmost starts:
//   end 2: "ba" ∈ L (b* = "b")                      -> begin 0
//   end 4: "baba" ∈ L ("b", a, then b+a = "ba")     -> begin 0
//   end 5: only "a" (at 4) ∈ L among suffixes       -> begin 4
//   end 6: "babaaa" ∈ L ("b", a, "ba", then "aa")   -> begin 0
TEST(PaperExactBegins, Fig2LanguageLeftmostStarts) {
  const Engine engine(Pattern::compile("b*a(ab*a|b+a)*"), {.threads = 2});
  const QueryResult exact =
      engine.find("babaaa", {.chunks = 2, .begin_mode = BeginMode::kExact});
  EXPECT_EQ(spans(exact),
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                {0, 2}, {0, 4}, {4, 5}, {0, 6}}));
  // Same ends as the default separator mode — the mode changes only begins.
  const QueryResult separator = engine.find("babaaa", {.chunks = 2});
  ASSERT_EQ(separator.positions.size(), exact.positions.size());
  for (std::size_t i = 0; i < exact.positions.size(); ++i)
    EXPECT_EQ(separator.positions[i].end, exact.positions[i].end);
}

// The chaining example from the CLI docs: "aa" in "aaaa". Separator mode
// documents begins that extend left through the overlap chain; exact mode
// pins each match to exactly its two bytes.
TEST(PaperExactBegins, OverlapChainPinsToTwoBytes) {
  const Engine engine(Pattern::compile("aa"), {.threads = 2});
  const QueryResult exact =
      engine.find("aaaa", {.begin_mode = BeginMode::kExact});
  EXPECT_EQ(spans(exact),
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                {0, 2}, {1, 3}, {2, 4}}));
}

// The soundness-certificate counterexample (a|ba): determinization merges a
// live-progress subset into the restart class, so the separator is NOT a
// sound reverse-scan floor — the certificate must say so, and exact
// resolution must still find begins LEFT of the recorded separator.
TEST(PaperExactBegins, SeparatorPurityCertificate) {
  const Pattern hazard = Pattern::compile("a|ba");
  EXPECT_FALSE(hazard.reverse_begins().separators_sound);
  const Engine engine(hazard, {.threads = 2});
  const QueryResult exact =
      engine.find("aba", {.begin_mode = BeginMode::kExact});
  // "a" ends at 1 (begin 0); "ba" and "a" both end at 3 — leftmost is 1.
  EXPECT_EQ(spans(exact),
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{{0, 1}, {1, 3}}));

  // A pattern with no such merge keeps the certificate (and the cheap
  // truncation path that rides on it).
  EXPECT_TRUE(Pattern::compile("ab").reverse_begins().separators_sound);
}

// Streaming exact begins across the paper's own two-chunk split of Fig. 2:
// feeding "bab" then "aaa" emits the one-shot list, with the begins of the
// window-2 matches reaching back into window 1.
TEST(PaperExactBegins, Fig2StreamingBeginsCrossTheChunkBoundary) {
  const Engine engine(Pattern::compile("b*a(ab*a|b+a)*"), {.threads = 2});
  StreamSession stream =
      engine.stream({.positions = true, .begin_mode = BeginMode::kExact});
  stream.feed("bab");
  stream.feed("aaa");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> collected;
  for (const Match& m : stream.take_matches()) collected.emplace_back(m.begin, m.end);
  EXPECT_EQ(collected,
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                {0, 2}, {0, 4}, {4, 5}, {0, 6}}));
  EXPECT_TRUE(stream.accepted());
}

}  // namespace
}  // namespace rispar
