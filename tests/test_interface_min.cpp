#include "core/interface_min.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

// An NFA with two language-equivalent states reachable as distinct
// singletons: 1 and 2 both accept exactly "b" (Fig. 5 flavour: equivalent
// initial singletons, one delegates).
Nfa nfa_with_equivalent_states() {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  for (int i = 0; i < 4; ++i) nfa.add_state(i == 3);
  nfa.set_initial(0);
  nfa.add_edge(0, 0, 1);  // 0 -a-> 1
  nfa.add_edge(0, 1, 2);  // 0 -b-> 2
  nfa.add_edge(1, 1, 3);  // 1 -b-> 3
  nfa.add_edge(2, 1, 3);  // 2 -b-> 3
  return nfa;
}

TEST(InterfaceMin, DowngradesEquivalentSingletons) {
  Ridfa ridfa = build_ridfa(nfa_with_equivalent_states());
  EXPECT_EQ(ridfa.initial_count(), 4);
  const InterfaceMinStats stats = minimize_interface(ridfa);
  EXPECT_EQ(stats.initial_before, 4);
  // {1} and {2} are Nerode-equivalent: one delegates to the other.
  EXPECT_EQ(stats.initial_after, 3);
  EXPECT_EQ(stats.downgraded, 1);
  // The delegate is the same CA state for both NFA states 1 and 2.
  EXPECT_EQ(ridfa.interface_of(1), ridfa.interface_of(2));
  // The transition graph is untouched: both singletons still exist.
  EXPECT_EQ(ridfa.contents(ridfa.singleton(1)), std::vector<State>{1});
  EXPECT_EQ(ridfa.contents(ridfa.singleton(2)), std::vector<State>{2});
}

TEST(InterfaceMin, Fig1NfaHasNoReducibleInterface) {
  // In the Fig. 1 example the three NFA states are pairwise inequivalent.
  Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  const InterfaceMinStats stats = minimize_interface(ridfa);
  EXPECT_EQ(stats.initial_after, 3);
  EXPECT_EQ(stats.downgraded, 0);
}

TEST(InterfaceMin, Idempotent) {
  Ridfa ridfa = build_ridfa(nfa_with_equivalent_states());
  minimize_interface(ridfa);
  const std::vector<State> first = ridfa.initial_states();
  const InterfaceMinStats again = minimize_interface(ridfa);
  EXPECT_EQ(again.initial_before, again.initial_after);
  EXPECT_EQ(ridfa.initial_states(), first);
}

TEST(InterfaceMin, PreservesSerialLanguage) {
  const Nfa nfa = nfa_with_equivalent_states();
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);
  std::vector<Symbol> word;
  std::function<void(std::size_t)> rec = [&](std::size_t depth) {
    EXPECT_EQ(serial_match(ridfa, word).accepted, nfa_accepts(nfa, word));
    if (depth == 5) return;
    for (Symbol a = 0; a < 2; ++a) {
      word.push_back(a);
      rec(depth + 1);
      word.pop_back();
    }
  };
  rec(0);
}

TEST(InterfaceMin, BuildMinimizedConvenience) {
  const Ridfa ridfa = build_minimized_ridfa(nfa_with_equivalent_states());
  EXPECT_EQ(ridfa.initial_count(), 3);
}

// Theorem 3.4 flavour: building the RI-DFA from an equivalent smaller NFA
// (here: from the minimal DFA reinterpreted as an NFA) never yields more
// initial states than interface-minimizing the RI-DFA of the bigger NFA
// would keep... conversely, minimization can only reduce the count.
class InterfaceMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterfaceMinProperty, NeverIncreasesInitials) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 8 + static_cast<std::int32_t>(prng.pick_index(30));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  Ridfa ridfa = build_ridfa(nfa);
  const std::int32_t before = ridfa.initial_count();
  const InterfaceMinStats stats = minimize_interface(ridfa);
  EXPECT_LE(stats.initial_after, before);
  EXPECT_EQ(stats.initial_after + stats.downgraded, before);
}

TEST_P(InterfaceMinProperty, MinimizedRidMatchesDfaOracleOnWords) {
  Prng prng(GetParam() ^ 0x9999);
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
  const Nfa nfa = random_nfa(prng, config);
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);
  const Dfa oracle = minimize_dfa(determinize(nfa));
  for (int trial = 0; trial < 30; ++trial) {
    const auto word =
        testing::random_word(prng, nfa.num_symbols(), prng.pick_index(30));
    EXPECT_EQ(serial_match(ridfa, word).accepted, oracle.accepts(word));
  }
}

TEST_P(InterfaceMinProperty, DelegatesAreLanguageEquivalent) {
  Prng prng(GetParam() ^ 0x1234);
  RandomNfaConfig config;
  config.num_states = 8 + static_cast<std::int32_t>(prng.pick_index(20));
  const Nfa nfa = random_nfa(prng, config);
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);
  // For every NFA state q: the CA language from singleton(q) equals the CA
  // language from interface_of(q) — check on random words.
  for (State q = 0; q < nfa.num_states(); ++q) {
    const State original = ridfa.singleton(q);
    const State delegate = ridfa.interface_of(q);
    if (original == delegate) continue;
    for (int trial = 0; trial < 10; ++trial) {
      const auto word =
          testing::random_word(prng, nfa.num_symbols(), prng.pick_index(16));
      std::uint64_t ignore = 0;
      const State end_a =
          run_dfa_span(ridfa.dfa(), original, word.data(), word.size(), ignore);
      const State end_b =
          run_dfa_span(ridfa.dfa(), delegate, word.data(), word.size(), ignore);
      const bool accept_a = end_a != kDeadState && ridfa.is_final(end_a);
      const bool accept_b = end_b != kDeadState && ridfa.is_final(end_b);
      EXPECT_EQ(accept_a, accept_b) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterfaceMinProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(InterfaceMin, Theorem34MinimalSourceNeedsNoReduction) {
  // Build an RI-DFA from a DFA-shaped NFA (deterministic => it is its own
  // minimal-ish machine after DFA minimization): interface minimization of
  // the RI-DFA built from the *minimal* machine should find nothing to
  // downgrade, because minimal-DFA states are pairwise inequivalent.
  Prng prng(31337);
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 12;
  const RePtr re = random_regex(prng, config);
  const Dfa minimal = minimize_dfa(determinize(glushkov_nfa(re)));
  Ridfa ridfa = build_ridfa(dfa_to_nfa(minimal));
  const InterfaceMinStats stats = minimize_interface(ridfa);
  EXPECT_EQ(stats.downgraded, 0) << regex_to_string(re);
}

}  // namespace
}  // namespace rispar
