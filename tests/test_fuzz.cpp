// Failure-injection and fuzz tests: random byte noise through the parser,
// hostile structures through the pipeline, budget exhaustion paths, and
// structural invariants of the RI-DFA. Nothing here may crash, hang, or
// corrupt — errors must surface as exceptions or nullopt.
#include <gtest/gtest.h>

#include <algorithm>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/serialize.hpp"
#include "automata/subset.hpp"
#include "automata/timbuk.hpp"
#include "core/interface_min.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/simplify.hpp"

namespace rispar {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashTheParser) {
  Prng prng(GetParam());
  // Bias towards metacharacters so the interesting branches fire.
  static const char* kAtoms[] = {"a",  "b",  "(",  ")",  "[", "]", "{", "}",
                                 "*",  "+",  "?",  "|",  ".", "-", "^", "\\",
                                 "0",  "9",  ",",  "\\d", "\\x4", "  "};
  for (int trial = 0; trial < 200; ++trial) {
    std::string pattern;
    const std::size_t pieces = prng.pick_index(20);
    for (std::size_t i = 0; i < pieces; ++i)
      pattern += kAtoms[prng.pick_index(std::size(kAtoms))];
    try {
      const RePtr re = parse_regex(pattern);
      // A successful parse must survive the full downstream pipeline.
      const RePtr simplified = simplify_regex(re);
      const Nfa nfa = glushkov_nfa(simplified);
      (void)nfa.num_states();
      const std::string printed = regex_to_string(re);
      (void)parse_regex(printed);  // printed form must re-parse
    } catch (const RegexError&) {
      // Rejection is the expected outcome for garbage.
    }
  }
}

TEST_P(ParserFuzz, ArbitraryBytePatterns) {
  Prng prng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 100; ++trial) {
    std::string pattern;
    const std::size_t length = prng.pick_index(24);
    for (std::size_t i = 0; i < length; ++i)
      pattern.push_back(static_cast<char>(prng.pick_index(256)));
    try {
      (void)parse_regex(pattern);
    } catch (const RegexError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<std::uint64_t>(0, 8));

TEST(SerializeFuzz, RandomLinesNeverCrashLoaders) {
  Prng prng(404);
  static const char* kLines[] = {"nfa 3 2",   "dfa 2 2",      "initial 0",
                                 "final 1",   "edge 0 0 1",   "trans 0 1 1",
                                 "eps 0 2",   "edge 9 9 9",   "# noise",
                                 "garbage",   "nfa -2 1",     ""};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const std::size_t lines = prng.pick_index(8);
    for (std::size_t i = 0; i < lines; ++i) {
      text += kLines[prng.pick_index(std::size(kLines))];
      text += '\n';
    }
    try {
      (void)nfa_from_string(text);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)dfa_from_string(text);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)timbuk_from_string(text);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(BudgetExhaustion, TryBuildRidfaFailsCleanly) {
  // A machine too big for the budget must return nullopt without leaking
  // or corrupting — repeat to shake out state reuse bugs.
  Prng prng(7);
  RandomNfaConfig config;
  config.num_states = 60;
  config.nondeterminism = 0.6;
  config.density = 2.2;
  const Nfa nfa = random_nfa(prng, config);
  for (int i = 0; i < 10; ++i) {
    const auto tiny = try_build_ridfa(nfa, 8);
    EXPECT_FALSE(tiny.has_value());
  }
  // The same NFA still builds with an adequate budget afterwards.
  const auto full = try_build_ridfa(nfa, 1 << 20);
  ASSERT_TRUE(full.has_value());
  EXPECT_GE(full->num_states(), nfa.num_states());
}

class RidfaInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RidfaInvariants, StructuralInvariantsHold) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(30));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(4));
  const Nfa nfa = random_nfa(prng, config);
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);

  // (1) contents are sorted, unique, non-empty NFA state ids.
  for (State p = 0; p < ridfa.num_states(); ++p) {
    const auto& contents = ridfa.contents(p);
    ASSERT_FALSE(contents.empty());
    EXPECT_TRUE(std::is_sorted(contents.begin(), contents.end()));
    EXPECT_EQ(std::adjacent_find(contents.begin(), contents.end()), contents.end());
    for (const State q : contents) {
      EXPECT_GE(q, 0);
      EXPECT_LT(q, nfa.num_states());
    }
  }

  // (2) every singleton exists with exactly its own content.
  for (State q = 0; q < nfa.num_states(); ++q)
    EXPECT_EQ(ridfa.contents(ridfa.singleton(q)), std::vector<State>{q});

  // (3) the interface points into the initial set, and initial_states() is
  // exactly the deduplicated interface range.
  std::vector<State> range;
  for (State q = 0; q < nfa.num_states(); ++q) range.push_back(ridfa.interface_of(q));
  std::sort(range.begin(), range.end());
  range.erase(std::unique(range.begin(), range.end()), range.end());
  EXPECT_EQ(ridfa.initial_states(), range);

  // (4) finality == contents intersect NFA finals.
  for (State p = 0; p < ridfa.num_states(); ++p) {
    bool has_final = false;
    for (const State q : ridfa.contents(p)) has_final |= nfa.is_final(q);
    EXPECT_EQ(ridfa.is_final(p), has_final);
  }

  // (5) transitions respect the subset semantics: contents(δ(p, a)) equals
  // the union of ρ(q, a) over q in contents(p).
  for (State p = 0; p < ridfa.num_states(); ++p) {
    for (Symbol a = 0; a < ridfa.num_symbols(); ++a) {
      Bitset expected(static_cast<std::size_t>(nfa.num_states()));
      for (const State q : ridfa.contents(p))
        for (const auto& edge : nfa.edges(q, a))
          expected.set(static_cast<std::size_t>(edge.target));
      const State target = ridfa.step(p, a);
      if (target == kDeadState) {
        EXPECT_TRUE(expected.empty());
      } else {
        EXPECT_EQ(Bitset::from_indices(static_cast<std::size_t>(nfa.num_states()),
                                       ridfa.contents(target)),
                  expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RidfaInvariants, ::testing::Range<std::uint64_t>(0, 15));

TEST(HostileInputs, DeepNestingParses) {
  std::string pattern;
  for (int i = 0; i < 200; ++i) pattern += "(";
  pattern += "a";
  for (int i = 0; i < 200; ++i) pattern += ")";
  const RePtr re = parse_regex(pattern);
  EXPECT_EQ(re->kind, ReKind::kLiteral);
}

TEST(HostileInputs, WideAlternationCompiles) {
  std::string pattern = "a";
  for (int i = 0; i < 300; ++i) pattern += "|a";
  const Nfa nfa = glushkov_nfa(parse_regex(pattern));
  const Dfa minimal = minimize_dfa(determinize(nfa));
  EXPECT_EQ(minimal.num_states(), 2);
}

TEST(HostileInputs, LongLiteralChainRoundTrips) {
  std::string pattern(500, 'a');
  const Nfa nfa = glushkov_nfa(parse_regex(pattern));
  EXPECT_EQ(nfa.num_states(), 501);
}

}  // namespace
}  // namespace rispar
