// Failure-injection and fuzz tests: random byte noise through the parser,
// hostile structures through the pipeline, budget exhaustion paths,
// structural invariants of the RI-DFA, Pattern bundle corruption, and the
// ISSUE 4 differential fuzz driver (streaming find vs one-shot find vs the
// serial scan). Nothing here may crash, hang, or corrupt — errors must
// surface as exceptions or nullopt.
//
// The differential driver's iteration count comes from RISPAR_FUZZ_ITERS
// (default sized for CI's tier-1 lane); the nightly long-fuzz CI job sets
// it high for a soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/serialize.hpp"
#include "automata/subset.hpp"
#include "automata/timbuk.hpp"
#include "bundle/mapped_bundle.hpp"
#include "core/interface_min.hpp"
#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "helpers.hpp"
#include "parallel/match_count.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"
#include "regex/simplify.hpp"

namespace rispar {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashTheParser) {
  Prng prng(GetParam());
  // Bias towards metacharacters so the interesting branches fire.
  static const char* kAtoms[] = {"a",  "b",  "(",  ")",  "[", "]", "{", "}",
                                 "*",  "+",  "?",  "|",  ".", "-", "^", "\\",
                                 "0",  "9",  ",",  "\\d", "\\x4", "  "};
  for (int trial = 0; trial < 200; ++trial) {
    std::string pattern;
    const std::size_t pieces = prng.pick_index(20);
    for (std::size_t i = 0; i < pieces; ++i)
      pattern += kAtoms[prng.pick_index(std::size(kAtoms))];
    try {
      const RePtr re = parse_regex(pattern);
      // A successful parse must survive the full downstream pipeline.
      const RePtr simplified = simplify_regex(re);
      const Nfa nfa = glushkov_nfa(simplified);
      (void)nfa.num_states();
      const std::string printed = regex_to_string(re);
      (void)parse_regex(printed);  // printed form must re-parse
    } catch (const RegexError&) {
      // Rejection is the expected outcome for garbage.
    }
  }
}

TEST_P(ParserFuzz, ArbitraryBytePatterns) {
  Prng prng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 100; ++trial) {
    std::string pattern;
    const std::size_t length = prng.pick_index(24);
    for (std::size_t i = 0; i < length; ++i)
      pattern.push_back(static_cast<char>(prng.pick_index(256)));
    try {
      (void)parse_regex(pattern);
    } catch (const RegexError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<std::uint64_t>(0, 8));

TEST(SerializeFuzz, RandomLinesNeverCrashLoaders) {
  Prng prng(404);
  static const char* kLines[] = {"nfa 3 2",   "dfa 2 2",      "initial 0",
                                 "final 1",   "edge 0 0 1",   "trans 0 1 1",
                                 "eps 0 2",   "edge 9 9 9",   "# noise",
                                 "garbage",   "nfa -2 1",     ""};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const std::size_t lines = prng.pick_index(8);
    for (std::size_t i = 0; i < lines; ++i) {
      text += kLines[prng.pick_index(std::size(kLines))];
      text += '\n';
    }
    try {
      (void)nfa_from_string(text);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)dfa_from_string(text);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)timbuk_from_string(text);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(BudgetExhaustion, TryBuildRidfaFailsCleanly) {
  // A machine too big for the budget must return nullopt without leaking
  // or corrupting — repeat to shake out state reuse bugs.
  Prng prng(7);
  RandomNfaConfig config;
  config.num_states = 60;
  config.nondeterminism = 0.6;
  config.density = 2.2;
  const Nfa nfa = random_nfa(prng, config);
  for (int i = 0; i < 10; ++i) {
    const auto tiny = try_build_ridfa(nfa, 8);
    EXPECT_FALSE(tiny.has_value());
  }
  // The same NFA still builds with an adequate budget afterwards.
  const auto full = try_build_ridfa(nfa, 1 << 20);
  ASSERT_TRUE(full.has_value());
  EXPECT_GE(full->num_states(), nfa.num_states());
}

class RidfaInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RidfaInvariants, StructuralInvariantsHold) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(30));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(4));
  const Nfa nfa = random_nfa(prng, config);
  Ridfa ridfa = build_ridfa(nfa);
  minimize_interface(ridfa);

  // (1) contents are sorted, unique, non-empty NFA state ids.
  for (State p = 0; p < ridfa.num_states(); ++p) {
    const auto& contents = ridfa.contents(p);
    ASSERT_FALSE(contents.empty());
    EXPECT_TRUE(std::is_sorted(contents.begin(), contents.end()));
    EXPECT_EQ(std::adjacent_find(contents.begin(), contents.end()), contents.end());
    for (const State q : contents) {
      EXPECT_GE(q, 0);
      EXPECT_LT(q, nfa.num_states());
    }
  }

  // (2) every singleton exists with exactly its own content.
  for (State q = 0; q < nfa.num_states(); ++q)
    EXPECT_EQ(ridfa.contents(ridfa.singleton(q)), std::vector<State>{q});

  // (3) the interface points into the initial set, and initial_states() is
  // exactly the deduplicated interface range.
  std::vector<State> range;
  for (State q = 0; q < nfa.num_states(); ++q) range.push_back(ridfa.interface_of(q));
  std::sort(range.begin(), range.end());
  range.erase(std::unique(range.begin(), range.end()), range.end());
  EXPECT_EQ(ridfa.initial_states(), range);

  // (4) finality == contents intersect NFA finals.
  for (State p = 0; p < ridfa.num_states(); ++p) {
    bool has_final = false;
    for (const State q : ridfa.contents(p)) has_final |= nfa.is_final(q);
    EXPECT_EQ(ridfa.is_final(p), has_final);
  }

  // (5) transitions respect the subset semantics: contents(δ(p, a)) equals
  // the union of ρ(q, a) over q in contents(p).
  for (State p = 0; p < ridfa.num_states(); ++p) {
    for (Symbol a = 0; a < ridfa.num_symbols(); ++a) {
      Bitset expected(static_cast<std::size_t>(nfa.num_states()));
      for (const State q : ridfa.contents(p))
        for (const auto& edge : nfa.edges(q, a))
          expected.set(static_cast<std::size_t>(edge.target));
      const State target = ridfa.step(p, a);
      if (target == kDeadState) {
        EXPECT_TRUE(expected.empty());
      } else {
        EXPECT_EQ(Bitset::from_indices(static_cast<std::size_t>(nfa.num_states()),
                                       ridfa.contents(target)),
                  expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RidfaInvariants, ::testing::Range<std::uint64_t>(0, 15));

// ------------------------------------------------- differential fuzz driver
// (ISSUE 4 acceptance): random regex × random text × random window splits;
// streaming find must equal one-shot Engine::find AND the serial one-scan
// oracle for every variant × chunks {1, 2, 7, 64} × convergence × kernel
// the device admits, with absolute offsets stable across arbitrary window
// boundaries — and the streamed DECISION must equal serial membership.

std::size_t fuzz_iterations(std::size_t fallback) {
  const char* env = std::getenv("RISPAR_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Random text that actually matches: members of L(re) embedded in noise
/// that includes bytes outside the pattern's classes (exercising the
/// searcher's extended all-bytes alphabet and device death).
std::string fuzz_text(Prng& prng, const RePtr& re, std::size_t target) {
  static const char kNoise[] = "abc xy.";
  std::string text;
  while (text.size() < target) {
    std::string member;
    if (prng.pick_index(2) == 0 && random_member(re, prng, member)) text += member;
    const std::size_t pad = prng.pick_index(6);
    for (std::size_t i = 0; i < pad; ++i)
      text += kNoise[prng.pick_index(sizeof(kNoise) - 1)];
    if (text.size() > 4 * target) break;  // star-heavy members can run long
  }
  return text;
}

TEST(DifferentialFuzz, StreamingFindEqualsOneShotAndSerialOracles) {
  const std::size_t iters = fuzz_iterations(12);
  Prng prng(0xd1ff5eed);
  static constexpr std::size_t kChunks[] = {1, 2, 7, 64};
  static constexpr Variant kVariants[] = {Variant::kDfa, Variant::kNfa,
                                          Variant::kRid, Variant::kSfa};
  static constexpr DetKernel kKernels[] = {DetKernel::kFused, DetKernel::kReference,
                                           DetKernel::kSimd};

  for (std::size_t iter = 0; iter < iters; ++iter) {
    RandomRegexConfig config;
    config.alphabet = prng.pick_index(2) == 0 ? "ab" : "abc";
    config.target_size = 3 + static_cast<int>(prng.pick_index(10));
    const RePtr re = random_regex(prng, config);
    const std::string regex = regex_to_string(re);
    const std::string text = fuzz_text(prng, re, 40 + prng.pick_index(200));
    SCOPED_TRACE("iter " + std::to_string(iter) + " regex=" + regex +
                 " text=" + text);

    const Engine engine(Pattern::compile(regex), {.threads = 2});
    const Dfa& searcher = engine.searcher();
    const QueryResult oracle =
        find_matches_serial(searcher, searcher.symbols().translate(text));
    const bool oracle_accepts = engine.accepts(text);

    // One-shot find across the full kernel matrix (variant not consulted).
    for (const std::size_t chunks : kChunks) {
      for (const bool convergence : {false, true}) {
        for (const DetKernel kernel : kKernels) {
          const QueryResult one_shot = engine.find(
              text,
              {.chunks = chunks, .convergence = convergence, .kernel = kernel});
          ASSERT_EQ(one_shot.positions, oracle.positions)
              << "one-shot chunks=" << chunks << " conv=" << convergence
              << " kernel=" << kernel_name(kernel);
          ASSERT_EQ(one_shot.matches, oracle.matches);
        }
      }
    }

    // Streaming find: every variant × chunks × convergence × kernel the
    // device's streaming caps admit, each under a fresh random window
    // split, alternating the two drain shapes.
    for (const Variant variant : kVariants) {
      if (engine.try_device(variant) == nullptr) continue;  // SFA explosion
      const DeviceCaps caps = engine.device(variant).stream_capabilities();
      for (const std::size_t chunks : kChunks) {
        for (const bool convergence : {false, true}) {
          if (convergence && !caps.convergence) continue;
          for (const DetKernel kernel : kKernels) {
            if (kernel != DetKernel::kFused && !caps.kernel_select) continue;
            StreamSession stream = engine.stream({.variant = variant,
                                                  .chunks = chunks,
                                                  .convergence = convergence,
                                                  .kernel = kernel,
                                                  .positions = true});
            std::vector<Match> collected;
            const MatchSink sink = [&](const Match& m) { collected.push_back(m); };
            const bool use_sink = prng.pick_index(2) == 0;
            std::size_t offset = 0;
            while (offset < text.size()) {
              const std::size_t take =
                  std::min(text.size() - offset, 1 + prng.pick_index(40));
              const std::string_view window(text.data() + offset, take);
              if (use_sink) {
                stream.feed(window, sink);
              } else {
                stream.feed(window);
                for (const Match& m : stream.take_matches()) collected.push_back(m);
              }
              offset += take;
            }
            ASSERT_EQ(collected, oracle.positions)
                << variant_name(variant) << " chunks=" << chunks
                << " conv=" << convergence
                << " kernel=" << kernel_name(kernel)
                << " sink=" << use_sink;
            ASSERT_EQ(stream.matches(), oracle.matches);
            ASSERT_EQ(stream.accepted(), oracle_accepts) << variant_name(variant);
            ASSERT_EQ(stream.bytes_consumed(), text.size());
          }
        }
      }
    }
  }
}

// ---------------------------------------------- exact-begin differential fuzz
// (ISSUE 9 tentpole a): under begin_mode=kExact, every emitted begin must be
// the TRUE leftmost start — min{b : text[b..end) ∈ L(p)} — and the property
// must hold identically for one-shot find (all chunk counts × kernels),
// streaming find (all variants × chunk counts × random window splits) and
// the serial reverse-scan oracle. A brute-force membership sweep over every
// candidate begin gives a fully independent second oracle on short texts.

/// min{b : engine.accepts(text[b..end))}; end is a reported match end, so
/// some suffix must accept.
std::uint64_t brute_force_leftmost(const Engine& engine, std::string_view text,
                                   std::uint64_t end) {
  for (std::uint64_t b = 0; b <= end; ++b)
    if (engine.accepts(text.substr(b, static_cast<std::size_t>(end - b)))) return b;
  ADD_FAILURE() << "no suffix of text[0.." << end << ") accepts";
  return end + 1;
}

TEST(ExactBeginFuzz, ExactBeginsEqualAcrossAllPathsAndOracles) {
  const std::size_t iters = fuzz_iterations(8);
  Prng prng(0xe4ac7b39);
  static constexpr std::size_t kChunks[] = {1, 2, 7, 64};
  static constexpr Variant kVariants[] = {Variant::kDfa, Variant::kNfa,
                                          Variant::kRid, Variant::kSfa};
  static constexpr DetKernel kKernels[] = {DetKernel::kFused, DetKernel::kReference,
                                           DetKernel::kSimd};

  for (std::size_t iter = 0; iter < iters; ++iter) {
    RandomRegexConfig config;
    config.alphabet = prng.pick_index(2) == 0 ? "ab" : "abc";
    config.target_size = 3 + static_cast<int>(prng.pick_index(10));
    const RePtr re = random_regex(prng, config);
    const std::string regex = regex_to_string(re);
    const std::string text = fuzz_text(prng, re, 30 + prng.pick_index(120));
    SCOPED_TRACE("iter " + std::to_string(iter) + " regex=" + regex +
                 " text=" + text);

    const Engine engine(Pattern::compile(regex), {.threads = 2});
    const Dfa& searcher = engine.searcher();
    const ReverseBegins& reverse = engine.pattern().reverse_begins();
    const std::vector<Symbol> input = searcher.symbols().translate(text);

    // The serial reverse-scan oracle: same ends as the separator oracle,
    // begins pinned by the reverse DFA from text start (floor 0).
    const QueryResult sep_oracle = find_matches_serial(searcher, input);
    const QueryResult exact_oracle =
        find_matches_serial(searcher, input, 0, &reverse.dfa);
    ASSERT_EQ(exact_oracle.positions.size(), sep_oracle.positions.size());
    for (std::size_t i = 0; i < exact_oracle.positions.size(); ++i) {
      const Match& exact = exact_oracle.positions[i];
      const Match& sep = sep_oracle.positions[i];
      ASSERT_EQ(exact.end, sep.end);
      // For patterns whose purity certificate holds, the separator is a
      // sound floor: never right of the true leftmost begin. (Without the
      // certificate a minimization merge CAN place the separator inside a
      // live match — the a|ba hazard — which is exactly why exact
      // resolution then rescans from the window base instead.)
      if (reverse.separators_sound)
        ASSERT_LE(sep.begin, exact.begin) << "end=" << exact.end;
      // The independent oracle: brute-force leftmost membership.
      ASSERT_EQ(exact.begin, brute_force_leftmost(engine, text, exact.end))
          << "end=" << exact.end << " separators_sound=" << reverse.separators_sound;
    }

    // One-shot exact find across the chunk × kernel matrix.
    for (const std::size_t chunks : kChunks) {
      for (const DetKernel kernel : kKernels) {
        const QueryResult one_shot =
            engine.find(text, {.chunks = chunks, .kernel = kernel,
                               .begin_mode = BeginMode::kExact});
        ASSERT_EQ(one_shot.positions, exact_oracle.positions)
            << "one-shot chunks=" << chunks << " kernel=" << kernel_name(kernel);
      }
    }

    // Streaming exact find: every variant × chunks under fresh random
    // window splits, alternating the drain shapes.
    for (const Variant variant : kVariants) {
      if (engine.try_device(variant) == nullptr) continue;  // SFA explosion
      for (const std::size_t chunks : kChunks) {
        StreamSession stream = engine.stream({.variant = variant,
                                              .chunks = chunks,
                                              .positions = true,
                                              .begin_mode = BeginMode::kExact});
        std::vector<Match> collected;
        const MatchSink sink = [&](const Match& m) { collected.push_back(m); };
        const bool use_sink = prng.pick_index(2) == 0;
        std::size_t offset = 0;
        while (offset < text.size()) {
          const std::size_t take =
              std::min(text.size() - offset, 1 + prng.pick_index(40));
          const std::string_view window(text.data() + offset, take);
          if (use_sink) {
            stream.feed(window, sink);
          } else {
            stream.feed(window);
            for (const Match& m : stream.take_matches()) collected.push_back(m);
          }
          offset += take;
        }
        ASSERT_EQ(collected, exact_oracle.positions)
            << variant_name(variant) << " chunks=" << chunks
            << " sink=" << use_sink;
      }
    }
  }
}

// ---------------------------------------------- multi-pattern streaming fuzz
// (ISSUE 9 tentpole b): one MultiStreamSession over N patterns, fed a random
// window split, must emit exactly the merge of N INDEPENDENT single-pattern
// StreamSessions fed the same windows — and exactly the one-shot
// PatternSet::find_all list — in (end, begin, pattern_id) order, under both
// begin modes and both drain shapes.

TEST(MultiPatternStreamFuzz, MergedStreamEqualsIndependentSessionsAndOneShot) {
  const std::size_t iters = fuzz_iterations(8);
  Prng prng(0x3a1b5c7d);

  for (std::size_t iter = 0; iter < iters; ++iter) {
    RandomRegexConfig config;
    config.alphabet = prng.pick_index(2) == 0 ? "ab" : "abc";
    const std::size_t n = 2 + prng.pick_index(3);
    std::vector<std::string> regexes;
    std::vector<Pattern> patterns;
    RePtr sample;  // members of one pattern seed the text with real matches
    for (std::size_t p = 0; p < n; ++p) {
      config.target_size = 3 + static_cast<int>(prng.pick_index(8));
      const RePtr re = random_regex(prng, config);
      if (p == 0) sample = re;
      regexes.push_back(regex_to_string(re));
      patterns.push_back(Pattern::compile(regexes.back()));
    }
    const std::string text = fuzz_text(prng, sample, 40 + prng.pick_index(160));
    const BeginMode begin_mode =
        prng.pick_index(2) == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    const std::size_t chunks = 1 + prng.pick_index(8);
    std::string trace = "iter " + std::to_string(iter) + " text=" + text +
                        " mode=" + begin_mode_name(begin_mode) + " regexes=";
    for (const std::string& regex : regexes) trace += regex + " ; ";
    SCOPED_TRACE(trace);

    QueryOptions options;
    options.positions = true;
    options.chunks = chunks;
    options.begin_mode = begin_mode;

    // Pre-cut the window split so ALL consumers feed identical windows.
    std::vector<std::string_view> windows;
    std::size_t offset = 0;
    while (offset < text.size()) {
      const std::size_t take = std::min(text.size() - offset, 1 + prng.pick_index(30));
      windows.emplace_back(text.data() + offset, take);
      offset += take;
    }

    // Oracle 1: N independent single-pattern sessions, merged.
    std::vector<Match> independent;
    std::uint64_t independent_matches = 0;
    for (std::size_t p = 0; p < n; ++p) {
      const Engine engine(patterns[p], {.threads = 2});
      StreamSession stream = engine.stream(options);
      for (const std::string_view window : windows) stream.feed(window);
      for (Match m : stream.take_matches()) {
        m.pattern_id = static_cast<std::uint32_t>(p);
        independent.push_back(m);
      }
      independent_matches += stream.matches();
    }
    std::sort(independent.begin(), independent.end(),
              [](const Match& a, const Match& b) {
                if (a.end != b.end) return a.end < b.end;
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.pattern_id < b.pattern_id;
              });

    // Oracle 2: the one-shot multi-pattern fan-out.
    const PatternSet set(patterns, {.threads = 2});
    const QueryResult one_shot = set.find(text, options);
    ASSERT_EQ(one_shot.positions, independent) << "one-shot vs independent";

    // The merged streaming session, under both drain shapes.
    for (const bool use_sink : {false, true}) {
      MultiStreamSession session = set.stream_find(options);
      ASSERT_EQ(session.patterns(), n);
      std::vector<Match> collected;
      const MatchSink sink = [&](const Match& m) { collected.push_back(m); };
      for (const std::string_view window : windows) {
        if (use_sink) {
          session.feed(window, sink);
        } else {
          session.feed(window);
          for (const Match& m : session.take_matches()) collected.push_back(m);
        }
      }
      ASSERT_EQ(collected, independent) << "merged stream, sink=" << use_sink;
      ASSERT_EQ(session.matches(), independent_matches);
      ASSERT_EQ(session.accepted(), independent_matches > 0);
      ASSERT_EQ(session.bytes_consumed(), text.size());
      ASSERT_FALSE(session.poisoned());

      // reset() starts the whole fleet over: a second pass agrees.
      session.reset();
      ASSERT_EQ(session.matches(), 0u);
      std::vector<Match> second;
      session.feed(text, [&](const Match& m) { second.push_back(m); });
      ASSERT_EQ(second, independent) << "after reset";
    }
  }
}

// -------------------------------------------------- pattern bundle fuzzing
// (ISSUE 4 satellite): Pattern::deserialize on hostile bundles — truncated,
// corrupted-section, wrong-magic — must return errors, never crash (the
// ASan/UBSan CI job runs these too).

TEST(PatternBundleFuzz, WrongMagicRejected) {
  EXPECT_THROW((void)Pattern::deserialize(""), std::runtime_error);
  EXPECT_THROW((void)Pattern::deserialize("# comments only\n"), std::runtime_error);
  EXPECT_THROW((void)Pattern::deserialize("bogus 1\n"), std::runtime_error);
  EXPECT_THROW((void)Pattern::deserialize("pattern 2\n"), std::runtime_error);
  EXPECT_THROW((void)Pattern::deserialize("pattern\n"), std::runtime_error);
  // A valid header with nothing behind it is just as dead.
  EXPECT_THROW((void)Pattern::deserialize("pattern 1\n"), std::runtime_error);
}

TEST(PatternBundleFuzz, TruncatedBundlesErrorCleanly) {
  const std::string bundle = Pattern::compile("(ab|ba)*a").serialize();
  // Every prefix near the front (header + section starts), then a stride
  // through the body: each must throw or load, never crash.
  for (std::size_t cut = 0; cut < bundle.size();
       cut += (cut < 64 || cut + 64 >= bundle.size()) ? 1 : 7) {
    try {
      (void)Pattern::deserialize(bundle.substr(0, cut));
    } catch (const std::runtime_error&) {
      // Rejection is the expected outcome for a torn bundle.
    }
  }
}

TEST(PatternBundleFuzz, CorruptedSectionsErrorCleanly) {
  const std::string bundle = Pattern::compile("a(b|c)*d").serialize();
  Prng prng(0xc0de);
  static const char kJunk[] = "0123456789 -#abz\n";
  for (int trial = 0; trial < 150; ++trial) {
    std::string corrupt = bundle;
    const std::size_t edits = 1 + prng.pick_index(6);
    for (std::size_t e = 0; e < edits; ++e)
      corrupt[prng.pick_index(corrupt.size())] =
          kJunk[prng.pick_index(sizeof(kJunk) - 1)];
    try {
      const Pattern loaded = Pattern::deserialize(corrupt);
      // A mutation that still parses must yield a USABLE pattern — queries
      // may disagree with the original, but nothing may crash.
      (void)Engine(loaded, {.threads = 1}).recognize("abd");
    } catch (const std::runtime_error&) {
      // Rejection (including RegexError-free load failures) is fine.
    }
  }
}

// ------------------------------------------------ binary bundle fuzzing
// (ISSUE 8 satellite): the .rpb zero-copy path on hostile images. Unlike
// the text path above, a mapped bundle's tables are ADOPTED, not parsed —
// so validation is the only line of defense: every corruption must surface
// as ValidationError (or load cleanly when the checksums happen to still
// hold), never as a crash or a wild read. from_memory() exercises the exact
// open() validation pipeline without touching the filesystem.

TEST(BinaryBundleFuzz, WrongMagicVersionAndGarbageRejected) {
  EXPECT_THROW((void)bundle::MappedBundle::from_memory(""), ValidationError);
  EXPECT_THROW((void)bundle::MappedBundle::from_memory("rispar"), ValidationError);
  EXPECT_THROW((void)bundle::MappedBundle::from_memory(std::string(4096, 'x')),
               ValidationError);
  std::string image = Pattern::bundle_image({});
  // Flip the magic, then (on a fresh image) the version field.
  std::string bad_magic = image;
  bad_magic[0] ^= 0x20;
  EXPECT_THROW((void)bundle::MappedBundle::from_memory(bad_magic), ValidationError);
  std::string bad_version = image;
  bad_version[8] = 99;
  EXPECT_THROW((void)bundle::MappedBundle::from_memory(bad_version),
               ValidationError);
}

TEST(BinaryBundleFuzz, TruncationsErrorCleanly) {
  const Pattern pattern = Pattern::compile("(ab|ba)*a");
  const std::string image = Pattern::bundle_image({&pattern, 1});
  // Dense sweep through the header + directory, strided through the body.
  for (std::size_t cut = 0; cut < image.size();
       cut += (cut < 256 || cut + 64 >= image.size()) ? 1 : 97) {
    try {
      const auto bundle = bundle::MappedBundle::from_memory(image.substr(0, cut));
      (void)Pattern::from_bundle(bundle);
      ADD_FAILURE() << "truncation at " << cut << " validated";
    } catch (const ValidationError&) {
      // The only acceptable outcome: file_bytes/checksums catch every cut.
    }
  }
}

TEST(BinaryBundleFuzz, RandomByteFlipsNeverCrash) {
  const Pattern pattern = Pattern::compile("a(b|c)*d");
  const std::string image = Pattern::bundle_image({&pattern, 1});
  Prng prng(0xbadb17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = image;
    const std::size_t edits = 1 + prng.pick_index(8);
    for (std::size_t e = 0; e < edits; ++e)
      corrupt[prng.pick_index(corrupt.size())] ^=
          static_cast<char>(1 + prng.pick_index(255));
    try {
      const Pattern loaded =
          Pattern::from_bundle(bundle::MappedBundle::from_memory(corrupt));
      // Checksums make a silent survival astronomically unlikely, but IF an
      // image validates it must serve queries without crashing.
      (void)Engine(loaded, {.threads = 1}).recognize("abcd");
    } catch (const ValidationError&) {
      // The expected outcome.
    }
  }
}

TEST(BinaryBundleFuzz, DirectoryFieldMutationsAreContained) {
  // Target the header + directory specifically (offsets, sizes, counts,
  // section types): these drive every downstream read, so a wild value here
  // is where an unvalidated loader would walk off the mapping.
  const Pattern pattern = Pattern::compile("x[yz]{2,5}");
  const std::string image = Pattern::bundle_image({&pattern, 1});
  const std::size_t directory_end = std::min<std::size_t>(image.size(), 512);
  for (std::size_t at = 8; at < directory_end; ++at) {
    for (const unsigned char value : {0x00, 0x01, 0x7f, 0xff}) {
      std::string corrupt = image;
      corrupt[at] = static_cast<char>(value);
      try {
        const Pattern loaded =
            Pattern::from_bundle(bundle::MappedBundle::from_memory(corrupt));
        (void)Engine(loaded, {.threads = 1}).recognize("xyz");
      } catch (const ValidationError&) {
      }
    }
  }
}

// ------------------------------------------------- checkpoint/resume fuzz
// (ISSUE 10 tentpole a): random regex × random text × random window splits
// × random kill points. A session whose life is chopped into checkpoint/
// resume segments — resumed on the same Engine or a fresh one over the same
// source, under both begin modes, single and multi-pattern — must emit
// exactly the one-shot find list (itself oracle-checked by the drivers
// above). And the blobs themselves are hostile-input surfaces: every
// truncation and random byte flip must throw ValidationError, never crash.
// RISPAR_FUZZ_ITERS scales the sweep for the nightly soak.

/// Random window split of `text` (never empty windows).
std::vector<std::string_view> fuzz_windows(Prng& prng, std::string_view text) {
  std::vector<std::string_view> windows;
  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t take = std::min(text.size() - offset, 1 + prng.pick_index(30));
    windows.push_back(text.substr(offset, take));
    offset += take;
  }
  return windows;
}

TEST(CheckpointFuzz, KilledAndResumedSessionsEqualTheUninterruptedStream) {
  const std::size_t iters = fuzz_iterations(10);
  Prng prng(0xc4ec9017);

  for (std::size_t iter = 0; iter < iters; ++iter) {
    RandomRegexConfig config;
    config.alphabet = prng.pick_index(2) == 0 ? "ab" : "abc";
    config.target_size = 3 + static_cast<int>(prng.pick_index(9));
    const RePtr re = random_regex(prng, config);
    const std::string regex = regex_to_string(re);
    const std::string text = fuzz_text(prng, re, 40 + prng.pick_index(160));
    const BeginMode mode =
        prng.pick_index(2) == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    const QueryOptions options{.chunks = 1 + prng.pick_index(4),
                               .positions = true, .begin_mode = mode};
    SCOPED_TRACE("iter " + std::to_string(iter) + " regex=" + regex +
                 " mode=" + begin_mode_name(mode) + " text=" + text);

    const Engine engine(Pattern::compile(regex), {.threads = 2});
    const Engine fresh(Pattern::compile(regex), {.threads = 2});
    const std::vector<Match> oracle =
        engine.find_all(text, {.begin_mode = mode});

    // The session's whole life as a chain of blobs: each segment resumes
    // from the previous checkpoint (a fresh session's checkpoint seeds the
    // chain), feeds a random run of windows, drains, and checkpoints again.
    // Kill points land between ANY two windows; the resuming engine
    // alternates between the original and a fresh compile of the same
    // source (the cross-process shape).
    const std::vector<std::string_view> windows = fuzz_windows(prng, text);
    std::vector<Match> collected;
    std::string blob = engine.stream(options).checkpoint();
    std::size_t window_index = 0;
    std::uint64_t consumed = 0;
    while (window_index < windows.size()) {
      const Engine& resumer = prng.pick_index(2) == 0 ? engine : fresh;
      StreamSession session = resumer.resume_stream(blob, options);
      ASSERT_EQ(session.bytes_consumed(), consumed);
      do {
        session.feed(windows[window_index]);
        consumed += windows[window_index].size();
        ++window_index;
      } while (window_index < windows.size() && prng.pick_index(3) != 0);
      for (const Match& m : session.take_matches()) collected.push_back(m);
      blob = session.checkpoint();
    }
    ASSERT_EQ(collected, oracle);

    // The final blob resumes to a session whose totals match the whole run.
    StreamSession last = engine.resume_stream(blob, options);
    EXPECT_EQ(last.bytes_consumed(), text.size());
    EXPECT_EQ(last.matches(), oracle.size());

    // Hostile-blob sweep on this iteration's final (non-trivial) blob:
    // strided truncations and random flips must all reject typed.
    for (std::size_t cut = 0; cut < blob.size();
         cut += (cut < 32 || cut + 16 >= blob.size()) ? 1 : 11) {
      EXPECT_THROW((void)engine.resume_stream(
                       std::string_view(blob).substr(0, cut), options),
                   ValidationError)
          << "truncated to " << cut;
    }
    for (int flip = 0; flip < 30; ++flip) {
      std::string corrupt = blob;
      corrupt[prng.pick_index(corrupt.size())] ^=
          static_cast<char>(1 + prng.pick_index(255));
      EXPECT_THROW((void)engine.resume_stream(corrupt, options), ValidationError)
          << "flip " << flip;
    }
  }
}

TEST(CheckpointFuzz, MultiPatternKillPointsPreserveTheMergedStream) {
  const std::size_t iters = fuzz_iterations(6);
  Prng prng(0x9e11ca7e);

  for (std::size_t iter = 0; iter < iters; ++iter) {
    RandomRegexConfig config;
    config.alphabet = prng.pick_index(2) == 0 ? "ab" : "abc";
    const std::size_t n = 2 + prng.pick_index(3);
    std::vector<std::string> regexes;
    std::vector<Pattern> patterns;
    std::vector<Pattern> recompiled;  // the cross-process fleet
    RePtr sample;
    for (std::size_t p = 0; p < n; ++p) {
      config.target_size = 3 + static_cast<int>(prng.pick_index(7));
      const RePtr re = random_regex(prng, config);
      if (p == 0) sample = re;
      regexes.push_back(regex_to_string(re));
      patterns.push_back(Pattern::compile(regexes.back()));
      recompiled.push_back(Pattern::compile(regexes.back()));
    }
    const std::string text = fuzz_text(prng, sample, 40 + prng.pick_index(120));
    const BeginMode mode =
        prng.pick_index(2) == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    const QueryOptions options{.chunks = 1 + prng.pick_index(4),
                               .begin_mode = mode};
    std::string trace = "iter " + std::to_string(iter) + " text=" + text +
                        " mode=" + begin_mode_name(mode) + " regexes=";
    for (const std::string& regex : regexes) trace += regex + " ; ";
    SCOPED_TRACE(trace);

    const PatternSet set(patterns, {.threads = 2});
    const PatternSet fresh(recompiled, {.threads = 2});
    const std::vector<Match> oracle = set.find_all(text, options);

    const std::vector<std::string_view> windows = fuzz_windows(prng, text);
    std::vector<Match> collected;
    std::string blob = set.stream_find(options).checkpoint();
    std::size_t window_index = 0;
    std::uint64_t consumed = 0;
    while (window_index < windows.size()) {
      const PatternSet& resumer = prng.pick_index(2) == 0 ? set : fresh;
      MultiStreamSession session = resumer.resume_stream(blob, options);
      ASSERT_EQ(session.bytes_consumed(), consumed);
      do {
        session.feed(windows[window_index]);
        consumed += windows[window_index].size();
        ++window_index;
      } while (window_index < windows.size() && prng.pick_index(3) != 0);
      for (const Match& m : session.take_matches()) collected.push_back(m);
      blob = session.checkpoint();
    }
    ASSERT_EQ(collected, oracle);

    // Multi blobs face the same hostile sweep (lighter: the single-pattern
    // test above already walks the shared envelope dense).
    for (std::size_t cut = 0; cut < blob.size();
         cut += (cut < 24 || cut + 12 >= blob.size()) ? 1 : 23) {
      EXPECT_THROW((void)set.resume_stream(
                       std::string_view(blob).substr(0, cut), options),
                   ValidationError)
          << "truncated to " << cut;
    }
    for (int flip = 0; flip < 15; ++flip) {
      std::string corrupt = blob;
      corrupt[prng.pick_index(corrupt.size())] ^=
          static_cast<char>(1 + prng.pick_index(255));
      EXPECT_THROW((void)set.resume_stream(corrupt, options), ValidationError)
          << "flip " << flip;
    }
  }
}

TEST(HostileInputs, DeepNestingParses) {
  std::string pattern;
  for (int i = 0; i < 200; ++i) pattern += "(";
  pattern += "a";
  for (int i = 0; i < 200; ++i) pattern += ")";
  const RePtr re = parse_regex(pattern);
  EXPECT_EQ(re->kind, ReKind::kLiteral);
}

TEST(HostileInputs, WideAlternationCompiles) {
  std::string pattern = "a";
  for (int i = 0; i < 300; ++i) pattern += "|a";
  const Nfa nfa = glushkov_nfa(parse_regex(pattern));
  const Dfa minimal = minimize_dfa(determinize(nfa));
  EXPECT_EQ(minimal.num_states(), 2);
}

TEST(HostileInputs, LongLiteralChainRoundTrips) {
  std::string pattern(500, 'a');
  const Nfa nfa = glushkov_nfa(parse_regex(pattern));
  EXPECT_EQ(nfa.num_states(), 501);
}

}  // namespace
}  // namespace rispar
