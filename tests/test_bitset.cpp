#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/prng.hpp"

namespace rispar {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset set(100);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0u);
  EXPECT_EQ(set.first(), Bitset::npos);
}

TEST(Bitset, SetTestReset) {
  Bitset set(130);
  set.set(0);
  set.set(63);
  set.set(64);
  set.set(129);
  EXPECT_TRUE(set.test(0));
  EXPECT_TRUE(set.test(63));
  EXPECT_TRUE(set.test(64));
  EXPECT_TRUE(set.test(129));
  EXPECT_FALSE(set.test(1));
  EXPECT_EQ(set.count(), 4u);
  set.reset(63);
  EXPECT_FALSE(set.test(63));
  EXPECT_EQ(set.count(), 3u);
}

TEST(Bitset, ClearRemovesAll) {
  Bitset set(70);
  for (std::size_t i = 0; i < 70; i += 3) set.set(i);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(Bitset, IterationVisitsExactlySetBits) {
  Bitset set(200);
  const std::vector<std::int32_t> expected{0, 1, 63, 64, 65, 127, 128, 199};
  for (const auto i : expected) set.set(static_cast<std::size_t>(i));
  EXPECT_EQ(set.to_indices(), expected);
}

TEST(Bitset, NextSkipsWords) {
  Bitset set(300);
  set.set(2);
  set.set(250);
  EXPECT_EQ(set.first(), 2u);
  EXPECT_EQ(set.next(2), 250u);
  EXPECT_EQ(set.next(250), Bitset::npos);
}

TEST(Bitset, UnionIntersectionDifference) {
  Bitset a(128), b(128);
  a.set(1); a.set(2); a.set(100);
  b.set(2); b.set(3); b.set(100);

  Bitset u = a;
  u |= b;
  EXPECT_EQ(u.to_indices(), (std::vector<std::int32_t>{1, 2, 3, 100}));

  Bitset i = a;
  i &= b;
  EXPECT_EQ(i.to_indices(), (std::vector<std::int32_t>{2, 100}));

  Bitset d = a;
  d -= b;
  EXPECT_EQ(d.to_indices(), (std::vector<std::int32_t>{1}));
}

TEST(Bitset, IntersectsAndSubset) {
  Bitset a(64), b(64), c(64);
  a.set(5);
  b.set(5);
  b.set(6);
  c.set(7);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(Bitset(64).is_subset_of(a));  // empty set is subset of all
}

TEST(Bitset, EqualityAndHash) {
  Bitset a(90), b(90);
  a.set(10);
  a.set(80);
  b.set(10);
  EXPECT_NE(a, b);
  b.set(80);
  EXPECT_EQ(a, b);
  BitsetHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

TEST(Bitset, WorksAsUnorderedKey) {
  std::unordered_set<Bitset, BitsetHash> keys;
  for (std::size_t i = 0; i < 50; ++i) {
    Bitset set(50);
    set.set(i);
    keys.insert(set);
  }
  EXPECT_EQ(keys.size(), 50u);
  Bitset probe(50);
  probe.set(7);
  EXPECT_TRUE(keys.contains(probe));
}

TEST(Bitset, FromIndicesRoundTrip) {
  const std::vector<std::int32_t> indices{3, 17, 64, 99};
  const Bitset set = Bitset::from_indices(100, indices);
  EXPECT_EQ(set.to_indices(), indices);
}

TEST(Bitset, UniverseNotMultipleOf64) {
  Bitset set(65);
  set.set(64);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_EQ(set.first(), 64u);
  EXPECT_EQ(set.next(64), Bitset::npos);
}

class BitsetRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitsetRandomOps, MatchesReferenceSetAlgebra) {
  Prng prng(GetParam());
  const std::size_t universe = 1 + prng.pick_index(400);
  std::vector<bool> ref_a(universe), ref_b(universe);
  Bitset a(universe), b(universe);
  for (std::size_t i = 0; i < universe; ++i) {
    if (prng.next_bool(0.3)) {
      ref_a[i] = true;
      a.set(i);
    }
    if (prng.next_bool(0.3)) {
      ref_b[i] = true;
      b.set(i);
    }
  }
  Bitset u = a, n = a, d = a;
  u |= b;
  n &= b;
  d -= b;
  std::size_t count_a = 0;
  bool intersects = false, subset = true;
  for (std::size_t i = 0; i < universe; ++i) {
    EXPECT_EQ(u.test(i), ref_a[i] || ref_b[i]);
    EXPECT_EQ(n.test(i), ref_a[i] && ref_b[i]);
    EXPECT_EQ(d.test(i), ref_a[i] && !ref_b[i]);
    count_a += ref_a[i];
    intersects = intersects || (ref_a[i] && ref_b[i]);
    subset = subset && (!ref_a[i] || ref_b[i]);
  }
  EXPECT_EQ(a.count(), count_a);
  EXPECT_EQ(a.intersects(b), intersects);
  EXPECT_EQ(a.is_subset_of(b), subset);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetRandomOps, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace rispar
