// Durable-session lifecycle over the wire (ISSUE 10): CHECKPOINT /
// RESUME_SESSION round trips against the Engine oracle, graceful drain
// (stop(true) checkpoints every session into DRAINING frames, then the
// terminal frame, then the close — zero acked feeds lost, resumable on a
// fresh server), idle reaping, and the lifecycle fields in STATS_JSON.
// Suites are named Rispard* so the TSan CI leg picks them up alongside
// tests/test_server.cpp.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace rispar::rispard {
namespace {

/// An in-process server on an ephemeral port, running until destruction.
struct ServerHarness {
  std::unique_ptr<Server> server;
  std::thread thread;

  explicit ServerHarness(std::vector<std::string> regexes, ServerConfig config = {})
      : server(std::make_unique<Server>(std::move(regexes), std::move(config))) {
    thread = std::thread([this] { server->run(); });
  }
  ~ServerHarness() {
    server->stop();
    thread.join();
  }
  std::uint16_t port() const { return server->port(); }
};

/// One DRAINING frame's decoded payload ({session, pattern, blob}; the
/// terminal form decodes as session == kNoSession with an empty blob).
struct DrainFrame {
  std::uint32_t session_id = kNoSession;
  std::uint32_t pattern_id = 0;
  std::string blob;
};

/// A blocking client speaking the protocol helpers, plus the lifecycle
/// verbs this file exercises (checkpoint, resume, drain absorption).
struct Client {
  int fd = -1;
  FrameReader reader;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      fd = -1;
    } else {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool send(std::string_view bytes) { return send_all(fd, bytes); }
  bool recv(Frame& frame) { return recv_frame(fd, reader, frame); }

  /// OPEN_SESSION (or RESUME_SESSION when `resume` bytes are provided) and
  /// parse the OPENED ack.
  bool open(std::uint32_t sid, std::uint32_t pid, std::uint8_t flags = 0,
            std::string_view resume = {}) {
    const std::string request =
        resume.empty()
            ? make_open_session(sid, pid, /*feed_deadline_ns=*/0, /*chunks=*/2,
                                flags)
            : make_resume_session(sid, pid, /*feed_deadline_ns=*/0,
                                  /*chunks=*/2, flags, resume);
    if (!send(request)) return false;
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kOpened) return false;
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    EXPECT_EQ(payload.get_u32(), pid);
    return payload.get_u64() > 0;
  }

  bool open_multi(std::uint32_t sid, std::uint8_t flags = 0,
                  std::string_view resume = {}) {
    const std::string request =
        resume.empty()
            ? make_open_session_multi(sid, 0, /*chunks=*/2, {}, flags)
            : make_resume_session_multi(sid, 0, /*chunks=*/2, {}, flags, resume);
    if (!send(request)) return false;
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kOpened) return false;
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    EXPECT_EQ(payload.get_u32(), kMultiPattern);
    return payload.get_u64() > 0;
  }

  /// FEED and collect MATCHES* until the FED ack; appends absolute-offset
  /// matches to `out`. Returns false on an ERROR frame or a dead socket.
  bool feed(std::uint32_t sid, std::string_view bytes, std::vector<Match>& out) {
    if (!send(make_feed(sid, bytes))) return false;
    Frame frame;
    for (;;) {
      if (!recv(frame)) return false;
      if (frame.type == FrameType::kMatches) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), sid);
        const std::uint32_t count = payload.get_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          Match m;
          m.pattern_id = payload.get_u32();
          m.begin = payload.get_u64();
          m.end = payload.get_u64();
          out.push_back(m);
        }
        continue;
      }
      if (frame.type == FrameType::kFed) return true;
      return false;
    }
  }

  /// CHECKPOINT and parse the CHECKPOINTED {session, pattern, blob} reply;
  /// returns the opaque blob (empty only on failure — real blobs always
  /// carry at least the envelope).
  std::string checkpoint(std::uint32_t sid) {
    if (!send(make_checkpoint(sid))) return {};
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kCheckpointed) return {};
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    payload.get_u32();  // pattern id
    return std::string(payload.rest());
  }

  std::uint64_t close_session(std::uint32_t sid) {
    if (!send(make_close(sid))) return UINT64_MAX;
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kClosed) return UINT64_MAX;
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    return payload.get_u64();
  }

  /// The ERROR frame expected next on the wire.
  ErrorCode expect_error(std::uint32_t sid) {
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kError) {
      ADD_FAILURE() << "expected an ERROR frame";
      return ErrorCode::kInternal;
    }
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    return static_cast<ErrorCode>(payload.get_u8());
  }

  /// Reads until the connection closes, collecting every DRAINING frame
  /// (per-session checkpoints first, then the terminal kNoSession form).
  /// Returns false if anything other than DRAINING arrives.
  bool absorb_drain(std::vector<DrainFrame>& out) {
    Frame frame;
    while (recv(frame)) {
      if (frame.type != FrameType::kDraining) return false;
      PayloadReader payload(frame.payload);
      DrainFrame drained;
      drained.session_id = payload.get_u32();
      if (drained.session_id != kNoSession) {
        drained.pattern_id = payload.get_u32();
        drained.blob = std::string(payload.rest());
      }
      out.push_back(drained);
    }
    return true;  // EOF — the server closed after the terminal frame
  }
};

std::vector<Match> tag_pattern(std::vector<Match> matches, std::uint32_t pid) {
  for (Match& m : matches) m.pattern_id = pid;
  return matches;
}

// ------------------------------------------------------- checkpoint/resume

TEST(RispardCheckpoint, WireCheckpointResumesByteExactOnBothBeginModes) {
  std::string text;
  for (int i = 0; i < 120; ++i) text += (i % 5 == 0) ? "xxabab " : "abba";
  const Engine oracle_engine(Pattern::compile("(ab)+"), {.threads = 2});

  for (const std::uint8_t flags : {std::uint8_t{0}, kOpenFlagExactBegins}) {
    SCOPED_TRACE("flags=" + std::to_string(flags));
    const BeginMode mode =
        flags == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    const std::vector<Match> oracle =
        tag_pattern(oracle_engine.find_all(text, {.begin_mode = mode}), 0);
    ASSERT_FALSE(oracle.empty());

    ServerHarness harness({"(ab)+", "zz"});
    std::vector<Match> collected;

    // First connection: feed half, checkpoint, then VANISH (no CLOSE).
    std::string blob;
    const std::size_t half = text.size() / 2;
    {
      Client first(harness.port());
      ASSERT_GE(first.fd, 0);
      ASSERT_TRUE(first.open(1, 0, flags));
      for (std::size_t offset = 0; offset < half; offset += 37)
        ASSERT_TRUE(first.feed(
            1, std::string_view(text).substr(offset, std::min<std::size_t>(
                                                         37, half - offset)),
            collected));
      blob = first.checkpoint(1);
      ASSERT_FALSE(blob.empty());
    }  // dtor drops the TCP connection with the session still open

    // Second connection: RESUME_SESSION from the blob, finish the stream.
    Client second(harness.port());
    ASSERT_GE(second.fd, 0);
    ASSERT_TRUE(second.open(1, 0, flags, blob));
    ASSERT_TRUE(second.feed(1, std::string_view(text).substr(half), collected));
    EXPECT_EQ(second.close_session(1), oracle.size());
    EXPECT_EQ(collected, oracle);
    EXPECT_EQ(harness.server->counters().sessions_resumed, 1u);
  }
}

TEST(RispardCheckpoint, MultiPatternCheckpointResumesTheWholeFleet) {
  const std::string text =
      "error: timeout after 30ms, then error again after 451ms and then some";
  const PatternSet set =
      PatternSet::compile({"error", "[0-9]+ms", "after|then"}, {.threads = 2});
  const std::vector<Match> oracle = set.find_all(text);
  ASSERT_FALSE(oracle.empty());

  ServerHarness harness({"error", "[0-9]+ms", "after|then"});
  std::vector<Match> collected;
  std::string blob;
  {
    Client first(harness.port());
    ASSERT_GE(first.fd, 0);
    ASSERT_TRUE(first.open_multi(9));
    ASSERT_TRUE(first.feed(9, text.substr(0, 27), collected));
    blob = first.checkpoint(9);
    ASSERT_FALSE(blob.empty());
  }

  Client second(harness.port());
  ASSERT_GE(second.fd, 0);
  ASSERT_TRUE(second.open_multi(9, 0, blob));
  ASSERT_TRUE(second.feed(9, std::string_view(text).substr(27), collected));
  EXPECT_EQ(second.close_session(9), oracle.size());
  EXPECT_EQ(collected, oracle);
}

TEST(RispardCheckpoint, UnknownSessionAndCorruptBlobAreTypedErrors) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  // CHECKPOINT for a session never opened.
  ASSERT_TRUE(client.send(make_checkpoint(99)));
  EXPECT_EQ(client.expect_error(99), ErrorCode::kUnknownSession);

  // A flipped blob byte must surface as a VALIDATION error, not a session.
  ASSERT_TRUE(client.open(1, 0));
  std::vector<Match> sink;
  ASSERT_TRUE(client.feed(1, "xabx", sink));
  std::string blob = client.checkpoint(1);
  ASSERT_FALSE(blob.empty());
  blob[blob.size() / 2] ^= 0x41;
  ASSERT_TRUE(client.send(
      make_resume_session(2, 0, 0, 2, /*flags=*/0, blob)));
  EXPECT_EQ(client.expect_error(2), ErrorCode::kValidation);

  // The original session is untouched by the failed resume.
  EXPECT_EQ(client.close_session(1), 1u);
}

TEST(RispardCheckpoint, SingleOpenOptionalFlagsByteRequestsExactBegins) {
  // The trailing flags byte on single-pattern OPEN_SESSION is optional (old
  // builders omit it); when present, kOpenFlagExactBegins must switch the
  // session to exact begins — observable on a pattern where the two modes
  // report different begin offsets.
  const std::string text = "xba xa bba";
  const Engine engine(Pattern::compile("a|ba"), {.threads = 2});
  const std::vector<Match> separator =
      tag_pattern(engine.find_all(text, {.begin_mode = BeginMode::kSeparator}), 0);
  const std::vector<Match> exact =
      tag_pattern(engine.find_all(text, {.begin_mode = BeginMode::kExact}), 0);
  ASSERT_NE(separator, exact) << "pick a pattern where the modes differ";

  ServerHarness harness({"a|ba"});
  for (const bool want_exact : {false, true}) {
    Client client(harness.port());
    ASSERT_GE(client.fd, 0);
    ASSERT_TRUE(client.open(1, 0, want_exact ? kOpenFlagExactBegins : 0));
    std::vector<Match> collected;
    ASSERT_TRUE(client.feed(1, text, collected));
    EXPECT_EQ(collected, want_exact ? exact : separator);
    client.close_session(1);
  }
}

// ------------------------------------------------------------------- drain

TEST(RispardDrain, StopDrainDeliversResumableCheckpointsThenCloses) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += (i % 3 == 0) ? "ab x " : "abab ";
  const Engine oracle_engine(Pattern::compile("(ab)+"), {.threads = 2});
  const std::vector<Match> oracle =
      tag_pattern(oracle_engine.find_all(text), 0);

  ServerConfig config;
  config.drain_deadline_ms = 20000;  // exercise completion, not cancellation
  std::vector<Match> collected;
  std::string blob;
  std::uint64_t acked = 0;
  {
    ServerHarness harness({"(ab)+"}, config);
    Client client(harness.port());
    ASSERT_GE(client.fd, 0);
    ASSERT_TRUE(client.open(1, 0));
    // Feed (and ack) a prefix, so the drain has real session state to save.
    const std::size_t half = text.size() / 2;
    for (std::size_t offset = 0; offset < half; offset += 64) {
      const std::string_view window =
          std::string_view(text).substr(offset, std::min<std::size_t>(64, half - offset));
      ASSERT_TRUE(client.feed(1, window, collected));
      acked += window.size();
    }

    harness.server->stop(true);
    std::vector<DrainFrame> drained;
    ASSERT_TRUE(client.absorb_drain(drained));
    ASSERT_EQ(drained.size(), 2u);  // the session's checkpoint + the terminal
    EXPECT_EQ(drained[0].session_id, 1u);
    EXPECT_EQ(drained[0].pattern_id, 0u);
    ASSERT_FALSE(drained[0].blob.empty());
    EXPECT_EQ(drained[1].session_id, kNoSession);
    blob = drained[0].blob;

    const ServerCounters counters = harness.server->counters();
    EXPECT_TRUE(counters.draining);
    EXPECT_EQ(counters.sessions_open, 0u);
    EXPECT_EQ(counters.connections_open, 0u);
  }  // run() has already returned; the dtor's stop() is a no-op

  // The DRAINING blob resumes on a brand-new server, byte-exact.
  ServerHarness next({"(ab)+"}, {});
  Client client(next.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.open(1, 0, 0, blob));
  ASSERT_TRUE(client.feed(1, std::string_view(text).substr(acked), collected));
  EXPECT_EQ(client.close_session(1), oracle.size());
  EXPECT_EQ(collected, oracle);
}

TEST(RispardDrain, SigtermStyleStopDrainsMultipleConnections) {
  ServerConfig config;
  config.drain_deadline_ms = 20000;
  ServerHarness harness({"ab", "ba"}, config);

  // Three connections: single, multi, and one with NO sessions (it must
  // still get the terminal frame and a close).
  Client single(harness.port());
  Client multi(harness.port());
  Client idle(harness.port());
  ASSERT_GE(single.fd, 0);
  ASSERT_GE(multi.fd, 0);
  ASSERT_GE(idle.fd, 0);
  ASSERT_TRUE(single.open(1, 0));
  ASSERT_TRUE(multi.open_multi(2));
  std::vector<Match> sink;
  ASSERT_TRUE(single.feed(1, "xabx", sink));
  ASSERT_TRUE(multi.feed(2, "abba", sink));

  harness.server->stop(true);

  std::vector<DrainFrame> single_frames, multi_frames, idle_frames;
  ASSERT_TRUE(single.absorb_drain(single_frames));
  ASSERT_TRUE(multi.absorb_drain(multi_frames));
  ASSERT_TRUE(idle.absorb_drain(idle_frames));
  ASSERT_EQ(single_frames.size(), 2u);
  EXPECT_EQ(single_frames[0].session_id, 1u);
  EXPECT_FALSE(single_frames[0].blob.empty());
  ASSERT_EQ(multi_frames.size(), 2u);
  EXPECT_EQ(multi_frames[0].session_id, 2u);
  EXPECT_EQ(multi_frames[0].pattern_id, kMultiPattern);
  EXPECT_FALSE(multi_frames[0].blob.empty());
  ASSERT_EQ(idle_frames.size(), 1u);  // terminal only
  EXPECT_EQ(idle_frames[0].session_id, kNoSession);
}

// ------------------------------------------------------------ idle reaping

TEST(RispardReap, IdleConnectionIsCheckpointedAndClosed) {
  const std::string text = "xab abab yab";
  const Engine oracle_engine(Pattern::compile("ab"), {.threads = 2});
  const std::vector<Match> oracle =
      tag_pattern(oracle_engine.find_all(text), 0);

  ServerConfig config;
  config.idle_timeout_ms = 50;
  ServerHarness harness({"ab"}, config);

  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.open(1, 0));
  std::vector<Match> collected;
  ASSERT_TRUE(client.feed(1, text.substr(0, 5), collected));

  // Go silent: the reaper must checkpoint the session into a DRAINING
  // frame, send the terminal, and close — the blocking read returns it all.
  std::vector<DrainFrame> drained;
  ASSERT_TRUE(client.absorb_drain(drained));
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].session_id, 1u);
  ASSERT_FALSE(drained[0].blob.empty());
  EXPECT_EQ(drained[1].session_id, kNoSession);
  EXPECT_GE(harness.server->counters().sessions_reaped_idle, 1u);

  // The reaped session resumes on the SAME server and finishes byte-exact.
  Client resumer(harness.port());
  ASSERT_GE(resumer.fd, 0);
  ASSERT_TRUE(resumer.open(1, 0, 0, drained[0].blob));
  ASSERT_TRUE(resumer.feed(1, std::string_view(text).substr(5), collected));
  EXPECT_EQ(resumer.close_session(1), oracle.size());
  EXPECT_EQ(collected, oracle);
}

TEST(RispardReap, TrafficKeepsAConnectionAlivePastTheTimeout) {
  ServerConfig config;
  config.idle_timeout_ms = 1000;
  ServerHarness harness({"ab"}, config);

  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.open(1, 0));
  std::vector<Match> collected;
  // Total wall time exceeds the timeout, but every gap stays far inside it:
  // activity must keep resetting the idle clock.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client.feed(1, "xabx", collected)) << "round " << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  EXPECT_EQ(client.close_session(1), collected.size());
  EXPECT_EQ(harness.server->counters().sessions_reaped_idle, 0u);
}

// ------------------------------------------------------------------- stats

TEST(RispardLifecycleStats, StatsJsonCarriesResumeReapAndDrainFields) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.send(make_stats()));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kStatsJson);
  EXPECT_NE(frame.payload.find("\"sessions_resumed\":0"), std::string::npos);
  EXPECT_NE(frame.payload.find("\"sessions_reaped_idle\":0"), std::string::npos);
  EXPECT_NE(frame.payload.find("\"drain_state\":\"serving\""), std::string::npos);
}

}  // namespace
}  // namespace rispar::rispard
