// Whole-pipeline integration tests: RE text → automata → parallel devices →
// join, cross-checked on the paper's benchmark workloads at reduced scale.
#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "core/serial_match.hpp"
#include "engine/engine.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

struct Mutation {
  std::size_t position;
  char byte;
};

// Flips one byte of a workload text to (usually) break membership for the
// rigid formats; for Σ*-context languages membership may survive, so the
// test only asserts serial/parallel agreement, not rejection.
std::string mutate(std::string text, const Mutation& mutation) {
  text[mutation.position % text.size()] = mutation.byte;
  return text;
}

class IntegrationCase : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationCase, SerialAndParallelAgreeOnMutatedTexts) {
  const WorkloadSpec spec = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  Prng prng(42);
  const std::string clean = spec.text(15'000, prng);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 6});

  std::vector<std::string> texts{clean};
  texts.push_back(mutate(clean, {7'500, '~'}));
  texts.push_back(mutate(clean, {3, '\x01'}));
  texts.push_back(clean + "~");

  for (const auto& text : texts) {
    const auto input = engine.translate(text);
    const bool oracle = engine.accepts(input);
    for (const std::size_t chunks : {2u, 9u, 32u}) {
      for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid}) {
        const QueryOptions options{.variant = variant, .chunks = chunks};
        EXPECT_EQ(engine.recognize(input, options).accepted, oracle)
            << spec.name << " " << variant_name(variant) << " c=" << chunks;
      }
    }
  }
}

TEST_P(IntegrationCase, TransitionRatiosMatchPaperGrouping) {
  // The Sect. 4.3 shape at small scale: winning benchmarks show a DFA/RID
  // transition ratio well above 1; even benchmarks sit near 1.
  const WorkloadSpec spec = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  Prng prng(43);
  const std::string text = spec.text(60'000, prng);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 6});
  const auto input = engine.translate(text);

  const auto dfa = engine.recognize(input, {.variant = Variant::kDfa, .chunks = 32});
  const auto rid = engine.recognize(input, {.variant = Variant::kRid, .chunks = 32});
  ASSERT_TRUE(dfa.accepted);
  ASSERT_TRUE(rid.accepted);
  const double ratio = static_cast<double>(dfa.transitions) /
                       static_cast<double>(rid.transitions);
  if (spec.winning) {
    EXPECT_GT(ratio, 2.0) << spec.name;
  } else {
    EXPECT_GT(ratio, 0.5) << spec.name;
    EXPECT_LT(ratio, 2.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, IntegrationCase, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return benchmark_suite()[static_cast<std::size_t>(
                                                        info.param)]
                               .name;
                         });

TEST(Integration, NfaVariantCountsMoreTransitionsThanRid) {
  // Tab. 3: the NFA/RID transition ratio is >= 1 on every benchmark.
  for (const auto& spec : benchmark_suite()) {
    Prng prng(44);
    const std::string text = spec.text(20'000, prng);
    const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 6});
    const auto input = engine.translate(text);
    const auto nfa_stats =
        engine.recognize(input, {.variant = Variant::kNfa, .chunks = 16});
    const auto rid_stats =
        engine.recognize(input, {.variant = Variant::kRid, .chunks = 16});
    EXPECT_GE(static_cast<double>(nfa_stats.transitions) * 1.05,
              static_cast<double>(rid_stats.transitions))
        << spec.name;
  }
}

TEST(Integration, ConvergenceAblationPreservesDecisions) {
  const WorkloadSpec spec = bible_workload();
  Prng prng(45);
  const std::string text = spec.text(20'000, prng);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 6});
  const auto input = engine.translate(text);
  const auto a =
      engine.recognize(input, {.variant = Variant::kDfa, .chunks = 16});
  const auto b = engine.recognize(
      input, {.variant = Variant::kDfa, .chunks = 16, .convergence = true});
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_LE(b.transitions, a.transitions);  // convergence can only save work
}

}  // namespace
}  // namespace rispar
