// Whole-pipeline integration tests: RE text → automata → parallel devices →
// join, cross-checked on the paper's benchmark workloads at reduced scale.
#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "core/serial_match.hpp"
#include "parallel/recognizer.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

struct Mutation {
  std::size_t position;
  char byte;
};

// Flips one byte of a workload text to (usually) break membership for the
// rigid formats; for Σ*-context languages membership may survive, so the
// test only asserts serial/parallel agreement, not rejection.
std::string mutate(std::string text, const Mutation& mutation) {
  text[mutation.position % text.size()] = mutation.byte;
  return text;
}

class IntegrationCase : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationCase, SerialAndParallelAgreeOnMutatedTexts) {
  const WorkloadSpec spec = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  Prng prng(42);
  const std::string clean = spec.text(15'000, prng);
  const LanguageEngines engines =
      LanguageEngines::from_nfa(glushkov_nfa(spec.regex()));
  ThreadPool pool(6);

  std::vector<std::string> texts{clean};
  texts.push_back(mutate(clean, {7'500, '~'}));
  texts.push_back(mutate(clean, {3, '\x01'}));
  texts.push_back(clean + "~");

  for (const auto& text : texts) {
    const auto input = engines.translate(text);
    const bool oracle = engines.accepts(input);
    for (const std::size_t chunks : {2u, 9u, 32u}) {
      const DeviceOptions options{.chunks = chunks, .convergence = false};
      for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid}) {
        EXPECT_EQ(engines.recognize(variant, input, pool, options).accepted, oracle)
            << spec.name << " " << variant_name(variant) << " c=" << chunks;
      }
    }
  }
}

TEST_P(IntegrationCase, TransitionRatiosMatchPaperGrouping) {
  // The Sect. 4.3 shape at small scale: winning benchmarks show a DFA/RID
  // transition ratio well above 1; even benchmarks sit near 1.
  const WorkloadSpec spec = benchmark_suite()[static_cast<std::size_t>(GetParam())];
  Prng prng(43);
  const std::string text = spec.text(60'000, prng);
  const LanguageEngines engines =
      LanguageEngines::from_nfa(glushkov_nfa(spec.regex()));
  ThreadPool pool(6);
  const auto input = engines.translate(text);
  const DeviceOptions options{.chunks = 32, .convergence = false};

  const auto dfa = engines.recognize(Variant::kDfa, input, pool, options);
  const auto rid = engines.recognize(Variant::kRid, input, pool, options);
  ASSERT_TRUE(dfa.accepted);
  ASSERT_TRUE(rid.accepted);
  const double ratio = static_cast<double>(dfa.transitions) /
                       static_cast<double>(rid.transitions);
  if (spec.winning) {
    EXPECT_GT(ratio, 2.0) << spec.name;
  } else {
    EXPECT_GT(ratio, 0.5) << spec.name;
    EXPECT_LT(ratio, 2.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, IntegrationCase, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return benchmark_suite()[static_cast<std::size_t>(
                                                        info.param)]
                               .name;
                         });

TEST(Integration, NfaVariantCountsMoreTransitionsThanRid) {
  // Tab. 3: the NFA/RID transition ratio is >= 1 on every benchmark.
  for (const auto& spec : benchmark_suite()) {
    Prng prng(44);
    const std::string text = spec.text(20'000, prng);
    const LanguageEngines engines =
        LanguageEngines::from_nfa(glushkov_nfa(spec.regex()));
    ThreadPool pool(6);
    const auto input = engines.translate(text);
    const DeviceOptions options{.chunks = 16, .convergence = false};
    const auto nfa_stats = engines.recognize(Variant::kNfa, input, pool, options);
    const auto rid_stats = engines.recognize(Variant::kRid, input, pool, options);
    EXPECT_GE(static_cast<double>(nfa_stats.transitions) * 1.05,
              static_cast<double>(rid_stats.transitions))
        << spec.name;
  }
}

TEST(Integration, ConvergenceAblationPreservesDecisions) {
  const WorkloadSpec spec = bible_workload();
  Prng prng(45);
  const std::string text = spec.text(20'000, prng);
  const LanguageEngines engines =
      LanguageEngines::from_nfa(glushkov_nfa(spec.regex()));
  ThreadPool pool(6);
  const auto input = engines.translate(text);
  const DeviceOptions plain{.chunks = 16, .convergence = false};
  const DeviceOptions merged{.chunks = 16, .convergence = true};
  const auto a = engines.recognize(Variant::kDfa, input, pool, plain);
  const auto b = engines.recognize(Variant::kDfa, input, pool, merged);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_LE(b.transitions, a.transitions);  // convergence can only save work
}

}  // namespace
}  // namespace rispar
