#include "parallel/streaming.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

TEST(Streaming, EmptyStreamDecidedByInitialFinality) {
  ThreadPool pool(2);
  const DeviceOptions options{.chunks = 4, .convergence = false};
  const Ridfa star = build_minimized_ridfa(glushkov_nfa(parse_regex("a*")));
  const Ridfa plus = build_minimized_ridfa(glushkov_nfa(parse_regex("a+")));
  EXPECT_TRUE(StreamingRecognizer(star, pool, options).accepted());
  EXPECT_FALSE(StreamingRecognizer(plus, pool, options).accepted());
}

TEST(Streaming, SingleWindowEqualsOneShot) {
  ThreadPool pool(4);
  const Ridfa ridfa = build_minimized_ridfa(testing::fig1_nfa());
  const DeviceOptions options{.chunks = 2, .convergence = false};
  StreamingRecognizer stream(ridfa, pool, options);
  const auto input = testing::fig1_string();
  stream.feed(input);
  EXPECT_TRUE(stream.accepted());
  EXPECT_EQ(stream.windows(), 1u);
}

TEST(Streaming, EmptyWindowIsANoop) {
  ThreadPool pool(2);
  const Ridfa ridfa = build_minimized_ridfa(glushkov_nfa(parse_regex("(ab)*")));
  const DeviceOptions options{.chunks = 2, .convergence = false};
  StreamingRecognizer stream(ridfa, pool, options);
  stream.feed({});
  EXPECT_TRUE(stream.accepted());  // still the empty string
  EXPECT_EQ(stream.windows(), 0u);
}

TEST(Streaming, DeadStreamShortCircuits) {
  ThreadPool pool(2);
  const Ridfa ridfa = build_minimized_ridfa(glushkov_nfa(parse_regex("a+")));
  const DeviceOptions options{.chunks = 2, .convergence = false};
  StreamingRecognizer stream(ridfa, pool, options);
  // Symbol 0 is 'a'; an unmapped symbol kills every run.
  const std::vector<Symbol> poison{SymbolMap::kUnmapped};
  stream.feed(poison);
  EXPECT_TRUE(stream.dead());
  const std::vector<Symbol> more{0, 0};
  stream.feed(more);
  EXPECT_FALSE(stream.accepted());
}

TEST(Streaming, ResetStartsOver) {
  ThreadPool pool(2);
  const Ridfa ridfa = build_minimized_ridfa(glushkov_nfa(parse_regex("(ab)*")));
  const DeviceOptions options{.chunks = 2, .convergence = false};
  StreamingRecognizer stream(ridfa, pool, options);
  const std::vector<Symbol> half{0};  // "a" — not a member
  stream.feed(half);
  EXPECT_FALSE(stream.accepted());
  stream.reset();
  EXPECT_TRUE(stream.accepted());
  const std::vector<Symbol> pair{0, 1};
  stream.feed(pair);
  EXPECT_TRUE(stream.accepted());
}

class StreamingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingProperty, AnySegmentationMatchesOneShotOracle) {
  Prng prng(GetParam());
  ThreadPool pool(4);
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Ridfa ridfa = build_minimized_ridfa(nfa);
  const Dfa oracle = minimize_dfa(determinize(nfa));

  const DeviceOptions options{.chunks = 3, .convergence = false};
  for (int trial = 0; trial < 10; ++trial) {
    const auto input =
        testing::random_word(prng, nfa.num_symbols(), 1 + prng.pick_index(120));
    StreamingRecognizer stream(ridfa, pool, options);
    // Random segmentation into windows.
    std::size_t offset = 0;
    while (offset < input.size()) {
      const std::size_t take =
          std::min(input.size() - offset, 1 + prng.pick_index(30));
      stream.feed(std::span<const Symbol>(input.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(stream.accepted(), oracle.accepts(input)) << "trial " << trial;
  }
}

TEST_P(StreamingProperty, WorkloadTextsStreamCorrectly) {
  Prng prng(GetParam() ^ 0x5eed);
  ThreadPool pool(4);
  const auto suite = benchmark_suite();
  const auto& spec = suite[GetParam() % suite.size()];
  const Nfa nfa = glushkov_nfa(spec.regex());
  const Ridfa ridfa = build_minimized_ridfa(nfa);
  const std::string text = spec.text(20'000, prng);
  const auto input = nfa.symbols().translate(text);

  const DeviceOptions options{.chunks = 8, .convergence = false};
  StreamingRecognizer stream(ridfa, pool, options);
  for (std::size_t offset = 0; offset < input.size(); offset += 4096)
    stream.feed(std::span<const Symbol>(
        input.data() + offset, std::min<std::size_t>(4096, input.size() - offset)));
  EXPECT_TRUE(stream.accepted()) << spec.name;
  EXPECT_GE(stream.transitions(), input.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rispar
